"""Hot-query result cache keyed on the engine's freshness signature.

The key pairs the engine's :meth:`signature` — ``(num_nodes,
num_entries, root_page)`` for a frozen index, per-store
``(generation, memtable_points)`` for a live one — with the spec's
:meth:`~repro.search.spec.QuerySpec.cache_key` (its canonical JSON
minus the deadline budget, which does not affect the answer).  A write
to a live store changes the signature, so stale entries can never be
served; they simply age out of the LRU.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["ResultCache"]


class ResultCache:
    """LRU of rendered response bodies.  ``capacity`` 0 disables."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[tuple, bytes] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, signature: tuple, spec_key: str) -> bytes | None:
        if self.capacity <= 0:
            return None
        body = self._entries.get((signature, spec_key))
        if body is not None:
            self._entries.move_to_end((signature, spec_key))
        return body

    def put(self, signature: tuple, spec_key: str, body: bytes) -> None:
        if self.capacity <= 0:
            return
        self._entries[(signature, spec_key)] = body
        self._entries.move_to_end((signature, spec_key))
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
