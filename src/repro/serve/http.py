"""Minimal HTTP/1.1 framing over asyncio streams.

Just enough of the protocol for the serving tier: request-line +
header parsing with hard limits, ``Content-Length`` bodies (no chunked
upload), and keep-alive response writing.  Anything outside that
narrow envelope is a :class:`BadRequest` — the server answers ``400``
and closes rather than guessing.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

__all__ = [
    "BadRequest",
    "PayloadTooLarge",
    "Request",
    "read_request",
    "write_response",
]

_MAX_LINE = 8192
_MAX_HEADERS = 64

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class BadRequest(Exception):
    """The bytes on the wire are not a request this server accepts."""


class PayloadTooLarge(Exception):
    """The declared body exceeds the server's ``max_body_bytes``."""


@dataclass
class Request:
    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError("connection closed") from None
        raise BadRequest("truncated request") from None
    except asyncio.LimitOverrunError:
        raise BadRequest("header line too long") from None
    if len(line) > _MAX_LINE:
        raise BadRequest("header line too long")
    return line[:-2]


async def read_request(
    reader: asyncio.StreamReader, *, max_body_bytes: int
) -> Request:
    """Parse one request.  Raises :class:`EOFError` on a cleanly
    closed idle connection, :class:`BadRequest` on malformed framing,
    :class:`PayloadTooLarge` when the body budget is exceeded."""
    line = await _read_line(reader)
    parts = line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest(f"malformed request line: {line[:80]!r}")
    method, path, _version = parts

    headers: dict[str, str] = {}
    while True:
        raw = await _read_line(reader)
        if not raw:
            break
        if len(headers) >= _MAX_HEADERS:
            raise BadRequest("too many headers")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise BadRequest(f"malformed header: {raw[:80]!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise BadRequest("chunked request bodies are not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise BadRequest("non-integer Content-Length") from None
        if length < 0:
            raise BadRequest("negative Content-Length")
        if length > max_body_bytes:
            raise PayloadTooLarge(
                f"body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit"
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise BadRequest("body shorter than Content-Length") from None
    return Request(method=method, path=path, headers=headers, body=body)


def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: dict[str, str] | None = None,
) -> None:
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
    writer.write(head + body)
