"""repro.serve — asyncio serving tier with admission control.

A stdlib-only HTTP/1.1 front-end that multiplexes concurrent clients
onto the blocking query engines (:class:`~repro.engine.QueryEngine`,
:class:`~repro.engine.ShardedQueryEngine`,
:class:`~repro.engine.LiveQueryEngine`) through a bounded thread pool.
The wire format is the library's own
:class:`~repro.search.spec.QuerySpec` / :class:`~repro.search.results
.SearchResult` JSON envelopes — what a client POSTs to ``/v1/query``
is byte-for-byte what :func:`repro.search.execute_spec` consumes
in-process, so served answers carry no translation layer that could
drift.

Admission control is explicit and load-shedding, never queueing
without bound:

* at most ``max_inflight`` requests are admitted at once; the next
  one is rejected immediately with ``429`` (``reason: overload``),
* per-client token buckets (``quota_rps``/``quota_burst``) meter
  sustained rates and answer ``429`` with ``Retry-After``,
* every admitted request carries a deadline budget (its own
  ``deadline_ms``, clamped to ``max_deadline_ms``) that the engine
  enforces *inside* query execution — an expired budget surfaces as
  ``504`` instead of a stuck worker,
* a small LRU result cache keyed on the engine's freshness
  :meth:`signature` serves repeated hot queries without touching the
  pool, and invalidates the moment the index changes,
* ``SIGTERM``/``SIGINT`` drain gracefully: stop accepting, finish the
  admitted work, then exit.

``GET /stats`` exposes the ``serve.*`` counters (see
``docs/OBSERVABILITY.md``) together with the engine's own metrics.
"""

from .admission import AdmissionController, TokenBucket
from .background import BackgroundServer
from .cache import ResultCache
from .client import ServeClient
from .config import ServeConfig
from .server import ReproServer

__all__ = [
    "AdmissionController",
    "BackgroundServer",
    "ReproServer",
    "ResultCache",
    "ServeClient",
    "ServeConfig",
    "TokenBucket",
]
