"""The asyncio front-end: routing, admission, execution, drain.

One event loop accepts connections and frames requests; admitted
queries hop onto a bounded :class:`~concurrent.futures
.ThreadPoolExecutor` via :meth:`loop.run_in_executor` where the
blocking engine runs.  The engine must be thread-tolerant for
``workers > 1`` — open it with ``EngineConfig(executor="thread")`` so
the buffer manager takes its lock (the ``repro serve`` CLI does this).

Endpoints::

    POST /v1/query   QuerySpec JSON in, SearchResult envelope out
    GET  /stats      serve.* metrics + engine metrics + config
    GET  /healthz    200 once accepting, 503 while draining

Status codes: 400 malformed spec/framing, 404/405 routing, 413 body
too large, 429 overload or quota (with ``Retry-After``), 422 engine
rejected the query, 500 unexpected, 503 draining, 504 deadline
exceeded.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import functools
import json
import signal
import time

from ..exceptions import DeadlineExceeded, ReproError, ServeError
from ..obs import MetricsRegistry
from .admission import AdmissionController
from .cache import ResultCache
from .config import ServeConfig
from .http import (
    BadRequest,
    PayloadTooLarge,
    Request,
    read_request,
    write_response,
)

__all__ = ["ReproServer"]


def _error_body(reason: str, detail: str) -> bytes:
    return json.dumps(
        {"error": reason, "detail": detail}, sort_keys=True
    ).encode()


class ReproServer:
    """Serve one engine (frozen, sharded, or live) over HTTP."""

    def __init__(
        self,
        engine,
        config: ServeConfig | None = None,
        *,
        registry: MetricsRegistry | None = None,
    ) -> None:
        for method in ("execute", "signature"):
            if not callable(getattr(engine, method, None)):
                raise ServeError(
                    f"engine {type(engine).__name__} has no {method}(); "
                    "ReproServer fronts QueryEngine, ShardedQueryEngine "
                    "or LiveQueryEngine"
                )
        self.engine = engine
        self.config = config if config is not None else ServeConfig()
        if self.config.workers > 1:
            # concurrent execute() calls need the engine's buffer lock
            enable = getattr(engine, "enable_thread_safety", None)
            if callable(enable):
                enable()
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.admission = AdmissionController(
            self.config.max_inflight,
            self.config.quota_rps,
            self.config.quota_burst,
            self.config.max_clients,
        )
        self.cache = ResultCache(self.config.cache_entries)
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve",
        )
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._started = asyncio.Event()
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """Actual ``(host, port)`` once started (resolves port 0)."""
        if self._server is None or not self._server.sockets:
            raise ServeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            raise ServeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.drain())
                )
            except (NotImplementedError, RuntimeError, ValueError):
                # not the main thread (BackgroundServer) or an event
                # loop without signal support — drain() stays callable
                # programmatically.
                break
        self._started.set()

    async def serve_until_drained(self) -> None:
        """Run until :meth:`drain` completes (signal or programmatic)."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    async def drain(self) -> None:
        """Stop accepting, let admitted requests finish (bounded by
        ``drain_grace_s``), then release the pool."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.config.drain_grace_s
        while self.admission.inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        self.metrics.inc("serve.drained")
        self._pool.shutdown(wait=False)
        self._stopped.set()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        peer_id = peer[0] if isinstance(peer, tuple) else str(peer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.config.max_body_bytes
                    )
                except EOFError:
                    break
                except BadRequest as exc:
                    self.metrics.inc("serve.rejected.malformed")
                    write_response(
                        writer, 400, _error_body("malformed", str(exc)),
                        keep_alive=False,
                    )
                    break
                except PayloadTooLarge as exc:
                    self.metrics.inc("serve.rejected.too_large")
                    write_response(
                        writer, 413, _error_body("too_large", str(exc)),
                        keep_alive=False,
                    )
                    break
                status, body, extra = await self._dispatch(request, peer_id)
                keep = request.keep_alive and not self._draining
                write_response(
                    writer, status, body, keep_alive=keep,
                    extra_headers=extra,
                )
                await writer.drain()
                if not keep:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(
        self, request: Request, peer_id: str
    ) -> tuple[int, bytes, dict | None]:
        self.metrics.inc("serve.requests")
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            if self._draining:
                return 503, _error_body("draining", "server is draining"), None
            return 200, b'{"status": "ok"}', None
        if route == ("GET", "/stats"):
            return 200, self._stats_body(), None
        if route == ("POST", "/v1/query"):
            return await self._handle_query(request, peer_id)
        if request.path in ("/healthz", "/stats", "/v1/query"):
            return 405, _error_body(
                "method_not_allowed", f"{request.method} {request.path}"
            ), None
        return 404, _error_body("not_found", request.path), None

    async def _handle_query(
        self, request: Request, peer_id: str
    ) -> tuple[int, bytes, dict | None]:
        from ..search.spec import QuerySpec

        if self._draining:
            return 503, _error_body("draining", "server is draining"), None

        client_id = request.headers.get("x-client-id", peer_id)
        retry_after = self.admission.check_quota(client_id)
        if retry_after > 0:
            self.metrics.inc("serve.rejected.quota")
            return 429, _error_body(
                "quota", f"client {client_id!r} is over its rate quota"
            ), {"Retry-After": f"{retry_after:.3f}"}

        try:
            spec = QuerySpec.from_json(request.body.decode("utf-8"))
        except (ReproError, UnicodeDecodeError) as exc:
            self.metrics.inc("serve.rejected.malformed")
            return 400, _error_body("malformed", str(exc)), None

        if not self.admission.try_admit():
            self.metrics.inc("serve.rejected.overload")
            return 429, _error_body(
                "overload",
                f"{self.admission.max_inflight} requests already inflight",
            ), {"Retry-After": "0.05"}
        self.metrics.record_max("serve.queue_depth", self.admission.inflight)
        try:
            return await self._execute_admitted(spec)
        finally:
            self.admission.release()

    async def _execute_admitted(
        self, spec
    ) -> tuple[int, bytes, dict | None]:
        # The absolute monotonic deadline computed here crosses every
        # executor boundary: thread-pool engines capture it in their
        # per-shard deadline guards, and a process-pool
        # ShardedQueryEngine carries it as an explicit ShardPlan field
        # (thread-locals do not survive the process hop; the monotonic
        # clock is system-wide on Linux), so 504 enforcement is
        # executor-agnostic.
        budget_ms = spec.deadline_ms
        if budget_ms is None:
            budget_ms = self.config.default_deadline_ms
        budget_ms = min(budget_ms, self.config.max_deadline_ms)
        deadline = time.monotonic() + budget_ms / 1000.0

        signature = self.engine.signature()
        spec_key = spec.cache_key()
        cached = self.cache.get(signature, spec_key)
        if cached is not None:
            self.metrics.inc("serve.cache.hits")
            return 200, cached, {"X-Repro-Cache": "hit"}
        self.metrics.inc("serve.cache.misses")

        loop = asyncio.get_running_loop()
        start = time.perf_counter()
        try:
            result = await loop.run_in_executor(
                self._pool,
                functools.partial(
                    self.engine.execute, spec, deadline=deadline
                ),
            )
        except DeadlineExceeded as exc:
            self.metrics.inc("serve.deadline_misses")
            return 504, _error_body("deadline_exceeded", str(exc)), None
        except ReproError as exc:
            return 422, _error_body("rejected", str(exc)), None
        except Exception as exc:  # pragma: no cover - defensive
            return 500, _error_body("internal", repr(exc)), None
        finally:
            self.metrics.timer("serve.execute").record(
                time.perf_counter() - start
            )
        body = result.to_json().encode()
        self.cache.put(signature, spec_key, body)
        return 200, body, {"X-Repro-Cache": "miss"}

    # ------------------------------------------------------------------
    def _stats_body(self) -> bytes:
        engine_metrics = None
        metrics = getattr(self.engine, "metrics", None)
        if metrics is not None and hasattr(metrics, "as_dict"):
            engine_metrics = metrics.as_dict()
        elif callable(getattr(self.engine, "counters", None)):
            engine_metrics = {"counters": self.engine.counters()}
        doc = {
            "serve": self.metrics.as_dict(),
            "engine": {
                "type": type(self.engine).__name__,
                "signature": _jsonable(self.engine.signature()),
                "metrics": engine_metrics,
            },
            "config": self.config.as_dict(),
            "inflight": self.admission.inflight,
            "cache_entries": len(self.cache),
            "draining": self._draining,
        }
        return json.dumps(doc, sort_keys=True).encode()


def _jsonable(value):
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value
