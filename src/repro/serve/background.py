"""Run a :class:`~repro.serve.ReproServer` on a daemon thread.

The test suite, the serving benchmark and the CI smoke job all need a
live server inside one process; this wraps the event loop plumbing:
``start()`` returns once the socket is bound (resolving port 0 to the
real port), ``stop()`` drains and joins.
"""

from __future__ import annotations

import asyncio
import threading

from ..exceptions import ServeError
from ..obs import MetricsRegistry
from .config import ServeConfig
from .server import ReproServer

__all__ = ["BackgroundServer"]


class BackgroundServer:
    """Own thread + event loop around a :class:`ReproServer`."""

    def __init__(
        self,
        engine,
        config: ServeConfig | None = None,
        *,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else ServeConfig()
        self.registry = registry
        self.server: ReproServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------------
    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def main() -> None:
            try:
                self.server = ReproServer(
                    self.engine, self.config, registry=self.registry
                )
                await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            await self.server.serve_until_drained()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    def start(self) -> "BackgroundServer":
        if self._thread is not None:
            raise ServeError("background server already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            raise ServeError(
                f"server failed to start: {self._startup_error!r}"
            ) from self._startup_error
        if self.server is None:
            raise ServeError("server failed to start within 30s")
        return self

    @property
    def address(self) -> tuple[str, int]:
        if self.server is None:
            raise ServeError("background server is not running")
        return self.server.address

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread is None or self._loop is None or self.server is None:
            return
        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.server.drain(), self._loop
            )
        self._thread.join(timeout=timeout)
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
