"""Blocking HTTP client for the serving tier.

A thin wrapper over :mod:`http.client` keep-alive connections that
speaks the tier's wire format: :class:`~repro.search.spec.QuerySpec`
out, :class:`~repro.search.results.SearchResult` back.  One
:class:`ServeClient` owns one connection — use one per thread (the
load generator in ``benchmarks/bench_serving.py`` does exactly that).
"""

from __future__ import annotations

import http.client
import json

from ..exceptions import ServeError
from ..search.results import SearchResult
from ..search.spec import QuerySpec

__all__ = ["ServeClient", "ServeRejected"]


class ServeRejected(ServeError):
    """A non-200 answer; carries the status and decoded error body."""

    def __init__(self, status: int, doc: dict, retry_after: float | None):
        self.status = status
        self.reason = doc.get("error", "unknown")
        self.detail = doc.get("detail", "")
        self.retry_after = retry_after
        super().__init__(f"HTTP {status} {self.reason}: {self.detail}")


class ServeClient:
    """One keep-alive connection to a :class:`~repro.serve.ReproServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client_id: str | None = None,
        timeout: float = 30.0,
    ) -> None:
        self.client_id = client_id
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, dict, bytes]:
        headers = {}
        if body is not None:
            headers["Content-Type"] = "application/json"
        if self.client_id is not None:
            headers["X-Client-Id"] = self.client_id
        try:
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            payload = response.read()
        except (ConnectionError, http.client.HTTPException, OSError) as exc:
            self._conn.close()
            raise ServeError(f"transport failure: {exc!r}") from exc
        return response.status, dict(response.headers), payload

    @staticmethod
    def _raise_for_status(status: int, headers: dict, payload: bytes) -> None:
        if status == 200:
            return
        try:
            doc = json.loads(payload.decode() or "{}")
        except (ValueError, UnicodeDecodeError):
            doc = {"error": "unknown", "detail": payload[:200].decode("latin-1")}
        retry_after = None
        raw = headers.get("Retry-After")
        if raw is not None:
            try:
                retry_after = float(raw)
            except ValueError:
                pass
        raise ServeRejected(status, doc, retry_after)

    # ------------------------------------------------------------------
    def query(self, spec: QuerySpec) -> SearchResult:
        """POST the spec; returns the decoded result envelope.  Raises
        :class:`ServeRejected` on any non-200 answer."""
        status, headers, payload = self._request(
            "POST", "/v1/query", spec.to_json().encode()
        )
        self._raise_for_status(status, headers, payload)
        result = SearchResult.from_json(payload)
        # annotation only — kept out of extras so answer_json() stays
        # byte-identical to the in-process result
        result.served_from_cache = headers.get("X-Repro-Cache") == "hit"
        return result

    def query_raw(self, body: bytes) -> tuple[int, dict, bytes]:
        """POST raw bytes; returns ``(status, headers, payload)``
        without interpretation — the rejection-path test hook."""
        return self._request("POST", "/v1/query", body)

    def stats(self) -> dict:
        status, headers, payload = self._request("GET", "/stats")
        self._raise_for_status(status, headers, payload)
        return json.loads(payload.decode())

    def health(self) -> bool:
        status, _headers, _payload = self._request("GET", "/healthz")
        return status == 200

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
