"""Serving-tier tunables."""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..exceptions import ServeError

__all__ = ["ServeConfig"]


@dataclass
class ServeConfig:
    """Tunables for a :class:`~repro.serve.ReproServer`.

    ``max_inflight`` is the *only* queue in the tier: requests beyond
    it are rejected immediately with ``429`` rather than buffered, so
    server memory stays bounded under any offered load.  ``quota_rps``
    of 0 disables per-client metering; ``cache_entries`` of 0 disables
    the result cache.  ``deadline_ms`` budgets: a request that names
    none gets ``default_deadline_ms``; all requests are clamped to
    ``max_deadline_ms``.
    """

    host: str = "127.0.0.1"
    port: int = 8723
    workers: int = 4
    max_inflight: int = 64
    quota_rps: float = 0.0
    quota_burst: int = 20
    max_clients: int = 1024
    default_deadline_ms: float = 10_000.0
    max_deadline_ms: float = 60_000.0
    max_body_bytes: int = 1 << 20
    cache_entries: int = 256
    drain_grace_s: float = 10.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServeError("workers must be >= 1")
        if self.max_inflight < 1:
            raise ServeError("max_inflight must be >= 1")
        if self.quota_rps < 0:
            raise ServeError("quota_rps must be >= 0")
        if self.quota_burst < 1:
            raise ServeError("quota_burst must be >= 1")
        if self.max_body_bytes < 1:
            raise ServeError("max_body_bytes must be >= 1")
        if self.default_deadline_ms <= 0 or self.max_deadline_ms <= 0:
            raise ServeError("deadline budgets must be positive")
        if self.cache_entries < 0:
            raise ServeError("cache_entries must be >= 0")

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}
