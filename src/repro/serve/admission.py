"""Admission control: bounded inflight slots and per-client quotas.

Both mechanisms *shed* load instead of queueing it.  The inflight
counter is the serving tier's only queue — when it is full the caller
answers ``429`` immediately, so a burst of N requests costs O(N)
rejection responses, never O(N) buffered bodies.  Token buckets meter
sustained per-client rates; the bucket table is itself LRU-bounded so
an adversarial spread of client ids cannot grow it without limit.

Everything here runs on the event-loop thread, so plain integers and
dicts suffice — no locks.
"""

from __future__ import annotations

import time
from collections import OrderedDict

__all__ = ["AdmissionController", "TokenBucket"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` cap."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: int, now: float) -> None:
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = now

    def acquire(self, now: float) -> float:
        """Take one token.  Returns 0.0 on success, otherwise the
        seconds to wait until a token will be available."""
        elapsed = max(0.0, now - self.stamp)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class AdmissionController:
    """Inflight slots plus an LRU table of per-client token buckets."""

    def __init__(
        self,
        max_inflight: int,
        quota_rps: float = 0.0,
        quota_burst: int = 20,
        max_clients: int = 1024,
        clock=time.monotonic,
    ) -> None:
        self.max_inflight = max_inflight
        self.quota_rps = quota_rps
        self.quota_burst = quota_burst
        self.max_clients = max_clients
        self.clock = clock
        self.inflight = 0
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()

    # -- inflight slots ------------------------------------------------
    def try_admit(self) -> bool:
        """Claim an execution slot; ``False`` means reject *now*."""
        if self.inflight >= self.max_inflight:
            return False
        self.inflight += 1
        return True

    def release(self) -> None:
        self.inflight -= 1

    # -- per-client quotas ---------------------------------------------
    def check_quota(self, client_id: str) -> float:
        """Charge one request to ``client_id``.  Returns 0.0 when
        admitted, otherwise the suggested ``Retry-After`` seconds."""
        if self.quota_rps <= 0:
            return 0.0
        now = self.clock()
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(self.quota_rps, self.quota_burst, now)
            self._buckets[client_id] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client_id)
        return bucket.acquire(now)
