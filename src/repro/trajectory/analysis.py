"""Trajectory analytics.

Descriptive statistics a MOD operator wants before and after running
similarity queries: speed and heading profiles, stop detection,
sampling-rate diagnostics (the paper's whole premise is that real
sampling rates vary — this is where you measure by how much).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import TrajectoryError
from ..geometry import Point
from .trajectory import Trajectory

__all__ = [
    "SamplingStats",
    "Stop",
    "speed_profile",
    "heading_profile",
    "total_turning",
    "detect_stops",
    "sampling_stats",
    "cumulative_length_at",
]


@dataclass(frozen=True, slots=True)
class SamplingStats:
    """Diagnostics of a trajectory's sampling clock."""

    samples: int
    min_interval: float
    max_interval: float
    mean_interval: float
    #: max/min interval ratio; 1.0 = perfectly regular clock.
    irregularity: float


@dataclass(frozen=True, slots=True)
class Stop:
    """A maximal stretch where the object (almost) did not move."""

    t_lo: float
    t_hi: float
    centre: Point

    @property
    def duration(self) -> float:
        return self.t_hi - self.t_lo


def speed_profile(trajectory: Trajectory) -> list[tuple[float, float]]:
    """``(segment midpoint time, segment speed)`` per segment."""
    return [
        ((seg.ts + seg.te) / 2.0, seg.speed) for seg in trajectory.segments()
    ]


def heading_profile(trajectory: Trajectory) -> list[tuple[float, float]]:
    """``(segment midpoint time, heading in radians)`` per *moving*
    segment (stationary segments have no heading and are skipped)."""
    out = []
    for seg in trajectory.segments():
        vx, vy = seg.velocity
        if vx == 0.0 and vy == 0.0:
            continue
        out.append(((seg.ts + seg.te) / 2.0, math.atan2(vy, vx)))
    return out


def total_turning(trajectory: Trajectory) -> float:
    """Sum of absolute heading changes (radians) — 0 for a straight
    run, large for a wanderer.  Useful as a tortuosity measure."""
    headings = [h for _t, h in heading_profile(trajectory)]
    total = 0.0
    for a, b in zip(headings, headings[1:]):
        delta = abs(b - a)
        if delta > math.pi:
            delta = 2.0 * math.pi - delta
        total += delta
    return total


def detect_stops(
    trajectory: Trajectory,
    max_speed: float,
    min_duration: float = 0.0,
) -> list[Stop]:
    """Maximal runs of consecutive segments slower than ``max_speed``
    that last at least ``min_duration``."""
    if max_speed < 0.0:
        raise TrajectoryError(f"negative speed threshold {max_speed}")
    stops: list[Stop] = []
    run_start: float | None = None
    run_points: list[Point] = []
    last_end = trajectory.t_start

    def flush(end_time: float) -> None:
        nonlocal run_start, run_points
        if run_start is not None and end_time - run_start >= min_duration:
            cx = sum(p.x for p in run_points) / len(run_points)
            cy = sum(p.y for p in run_points) / len(run_points)
            stops.append(Stop(run_start, end_time, Point(cx, cy)))
        run_start = None
        run_points = []

    for seg in trajectory.segments():
        if seg.speed <= max_speed:
            if run_start is None:
                run_start = seg.ts
                run_points = [Point(seg.start.x, seg.start.y)]
            run_points.append(Point(seg.end.x, seg.end.y))
            last_end = seg.te
        else:
            flush(last_end)
    flush(last_end)
    return stops


def sampling_stats(trajectory: Trajectory) -> SamplingStats:
    """Clock diagnostics; ``irregularity`` is the max/min gap ratio."""
    gaps = [
        b.t - a.t
        for a, b in zip(trajectory.samples, trajectory.samples[1:])
    ]
    lo = min(gaps)
    hi = max(gaps)
    return SamplingStats(
        samples=len(trajectory),
        min_interval=lo,
        max_interval=hi,
        mean_interval=sum(gaps) / len(gaps),
        irregularity=hi / lo if lo > 0 else math.inf,
    )


def cumulative_length_at(trajectory: Trajectory, t: float) -> float:
    """Distance travelled from the start up to time ``t``."""
    if not (trajectory.t_start <= t <= trajectory.t_end):
        raise TrajectoryError(
            f"time {t} outside lifetime "
            f"[{trajectory.t_start}, {trajectory.t_end}]"
        )
    total = 0.0
    for seg in trajectory.segments():
        if seg.te <= t:
            total += seg.spatial_length()
        elif seg.ts < t:
            part = seg.clipped(seg.ts, t)
            total += part.spatial_length()
            break
        else:
            break
    return total
