"""Reading and writing trajectory datasets.

Two plain-text formats are supported:

* **CSV** — one sample per row, ``object_id,x,y,t``, grouped by object
  id (rows of the same object must appear consecutively and in time
  order; this is the layout of the public fleet datasets the paper
  cites).
* **JSON** — ``{"trajectories": [{"id": ..., "samples": [[x, y, t], ...]}]}``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from ..exceptions import TrajectoryError
from .dataset import TrajectoryDataset
from .trajectory import Trajectory

__all__ = [
    "read_csv",
    "write_csv",
    "read_json",
    "write_json",
]


def write_csv(dataset: TrajectoryDataset, path: str | Path) -> None:
    """Write a dataset as ``object_id,x,y,t`` rows with a header."""
    path = Path(path)
    with path.open("w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["object_id", "x", "y", "t"])
        for tr in dataset:
            for p in tr:
                writer.writerow([tr.object_id, repr(p.x), repr(p.y), repr(p.t)])


def read_csv(path: str | Path) -> TrajectoryDataset:
    """Read a dataset written by :func:`write_csv` (header optional)."""
    path = Path(path)
    dataset = TrajectoryDataset()
    current_id: str | None = None
    samples: list[tuple[float, float, float]] = []

    def flush() -> None:
        nonlocal samples, current_id
        if current_id is not None:
            dataset.add(Trajectory(current_id, samples))
        samples = []

    with path.open(newline="") as f:
        reader = csv.reader(f)
        for lineno, row in enumerate(reader, start=1):
            if not row:
                continue
            if lineno == 1 and row[0] == "object_id":
                continue
            if len(row) != 4:
                raise TrajectoryError(
                    f"{path}:{lineno}: expected 4 columns, got {len(row)}"
                )
            oid, xs, ys, ts = row
            if oid != current_id:
                flush()
                current_id = oid
            try:
                samples.append((float(xs), float(ys), float(ts)))
            except ValueError as exc:
                raise TrajectoryError(f"{path}:{lineno}: {exc}") from exc
    flush()
    return dataset


def write_json(dataset: TrajectoryDataset, path: str | Path) -> None:
    """Write a dataset to a JSON document."""
    doc = {
        "trajectories": [
            {
                "id": tr.object_id,
                "samples": [[p.x, p.y, p.t] for p in tr],
            }
            for tr in dataset
        ]
    }
    Path(path).write_text(json.dumps(doc))


def read_json(path: str | Path) -> TrajectoryDataset:
    """Read a dataset written by :func:`write_json`."""
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise TrajectoryError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(doc, dict) or "trajectories" not in doc:
        raise TrajectoryError(f"{path}: missing 'trajectories' key")
    dataset = TrajectoryDataset()
    for item in doc["trajectories"]:
        dataset.add(Trajectory(item["id"], [tuple(s) for s in item["samples"]]))
    return dataset
