"""Trajectory data model: trajectories, datasets and I/O."""

from .analysis import (
    SamplingStats,
    Stop,
    cumulative_length_at,
    detect_stops,
    heading_profile,
    sampling_stats,
    speed_profile,
    total_turning,
)
from .columns import TrajectoryColumns, dataset_columns
from .dataset import TrajectoryDataset
from .io import read_csv, read_json, write_csv, write_json
from .trajectory import Trajectory

__all__ = [
    "Trajectory",
    "TrajectoryColumns",
    "dataset_columns",
    "SamplingStats",
    "Stop",
    "speed_profile",
    "heading_profile",
    "total_turning",
    "detect_stops",
    "sampling_stats",
    "cumulative_length_at",
    "TrajectoryDataset",
    "read_csv",
    "write_csv",
    "read_json",
    "write_json",
]
