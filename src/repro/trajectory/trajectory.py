"""The trajectory data model.

A :class:`Trajectory` is what the paper calls a "trajectory of a moving
object": a finite sequence of timestamped 2D samples with strictly
increasing timestamps, linearly interpolated in between (Section 3
of the paper; non-linear, e.g. arc, movement is explicitly left to
future work there, and here).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, Sequence

from ..exceptions import TemporalCoverageError, TrajectoryError
from ..geometry import MBR2D, MBR3D, Point, STPoint, STSegment

__all__ = ["Trajectory"]


class Trajectory:
    """An immutable, time-ordered sequence of spatiotemporal samples.

    Parameters
    ----------
    object_id:
        Identifier of the moving object; any hashable value (ints in
        the bundled generators).
    samples:
        Iterable of :class:`STPoint` (or ``(x, y, t)`` tuples) with
        strictly increasing timestamps.  At least two samples are
        required so that the trajectory spans a positive time interval.
    """

    __slots__ = ("object_id", "_samples", "_times", "_columns")

    def __init__(self, object_id, samples: Iterable[STPoint | tuple]) -> None:
        pts: list[STPoint] = []
        for s in samples:
            if isinstance(s, STPoint):
                pts.append(s)
            else:
                x, y, t = s
                pts.append(STPoint(float(x), float(y), float(t)))
        if len(pts) < 2:
            raise TrajectoryError(
                f"trajectory {object_id!r} needs >= 2 samples, got {len(pts)}"
            )
        for p in pts:
            if not p.is_finite():
                raise TrajectoryError(
                    f"trajectory {object_id!r} has a non-finite sample: {p}"
                )
        for prev, cur in zip(pts, pts[1:]):
            if cur.t <= prev.t:
                raise TrajectoryError(
                    f"trajectory {object_id!r}: timestamps must strictly "
                    f"increase ({prev.t} then {cur.t})"
                )
        self.object_id = object_id
        self._samples: tuple[STPoint, ...] = tuple(pts)
        self._times: tuple[float, ...] = tuple(p.t for p in pts)
        self._columns = None

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[STPoint]:
        return iter(self._samples)

    def __getitem__(self, idx: int) -> STPoint:
        return self._samples[idx]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trajectory):
            return NotImplemented
        return (
            self.object_id == other.object_id and self._samples == other._samples
        )

    def __hash__(self) -> int:
        return hash((self.object_id, self._samples))

    def __repr__(self) -> str:
        return (
            f"Trajectory(id={self.object_id!r}, samples={len(self)}, "
            f"span=[{self.t_start}, {self.t_end}])"
        )

    # ------------------------------------------------------------------
    # temporal accessors
    # ------------------------------------------------------------------
    @property
    def samples(self) -> Sequence[STPoint]:
        return self._samples

    @property
    def t_start(self) -> float:
        return self._times[0]

    @property
    def t_end(self) -> float:
        return self._times[-1]

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def covers(self, t_start: float, t_end: float) -> bool:
        """True when the trajectory's lifetime spans ``[t_start, t_end]``."""
        return self.t_start <= t_start and t_end <= self.t_end

    def overlaps(self, t_start: float, t_end: float) -> bool:
        """True when the lifetime intersects ``[t_start, t_end]``."""
        return not (self.t_end < t_start or t_end < self.t_start)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def segments(self) -> Iterator[STSegment]:
        """The ``n - 1`` line segments between consecutive samples."""
        for a, b in zip(self._samples, self._samples[1:]):
            yield STSegment(a, b)

    def segment(self, k: int) -> STSegment:
        """The ``k``-th line segment (0-based)."""
        return STSegment(self._samples[k], self._samples[k + 1])

    @property
    def num_segments(self) -> int:
        return len(self._samples) - 1

    def segment_covering(self, t: float) -> STSegment:
        """The segment whose time span contains ``t``."""
        if not (self.t_start <= t <= self.t_end):
            raise TemporalCoverageError(
                f"time {t} outside trajectory span "
                f"[{self.t_start}, {self.t_end}]"
            )
        idx = bisect_right(self._times, t) - 1
        if idx >= self.num_segments:
            idx = self.num_segments - 1
        return self.segment(idx)

    def segments_overlapping(self, t_start: float, t_end: float) -> Iterator[STSegment]:
        """Segments whose span intersects ``[t_start, t_end]`` in more
        than a single instant (plus the boundary-touching ones when the
        window is degenerate)."""
        if t_start > t_end:
            raise TrajectoryError(f"inverted window [{t_start}, {t_end}]")
        first = max(bisect_left(self._times, t_start) - 1, 0)
        for k in range(first, self.num_segments):
            seg = self.segment(k)
            if seg.ts > t_end:
                break
            if seg.te >= t_start:
                yield seg

    def position_at(self, t: float) -> Point:
        """Linearly interpolated position at time ``t``."""
        return self.segment_covering(t).position_at(t)

    def st_point_at(self, t: float) -> STPoint:
        """Interpolated spatiotemporal point at time ``t``."""
        p = self.position_at(t)
        return STPoint(p.x, p.y, t)

    def mbr(self) -> MBR3D:
        """The 3D bounding box of the whole trajectory."""
        return MBR3D.from_st_points(self._samples)

    def spatial_mbr(self) -> MBR2D:
        """The 2D bounding rectangle of the route."""
        return self.mbr().spatial

    def length(self) -> float:
        """Travelled distance (sum of segment lengths)."""
        return sum(seg.spatial_length() for seg in self.segments())

    def max_speed(self) -> float:
        """Largest segment speed; 0 for a stationary object."""
        return max(seg.speed for seg in self.segments())

    def mean_speed(self) -> float:
        """Distance travelled divided by lifetime duration."""
        return self.length() / self.duration

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def sliced(self, t_start: float, t_end: float) -> "Trajectory":
        """The restriction of the trajectory to ``[t_start, t_end]``.

        End positions are interpolated; the window must lie inside the
        trajectory's lifetime and have positive length.
        """
        if t_start >= t_end:
            raise TrajectoryError(f"empty slice window [{t_start}, {t_end}]")
        if not self.covers(t_start, t_end):
            raise TemporalCoverageError(
                f"trajectory {self.object_id!r} spans "
                f"[{self.t_start}, {self.t_end}], cannot slice "
                f"[{t_start}, {t_end}]"
            )
        lo = bisect_right(self._times, t_start)
        hi = bisect_left(self._times, t_end)
        pts: list[STPoint] = [self.st_point_at(t_start)]
        pts.extend(self._samples[lo:hi])
        pts.append(self.st_point_at(t_end))
        return Trajectory(self.object_id, pts)

    def time_shifted(self, dt: float) -> "Trajectory":
        """A copy with all timestamps shifted by ``dt`` (used by the
        time-relaxed MST extension)."""
        return Trajectory(
            self.object_id, (p.translated(0.0, 0.0, dt) for p in self._samples)
        )

    def translated(self, dx: float, dy: float) -> "Trajectory":
        """A spatially shifted copy."""
        return Trajectory(
            self.object_id, (p.translated(dx, dy) for p in self._samples)
        )

    def with_id(self, object_id) -> "Trajectory":
        """A copy carrying a different object id."""
        return Trajectory(object_id, self._samples)

    def resampled(self, timestamps: Iterable[float]) -> "Trajectory":
        """The trajectory re-sampled (by interpolation) at the given
        strictly increasing timestamps, all inside the lifetime."""
        pts = [self.st_point_at(t) for t in timestamps]
        return Trajectory(self.object_id, pts)

    def uniformly_resampled(self, n: int) -> "Trajectory":
        """Resample at ``n >= 2`` equally spaced instants spanning the
        full lifetime."""
        if n < 2:
            raise TrajectoryError("uniform resampling needs n >= 2")
        step = self.duration / (n - 1)
        times = [self.t_start + i * step for i in range(n - 1)]
        times.append(self.t_end)
        return self.resampled(times)

    def sampling_timestamps_in(self, t_start: float, t_end: float) -> list[float]:
        """The recorded timestamps falling inside ``[t_start, t_end]``."""
        lo = bisect_left(self._times, t_start)
        hi = bisect_right(self._times, t_end)
        return list(self._times[lo:hi])

    # ------------------------------------------------------------------
    # normalisation (for LCSS/EDR comparison, per Chen et al. [5])
    # ------------------------------------------------------------------
    def coordinate_arrays(self) -> tuple[list[float], list[float], list[float]]:
        """Return the x, y and t coordinate lists (copies)."""
        xs = [p.x for p in self._samples]
        ys = [p.y for p in self._samples]
        ts = list(self._times)
        return xs, ys, ts

    def columns(self):
        """Memoised columnar view of the samples (built once; the
        trajectory is immutable, so it is never invalidated)."""
        if self._columns is None:
            from .columns import TrajectoryColumns

            self._columns = TrajectoryColumns(self)
        return self._columns

    def normalised(
        self,
        mean_x: float,
        mean_y: float,
        std_x: float,
        std_y: float,
    ) -> "Trajectory":
        """Z-normalise the spatial coordinates with the given moments
        (timestamps untouched).  Zero deviations are treated as 1."""
        sx = std_x if std_x > 0.0 else 1.0
        sy = std_y if std_y > 0.0 else 1.0
        return Trajectory(
            self.object_id,
            (
                STPoint((p.x - mean_x) / sx, (p.y - mean_y) / sy, p.t)
                for p in self._samples
            ),
        )

    def spatial_std(self) -> tuple[float, float]:
        """Population standard deviation of the x and y coordinates."""
        n = len(self._samples)
        mx = sum(p.x for p in self._samples) / n
        my = sum(p.y for p in self._samples) / n
        vx = sum((p.x - mx) ** 2 for p in self._samples) / n
        vy = sum((p.y - my) ** 2 for p in self._samples) / n
        return (math.sqrt(vx), math.sqrt(vy))
