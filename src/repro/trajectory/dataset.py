"""Trajectory dataset container.

A :class:`TrajectoryDataset` is the in-memory moving-object database:
an id-keyed collection of trajectories plus the dataset-level metadata
the search algorithms need (most importantly the maximum object speed,
the ``V_max`` ingredient of the speed-dependent bounds).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..exceptions import TrajectoryError
from ..geometry import MBR3D
from .trajectory import Trajectory

__all__ = ["TrajectoryDataset"]


class TrajectoryDataset:
    """An id-keyed collection of trajectories.

    Duplicate object ids are rejected: each moving object contributes
    exactly one (historical) trajectory, as in the paper's setting.
    """

    def __init__(self, trajectories: Iterable[Trajectory] = ()) -> None:
        self._by_id: dict = {}
        self._max_speed: float | None = None
        for tr in trajectories:
            self.add(tr)

    # ------------------------------------------------------------------
    # collection protocol
    # ------------------------------------------------------------------
    def add(self, trajectory: Trajectory) -> None:
        """Insert a trajectory; raises on duplicate object id."""
        if trajectory.object_id in self._by_id:
            raise TrajectoryError(
                f"duplicate trajectory id {trajectory.object_id!r}"
            )
        self._by_id[trajectory.object_id] = trajectory
        self._max_speed = None

    def remove(self, object_id) -> Trajectory:
        """Remove and return a trajectory; raises ``KeyError`` when the
        id is unknown."""
        try:
            removed = self._by_id.pop(object_id)
        except KeyError:
            raise KeyError(f"no trajectory with id {object_id!r}") from None
        self._max_speed = None
        return removed

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self._by_id.values())

    def __contains__(self, object_id) -> bool:
        return object_id in self._by_id

    def __getitem__(self, object_id) -> Trajectory:
        try:
            return self._by_id[object_id]
        except KeyError:
            raise KeyError(f"no trajectory with id {object_id!r}") from None

    def get(self, object_id, default=None):
        return self._by_id.get(object_id, default)

    def ids(self) -> list:
        """Object ids in insertion order."""
        return list(self._by_id)

    # ------------------------------------------------------------------
    # dataset-level metadata
    # ------------------------------------------------------------------
    def max_speed(self) -> float:
        """Largest segment speed over all trajectories (cached).

        This is the dataset half of the paper's ``V_max``; the query's
        own max speed is added at query time.
        """
        if self._max_speed is None:
            if not self._by_id:
                raise TrajectoryError("empty dataset has no max speed")
            self._max_speed = max(tr.max_speed() for tr in self)
        return self._max_speed

    def total_samples(self) -> int:
        """Total number of recorded positions across all trajectories."""
        return sum(len(tr) for tr in self)

    def total_segments(self) -> int:
        """Total number of line segments (the paper's "# entries")."""
        return sum(tr.num_segments for tr in self)

    def mbr(self) -> MBR3D:
        """Bounding box of the whole dataset."""
        boxes = [tr.mbr() for tr in self]
        if not boxes:
            raise TrajectoryError("empty dataset has no MBR")
        out = boxes[0]
        for b in boxes[1:]:
            out = out.union(b)
        return out

    def time_span(self) -> tuple[float, float]:
        """``(min start, max end)`` over all trajectories."""
        if not self._by_id:
            raise TrajectoryError("empty dataset has no time span")
        return (
            min(tr.t_start for tr in self),
            max(tr.t_end for tr in self),
        )

    def covering(self, t_start: float, t_end: float) -> list[Trajectory]:
        """Trajectories whose lifetime spans ``[t_start, t_end]``."""
        return [tr for tr in self if tr.covers(t_start, t_end)]

    # ------------------------------------------------------------------
    # normalisation (dataset-wide moments, per Chen et al. [5])
    # ------------------------------------------------------------------
    def spatial_moments(self) -> tuple[float, float, float, float]:
        """Dataset-wide ``(mean_x, mean_y, std_x, std_y)`` over every
        sample of every trajectory (population statistics)."""
        n = self.total_samples()
        if n == 0:
            raise TrajectoryError("empty dataset has no moments")
        sx = sy = 0.0
        for tr in self:
            for p in tr:
                sx += p.x
                sy += p.y
        mx, my = sx / n, sy / n
        vx = vy = 0.0
        for tr in self:
            for p in tr:
                vx += (p.x - mx) ** 2
                vy += (p.y - my) ** 2
        return (mx, my, (vx / n) ** 0.5, (vy / n) ** 0.5)

    def normalised(self) -> "TrajectoryDataset":
        """A z-normalised copy of the dataset (used before LCSS/EDR
        comparisons, as suggested in Chen et al. [5])."""
        mx, my, sx, sy = self.spatial_moments()
        return TrajectoryDataset(
            tr.normalised(mx, my, sx, sy) for tr in self
        )

    def max_spatial_std(self) -> float:
        """``max(std_x, std_y)`` — the LCSS/EDR matching threshold in
        the paper is a quarter of this."""
        _, _, sx, sy = self.spatial_moments()
        return max(sx, sy)
