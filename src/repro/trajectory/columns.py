"""Columnar (structure-of-arrays) views of trajectories.

The kernel layer in :mod:`repro.distance.kernels` and the batched
MINDIST in :mod:`repro.index.mindist` want the samples of a trajectory
as contiguous float64 columns rather than a tuple of ``STPoint``
objects.  Because trajectories are immutable the columns can be built
once and memoised forever — :meth:`Trajectory.columns` does exactly
that, backed by this module.

The columns themselves are :class:`array.array` buffers so the view is
fully functional without numpy; when numpy *is* available the arrays
are wrapped zero-copy (``np.frombuffer`` on the buffer protocol) and
marked read-only.  The same deferred-import idiom as
:mod:`repro.distance.fast` keeps numpy an optional extra.
"""

from __future__ import annotations

import weakref
from array import array
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .dataset import TrajectoryDataset
    from .trajectory import Trajectory

__all__ = ["TrajectoryColumns", "dataset_columns"]

_np = None


def _numpy():
    """Import numpy on first use, with an actionable error message."""
    global _np
    if _np is None:
        try:
            import numpy

            # Probe an attribute before memoising: a concurrent failed
            # import can yield a half-initialized module object, which
            # must not be cached as "numpy is available".
            numpy.ndarray
        except (ImportError, AttributeError) as exc:  # pragma: no cover
            raise ImportError(
                "numpy is required for the array views of TrajectoryColumns; "
                "install it with 'pip install numpy' (it is an optional "
                "dependency; the plain buffer columns work without it)"
            ) from exc
        _np = numpy
    return _np


class TrajectoryColumns:
    """Contiguous float64 ``t``/``x``/``y`` columns of one trajectory.

    ``t``, ``x`` and ``y`` are ``array('d')`` buffers (always available);
    :meth:`t_view`, :meth:`x_view`, :meth:`y_view` and :meth:`xy` expose
    numpy ndarrays on demand.  The single-column views are zero-copy
    wrappers over the buffers and read-only; ``xy()`` is an ``(n, 2)``
    stacked copy, built once and memoised (read-only as well).
    """

    __slots__ = ("t", "x", "y", "_t_view", "_x_view", "_y_view", "_xy")

    def __init__(self, trajectory: "Trajectory") -> None:
        t = array("d")
        x = array("d")
        y = array("d")
        for p in trajectory.samples:
            t.append(p.t)
            x.append(p.x)
            y.append(p.y)
        self.t = t
        self.x = x
        self.y = y
        self._t_view = None
        self._x_view = None
        self._y_view = None
        self._xy = None

    def __len__(self) -> int:
        return len(self.t)

    def _wrap(self, buf: array):
        np = _numpy()
        view = np.frombuffer(buf, dtype=np.float64)
        view.flags.writeable = False
        return view

    def t_view(self):
        """Read-only float64 ndarray over the ``t`` column (zero-copy)."""
        if self._t_view is None:
            self._t_view = self._wrap(self.t)
        return self._t_view

    def x_view(self):
        """Read-only float64 ndarray over the ``x`` column (zero-copy)."""
        if self._x_view is None:
            self._x_view = self._wrap(self.x)
        return self._x_view

    def y_view(self):
        """Read-only float64 ndarray over the ``y`` column (zero-copy)."""
        if self._y_view is None:
            self._y_view = self._wrap(self.y)
        return self._y_view

    def xy(self):
        """Read-only ``(n, 2)`` float64 ndarray of the spatial samples."""
        if self._xy is None:
            np = _numpy()
            stacked = np.column_stack((self.x_view(), self.y_view()))
            stacked.flags.writeable = False
            self._xy = stacked
        return self._xy


# Dataset-level cache, keyed like the engine's signature cache: the
# entry is reused while the dataset still "looks the same"
# (same cardinality and total sample count) and rebuilt after any
# add/remove.  Weak keys keep thrown-away datasets collectable.
_DATASET_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def dataset_columns(dataset: "TrajectoryDataset") -> dict:
    """Columns for every trajectory in ``dataset``, memoised per dataset.

    Returns a mapping ``object_id -> TrajectoryColumns``.  The cache key
    is the dataset signature ``(len(dataset), total_samples)`` — the
    same invalidation discipline the query engine applies to its index
    signature — so mutating the dataset transparently rebuilds the
    columns on next use.
    """
    signature = (len(dataset), dataset.total_samples())
    entry = _DATASET_CACHE.get(dataset)
    if entry is not None and entry[0] == signature:
        return entry[1]
    columns = {traj.object_id: traj.columns() for traj in dataset}
    _DATASET_CACHE[dataset] = (signature, columns)
    return columns
