"""A small Moving-Object-Database facade.

The paper frames everything as a feature of a *MOD system*: one
historical trajectory store whose general-purpose index serves range,
nearest-neighbour **and** similarity queries.  This module packages the
library's pieces behind that single surface, the way a downstream
application would embed them:

    mod = MovingObjectDatabase(tree="tbtree")
    mod.add(trajectory)           # or .add_all(dataset)
    mod.freeze()                  # build once, query many times
    mod.range(window, t0, t1)
    mod.nearest(point, t0, t1, k=3)
    mod.most_similar(query, k=5)
    mod.similar_to(object_id, t0, t1, k=5)   # "find objects moving like #42"
    mod.estimate_cost(query, t0, t1)

The facade owns the build/freeze lifecycle and keeps the dataset and
the index consistent; everything heavy stays in the underlying
modules.
"""

from __future__ import annotations

from .exceptions import QueryError
from .geometry import MBR2D, Point
from .index import RStarTree, RTree3D, STRTree, TBTree, TrajectoryIndex, save_index
from .search import (
    MSTMatch,
    SearchStats,
    bfmst_search,
    linear_scan_kmst,
    nearest_neighbours,
    range_query,
)
from .selectivity import MSTCostEstimate, SpatioTemporalHistogram
from .trajectory import Trajectory, TrajectoryDataset

__all__ = ["MovingObjectDatabase"]

_TREES = {
    "rtree": RTree3D,
    "rstar": RStarTree,
    "tbtree": TBTree,
    "strtree": STRTree,
}


class MovingObjectDatabase:
    """Historical trajectory store + one general-purpose index."""

    def __init__(
        self,
        tree: str = "rtree",
        page_size: int = 4096,
        histogram_resolution: int = 12,
    ) -> None:
        if tree not in _TREES:
            raise QueryError(
                f"unknown tree kind {tree!r}; pick one of {sorted(_TREES)}"
            )
        self._tree_kind = tree
        self._page_size = page_size
        self._histogram_resolution = histogram_resolution
        self.dataset = TrajectoryDataset()
        self.index: TrajectoryIndex | None = None
        self._histogram: SpatioTemporalHistogram | None = None

    # ------------------------------------------------------------------
    # build lifecycle
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        return self.index is not None

    def add(self, trajectory: Trajectory) -> None:
        """Register a trajectory (before :meth:`freeze`)."""
        if self.frozen:
            raise QueryError("database is frozen; no further insertions")
        self.dataset.add(trajectory)

    def add_all(self, dataset: TrajectoryDataset) -> None:
        for tr in dataset:
            self.add(tr)

    def freeze(self, mutable: bool = False) -> "MovingObjectDatabase":
        """Build the index over everything added so far; returns self.

        With ``mutable=True`` the index is *not* finalized: the store
        keeps accepting :meth:`insert` and :meth:`remove` afterwards
        (at the cost of the build-time buffer staying large).
        """
        if self.frozen:
            raise QueryError("database already frozen")
        if len(self.dataset) == 0:
            raise QueryError("nothing to index; add trajectories first")
        index = _TREES[self._tree_kind](page_size=self._page_size)
        index.bulk_insert(self.dataset)
        if not mutable:
            index.finalize()
        self.index = index
        self._mutable = mutable
        return self

    @property
    def mutable(self) -> bool:
        """True when the store accepts post-freeze inserts/removals."""
        return bool(getattr(self, "_mutable", False)) and self.frozen

    def insert(self, trajectory: Trajectory) -> None:
        """Add a trajectory to a *mutable* frozen store (indexed
        immediately)."""
        if not self.frozen:
            raise QueryError("freeze(mutable=True) first, or use add()")
        if not self.mutable:
            raise QueryError("store was frozen immutable; cannot insert")
        self.dataset.add(trajectory)
        try:
            self.index.insert(trajectory)
        except Exception:
            self.dataset.remove(trajectory.object_id)
            raise
        self._histogram = None

    def remove(self, object_id: int) -> None:
        """Delete an object from a *mutable* frozen store (index
        condensed immediately)."""
        if not self.frozen:
            raise QueryError("nothing indexed yet; freeze() first")
        if not self.mutable:
            raise QueryError("store was frozen immutable; cannot remove")
        self.index.delete_trajectory(object_id)
        self.dataset.remove(object_id)
        self._histogram = None

    def save(self, path) -> None:
        """Persist the index (see :func:`repro.index.save_index`)."""
        self._require_frozen()
        save_index(self.index, path)

    def _require_frozen(self) -> TrajectoryIndex:
        if self.index is None:
            raise QueryError("freeze() the database before querying")
        return self.index

    # ------------------------------------------------------------------
    # queries (the paper's 'one index serves all' claim, as an API)
    # ------------------------------------------------------------------
    def range(self, window: MBR2D, t_start: float, t_end: float) -> set[int]:
        """Objects whose path enters ``window`` during the interval."""
        result = range_query(
            self._require_frozen(), None, window, period=(t_start, t_end)
        )
        return set(result.ids)

    def nearest(
        self, point: Point, t_start: float, t_end: float, k: int = 1
    ) -> list[tuple[int, float]]:
        """The k objects passing closest to ``point`` in the interval."""
        result = nearest_neighbours(
            self._require_frozen(), None, point, period=(t_start, t_end), k=k
        )
        return [(m.trajectory_id, m.dissim) for m in result.matches]

    def most_similar(
        self,
        query: Trajectory,
        k: int = 1,
        period: tuple[float, float] | None = None,
        exclude_ids: set[int] | frozenset[int] = frozenset(),
        use_index: bool = True,
    ) -> tuple[list[MSTMatch], SearchStats | None]:
        """k-MST search; ``use_index=False`` falls back to the linear
        scan (useful when the optimiser predicts poor pruning)."""
        if use_index:
            result = bfmst_search(
                self._require_frozen(), None, query, period=period, k=k,
                exclude_ids=exclude_ids,
            )
            return (result.matches, result.stats)
        result = linear_scan_kmst(
            None, self.dataset, query, period=period, k=k,
            exclude_ids=exclude_ids,
        )
        return (result.matches, None)

    def browse(
        self,
        query: Trajectory,
        period: tuple[float, float] | None = None,
        exclude_ids: set[int] | frozenset[int] = frozenset(),
    ):
        """Lazily yield matches in increasing DISSIM order (incremental
        distance browsing; stop consuming whenever satisfied)."""
        from .search import bfmst_browse

        return bfmst_browse(
            self._require_frozen(), query, period, exclude_ids=exclude_ids
        )

    def similar_to(
        self,
        object_id: int,
        t_start: float | None = None,
        t_end: float | None = None,
        k: int = 1,
    ) -> tuple[list[MSTMatch], SearchStats | None]:
        """Which objects moved most like ``object_id`` during the
        window (the object itself excluded)?"""
        source = self.dataset[object_id]
        lo = source.t_start if t_start is None else t_start
        hi = source.t_end if t_end is None else t_end
        query = source.sliced(lo, hi)
        return self.most_similar(
            query, k=k, period=(lo, hi), exclude_ids={object_id}
        )

    # ------------------------------------------------------------------
    # optimiser support
    # ------------------------------------------------------------------
    def histogram(self) -> SpatioTemporalHistogram:
        """The (lazily built, cached) selectivity histogram."""
        if self._histogram is None:
            r = self._histogram_resolution
            self._histogram = SpatioTemporalHistogram(self.dataset, r, r, r)
        return self._histogram

    def estimate_cost(
        self, query: Trajectory, t_start: float, t_end: float
    ) -> MSTCostEstimate:
        """Predicted k-MST effort for a window (see
        :class:`repro.selectivity.MSTCostEstimate`)."""
        return self.histogram().estimate_mst_cost(query, t_start, t_end)

    def estimate_range_selectivity(
        self, window: MBR2D, t_start: float, t_end: float
    ) -> float:
        return self.histogram().estimate_range_selectivity(
            window, t_start, t_end
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.dataset)

    def describe(self) -> dict:
        """A status snapshot (counts, index size, tree kind)."""
        info = {
            "objects": len(self.dataset),
            "segments": self.dataset.total_segments(),
            "tree": self._tree_kind,
            "frozen": self.frozen,
            "mutable": self.mutable,
        }
        if self.index is not None:
            info.update(
                index_nodes=self.index.num_nodes,
                index_mb=self.index.size_mb(),
                height=self.index.height,
            )
        return info
