"""repro.engine — batched query execution with multi-level caching.

See :mod:`repro.engine.engine` for the session model,
:mod:`repro.engine.cache` for the cache levels and
``docs/ENGINE.md`` for the narrative documentation.
"""

from .cache import DissimRefinementCache, LRUCache, MindistCache
from .engine import (
    SESSION_BUFFER_FRACTION,
    BatchResult,
    EngineConfig,
    QueryEngine,
    QueryRequest,
    query_key,
)
from .executor import SerialExecutor, ThreadedExecutor, make_executor

__all__ = [
    "QueryEngine",
    "EngineConfig",
    "QueryRequest",
    "BatchResult",
    "query_key",
    "SESSION_BUFFER_FRACTION",
    "LRUCache",
    "DissimRefinementCache",
    "MindistCache",
    "SerialExecutor",
    "ThreadedExecutor",
    "make_executor",
]
