"""repro.engine — batched query execution with multi-level caching.

See :mod:`repro.engine.engine` for the session model,
:mod:`repro.engine.cache` for the cache levels,
:mod:`repro.engine.planner` + :mod:`repro.engine.sharded` for
shard-parallel serving and ``docs/ENGINE.md`` / ``docs/SHARDING.md``
for the narrative documentation.
"""

from .cache import DissimRefinementCache, LRUCache, MindistCache
from .engine import (
    SESSION_BUFFER_FRACTION,
    BatchResult,
    EngineConfig,
    QueryEngine,
    QueryRequest,
    query_key,
)
from .executor import (
    ProcessPoolShardExecutor,
    SerialExecutor,
    ThreadedExecutor,
    make_executor,
)
from .live import LiveQueryEngine
from .planner import (
    QueryPlanner,
    ShardAnswer,
    ShardPlan,
    ShardSelection,
    budget_buffers,
)
from .sharded import ShardedQueryEngine

__all__ = [
    "QueryEngine",
    "ShardedQueryEngine",
    "LiveQueryEngine",
    "EngineConfig",
    "QueryRequest",
    "BatchResult",
    "query_key",
    "SESSION_BUFFER_FRACTION",
    "LRUCache",
    "DissimRefinementCache",
    "MindistCache",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessPoolShardExecutor",
    "make_executor",
    "QueryPlanner",
    "ShardSelection",
    "ShardPlan",
    "ShardAnswer",
    "budget_buffers",
]
