"""Batch executors: serial loop, thread pool, and process pool.

The threaded executor exists because a k-MST batch is dominated by
pure-Python geometry (MINDIST, trapezoid integrals) interleaved with
buffer lookups; threads overlap the latter and, on free-threaded
builds, the former.  The index must be treated as read-only for the
duration — the engine enables the buffer manager's lock before
spawning workers.  Request order is always preserved in the results.

The **process-pool executor** is the multicore path: each worker
process opens the shard's page file itself (mmap pages are shared by
the OS across workers, so resident memory stays flat) and communicates
only through the picklable work-unit messages of
:mod:`repro.engine.planner` — a :class:`~repro.engine.planner.ShardPlan`
in, a :class:`~repro.engine.planner.ShardAnswer` out.  Workers are
spawned once (forkserver where available, spawn otherwise) and keep a
warm per-process index cache keyed by shard path + generation
signature, so steady-state queries pay no open/teardown cost.

Executors are session objects: the pooled kinds create their pool
lazily on first use and **reuse it across batches** until ``close``
(the engine owns one executor per session and closes it with the
session).  All kinds are context managers.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence

__all__ = [
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessPoolShardExecutor",
    "make_executor",
]


class SerialExecutor:
    """Run the batch in submission order on the calling thread."""

    kind = "serial"

    def map(self, fn: Callable, requests: Sequence) -> list:
        return [fn(i, request) for i, request in enumerate(requests)]

    def close(self) -> None:
        """Nothing to release; present for interface symmetry."""

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ThreadedExecutor:
    """Run batches on one persistent thread pool (results stay in
    request order).

    ``max_workers=None`` picks ``min(8, cpu_count)``.  The pool is
    created on the first parallel :meth:`map` and reused by every
    subsequent call until :meth:`close`; a closed executor rebuilds the
    pool on next use.
    """

    kind = "thread"

    def __init__(self, max_workers: int | None = None):
        if max_workers is None:
            max_workers = min(8, os.cpu_count() or 1)
        self.max_workers = max(1, max_workers)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def map(self, fn: Callable, requests: Sequence) -> list:
        if len(requests) <= 1 or self.max_workers == 1:
            return SerialExecutor().map(fn, requests)
        pool = self._ensure_pool()
        return list(pool.map(fn, range(len(requests)), requests))

    def close(self) -> None:
        """Shut the pool down (idempotent); a later ``map`` re-creates
        it."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ThreadedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Per-worker-process warm index cache: ``shard_path -> (index,
#: signature)``.  Lives in the *worker's* module globals — the parent
#: process never populates it.  A plan whose signature no longer
#: matches the cached store forces a reopen; a mismatch against the
#: freshly opened file is a stale plan and an error.
_WORKER_INDEXES: dict = {}


def _worker_index(plan):
    """Open (or reuse) the shard index named by ``plan`` in this
    worker, validating the generation signature either way."""
    from ..exceptions import QueryError
    from ..index import load_index

    cached = _WORKER_INDEXES.get(plan.shard_path)
    if cached is not None:
        index, signature = cached
        if signature == plan.signature:
            return index
        # The store was rebuilt: drop the stale mapping and reopen.
        del _WORKER_INDEXES[plan.shard_path]
        if index.signatures is not None:
            index.signatures.close()
        index.pagefile.close()
    index = load_index(
        plan.shard_path,
        plan.buffer_fraction,
        plan.buffer_max_pages,
        backend=plan.backend,
    )
    signature = (index.num_nodes, index.num_entries, index.root_page)
    if signature != plan.signature:
        if index.signatures is not None:
            index.signatures.close()
        index.pagefile.close()
        raise QueryError(
            f"shard {plan.shard_id} at {plan.shard_path} has signature "
            f"{signature}, plan expected {plan.signature} — the store "
            f"changed since the plan was built"
        )
    _WORKER_INDEXES[plan.shard_path] = (index, signature)
    return index


def _execute_shard_plan(plan):
    """Search one shard in a worker process.

    This is the module-level function the process pool imports by
    reference.  It starts from a **fresh** :class:`MetricsRegistry`
    (nothing inherited from the parent), so the counters it ships back
    are per-call deltas by construction; the absolute
    ``time.monotonic()`` deadline in the plan is checked up front and
    enforced on the MINDIST hot path (the monotonic clock is
    system-wide on Linux, so the parent's deadline is meaningful
    here).  Returns a :class:`~repro.engine.planner.ShardAnswer`.
    """
    from ..distance.kernels import make_segment_dissim_batch
    from ..exceptions import DeadlineExceeded
    from ..index.mindist import make_mindist_batch, mindist
    from ..obs import MetricsRegistry, query_trace
    from ..search.bfmst import (
        _TopK,
        _search_shard,
        _validate,
        candidate_records,
        make_signature_filter,
    )
    from ..search.results import SearchStats
    from .engine import _deadline_guard
    from .planner import ShardAnswer

    if plan.deadline is not None and time.monotonic() >= plan.deadline:
        raise DeadlineExceeded(
            f"deadline expired before shard {plan.shard_id} started"
        )
    index = _worker_index(plan)
    spec = plan.spec
    t_start, t_end = _validate(spec.query, spec.period, spec.k)
    opts = spec.options
    exclude_ids = frozenset(opts.get("exclude_ids") or ())

    mindist_fn = None
    mindist_batch_fn = None
    segment_dissim_batch_fn = None
    if plan.kernels is not None:
        mindist_batch_fn = make_mindist_batch(plan.kernels)
        segment_dissim_batch_fn = make_segment_dissim_batch(plan.kernels)
    if plan.deadline is not None:
        mindist_fn = _deadline_guard(mindist, plan.deadline)
        if mindist_batch_fn is not None:
            mindist_batch_fn = _deadline_guard(mindist_batch_fn, plan.deadline)

    # The sidecar (auto-attached by load_index) feeds a worker-local
    # signature filter; ``plan.filter`` is the parent-resolved mode.
    sig_filter = make_signature_filter(
        index,
        spec.query,
        t_start,
        t_end,
        plan.vmax,
        getattr(plan, "filter", "auto"),
        plan.kernels,
    )

    registry = MetricsRegistry()
    stats = SearchStats(total_nodes=index.num_nodes)
    with query_trace(
        index, name=f"shard-{plan.shard_id}", registry=registry
    ):
        completed, valid = _search_shard(
            index,
            spec.query,
            t_start,
            t_end,
            plan.vmax,
            opts.get("use_heuristic1", True),
            opts.get("use_heuristic2", True),
            _TopK(spec.k),
            exclude_ids,
            stats,
            mindist_fn=mindist_fn,
            mindist_batch_fn=mindist_batch_fn,
            segment_dissim_batch_fn=segment_dissim_batch_fn,
            sig_filter=sig_filter,
        )
        records = candidate_records(completed, valid, plan.vmax)
    # The traversal's heap high-water lives in a worker-side gauge;
    # carry it in the stats dict so the parent can surface it.
    stats.heap_high_water = int(registry.gauge("index.heap_high_water").value)
    return ShardAnswer.from_records(
        plan.shard_id,
        plan.signature,
        records,
        stats.as_dict(),
        dict(registry.counters),
    )


class ProcessPoolShardExecutor:
    """Run :class:`~repro.engine.planner.ShardPlan` work units on a
    persistent pool of worker processes.

    ``max_workers=None`` picks ``min(8, cpu_count)``.  Workers are
    created lazily on the first :meth:`run_plans` with the forkserver
    start method (falling back to spawn) and live until :meth:`close`;
    each keeps a warm per-process index cache (see
    :func:`_execute_shard_plan`), so only the first query against a
    shard pays the open cost.  ``map`` — the in-process shard-callable
    convention of the other executors — intentionally degrades to a
    serial loop: closures over live engines cannot cross a process
    boundary, and the sharded engine routes plan-shaped work through
    :meth:`run_plans` instead.
    """

    kind = "process"

    def __init__(self, max_workers: int | None = None):
        if max_workers is None:
            max_workers = min(8, os.cpu_count() or 1)
        self.max_workers = max(1, max_workers)
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            try:
                ctx = multiprocessing.get_context("forkserver")
            except ValueError:  # pragma: no cover - platform-dependent
                ctx = multiprocessing.get_context("spawn")
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=ctx
            )
        return self._pool

    def run_plans(self, plans: Sequence) -> list:
        """Execute the plans (one per shard) and return their
        :class:`~repro.engine.planner.ShardAnswer` s in plan order."""
        if not plans:
            return []
        pool = self._ensure_pool()
        return list(pool.map(_execute_shard_plan, plans))

    def map(self, fn: Callable, requests: Sequence) -> list:
        return SerialExecutor().map(fn, requests)

    def close(self) -> None:
        """Shut the worker pool down (idempotent); a later
        :meth:`run_plans` re-creates it."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ProcessPoolShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def make_executor(kind: str, max_workers: int | None = None):
    """``"serial"``, ``"thread"`` or ``"process"`` → executor instance."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadedExecutor(max_workers)
    if kind == "process":
        return ProcessPoolShardExecutor(max_workers)
    raise ValueError(f"unknown executor kind {kind!r} (serial|thread|process)")
