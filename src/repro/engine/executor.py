"""Batch executors: serial loop and thread pool over a read-only index.

The threaded executor exists because a k-MST batch is dominated by
pure-Python geometry (MINDIST, trapezoid integrals) interleaved with
buffer lookups; threads overlap the latter and, on free-threaded
builds, the former.  The index must be treated as read-only for the
duration — the engine enables the buffer manager's lock before
spawning workers.  Request order is always preserved in the results.

Executors are session objects: a :class:`ThreadedExecutor` creates its
pool lazily on first use and **reuses it across batches** until
:meth:`~ThreadedExecutor.close` (the engine owns one executor per
session and closes it with the session).  Both kinds are context
managers.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

__all__ = ["SerialExecutor", "ThreadedExecutor", "make_executor"]


class SerialExecutor:
    """Run the batch in submission order on the calling thread."""

    kind = "serial"

    def map(self, fn: Callable, requests: Sequence) -> list:
        return [fn(i, request) for i, request in enumerate(requests)]

    def close(self) -> None:
        """Nothing to release; present for interface symmetry."""

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ThreadedExecutor:
    """Run batches on one persistent thread pool (results stay in
    request order).

    ``max_workers=None`` picks ``min(8, cpu_count)``.  The pool is
    created on the first parallel :meth:`map` and reused by every
    subsequent call until :meth:`close`; a closed executor rebuilds the
    pool on next use.
    """

    kind = "thread"

    def __init__(self, max_workers: int | None = None):
        if max_workers is None:
            max_workers = min(8, os.cpu_count() or 1)
        self.max_workers = max(1, max_workers)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def map(self, fn: Callable, requests: Sequence) -> list:
        if len(requests) <= 1 or self.max_workers == 1:
            return SerialExecutor().map(fn, requests)
        pool = self._ensure_pool()
        return list(pool.map(fn, range(len(requests)), requests))

    def close(self) -> None:
        """Shut the pool down (idempotent); a later ``map`` re-creates
        it."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ThreadedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def make_executor(kind: str, max_workers: int | None = None):
    """``"serial"`` or ``"thread"`` → executor instance."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadedExecutor(max_workers)
    raise ValueError(f"unknown executor kind {kind!r} (serial|thread)")
