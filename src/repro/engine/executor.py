"""Batch executors: serial loop and thread pool over a read-only index.

The threaded executor exists because a k-MST batch is dominated by
pure-Python geometry (MINDIST, trapezoid integrals) interleaved with
buffer lookups; threads overlap the latter and, on free-threaded
builds, the former.  The index must be treated as read-only for the
duration — the engine enables the buffer manager's lock before
spawning workers.  Request order is always preserved in the results.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

__all__ = ["SerialExecutor", "ThreadedExecutor", "make_executor"]


class SerialExecutor:
    """Run the batch in submission order on the calling thread."""

    kind = "serial"

    def map(self, fn: Callable, requests: Sequence) -> list:
        return [fn(i, request) for i, request in enumerate(requests)]


class ThreadedExecutor:
    """Run the batch on a thread pool (results stay in request order).

    ``max_workers=None`` picks ``min(8, cpu_count)``.  A pool is
    created per batch, so the executor object itself holds no OS
    resources between calls.
    """

    kind = "thread"

    def __init__(self, max_workers: int | None = None):
        if max_workers is None:
            max_workers = min(8, os.cpu_count() or 1)
        self.max_workers = max(1, max_workers)

    def map(self, fn: Callable, requests: Sequence) -> list:
        if len(requests) <= 1 or self.max_workers == 1:
            return SerialExecutor().map(fn, requests)
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(fn, range(len(requests)), requests))


def make_executor(kind: str, max_workers: int | None = None):
    """``"serial"`` or ``"thread"`` → executor instance."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadedExecutor(max_workers)
    raise ValueError(f"unknown executor kind {kind!r} (serial|thread)")
