"""The sharded query engine: planner + per-shard execution contexts.

A :class:`ShardedQueryEngine` fronts a
:class:`~repro.sharding.ShardedIndex` the way a
:class:`~repro.engine.QueryEngine` fronts one tree:

* a **planning layer** (:class:`~repro.engine.planner.QueryPlanner`)
  selects the shards whose extents can intersect the query and splits
  one global buffer budget across the shard pools
  (:func:`~repro.engine.planner.budget_buffers`),
* an **execution layer** keeps one per-shard :class:`QueryEngine`
  context (MINDIST / segment-DISSIM caches, pinned upper levels,
  per-worker heap scratch) and drives the selected shards through the
  session's executor — serially or on the shared thread pool,
* the cross-shard k-MST itself happens in
  :func:`repro.search.bfmst.bfmst_search_sharded`: all selected shards
  advance under one shared k-th-best bound, then merge into a single
  ranking/refinement step that uses this engine's *global* refinement
  cache.

The engine satisfies the unified search API's context protocol
(``.index``, ``.dataset``, ``search_hooks``), so every
:mod:`repro.search.api` entry point accepts it unchanged.
"""

from __future__ import annotations

import time
from pathlib import Path

from ..exceptions import DeadlineExceeded, QueryError
from ..obs import MetricsRegistry
from ..obs import state as _obs
from ..search import api as _api
from ..search.results import SearchResult
from ..sharding import ShardedIndex, load_sharded_index
from ..trajectory import Trajectory, TrajectoryDataset, read_csv, read_json
from .cache import DissimRefinementCache
from .engine import (
    SESSION_BUFFER_FRACTION,
    BatchResult,
    EngineConfig,
    QueryEngine,
    QueryRequest,
    query_key,
)
from .executor import make_executor
from .planner import QueryPlanner, budget_buffers

__all__ = ["ShardedQueryEngine"]


class ShardedQueryEngine:
    """Session owner for a sharded index, executing query batches.

    Use as a context manager, or call :meth:`close` to release the
    shard engines' pins and the thread pool::

        with ShardedQueryEngine(sharded_index, dataset) as engine:
            batch = engine.run_batch([
                QueryRequest("mst", query, period, k=5),
            ])
    """

    def __init__(
        self,
        index: ShardedIndex,
        dataset: TrajectoryDataset | None = None,
        *,
        config: EngineConfig | None = None,
        buffer_fraction: float = SESSION_BUFFER_FRACTION,
        buffer_max_pages: int = 1000,
    ):
        self.index = index
        self.dataset = dataset
        self.config = config or EngineConfig()
        self.metrics = MetricsRegistry()
        # Global memory budget first, so the shard engines pin their
        # upper levels into correctly sized pools.
        self.buffer_capacities = budget_buffers(
            index.shards, buffer_fraction, buffer_max_pages
        )
        # Per-shard execution contexts run serially *inside* a shard —
        # parallelism happens across shards through this engine's
        # executor, never nested.
        shard_config = EngineConfig(
            dissim_cache_size=self.config.dissim_cache_size,
            mindist_cache_scopes=self.config.mindist_cache_scopes,
            segdissim_cache_scopes=self.config.segdissim_cache_scopes,
            pin_upper_levels=self.config.pin_upper_levels,
            executor="serial",
            kernels=self.config.kernels,
        )
        self.shard_engines = [
            QueryEngine(shard, None, config=shard_config)
            for shard in index.shards
        ]
        self.planner = QueryPlanner(index.extents())
        # Refinement happens once, globally, after the cross-shard
        # merge — so the refinement cache lives here, not per shard.
        self.dissim_cache = DissimRefinementCache(
            max(1, self.config.dissim_cache_size)
        )
        self.executor = make_executor(
            self.config.executor, self.config.max_workers
        )
        if self.executor.kind == "thread":
            self.enable_thread_safety()
        self._closed = False
        self.metrics.inc("engine.sessions")
        self.metrics.inc("engine.shards", len(index.shards))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        manifest_dir: str | Path,
        dataset_path: str | Path | None = None,
        *,
        config: EngineConfig | None = None,
        buffer_fraction: float = SESSION_BUFFER_FRACTION,
        buffer_max_pages: int = 1000,
        backend: str = "disk",
        verify: bool = False,
    ) -> "ShardedQueryEngine":
        """Open a saved sharded index directory (and optionally its
        dataset) for querying.  ``backend``/``verify`` are forwarded to
        the per-shard :func:`~repro.index.persistence.load_index`."""
        index = load_sharded_index(
            manifest_dir,
            buffer_fraction,
            buffer_max_pages,
            backend=backend,
            verify=verify,
        )
        dataset = None
        if dataset_path is not None:
            dataset_path = Path(dataset_path)
            reader = read_json if dataset_path.suffix == ".json" else read_csv
            dataset = reader(dataset_path)
        return cls(
            index,
            dataset,
            config=config,
            buffer_fraction=buffer_fraction,
            buffer_max_pages=buffer_max_pages,
        )

    def enable_thread_safety(self) -> None:
        """Lock every shard's buffer manager — required before any
        threaded execution touches the shard pools."""
        for shard in self.index.shards:
            shard.buffer.enable_thread_safety()

    def close(self) -> None:
        """Release every shard engine's pins and the session executor."""
        if not self._closed:
            for engine in self.shard_engines:
                engine.close()
            self.executor.close()
            self._closed = True

    def __enter__(self) -> "ShardedQueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # unified-API execution context protocol
    # ------------------------------------------------------------------
    def search_hooks(self, query, period) -> dict:
        """Plan the shard fan-out for one query and bundle the selected
        shards' cache hooks for
        :func:`~repro.search.bfmst.bfmst_search_sharded`."""
        plan = self.planner.plan(query, period)
        self.metrics.inc("engine.planner.plans")
        self.metrics.inc("engine.planner.shards_selected", len(plan.selected))
        self.metrics.inc("engine.planner.shards_pruned", len(plan.pruned))
        shard_hooks: dict[int, dict] = {}
        for shard_id in plan.selected:
            hooks = self.shard_engines[shard_id].search_hooks(query, period)
            # The merge-step refinement uses the global cache below.
            hooks.pop("refinement_cache", None)
            shard_hooks[shard_id] = hooks
        out: dict = {"selected": plan.selected, "shard_hooks": shard_hooks}
        if self.config.kernels is not None:
            # Per-shard batch fns are already in shard_hooks; this makes
            # the mode visible to the cross-shard driver for any shard
            # hook bundle that lacks them.
            out["kernels"] = self.config.kernels
        if isinstance(query, Trajectory) and self.config.dissim_cache_size > 0:
            span = tuple(period) if period is not None else (
                query.t_start,
                query.t_end,
            )
            out["refinement_cache"] = self.dissim_cache.view(
                query_key(query), span
            )
        if self.executor.kind == "thread":
            out["shard_executor"] = self.executor
        return out

    def signature(self) -> tuple:
        """Structural signature of the whole sharded collection — the
        tuple of per-shard engine signatures.  Any shard changing shape
        changes the collection signature, so serving-tier result caches
        invalidate collection-wide."""
        return tuple(engine.signature() for engine in self.shard_engines)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self, request: QueryRequest, *, deadline: float | None = None
    ) -> SearchResult:
        """Run one request through the planner + shard contexts.

        ``deadline`` (absolute ``time.monotonic()``) or the request's
        own ``deadline_ms`` budget bounds execution; the per-shard
        engines' MINDIST guards enforce it mid-query on whichever
        thread each shard runs (see
        :meth:`QueryEngine.execute <repro.engine.QueryEngine.execute>`).
        """
        if self._closed:
            raise QueryError("engine is closed")
        kind = request.canonical_kind()
        if deadline is None and request.deadline_ms is not None:
            deadline = time.monotonic() + request.deadline_ms / 1000.0
        if deadline is not None and time.monotonic() >= deadline:
            self.metrics.inc("engine.deadline_misses")
            raise DeadlineExceeded(
                f"deadline expired before the {kind} query started"
            )
        self.metrics.inc("engine.queries")
        self.metrics.inc(f"engine.queries.{kind}")
        if kind in ("linear_scan", "continuous_nn", "time_relaxed"):
            self._require_dataset(kind)
        # Shard hooks are built on the calling thread (inside
        # search_hooks), so setting the shard engines' thread-local
        # deadline here lets the guard closures capture it even though
        # the hooks later run on pool threads.
        for engine in self.shard_engines:
            engine._local.deadline = deadline
        try:
            result = _api.execute_spec(self, None, request)
        except DeadlineExceeded:
            self.metrics.inc("engine.deadline_misses")
            raise
        finally:
            for engine in self.shard_engines:
                engine._local.deadline = None
        if kind == "mst":
            self._record_shard_stats(result)
        return result

    def run_batch(self, requests: list[QueryRequest]) -> BatchResult:
        """Execute the batch and return answers in request order.

        Requests run one after another; the parallelism (when the
        session is threaded) is *per query, across shards* — nesting
        batch-level and shard-level pools would deadlock a bounded pool
        and help nothing on a shared one.
        """
        if self._closed:
            raise QueryError("engine is closed")
        before = self.cache_counters()
        t0 = time.perf_counter()
        results = [self.execute(request) for request in requests]
        wall = time.perf_counter() - t0
        after = self.cache_counters()
        self._publish_cache_deltas(before, after)
        self.metrics.inc("engine.batches")
        qps = len(requests) / wall if wall > 0 else float("inf")
        return BatchResult(
            results=results,
            wall_time_s=wall,
            queries_per_sec=qps,
            executor=self.executor.kind,
            cache_counters=after,
            metrics=dict(self.metrics.counters),
        )

    def _require_dataset(self, kind: str) -> TrajectoryDataset:
        if self.dataset is None:
            raise QueryError(
                f"{kind} queries need the engine to own a dataset "
                f"(pass one to ShardedQueryEngine(...) or "
                f".open(dataset_path=...))"
            )
        return self.dataset

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _record_shard_stats(self, result: SearchResult) -> None:
        """Mirror the per-shard breakdown of one k-MST answer into the
        engine registry (shard-labelled counters)."""
        for row in result.stats.extra.get("per_shard", ()):
            label = row["shard"]
            if row.get("pruned"):
                self.metrics.inc(f"engine.shard.{label}.pruned")
                continue
            self.metrics.inc(f"engine.shard.{label}.queries")
            self.metrics.inc(
                f"engine.shard.{label}.node_accesses", row["node_accesses"]
            )
            self.metrics.inc(
                f"engine.shard.{label}.entries_processed",
                row["entries_processed"],
            )

    def cache_counters(self) -> dict[str, int]:
        """Hit/miss/eviction counters summed over the shard engines,
        plus the global refinement cache and the pooled buffer totals."""
        out: dict[str, int] = dict(self.dissim_cache.counters())
        hits = misses = pinned = 0
        for engine in self.shard_engines:
            for name, value in engine.mindist_cache.counters().items():
                out[name] = out.get(name, 0) + value
            for name, value in engine.segdissim_cache.counters().items():
                out[name] = out.get(name, 0) + value
            io = engine.index.buffer.stats
            hits += io.buffer_hits
            misses += io.buffer_misses
            pinned += len(engine.index.buffer.pinned_pages)
        out["engine.buffer.hits"] = hits
        out["engine.buffer.misses"] = misses
        out["engine.buffer.pinned"] = pinned
        return out

    def _publish_cache_deltas(self, before: dict, after: dict) -> None:
        trace = _obs.ACTIVE
        for name, value in after.items():
            delta = value - before.get(name, 0)
            if delta <= 0 or name.endswith((".size", ".scopes", ".pinned")):
                continue
            self.metrics.inc(name, delta)
            if trace is not None:
                trace.registry.inc(name, delta)

    def per_shard_summary(self) -> list[dict]:
        """One row per shard for ``repro shard inspect`` / ``repro
        stats --per-shard``."""
        rows = []
        for shard_id, shard in enumerate(self.index.shards):
            rows.append(
                {
                    "shard": shard_id,
                    "num_nodes": shard.num_nodes,
                    "num_entries": shard.num_entries,
                    "trajectories": len(shard.trajectory_ids),
                    "buffer_capacity": shard.buffer.capacity,
                    "queries": self.metrics.value(
                        f"engine.shard.{shard_id}.queries"
                    ),
                    "node_accesses": self.metrics.value(
                        f"engine.shard.{shard_id}.node_accesses"
                    ),
                    "pruned": self.metrics.value(
                        f"engine.shard.{shard_id}.pruned"
                    ),
                }
            )
        return rows
