"""The sharded query engine: planner + per-shard execution contexts.

A :class:`ShardedQueryEngine` fronts a
:class:`~repro.sharding.ShardedIndex` the way a
:class:`~repro.engine.QueryEngine` fronts one tree:

* a **planning layer** (:class:`~repro.engine.planner.QueryPlanner`)
  selects the shards whose extents can intersect the query and splits
  one global buffer budget across the shard pools
  (:func:`~repro.engine.planner.budget_buffers`),
* an **execution layer** keeps one per-shard :class:`QueryEngine`
  context (MINDIST / segment-DISSIM caches, pinned upper levels,
  per-worker heap scratch) and drives the selected shards through the
  session's executor — serially or on the shared thread pool,
* the cross-shard k-MST itself happens in
  :func:`repro.search.bfmst.bfmst_search_sharded`: all selected shards
  advance under one shared k-th-best bound, then merge into a single
  ranking/refinement step that uses this engine's *global* refinement
  cache.

The engine satisfies the unified search API's context protocol
(``.index``, ``.dataset``, ``search_hooks``), so every
:mod:`repro.search.api` entry point accepts it unchanged.
"""

from __future__ import annotations

import time
from pathlib import Path

from ..distance.kernels import resolve_kernels
from ..exceptions import DeadlineExceeded, QueryError
from ..obs import MetricsRegistry
from ..obs import state as _obs
from ..search import api as _api
from ..search import bfmst as _bfmst
from ..search.results import SearchResult, SearchStats
from ..search.spec import QuerySpec
from ..sharding import ShardedIndex, load_sharded_index
from ..sharding.persistence import read_manifest
from ..trajectory import Trajectory, TrajectoryDataset, read_csv, read_json
from .cache import DissimRefinementCache
from .engine import (
    SESSION_BUFFER_FRACTION,
    BatchResult,
    EngineConfig,
    QueryEngine,
    QueryRequest,
    query_key,
)
from .executor import make_executor
from .planner import QueryPlanner, ShardPlan, budget_buffers

__all__ = ["ShardedQueryEngine"]


class ShardedQueryEngine:
    """Session owner for a sharded index, executing query batches.

    Use as a context manager, or call :meth:`close` to release the
    shard engines' pins and the thread pool::

        with ShardedQueryEngine(sharded_index, dataset) as engine:
            batch = engine.run_batch([
                QueryRequest("mst", query, period, k=5),
            ])
    """

    def __init__(
        self,
        index: ShardedIndex,
        dataset: TrajectoryDataset | None = None,
        *,
        config: EngineConfig | None = None,
        buffer_fraction: float = SESSION_BUFFER_FRACTION,
        buffer_max_pages: int = 1000,
        manifest_dir: str | Path | None = None,
        backend: str = "disk",
    ):
        self.index = index
        self.dataset = dataset
        self.config = config or EngineConfig()
        self.metrics = MetricsRegistry()
        self.backend = backend
        self._buffer_fraction = buffer_fraction
        self._buffer_max_pages = buffer_max_pages
        # The process-pool path fans out *paths*, not objects: workers
        # reopen the shard page files themselves, so the engine must
        # know where they live.  Only engines opened from a manifest
        # directory can use executor="process".
        self.manifest_dir = str(manifest_dir) if manifest_dir is not None else None
        if manifest_dir is not None:
            directory = Path(manifest_dir)
            manifest = read_manifest(directory)
            self.shard_paths: list[str] | None = [
                str(directory / record["file"])
                for record in manifest["shards"]
            ]
        else:
            self.shard_paths = None
        if (self.config.executor == "process"
                and self.shard_paths is None):
            raise QueryError(
                "executor=\"process\" needs shard page-file paths; open "
                "the engine from a manifest directory "
                "(ShardedQueryEngine.open(...)) or pass manifest_dir="
            )
        # Global memory budget first, so the shard engines pin their
        # upper levels into correctly sized pools.
        self.buffer_capacities = budget_buffers(
            index.shards, buffer_fraction, buffer_max_pages
        )
        # Per-shard execution contexts run serially *inside* a shard —
        # parallelism happens across shards through this engine's
        # executor, never nested.
        shard_config = EngineConfig(
            dissim_cache_size=self.config.dissim_cache_size,
            mindist_cache_scopes=self.config.mindist_cache_scopes,
            segdissim_cache_scopes=self.config.segdissim_cache_scopes,
            pin_upper_levels=self.config.pin_upper_levels,
            executor="serial",
            kernels=self.config.kernels,
        )
        self.shard_engines = [
            QueryEngine(shard, None, config=shard_config)
            for shard in index.shards
        ]
        self.planner = QueryPlanner(index.extents())
        # Refinement happens once, globally, after the cross-shard
        # merge — so the refinement cache lives here, not per shard.
        self.dissim_cache = DissimRefinementCache(
            max(1, self.config.dissim_cache_size)
        )
        self.executor = make_executor(
            self.config.executor, self.config.max_workers
        )
        if self.executor.kind == "thread":
            self.enable_thread_safety()
        self._closed = False
        self.metrics.inc("engine.sessions")
        self.metrics.inc("engine.shards", len(index.shards))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        manifest_dir: str | Path,
        dataset_path: str | Path | None = None,
        *,
        config: EngineConfig | None = None,
        buffer_fraction: float = SESSION_BUFFER_FRACTION,
        buffer_max_pages: int = 1000,
        backend: str = "disk",
        verify: bool = False,
    ) -> "ShardedQueryEngine":
        """Open a saved sharded index directory (and optionally its
        dataset) for querying.  ``backend``/``verify`` are forwarded to
        the per-shard :func:`~repro.index.persistence.load_index`."""
        index = load_sharded_index(
            manifest_dir,
            buffer_fraction,
            buffer_max_pages,
            backend=backend,
            verify=verify,
        )
        dataset = None
        if dataset_path is not None:
            dataset_path = Path(dataset_path)
            reader = read_json if dataset_path.suffix == ".json" else read_csv
            dataset = reader(dataset_path)
        return cls(
            index,
            dataset,
            config=config,
            buffer_fraction=buffer_fraction,
            buffer_max_pages=buffer_max_pages,
            manifest_dir=manifest_dir,
            backend=backend,
        )

    def enable_thread_safety(self) -> None:
        """Lock every shard's buffer manager — required before any
        threaded execution touches the shard pools."""
        for shard in self.index.shards:
            shard.buffer.enable_thread_safety()

    def close(self) -> None:
        """Release every shard engine's pins and the session executor."""
        if not self._closed:
            for engine in self.shard_engines:
                engine.close()
            self.executor.close()
            self._closed = True

    def __enter__(self) -> "ShardedQueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # unified-API execution context protocol
    # ------------------------------------------------------------------
    def search_hooks(self, query, period) -> dict:
        """Plan the shard fan-out for one query and bundle the selected
        shards' cache hooks for
        :func:`~repro.search.bfmst.bfmst_search_sharded`."""
        plan = self.planner.plan(query, period)
        self.metrics.inc("engine.planner.plans")
        self.metrics.inc("engine.planner.shards_selected", len(plan.selected))
        self.metrics.inc("engine.planner.shards_pruned", len(plan.pruned))
        shard_hooks: dict[int, dict] = {}
        for shard_id in plan.selected:
            hooks = self.shard_engines[shard_id].search_hooks(query, period)
            # The merge-step refinement uses the global cache below.
            hooks.pop("refinement_cache", None)
            shard_hooks[shard_id] = hooks
        out: dict = {
            "selected": plan.selected,
            "shard_hooks": shard_hooks,
            "filter": self.config.filter,
        }
        if self.config.kernels is not None:
            # Per-shard batch fns are already in shard_hooks; this makes
            # the mode visible to the cross-shard driver for any shard
            # hook bundle that lacks them.
            out["kernels"] = self.config.kernels
        if isinstance(query, Trajectory) and self.config.dissim_cache_size > 0:
            span = tuple(period) if period is not None else (
                query.t_start,
                query.t_end,
            )
            out["refinement_cache"] = self.dissim_cache.view(
                query_key(query), span
            )
        if self.executor.kind == "thread":
            out["shard_executor"] = self.executor
        return out

    def signature(self) -> tuple:
        """Structural signature of the whole sharded collection — the
        tuple of per-shard engine signatures.  Any shard changing shape
        changes the collection signature, so serving-tier result caches
        invalidate collection-wide."""
        return tuple(engine.signature() for engine in self.shard_engines)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self, request: QueryRequest, *, deadline: float | None = None
    ) -> SearchResult:
        """Run one request through the planner + shard contexts.

        ``deadline`` (absolute ``time.monotonic()``) or the request's
        own ``deadline_ms`` budget bounds execution; the per-shard
        engines' MINDIST guards enforce it mid-query on whichever
        thread each shard runs (see
        :meth:`QueryEngine.execute <repro.engine.QueryEngine.execute>`).
        """
        if self._closed:
            raise QueryError("engine is closed")
        kind = request.canonical_kind()
        if deadline is None and request.deadline_ms is not None:
            deadline = time.monotonic() + request.deadline_ms / 1000.0
        if deadline is not None and time.monotonic() >= deadline:
            self.metrics.inc("engine.deadline_misses")
            raise DeadlineExceeded(
                f"deadline expired before the {kind} query started"
            )
        self.metrics.inc("engine.queries")
        self.metrics.inc(f"engine.queries.{kind}")
        if kind in ("linear_scan", "continuous_nn", "time_relaxed"):
            self._require_dataset(kind)
        if kind == "mst" and self.executor.kind == "process":
            # The multicore path: plans out, answers back.  Other kinds
            # (dataset scans, point/range lookups) stay in-process —
            # they are planner-light and not worth a process hop.
            try:
                result = self._execute_mst_process(request, deadline)
            except DeadlineExceeded:
                self.metrics.inc("engine.deadline_misses")
                raise
            self._record_shard_stats(result)
            return result
        # Shard hooks are built on the calling thread (inside
        # search_hooks), so setting the shard engines' thread-local
        # deadline here lets the guard closures capture it even though
        # the hooks later run on pool threads.
        for engine in self.shard_engines:
            engine._local.deadline = deadline
        try:
            result = _api.execute_spec(self, None, request)
        except DeadlineExceeded:
            self.metrics.inc("engine.deadline_misses")
            raise
        finally:
            for engine in self.shard_engines:
                engine._local.deadline = None
        if kind == "mst":
            self._record_shard_stats(result)
        return result

    #: The option keys the mst entry point accepts — the process path
    #: validates against them so an unknown option raises the same
    #: ``TypeError`` the in-process keyword dispatch would.
    _MST_OPTIONS = frozenset(
        {
            "vmax",
            "use_heuristic1",
            "use_heuristic2",
            "refine",
            "exclude_ids",
            "filter",
        }
    )

    def _execute_mst_process(
        self, request: QueryRequest, deadline: float | None
    ) -> SearchResult:
        """Fan one k-MST query out to the process pool.

        Builds one self-contained :class:`~repro.engine.planner.ShardPlan`
        per selected shard (spec + shard path + generation signature +
        parent-resolved ``vmax``/kernels + the absolute deadline), runs
        them through :meth:`ProcessPoolShardExecutor.run_plans
        <repro.engine.executor.ProcessPoolShardExecutor.run_plans>`,
        validates every answer's generation signature against the open
        store, and merges through the same
        :func:`~repro.search.bfmst.merge_shard_records` the in-process
        path uses — so the answer is byte-identical to the serial
        executor by construction.  Worker counter deltas are folded
        into the active trace registry *before* the merge so the
        :class:`~repro.search.SearchStats` enrichment and per-shard
        breakdown stay executor-agnostic.
        """
        query = request.query
        if not isinstance(query, Trajectory):
            raise QueryError("mst queries take a trajectory query object")
        period = request.period
        k = request.k
        opts = request.options
        unknown = set(opts) - self._MST_OPTIONS
        if unknown:
            raise TypeError(
                f"bfmst_search() got unexpected options {sorted(unknown)}"
            )
        t_start, t_end = _bfmst._validate(query, period, k)
        vmax = opts.get("vmax")
        if vmax is None:
            vmax = self.index.max_speed + query.max_speed()
        if vmax < 0.0:
            raise QueryError(f"negative vmax {vmax}")
        filter_mode = opts.get("filter", self.config.filter)
        if filter_mode not in _bfmst.FILTER_MODES:
            raise QueryError(
                f"filter must be one of {list(_bfmst.FILTER_MODES)}, "
                f"got {filter_mode!r}"
            )

        selection = self.planner.plan(query, period)
        self.metrics.inc("engine.planner.plans")
        self.metrics.inc(
            "engine.planner.shards_selected", len(selection.selected)
        )
        self.metrics.inc("engine.planner.shards_pruned", len(selection.pruned))

        kernels_mode = (
            self.config.kernels
            if self.config.kernels is not None
            else request.kernels
        )
        kernels = (
            resolve_kernels(kernels_mode) if kernels_mode is not None else None
        )
        plans = [
            ShardPlan(
                spec=request,
                shard_id=shard_id,
                shard_path=self.shard_paths[shard_id],
                signature=self.shard_engines[shard_id].signature(),
                vmax=vmax,
                deadline=deadline,
                backend=self.backend,
                kernels=kernels,
                filter=filter_mode,
                buffer_fraction=self._buffer_fraction,
                buffer_max_pages=self._buffer_max_pages,
            )
            for shard_id in selection.selected
        ]
        answers = self.executor.run_plans(plans)

        # Parent-side signature filters (over the parent's own mmapped
        # sidecars) drive the merge step's refinement skip — the same
        # bounds the workers used, so the process hop changes nothing.
        shard_filters = []
        for shard_id in selection.selected:
            filt = _bfmst.make_signature_filter(
                self.index.shards[shard_id],
                query,
                t_start,
                t_end,
                vmax,
                filter_mode,
                kernels,
            )
            if filt is not None:
                shard_filters.append(filt)

        def merged_sig_lookup(tid: int):
            for filt in shard_filters:
                if tid in filt.sigs:
                    return filt.bound(tid)
            return None

        outcomes = []
        for answer in answers:
            self._validate_answer(answer)
            outcomes.append(
                (
                    answer.shard_id,
                    answer.to_records(),
                    SearchStats.from_dict(answer.stats),
                )
            )

        stats = SearchStats(total_nodes=self.index.num_nodes)
        trace = _obs.ACTIVE
        before = None
        if trace is not None and trace.registry.enabled:
            before = _bfmst._counters_before(trace)
            reg = trace.registry
            for answer in answers:
                for name, value in answer.counters.items():
                    if value:
                        reg.inc(name, value)
                high_water = answer.stats.get("heap_high_water", 0)
                if high_water:
                    reg.gauge("index.heap_high_water").record_max(high_water)
        else:
            trace = None

        refinement_cache = None
        if self.config.dissim_cache_size > 0:
            span = tuple(period) if period is not None else (
                query.t_start,
                query.t_end,
            )
            refinement_cache = self.dissim_cache.view(query_key(query), span)

        matches = _bfmst.merge_shard_records(
            outcomes,
            selected=selection.selected,
            shard_nodes=[shard.num_nodes for shard in self.index.shards],
            query=query,
            k=k,
            refine=opts.get("refine", True),
            stats=stats,
            refinement_cache=refinement_cache,
            trace=trace,
            before=before,
            sig_lookup=merged_sig_lookup if shard_filters else None,
        )
        result = SearchResult("bfmst", matches, stats)
        # Mirror the unified API's result envelope: the echoed spec is
        # rebuilt with the same option normalisation the in-process
        # dispatch applies.
        echo_options: dict = {}
        if opts.get("vmax") is not None:
            echo_options["vmax"] = opts["vmax"]
        if not opts.get("use_heuristic1", True):
            echo_options["use_heuristic1"] = False
        if not opts.get("use_heuristic2", True):
            echo_options["use_heuristic2"] = False
        if not opts.get("refine", True):
            echo_options["refine"] = False
        if opts.get("exclude_ids"):
            echo_options["exclude_ids"] = frozenset(opts["exclude_ids"])
        if opts.get("filter", "auto") != "auto":
            echo_options["filter"] = opts["filter"]
        result.spec = QuerySpec(
            "mst", query, period, k, echo_options, kernels=request.kernels
        )
        result.trace_id = None
        return result

    def _validate_answer(self, answer) -> None:
        """Reject a :class:`~repro.engine.planner.ShardAnswer` whose
        generation signature no longer matches the open store — merging
        it would mix results from different index generations."""
        if not 0 <= answer.shard_id < len(self.shard_engines):
            raise QueryError(
                f"shard answer names unknown shard {answer.shard_id} "
                f"(engine has {len(self.shard_engines)})"
            )
        current = tuple(self.shard_engines[answer.shard_id].signature())
        if tuple(answer.signature) != current:
            raise QueryError(
                f"shard {answer.shard_id} answer signature "
                f"{tuple(answer.signature)} does not match the open "
                f"store {current}; the index changed under the worker"
            )

    def run_batch(self, requests: list[QueryRequest]) -> BatchResult:
        """Execute the batch and return answers in request order.

        Requests run one after another; the parallelism (when the
        session is threaded) is *per query, across shards* — nesting
        batch-level and shard-level pools would deadlock a bounded pool
        and help nothing on a shared one.
        """
        if self._closed:
            raise QueryError("engine is closed")
        before = self.cache_counters()
        t0 = time.perf_counter()
        results = [self.execute(request) for request in requests]
        wall = time.perf_counter() - t0
        after = self.cache_counters()
        self._publish_cache_deltas(before, after)
        self.metrics.inc("engine.batches")
        qps = len(requests) / wall if wall > 0 else float("inf")
        return BatchResult(
            results=results,
            wall_time_s=wall,
            queries_per_sec=qps,
            executor=self.executor.kind,
            cache_counters=after,
            metrics=dict(self.metrics.counters),
        )

    def _require_dataset(self, kind: str) -> TrajectoryDataset:
        if self.dataset is None:
            raise QueryError(
                f"{kind} queries need the engine to own a dataset "
                f"(pass one to ShardedQueryEngine(...) or "
                f".open(dataset_path=...))"
            )
        return self.dataset

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _record_shard_stats(self, result: SearchResult) -> None:
        """Mirror the per-shard breakdown of one k-MST answer into the
        engine registry (shard-labelled counters)."""
        stats = result.stats
        if (
            stats.signature_checks
            or stats.signature_pruned
            or stats.leaf_skips
            or stats.refinement_skipped
        ):
            self.metrics.inc("filter.signature_checks", stats.signature_checks)
            self.metrics.inc("filter.pruned", stats.signature_pruned)
            self.metrics.inc("filter.leaf_skips", stats.leaf_skips)
            self.metrics.inc(
                "filter.refinement_skipped", stats.refinement_skipped
            )
        for row in result.stats.extra.get("per_shard", ()):
            label = row["shard"]
            if row.get("pruned"):
                self.metrics.inc(f"engine.shard.{label}.pruned")
                continue
            self.metrics.inc(f"engine.shard.{label}.queries")
            self.metrics.inc(
                f"engine.shard.{label}.node_accesses", row["node_accesses"]
            )
            self.metrics.inc(
                f"engine.shard.{label}.entries_processed",
                row["entries_processed"],
            )

    def cache_counters(self) -> dict[str, int]:
        """Hit/miss/eviction counters summed over the shard engines,
        plus the global refinement cache and the pooled buffer totals."""
        out: dict[str, int] = dict(self.dissim_cache.counters())
        hits = misses = pinned = 0
        for engine in self.shard_engines:
            for name, value in engine.mindist_cache.counters().items():
                out[name] = out.get(name, 0) + value
            for name, value in engine.segdissim_cache.counters().items():
                out[name] = out.get(name, 0) + value
            io = engine.index.buffer.stats
            hits += io.buffer_hits
            misses += io.buffer_misses
            pinned += len(engine.index.buffer.pinned_pages)
        out["engine.buffer.hits"] = hits
        out["engine.buffer.misses"] = misses
        out["engine.buffer.pinned"] = pinned
        return out

    def _publish_cache_deltas(self, before: dict, after: dict) -> None:
        trace = _obs.ACTIVE
        for name, value in after.items():
            delta = value - before.get(name, 0)
            if delta <= 0 or name.endswith((".size", ".scopes", ".pinned")):
                continue
            self.metrics.inc(name, delta)
            if trace is not None:
                trace.registry.inc(name, delta)

    def per_shard_summary(self) -> list[dict]:
        """One row per shard for ``repro shard inspect`` / ``repro
        stats --per-shard``."""
        rows = []
        for shard_id, shard in enumerate(self.index.shards):
            rows.append(
                {
                    "shard": shard_id,
                    "num_nodes": shard.num_nodes,
                    "num_entries": shard.num_entries,
                    "trajectories": len(shard.trajectory_ids),
                    "buffer_capacity": shard.buffer.capacity,
                    "queries": self.metrics.value(
                        f"engine.shard.{shard_id}.queries"
                    ),
                    "node_accesses": self.metrics.value(
                        f"engine.shard.{shard_id}.node_accesses"
                    ),
                    "pruned": self.metrics.value(
                        f"engine.shard.{shard_id}.pruned"
                    ),
                }
            )
        return rows
