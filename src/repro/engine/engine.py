"""The batched query engine.

A :class:`QueryEngine` owns an index, its dataset and the index's
buffer manager for a session and executes *batches* of heterogeneous
queries (k-MST, linear scan, point NN, range, continuous NN,
time-relaxed) through one shared execution context, so work that a
one-off call throws away is amortised:

* node MINDIST evaluations are memoised per query scope
  (:class:`~repro.engine.cache.MindistCache`),
* per-leaf-entry DISSIM window integrals are memoised per query scope
  (:class:`~repro.engine.cache.SegmentDissimCache`),
* exact refinement integrals are memoised across queries
  (:class:`~repro.engine.cache.DissimRefinementCache`),
* the upper index levels are pinned in the buffer pool for the
  session (:meth:`QueryEngine.pin_upper_levels`),
* the best-first priority queue's backing list is reused per worker.

The engine is an execution *context* in the sense of the unified
search API: it exposes ``.index``, ``.dataset`` and
``search_hooks(query, period)``, so any :mod:`repro.search.api`
function accepts it in the first argument slot —
``bfmst_search(engine, None, query, k=5)`` uses the engine's caches
transparently.

Caches are invalidated automatically when the index's structural
signature ``(num_nodes, num_entries, root_page)`` changes (e.g. after
a rebuild or insertion); hit/miss counters live in the engine's
always-on :class:`~repro.obs.registry.MetricsRegistry` and are
mirrored into any active :func:`~repro.obs.query_trace`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from threading import local as _thread_local

from ..exceptions import DeadlineExceeded, QueryError
from ..geometry import MBR2D, Point
from ..index import NO_PAGE, TrajectoryIndex, load_index
from ..index.mindist import mindist as _base_mindist
from ..obs import MetricsRegistry
from ..obs import state as _obs
from ..search import api as _api
from ..search.results import SearchResult
from ..search.spec import QuerySpec
from ..trajectory import Trajectory, TrajectoryDataset, read_csv, read_json
from ..distance import segment_dissim as _base_segment_dissim
from ..distance.kernels import make_segment_dissim_batch, resolve_kernels
from ..index.mindist import make_mindist_batch
from .cache import DissimRefinementCache, MindistCache, SegmentDissimCache
from .executor import make_executor

__all__ = [
    "EngineConfig",
    "QueryRequest",
    "BatchResult",
    "QueryEngine",
    "query_key",
    "SESSION_BUFFER_FRACTION",
]

#: Default buffer fraction for an engine *session*.  A one-off CLI
#: query opens the index at the paper's 10 % operating point; a session
#: that executes whole batches against the same index amortises a
#: warmer buffer across every query, so :meth:`QueryEngine.open` sizes
#: it at 25 % (still capped at ``buffer_max_pages``).
SESSION_BUFFER_FRACTION = 0.25

def query_key(query):
    """A hashable identity for a query object (cache scope key)."""
    if isinstance(query, Trajectory):
        return (
            "traj",
            query.object_id,
            tuple((p.x, p.y, p.t) for p in query.samples),
        )
    if isinstance(query, Point):
        return ("point", query.x, query.y)
    if isinstance(query, MBR2D):
        return ("window", query.xmin, query.ymin, query.xmax, query.ymax)
    raise QueryError(f"unsupported query object {type(query).__name__}")


def _deadline_guard(fn, deadline: float):
    """Wrap a search hook so it aborts the query once the absolute
    ``time.monotonic()`` deadline passes (the wrapped hook is hot —
    one branch and one clock read per call)."""

    def guarded(*args, **kwargs):
        if time.monotonic() >= deadline:
            raise DeadlineExceeded("query exceeded its deadline budget")
        return fn(*args, **kwargs)

    return guarded


@dataclass
class EngineConfig:
    """Tunables for a :class:`QueryEngine` session.

    ``pin_upper_levels`` counts index levels from the root downwards
    (2 = root + its children; 0 disables pinning).  Cache sizes of 0
    disable the corresponding level.  ``executor`` is ``"serial"`` or
    ``"thread"``; the threaded executor treats the index as read-only
    and enables the buffer manager's lock.  ``kernels`` selects the
    hot-path implementation for k-MST queries (``"auto"`` picks the
    vectorised numpy kernels when numpy is importable and the
    pure-Python reference otherwise; ``"numpy"``/``"python"`` force
    one; ``None`` keeps the classic per-entry scalar path) — see
    :mod:`repro.distance.kernels`.  ``filter`` is the session default
    for the signature filter tier (``"auto"``/``"on"``/``"off"``, see
    :mod:`repro.filter`); a request that names a filter mode
    explicitly overrides it.
    """

    dissim_cache_size: int = 4096
    mindist_cache_scopes: int = 64
    segdissim_cache_scopes: int = 64
    pin_upper_levels: int = 2
    executor: str = "serial"
    max_workers: int | None = None
    kernels: str | None = "auto"
    filter: str = "auto"


#: ``QueryRequest`` was promoted to the public, wire-serializable
#: :class:`repro.search.spec.QuerySpec` (same fields, same positional
#: order, plus ``kernels``/``deadline_ms`` and a JSON round-trip).  The
#: engine keeps the old name as an alias so every existing call site —
#: ``QueryRequest("mst", query, period, k=5)`` — keeps working.
QueryRequest = QuerySpec


@dataclass
class BatchResult:
    """A batch's answers plus its throughput and cache telemetry."""

    results: list[SearchResult]
    wall_time_s: float
    queries_per_sec: float
    executor: str
    cache_counters: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def as_dict(self) -> dict:
        return {
            "num_queries": len(self.results),
            "wall_time_s": self.wall_time_s,
            "queries_per_sec": self.queries_per_sec,
            "executor": self.executor,
            "cache": dict(self.cache_counters),
            "metrics": dict(self.metrics),
        }


class QueryEngine:
    """Session owner for an index + dataset, executing query batches.

    Use as a context manager, or call :meth:`close` to release pins::

        with QueryEngine(index, dataset) as engine:
            batch = engine.run_batch([
                QueryRequest("mst", query, period, k=5),
                QueryRequest("range", window, period),
            ])
    """

    def __init__(
        self,
        index: TrajectoryIndex,
        dataset: TrajectoryDataset | None = None,
        *,
        config: EngineConfig | None = None,
    ):
        self.index = index
        self.dataset = dataset
        self.config = config or EngineConfig()
        self.metrics = MetricsRegistry()
        self.dissim_cache = DissimRefinementCache(
            max(1, self.config.dissim_cache_size)
        )
        self.mindist_cache = MindistCache(
            max(1, self.config.mindist_cache_scopes)
        )
        self.segdissim_cache = SegmentDissimCache(
            max(1, self.config.segdissim_cache_scopes)
        )
        self._local = _thread_local()
        self._signature = None
        self._closed = False
        # One executor per session: the threaded pool is reused across
        # batches and shut down with the engine.
        self.executor = make_executor(
            self.config.executor, self.config.max_workers
        )
        if self.executor.kind == "thread":
            self.enable_thread_safety()
        self._refresh_session()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        index_path: str | Path,
        dataset_path: str | Path | None = None,
        *,
        config: EngineConfig | None = None,
        buffer_fraction: float = SESSION_BUFFER_FRACTION,
        buffer_max_pages: int = 1000,
        backend: str = "disk",
        verify: bool = False,
    ) -> "QueryEngine":
        """Open a saved index (and optionally its dataset) for querying.

        ``backend`` selects the page store (``"disk"`` or the zero-copy
        read-only ``"mmap"``); ``verify`` checks the page file's digest
        against the sidecar before serving.
        """
        index = load_index(
            index_path,
            buffer_fraction,
            buffer_max_pages,
            backend=backend,
            verify=verify,
        )
        dataset = None
        if dataset_path is not None:
            dataset_path = Path(dataset_path)
            reader = read_json if dataset_path.suffix == ".json" else read_csv
            dataset = reader(dataset_path)
        return cls(index, dataset, config=config)

    def close(self) -> None:
        """Release buffer pins and the session executor's pool (caches
        are just dropped with the object)."""
        if not self._closed:
            self.index.buffer.unpin_all()
            self.executor.close()
            self._closed = True

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # cache/session management
    # ------------------------------------------------------------------
    def _index_signature(self) -> tuple:
        return (
            self.index.num_nodes,
            self.index.num_entries,
            self.index.root_page,
        )

    def enable_thread_safety(self) -> None:
        """Lock the buffer manager — required before concurrent
        :meth:`execute` calls from multiple threads (the threaded
        batch executor and the serving tier both do this)."""
        self.index.buffer.enable_thread_safety()

    def _refresh_session(self) -> None:
        self._signature = self._index_signature()
        self.dissim_cache.clear()
        self.mindist_cache.clear()
        self.segdissim_cache.clear()
        pinned = self.pin_upper_levels()
        self.metrics.inc("engine.sessions")
        self.metrics.inc("engine.pinned_pages", pinned)

    def signature(self) -> tuple:
        """The index's current structural signature — the same value
        cache invalidation keys on.  The serving tier's result cache
        compares signatures across requests: a changed signature means
        previously cached answers may be stale."""
        return self._index_signature()

    def check_signature(self) -> bool:
        """Invalidate every cache level if the index changed shape
        since the last query; returns ``True`` when invalidation ran."""
        if self._index_signature() != self._signature:
            self.metrics.inc("engine.cache.invalidations")
            self._refresh_session()
            return True
        return False

    def pin_upper_levels(self) -> int:
        """Pin the top ``config.pin_upper_levels`` index levels in the
        buffer pool; returns how many pages were pinned."""
        buf = self.index.buffer
        buf.unpin_all()
        levels = self.config.pin_upper_levels
        if levels <= 0 or self.index.root_page == NO_PAGE:
            return 0
        floor = self.index.height - levels  # pin node.level >= floor
        pinned = 0
        stack = [self.index.root_page]
        while stack:
            page_id = stack.pop()
            node = self.index.read_node(page_id)
            if node.level < floor:
                continue
            buf.pin(page_id)
            pinned += 1
            if not node.is_leaf and node.level > floor:
                stack.extend(e.child_page for e in node.entries)
        return pinned

    # ------------------------------------------------------------------
    # unified-API execution context protocol
    # ------------------------------------------------------------------
    def search_hooks(self, query, period) -> dict:
        """Per-query hook bundle for :mod:`repro.search.api` — memoised
        MINDIST, the cross-query refinement cache view and the
        worker-local heap scratch."""
        self.check_signature()
        hooks: dict = {"heap_scratch": self._heap_scratch()}
        if not isinstance(query, Trajectory):
            return hooks
        hooks["filter"] = self.config.filter
        key = query_key(query)
        span = tuple(period) if period is not None else (
            query.t_start,
            query.t_end,
        )
        if self.config.mindist_cache_scopes > 0:
            hooks["mindist_fn"] = self.mindist_cache.wrap(
                _base_mindist, query, key, span[0], span[1]
            )
        if self.config.segdissim_cache_scopes > 0:
            hooks["segment_dissim_fn"] = self.segdissim_cache.wrap(
                _base_segment_dissim, key, span[0], span[1]
            )
        if self.config.dissim_cache_size > 0:
            hooks["refinement_cache"] = self.dissim_cache.view(key, span)
        if self.config.kernels is not None:
            mode = resolve_kernels(self.config.kernels)
            hooks["kernels"] = mode
            base_mindist_batch = make_mindist_batch(mode)
            base_segdissim_batch = make_segment_dissim_batch(mode)
            if self.config.mindist_cache_scopes > 0:
                hooks["mindist_batch_fn"] = self.mindist_cache.wrap_batch(
                    base_mindist_batch, query, key, span[0], span[1]
                )
            else:
                hooks["mindist_batch_fn"] = base_mindist_batch
            if self.config.segdissim_cache_scopes > 0:
                hooks["segment_dissim_batch_fn"] = (
                    self.segdissim_cache.wrap_batch(
                        base_segdissim_batch, key, span[0], span[1]
                    )
                )
            else:
                hooks["segment_dissim_batch_fn"] = base_segdissim_batch
        deadline = getattr(self._local, "deadline", None)
        if deadline is not None:
            # MINDIST runs once per dequeued node — the natural
            # mid-query cancellation point.  The guard closes over the
            # absolute deadline at hook-build time, so it works
            # unchanged when the hooks run on a pool thread.
            hooks["mindist_fn"] = _deadline_guard(
                hooks.get("mindist_fn", _base_mindist), deadline
            )
            if "mindist_batch_fn" in hooks:
                hooks["mindist_batch_fn"] = _deadline_guard(
                    hooks["mindist_batch_fn"], deadline
                )
        return hooks

    def _heap_scratch(self) -> list:
        heap = getattr(self._local, "heap", None)
        if heap is None:
            heap = []
            self._local.heap = heap
        return heap

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self, request: QueryRequest, *, deadline: float | None = None
    ) -> SearchResult:
        """Run one request through the shared context.

        ``deadline`` is an absolute ``time.monotonic()`` instant; if
        omitted, the request's own ``deadline_ms`` budget (if any)
        starts counting now.  A query past its deadline raises
        :class:`~repro.exceptions.DeadlineExceeded` — checked up front
        and (for k-MST) at every node MINDIST evaluation, so runaway
        queries stop consuming their worker promptly.
        """
        if self._closed:
            raise QueryError("engine is closed")
        kind = request.canonical_kind()
        if deadline is None and request.deadline_ms is not None:
            deadline = time.monotonic() + request.deadline_ms / 1000.0
        if deadline is not None and time.monotonic() >= deadline:
            self.metrics.inc("engine.deadline_misses")
            raise DeadlineExceeded(
                f"deadline expired before the {kind} query started"
            )
        self.check_signature()
        self.metrics.inc("engine.queries")
        self.metrics.inc(f"engine.queries.{kind}")
        if kind in ("linear_scan", "continuous_nn", "time_relaxed"):
            self._require_dataset(kind)
        self._local.deadline = deadline
        try:
            result = _api.execute_spec(self, None, request)
            self._mirror_filter_stats(result.stats)
            return result
        except DeadlineExceeded:
            self.metrics.inc("engine.deadline_misses")
            raise
        finally:
            self._local.deadline = None

    def run_batch(
        self, requests: list[QueryRequest], *, executor=None
    ) -> BatchResult:
        """Execute the batch and return answers in request order with
        throughput and cache hit/miss telemetry."""
        if self._closed:
            raise QueryError("engine is closed")
        self.check_signature()
        ephemeral = None
        if executor is None:
            ex = self.executor
        elif isinstance(executor, str):
            ex = ephemeral = make_executor(executor, self.config.max_workers)
        else:
            ex = executor
        if getattr(ex, "kind", "serial") == "thread":
            self.enable_thread_safety()
        before = self.cache_counters()
        t0 = time.perf_counter()
        try:
            results = ex.map(
                lambda _i, request: self.execute(request), requests
            )
        finally:
            if ephemeral is not None:
                ephemeral.close()
        wall = time.perf_counter() - t0
        after = self.cache_counters()
        self._publish_cache_deltas(before, after)
        self.metrics.inc("engine.batches")
        qps = len(requests) / wall if wall > 0 else float("inf")
        return BatchResult(
            results=results,
            wall_time_s=wall,
            queries_per_sec=qps,
            executor=getattr(ex, "kind", "serial"),
            cache_counters=after,
            metrics=dict(self.metrics.counters),
        )

    def _mirror_filter_stats(self, stats) -> None:
        """Accumulate per-query signature-filter counters into the
        session registry (they also surface per-query in the stats
        block; the registry view feeds ``GET /stats``)."""
        if (
            stats.signature_checks
            or stats.signature_pruned
            or stats.leaf_skips
            or stats.refinement_skipped
        ):
            self.metrics.inc("filter.signature_checks", stats.signature_checks)
            self.metrics.inc("filter.pruned", stats.signature_pruned)
            self.metrics.inc("filter.leaf_skips", stats.leaf_skips)
            self.metrics.inc(
                "filter.refinement_skipped", stats.refinement_skipped
            )

    def _require_dataset(self, kind: str) -> TrajectoryDataset:
        if self.dataset is None:
            raise QueryError(
                f"{kind} queries need the engine to own a dataset "
                f"(pass one to QueryEngine(...) or .open(dataset_path=...))"
            )
        return self.dataset

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def cache_counters(self) -> dict[str, int]:
        """Current absolute hit/miss/eviction counters of every cache
        level, plus the buffer pool's session totals."""
        out = dict(self.dissim_cache.counters())
        out.update(self.mindist_cache.counters())
        out.update(self.segdissim_cache.counters())
        io = self.index.buffer.stats
        out["engine.buffer.hits"] = io.buffer_hits
        out["engine.buffer.misses"] = io.buffer_misses
        out["engine.buffer.pinned"] = len(self.index.buffer.pinned_pages)
        return out

    def _publish_cache_deltas(self, before: dict, after: dict) -> None:
        """Push this batch's counter deltas into the engine registry
        and mirror them into any active query trace."""
        trace = _obs.ACTIVE
        for name, value in after.items():
            delta = value - before.get(name, 0)
            if delta <= 0 or name.endswith((".size", ".scopes", ".pinned")):
                continue
            self.metrics.inc(name, delta)
            if trace is not None:
                trace.registry.inc(name, delta)
