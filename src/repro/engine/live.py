"""Generation-aware query serving over live ingestion stores.

:class:`LiveQueryEngine` is the online counterpart of
:class:`~repro.engine.QueryEngine` / :class:`~repro.engine.ShardedQueryEngine`:
instead of one frozen index it fronts one or more
:class:`~repro.ingest.IngestStore` instances whose contents change
under it.  Every query pins a consistent snapshot (the stores' current
generations plus frozen memtable copies), searches all parts under one
shared k-th-best bound, and releases the pins — so a compaction racing
a query retires the superseded generation without ever invalidating
the reader's mmap, and the answers stay byte-identical to a
from-scratch rebuild over the stores' current data.

Multiple stores compose exactly like shards: their object sets are
expected to be disjoint (e.g. a stream partitioned by any of the
sharding partitioners) and the merged search covers their union.
"""

from __future__ import annotations

import time

from ..exceptions import DeadlineExceeded, QueryError
from ..ingest import IngestStore, merged_kmst
from ..search.results import SearchResult
from .engine import BatchResult, EngineConfig, QueryRequest
from .executor import make_executor

__all__ = ["LiveQueryEngine"]


class LiveQueryEngine:
    """Batched k-MST execution over one or more live stores."""

    def __init__(
        self,
        stores: IngestStore | list[IngestStore],
        config: EngineConfig | None = None,
    ) -> None:
        if isinstance(stores, IngestStore):
            stores = [stores]
        if not stores:
            raise QueryError("LiveQueryEngine needs at least one store")
        self.stores = list(stores)
        self.config = config if config is not None else EngineConfig()
        self.executor = make_executor(
            self.config.executor, self.config.max_workers
        )
        self._filter_counters: dict[str, int] = {}
        self._closed = False

    # ------------------------------------------------------------------
    def signature(self) -> tuple:
        """Freshness signature of the stores' *visible* contents — the
        per-store ``(generation, memtable_points)`` pairs.  Every
        append or compaction changes it, so a serving-tier result
        cache over a live engine invalidates on any write."""
        return tuple(
            (s.generation_number, s.memtable_points) for s in self.stores
        )

    def execute(
        self, request: QueryRequest, *, deadline: float | None = None
    ) -> SearchResult:
        """Run one request against a freshly pinned snapshot.

        ``deadline`` (absolute ``time.monotonic()``) or the request's
        ``deadline_ms`` budget is checked before the snapshot is
        pinned; the merged search itself is not interrupted mid-flight.
        """
        if self._closed:
            raise QueryError("engine is closed")
        if request.canonical_kind() != "mst":
            raise QueryError(
                f"LiveQueryEngine serves k-MST queries only, got "
                f"{request.kind!r}"
            )
        if deadline is None and request.deadline_ms is not None:
            deadline = time.monotonic() + request.deadline_ms / 1000.0
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceeded(
                "deadline expired before the mst query started"
            )
        opts = dict(request.options)
        opts.setdefault("kernels", self.config.kernels)
        opts.setdefault("filter", self.config.filter)
        views = []
        try:
            for store in self.stores:
                views.append(store.view())
            matches, stats = merged_kmst(
                views, request.query, request.period, request.k, **opts
            )
        finally:
            for view in views:
                view.close()
        for name, value in (
            ("filter.signature_checks", stats.signature_checks),
            ("filter.pruned", stats.signature_pruned),
            ("filter.leaf_skips", stats.leaf_skips),
            ("filter.refinement_skipped", stats.refinement_skipped),
        ):
            if value:
                self._filter_counters[name] = (
                    self._filter_counters.get(name, 0) + value
                )
        return SearchResult(
            algorithm="bfmst", matches=matches, stats=stats, spec=request
        )

    def run_batch(
        self, requests: list[QueryRequest], *, executor=None
    ) -> BatchResult:
        """Execute a batch; each request pins and releases its own
        snapshot, so ingestion and compaction proceed concurrently."""
        if self._closed:
            raise QueryError("engine is closed")
        ephemeral = None
        if executor is None:
            ex = self.executor
        elif isinstance(executor, str):
            ex = ephemeral = make_executor(executor, self.config.max_workers)
        else:
            ex = executor
        t0 = time.perf_counter()
        try:
            results = ex.map(
                lambda _i, request: self.execute(request), requests
            )
        finally:
            if ephemeral is not None:
                ephemeral.close()
        wall = time.perf_counter() - t0
        return BatchResult(
            results=results,
            wall_time_s=wall,
            queries_per_sec=(len(requests) / wall) if wall > 0 else 0.0,
            executor=getattr(ex, "kind", "serial"),
            metrics={
                "generations": [s.generation_number for s in self.stores],
                "memtable_points": [s.memtable_points for s in self.stores],
            },
        )

    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int]:
        """Summed ingest counters across the stores, plus the
        signature-filter counters of queries served by this engine
        (``GET /stats`` shows both for a live target)."""
        out: dict[str, int] = {}
        for store in self.stores:
            for name, value in store.metrics.counters.items():
                out[name] = out.get(name, 0) + value
        for name, value in self._filter_counters.items():
            out[name] = out.get(name, 0) + value
        return out

    def close(self) -> None:
        """Release the executor (the stores stay open — the engine
        does not own them)."""
        if not self._closed:
            self._closed = True
            self.executor.close()

    def __enter__(self) -> "LiveQueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
