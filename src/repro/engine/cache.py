"""The engine's multi-level cache layer.

Four levels, cheapest to invalidate first:

1. :class:`MindistCache` — per-query memo of node-MBB MINDIST
   evaluations.  MINDIST depends only on (query, MBB, period), so
   within one logical query every repeat evaluation (re-executed
   queries in a batch, browse resumption) is a pure lookup.  Scopes
   are LRU-bounded so a long batch cannot hoard memory.
2. :class:`SegmentDissimCache` — per-query memo of the per-leaf-entry
   DISSIM window integrals (BFMST Figure 7, line 18).  The trapezoid
   integral of one data segment over one window is a pure function of
   (query, segment, window), and it dominates leaf processing — on a
   re-executed query every leaf entry hits this memo instead of
   re-integrating.
3. :class:`DissimRefinementCache` — cross-query LRU of the exact
   refinement integrals BFMST computes for ambiguous candidates,
   keyed ``(query key, period, trajectory id)``.  A *completed*
   candidate's retrieved windows tile the full query period
   deterministically, so the exact total depends only on that key —
   it is safe to reuse across different ``k`` and across repeats of
   the same query.
4. Buffer-pool pinning (implemented by
   :class:`~repro.storage.buffer.LRUBufferManager`) — the engine pins
   the upper index levels so batch-long hot pages never thrash.

All counters are plain ints guarded by a lock; the engine mirrors
them into its :class:`~repro.obs.registry.MetricsRegistry` (and any
active :func:`~repro.obs.query_trace`) after every query.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = [
    "LRUCache",
    "DissimRefinementCache",
    "MindistCache",
    "SegmentDissimCache",
]


class LRUCache:
    """A thread-safe LRU mapping with hit/miss accounting.

    ``get`` returns ``default`` on a miss; ``put`` inserts/refreshes
    and evicts the least recently used entry beyond ``capacity``.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_data", "_lock")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key, default=None):
        with self._lock:
            if key in self._data:
                self.hits += 1
                self._data.move_to_end(key)
                return self._data[key]
            self.misses += 1
            return default

    def put(self, key, value) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def counters(self, prefix: str) -> dict[str, int]:
        return {
            f"{prefix}.hits": self.hits,
            f"{prefix}.misses": self.misses,
            f"{prefix}.evictions": self.evictions,
            f"{prefix}.size": len(self._data),
        }


class _RefinementView:
    """The ``get``/``put`` pair BFMST expects, bound to one query scope."""

    __slots__ = ("_cache", "_scope")

    def __init__(self, cache: LRUCache, scope):
        self._cache = cache
        self._scope = scope

    def get(self, trajectory_id: int):
        return self._cache.get((self._scope, trajectory_id))

    def put(self, trajectory_id: int, value: float) -> None:
        self._cache.put((self._scope, trajectory_id), value)


class DissimRefinementCache:
    """Cross-query LRU of exact refinement integrals.

    Keyed ``(query_key, period, trajectory_id)``; :meth:`view` binds
    the first two components so BFMST sees the plain per-trajectory
    ``get``/``put`` protocol.
    """

    __slots__ = ("lru",)

    def __init__(self, capacity: int = 4096):
        self.lru = LRUCache(capacity)

    def view(self, query_key, period) -> _RefinementView:
        return _RefinementView(self.lru, (query_key, period))

    def clear(self) -> None:
        self.lru.clear()

    def counters(self) -> dict[str, int]:
        return self.lru.counters("engine.cache.dissim")


class MindistCache:
    """Per-query-scope memo of node-MBB MINDIST evaluations.

    One *scope* is a ``(query_key, period)`` pair; each scope holds a
    plain dict keyed by the node MBB's 6-tuple (``None`` results — no
    temporal overlap — are cached too).  Scopes themselves live in an
    LRU so only the most recent ``scope_capacity`` queries keep their
    memos warm.
    """

    __slots__ = ("scopes", "hits", "misses", "_lock")

    def __init__(self, scope_capacity: int = 64):
        self.scopes = LRUCache(scope_capacity)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()

    def wrap(self, base_fn, query, query_key, t_start: float, t_end: float):
        """A drop-in for :func:`repro.index.mindist.mindist`, memoised
        for this scope (signature ``fn(query, mbr, t_start, t_end)``)."""
        scope_key = (query_key, (t_start, t_end))
        memo = self.scopes.get(scope_key)
        if memo is None:
            memo = {}
            self.scopes.put(scope_key, memo)
        _MISS = object()

        def cached_mindist(q, mbr, lo, hi):
            key = (mbr.xmin, mbr.ymin, mbr.tmin, mbr.xmax, mbr.ymax, mbr.tmax)
            value = memo.get(key, _MISS)
            if value is not _MISS:
                with self._lock:
                    self.hits += 1
                return value
            with self._lock:
                self.misses += 1
            value = base_fn(q, mbr, lo, hi)
            memo[key] = value
            return value

        return cached_mindist

    def wrap_batch(
        self, base_batch_fn, query, query_key, t_start: float, t_end: float
    ):
        """A drop-in for :func:`repro.index.mindist.mindist_batch` over
        the *same* scope memo as :meth:`wrap` — entries already resolved
        by a scalar (or earlier batched) evaluation are looked up, and
        ``base_batch_fn`` only sees the still-missing boxes."""
        scope_key = (query_key, (t_start, t_end))
        memo = self.scopes.get(scope_key)
        if memo is None:
            memo = {}
            self.scopes.put(scope_key, memo)
        _MISS = object()

        def cached_mindist_batch(q, boxes, lo, hi):
            results = [None] * len(boxes)
            missing_idx: list[int] = []
            missing_boxes = []
            for i, mbr in enumerate(boxes):
                key = (
                    mbr.xmin, mbr.ymin, mbr.tmin,
                    mbr.xmax, mbr.ymax, mbr.tmax,
                )
                value = memo.get(key, _MISS)
                if value is _MISS:
                    missing_idx.append(i)
                    missing_boxes.append(mbr)
                else:
                    results[i] = value
            with self._lock:
                self.hits += len(boxes) - len(missing_idx)
                self.misses += len(missing_idx)
            if missing_idx:
                fresh = base_batch_fn(q, missing_boxes, lo, hi)
                for i, mbr, value in zip(missing_idx, missing_boxes, fresh):
                    memo[
                        (mbr.xmin, mbr.ymin, mbr.tmin,
                         mbr.xmax, mbr.ymax, mbr.tmax)
                    ] = value
                    results[i] = value
            return results

        return cached_mindist_batch

    def clear(self) -> None:
        self.scopes.clear()

    def counters(self) -> dict[str, int]:
        return {
            "engine.cache.mindist.hits": self.hits,
            "engine.cache.mindist.misses": self.misses,
            "engine.cache.mindist.scopes": len(self.scopes),
        }


class SegmentDissimCache:
    """Per-query-scope memo of per-leaf-entry DISSIM window integrals.

    Same scoping scheme as :class:`MindistCache`: one scope per
    ``(query_key, period)`` pair, scopes held in an LRU.  Keys are the
    (frozen, hashable) :class:`~repro.geometry.segment.STSegment` plus
    the clipped window; values are the ``(integral, d_start, d_end)``
    triple ``segment_dissim`` returns, which is immutable and safe to
    share.  Exact (refinement) evaluations bypass the memo — they are
    covered by :class:`DissimRefinementCache` at candidate granularity.
    """

    __slots__ = ("scopes", "hits", "misses", "_lock")

    def __init__(self, scope_capacity: int = 64):
        self.scopes = LRUCache(scope_capacity)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()

    def wrap(self, base_fn, query_key, t_start: float, t_end: float):
        """A drop-in for :func:`repro.distance.segment_dissim`, memoised
        for this scope (signature ``fn(query, seg, lo, hi, exact=False)``)."""
        scope_key = (query_key, (t_start, t_end))
        memo = self.scopes.get(scope_key)
        if memo is None:
            memo = {}
            self.scopes.put(scope_key, memo)

        def cached_segment_dissim(q, seg, lo, hi, exact=False):
            if exact:
                return base_fn(q, seg, lo, hi, exact=True)
            key = (seg, lo, hi)
            value = memo.get(key)
            if value is not None:
                with self._lock:
                    self.hits += 1
                return value
            with self._lock:
                self.misses += 1
            value = base_fn(q, seg, lo, hi)
            memo[key] = value
            return value

        return cached_segment_dissim

    def wrap_batch(self, base_batch_fn, query_key, t_start: float, t_end: float):
        """A drop-in for :func:`repro.distance.segment_dissim_batch`
        over the *same* scope memo as :meth:`wrap` — already-integrated
        windows are looked up and ``base_batch_fn`` only sees the
        still-missing ``(segment, lo, hi)`` items."""
        scope_key = (query_key, (t_start, t_end))
        memo = self.scopes.get(scope_key)
        if memo is None:
            memo = {}
            self.scopes.put(scope_key, memo)

        def cached_segment_dissim_batch(q, items):
            results = [None] * len(items)
            missing_idx: list[int] = []
            missing_items = []
            for i, item in enumerate(items):
                key = (item[0], item[1], item[2])
                value = memo.get(key)
                if value is None:
                    missing_idx.append(i)
                    missing_items.append(item)
                else:
                    results[i] = value
            with self._lock:
                self.hits += len(items) - len(missing_idx)
                self.misses += len(missing_idx)
            if missing_idx:
                fresh = base_batch_fn(q, missing_items)
                for i, item, value in zip(missing_idx, missing_items, fresh):
                    memo[(item[0], item[1], item[2])] = value
                    results[i] = value
            return results

        return cached_segment_dissim_batch

    def clear(self) -> None:
        self.scopes.clear()

    def counters(self) -> dict[str, int]:
        return {
            "engine.cache.segdissim.hits": self.hits,
            "engine.cache.segdissim.misses": self.misses,
            "engine.cache.segdissim.scopes": len(self.scopes),
        }
