"""The engine's planning layer for sharded serving.

Before a query fans out to per-shard executors, the planner answers two
questions:

* **Which shards can contribute at all?**  Every shard index carries
  its root MBR (spatial × temporal extent).  A shard whose temporal
  extent misses the query period cannot contain an overlapping segment
  — MINDIST would return ``None`` for every node — so skipping it is
  answer-preserving for every query kind.  For range queries the
  spatial window prunes too.  (Similarity queries get **no** spatial
  pre-filter: a far-away trajectory is still a valid — bad — candidate,
  and with small k it may even be the answer.)
* **How much buffer memory does each shard get?**  One global page
  budget is split across shard buffer pools proportionally to shard
  size via :meth:`~repro.storage.LRUBufferManager.resize_to_fraction`,
  so N shards together respect the same memory ceiling one index would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..geometry import MBR2D, MBR3D
from ..trajectory import Trajectory

__all__ = ["ShardPlan", "QueryPlanner", "budget_buffers"]


@dataclass
class ShardPlan:
    """Outcome of shard selection for one query."""

    selected: list[int] = field(default_factory=list)
    pruned: list[int] = field(default_factory=list)
    reason: str = "all"  # "all" | "time" | "time+space"

    @property
    def num_shards(self) -> int:
        return len(self.selected) + len(self.pruned)


class QueryPlanner:
    """Selects shards by intersecting per-shard extents with the query.

    ``extents`` is the per-shard root-MBR list (``None`` marks an empty
    shard, which is always pruned).  The planner is stateless beyond
    it; refresh it after a rebuild via :meth:`update_extents`.
    """

    def __init__(self, extents: list[MBR3D | None]) -> None:
        self.extents = list(extents)

    def update_extents(self, extents: list[MBR3D | None]) -> None:
        self.extents = list(extents)

    def plan(self, query, period: tuple[float, float] | None) -> ShardPlan:
        """Shard selection for ``query`` over ``period``.

        The temporal filter applies to every query type; the spatial
        filter only when the query is itself a hard spatial predicate
        (an :class:`~repro.geometry.MBR2D` range window).
        """
        span = self._span(query, period)
        window = query if isinstance(query, MBR2D) else None
        plan = ShardPlan(
            reason="time+space" if window is not None else (
                "time" if span is not None else "all"
            )
        )
        for shard_id, extent in enumerate(self.extents):
            if extent is None:
                plan.pruned.append(shard_id)
                continue
            if span is not None and (
                extent.tmin > span[1] or extent.tmax < span[0]
            ):
                plan.pruned.append(shard_id)
                continue
            if window is not None and (
                extent.xmin > window.xmax
                or extent.xmax < window.xmin
                or extent.ymin > window.ymax
                or extent.ymax < window.ymin
            ):
                plan.pruned.append(shard_id)
                continue
            plan.selected.append(shard_id)
        return plan

    @staticmethod
    def _span(query, period) -> tuple[float, float] | None:
        if period is not None:
            return (period[0], period[1])
        if isinstance(query, Trajectory):
            return (query.t_start, query.t_end)
        return None  # point/window queries carry no implicit period


def budget_buffers(
    shards,
    fraction: float = 0.10,
    total_max_pages: int = 1000,
    min_pages: int = 8,
) -> list[int]:
    """Split one global buffer budget across shard buffer pools.

    Each shard's pool is resized to ``fraction`` of its own page file,
    capped so the *sum* of caps equals ``total_max_pages`` distributed
    proportionally to shard size (every shard keeps at least
    ``min_pages``).  Returns the resulting per-shard capacities.
    """
    total_pages = sum(s.pagefile.num_pages for s in shards)
    capacities: list[int] = []
    for s in shards:
        if total_pages > 0:
            share = int(total_max_pages * s.pagefile.num_pages / total_pages)
        else:
            share = min_pages
        cap = s.buffer.resize_to_fraction(
            fraction, max(min_pages, share), min_pages
        )
        capacities.append(cap)
    return capacities
