"""The engine's planning layer for sharded serving.

Before a query fans out to per-shard executors, the planner answers two
questions:

* **Which shards can contribute at all?**  Every shard index carries
  its root MBR (spatial × temporal extent).  A shard whose temporal
  extent misses the query period cannot contain an overlapping segment
  — MINDIST would return ``None`` for every node — so skipping it is
  answer-preserving for every query kind.  For range queries the
  spatial window prunes too.  (Similarity queries get **no** spatial
  pre-filter: a far-away trajectory is still a valid — bad — candidate,
  and with small k it may even be the answer.)
* **How much buffer memory does each shard get?**  One global page
  budget is split across shard buffer pools proportionally to shard
  size via :meth:`~repro.storage.LRUBufferManager.resize_to_fraction`,
  so N shards together respect the same memory ceiling one index would.

This module also defines the **work-unit messages** of the process-pool
execution path: a :class:`ShardPlan` is everything one worker process
needs to search one shard — the :class:`~repro.search.QuerySpec`, the
shard's page file path, its generation signature, and the resolved
execution flags — with *no* live engine references, and a
:class:`ShardAnswer` is the columnar result buffer it ships back.  Both
serialize through the same versioned-dict codec pattern as the spec:1
wire schema, and their pickle form *is* that codec (``__reduce__``
routes through ``as_dict``/``from_dict``), so there is exactly one
serialization contract to test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import QueryError
from ..geometry import MBR2D, MBR3D, STPoint, STSegment
from ..search.bfmst import CandidateRecord
from ..search.spec import QuerySpec
from ..trajectory import Trajectory

__all__ = [
    "PLAN_VERSION",
    "ANSWER_VERSION",
    "ShardSelection",
    "ShardPlan",
    "ShardAnswer",
    "QueryPlanner",
    "budget_buffers",
]

#: Version tags of the two work-unit message envelopes.
PLAN_VERSION = 1
ANSWER_VERSION = 1


@dataclass
class ShardSelection:
    """Outcome of shard selection for one query."""

    selected: list[int] = field(default_factory=list)
    pruned: list[int] = field(default_factory=list)
    reason: str = "all"  # "all" | "time" | "time+space"

    @property
    def num_shards(self) -> int:
        return len(self.selected) + len(self.pruned)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise QueryError(message)


@dataclass
class ShardPlan:
    """A self-contained, picklable work unit: search one shard.

    Carries everything a worker process needs — no engine, index, or
    socket references — so it crosses the process boundary as a small
    message:

    * ``spec`` — the full :class:`~repro.search.QuerySpec` (the one
      request shape; ``options`` supply the H1/H2/refine switches and
      exclusions exactly as the in-process path reads them).
    * ``shard_path`` + ``signature`` — which page file to open and the
      ``(num_nodes, num_entries, root_page)`` generation it must still
      be; a mismatch means the store was rebuilt under us and the
      answer must be rejected, not merged.
    * ``vmax`` — resolved by the *parent* from the global maximum shard
      speed, because a per-shard recomputation would change bounds and
      break byte-identity with the serial executor.
    * ``deadline`` — absolute ``time.monotonic()`` deadline (system-wide
      on Linux, so it is meaningful across processes); thread-local
      deadlines do not survive ``fork``, this field replaces them for
      every executor.
    * ``kernels`` — the parent-resolved concrete kernel mode (never
      ``"auto"``: resolution happens once, in one process).
    * ``filter`` — the parent-resolved signature-filter mode
      (``auto``/``on``/``off``, see :mod:`repro.filter`); the worker
      builds its own :class:`~repro.filter.SignatureFilter` from the
      sidecar it mmaps next to ``shard_path``.
    """

    spec: QuerySpec
    shard_id: int
    shard_path: str
    signature: tuple[int, int, int]
    vmax: float
    deadline: float | None = None
    backend: str = "mmap"
    kernels: str | None = None
    filter: str = "auto"
    buffer_fraction: float = 0.10
    buffer_max_pages: int = 1000

    # ------------------------------------------------------------------
    # the one serialization contract
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "shard_plan": PLAN_VERSION,
            "spec": self.spec.as_dict(),
            "shard_id": int(self.shard_id),
            "shard_path": str(self.shard_path),
            "signature": [int(v) for v in self.signature],
            "vmax": float(self.vmax),
            "deadline": (
                float(self.deadline) if self.deadline is not None else None
            ),
            "backend": self.backend,
            "kernels": self.kernels,
            "filter": self.filter,
            "buffer_fraction": float(self.buffer_fraction),
            "buffer_max_pages": int(self.buffer_max_pages),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ShardPlan":
        _require(isinstance(doc, dict), f"shard plan must be an object")
        version = doc.get("shard_plan")
        _require(
            version == PLAN_VERSION,
            f"unsupported shard plan version {version!r} (this build "
            f"speaks version {PLAN_VERSION})",
        )
        sig = doc.get("signature")
        _require(
            isinstance(sig, (list, tuple))
            and len(sig) == 3
            and all(isinstance(v, int) for v in sig),
            f"signature must be [num_nodes, num_entries, root_page], "
            f"got {sig!r}",
        )
        shard_id = doc.get("shard_id")
        _require(
            isinstance(shard_id, int) and shard_id >= 0,
            f"shard_id must be a non-negative integer, got {shard_id!r}",
        )
        shard_path = doc.get("shard_path")
        _require(
            isinstance(shard_path, str) and shard_path,
            f"shard_path must be a non-empty string, got {shard_path!r}",
        )
        vmax = doc.get("vmax")
        _require(
            isinstance(vmax, (int, float)) and vmax >= 0.0,
            f"vmax must be a non-negative number, got {vmax!r}",
        )
        deadline = doc.get("deadline")
        _require(
            deadline is None or isinstance(deadline, (int, float)),
            f"deadline must be a number or null, got {deadline!r}",
        )
        kernels = doc.get("kernels")
        _require(
            kernels in (None, "numpy", "python"),
            f"plan kernels must be numpy|python or null (auto must be "
            f"resolved by the parent), got {kernels!r}",
        )
        # Absent in plans from older writers: default to "auto" (filter
        # iff the worker finds a sidecar), which preserves answers.
        filter_mode = doc.get("filter", "auto")
        _require(
            filter_mode in ("auto", "on", "off"),
            f"plan filter must be auto|on|off, got {filter_mode!r}",
        )
        return cls(
            spec=QuerySpec.from_dict(doc.get("spec")),
            shard_id=shard_id,
            shard_path=shard_path,
            signature=(sig[0], sig[1], sig[2]),
            vmax=float(vmax),
            deadline=float(deadline) if deadline is not None else None,
            backend=doc.get("backend", "mmap"),
            kernels=kernels,
            filter=filter_mode,
            buffer_fraction=float(doc.get("buffer_fraction", 0.10)),
            buffer_max_pages=int(doc.get("buffer_max_pages", 1000)),
        )

    def __reduce__(self):
        # Pickle *is* the wire codec: one contract, one set of tests.
        return (ShardPlan.from_dict, (self.as_dict(),))


@dataclass
class ShardAnswer:
    """One shard's search result as flat columnar buffers.

    The pickle payload shipped back from a worker: parallel arrays for
    the completed (exact) candidates — including their retrieved
    windows, 8 floats each (``lo, hi, x1, y1, t1, x2, y2, t2``) so the
    parent can re-integrate exactly during refinement — plus
    ``(tid, value)`` pairs for never-completed candidates, the shard's
    :class:`~repro.search.SearchStats` as a plain dict, and the
    worker-side metrics counters (deltas from a fresh registry).  No
    object graphs cross the boundary; :class:`~repro.geometry.STSegment`
    objects are rebuilt on :meth:`to_records`.
    """

    shard_id: int
    signature: tuple[int, int, int]
    exact_tids: list[int] = field(default_factory=list)
    exact_values: list[float] = field(default_factory=list)
    exact_error_bounds: list[float] = field(default_factory=list)
    window_counts: list[int] = field(default_factory=list)
    window_data: list[float] = field(default_factory=list)
    partial_tids: list[int] = field(default_factory=list)
    partial_values: list[float] = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # record conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        shard_id: int,
        signature: tuple[int, int, int],
        records: list[CandidateRecord],
        stats: dict,
        counters: dict,
    ) -> "ShardAnswer":
        """Flatten merge-ready records into columnar buffers."""
        answer = cls(shard_id=shard_id, signature=tuple(signature))
        for record in records:
            if record.exact:
                answer.exact_tids.append(record.tid)
                answer.exact_values.append(record.dissim)
                answer.exact_error_bounds.append(record.error_bound)
                answer.window_counts.append(len(record.windows))
                for lo, hi, seg in record.windows:
                    answer.window_data.extend(
                        (
                            lo, hi,
                            seg.start.x, seg.start.y, seg.start.t,
                            seg.end.x, seg.end.y, seg.end.t,
                        )
                    )
            else:
                answer.partial_tids.append(record.tid)
                answer.partial_values.append(record.dissim)
        answer.stats = stats
        answer.counters = counters
        return answer

    def to_records(self) -> list[CandidateRecord]:
        """Inverse of :meth:`from_records` — rebuilds the exact-first,
        partial-second record order :func:`~repro.search.bfmst.candidate_records`
        produces, so the merged ranking is byte-identical to the
        in-process path."""
        records: list[CandidateRecord] = []
        offset = 0
        for i, tid in enumerate(self.exact_tids):
            windows: list[tuple[float, float, STSegment]] = []
            for _ in range(self.window_counts[i]):
                lo, hi, x1, y1, t1, x2, y2, t2 = self.window_data[
                    offset : offset + 8
                ]
                windows.append(
                    (lo, hi, STSegment(STPoint(x1, y1, t1), STPoint(x2, y2, t2)))
                )
                offset += 8
            records.append(
                CandidateRecord(
                    tid,
                    self.exact_values[i],
                    self.exact_error_bounds[i],
                    True,
                    windows,
                )
            )
        for i, tid in enumerate(self.partial_tids):
            records.append(
                CandidateRecord(tid, self.partial_values[i], 0.0, False, ())
            )
        return records

    # ------------------------------------------------------------------
    # the one serialization contract
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "shard_answer": ANSWER_VERSION,
            "shard_id": int(self.shard_id),
            "signature": [int(v) for v in self.signature],
            "exact_tids": [int(v) for v in self.exact_tids],
            "exact_values": [float(v) for v in self.exact_values],
            "exact_error_bounds": [
                float(v) for v in self.exact_error_bounds
            ],
            "window_counts": [int(v) for v in self.window_counts],
            "window_data": [float(v) for v in self.window_data],
            "partial_tids": [int(v) for v in self.partial_tids],
            "partial_values": [float(v) for v in self.partial_values],
            "stats": self.stats,
            "counters": self.counters,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ShardAnswer":
        _require(isinstance(doc, dict), "shard answer must be an object")
        version = doc.get("shard_answer")
        _require(
            version == ANSWER_VERSION,
            f"unsupported shard answer version {version!r} (this build "
            f"speaks version {ANSWER_VERSION})",
        )
        sig = doc.get("signature")
        _require(
            isinstance(sig, (list, tuple)) and len(sig) == 3,
            f"signature must be [num_nodes, num_entries, root_page], "
            f"got {sig!r}",
        )
        exact_tids = list(doc.get("exact_tids", ()))
        exact_values = list(doc.get("exact_values", ()))
        exact_error_bounds = list(doc.get("exact_error_bounds", ()))
        window_counts = list(doc.get("window_counts", ()))
        window_data = list(doc.get("window_data", ()))
        partial_tids = list(doc.get("partial_tids", ()))
        partial_values = list(doc.get("partial_values", ()))
        _require(
            len(exact_tids)
            == len(exact_values)
            == len(exact_error_bounds)
            == len(window_counts),
            "exact candidate columns have mismatched lengths",
        )
        _require(
            len(window_data) == 8 * sum(window_counts),
            f"window_data carries {len(window_data)} floats for "
            f"{sum(window_counts)} windows (want 8 per window)",
        )
        _require(
            len(partial_tids) == len(partial_values),
            "partial candidate columns have mismatched lengths",
        )
        stats = doc.get("stats") or {}
        counters = doc.get("counters") or {}
        _require(isinstance(stats, dict), "stats must be an object")
        _require(isinstance(counters, dict), "counters must be an object")
        return cls(
            shard_id=int(doc.get("shard_id", 0)),
            signature=(int(sig[0]), int(sig[1]), int(sig[2])),
            exact_tids=exact_tids,
            exact_values=exact_values,
            exact_error_bounds=exact_error_bounds,
            window_counts=window_counts,
            window_data=window_data,
            partial_tids=partial_tids,
            partial_values=partial_values,
            stats=stats,
            counters=counters,
        )

    def __reduce__(self):
        return (ShardAnswer.from_dict, (self.as_dict(),))


class QueryPlanner:
    """Selects shards by intersecting per-shard extents with the query.

    ``extents`` is the per-shard root-MBR list (``None`` marks an empty
    shard, which is always pruned).  The planner is stateless beyond
    it; refresh it after a rebuild via :meth:`update_extents`.
    """

    def __init__(self, extents: list[MBR3D | None]) -> None:
        self.extents = list(extents)

    def update_extents(self, extents: list[MBR3D | None]) -> None:
        self.extents = list(extents)

    def plan(self, query, period: tuple[float, float] | None) -> ShardSelection:
        """Shard selection for ``query`` over ``period``.

        The temporal filter applies to every query type; the spatial
        filter only when the query is itself a hard spatial predicate
        (an :class:`~repro.geometry.MBR2D` range window).
        """
        span = self._span(query, period)
        window = query if isinstance(query, MBR2D) else None
        plan = ShardSelection(
            reason="time+space" if window is not None else (
                "time" if span is not None else "all"
            )
        )
        for shard_id, extent in enumerate(self.extents):
            if extent is None:
                plan.pruned.append(shard_id)
                continue
            if span is not None and (
                extent.tmin > span[1] or extent.tmax < span[0]
            ):
                plan.pruned.append(shard_id)
                continue
            if window is not None and (
                extent.xmin > window.xmax
                or extent.xmax < window.xmin
                or extent.ymin > window.ymax
                or extent.ymax < window.ymin
            ):
                plan.pruned.append(shard_id)
                continue
            plan.selected.append(shard_id)
        return plan

    @staticmethod
    def _span(query, period) -> tuple[float, float] | None:
        if period is not None:
            return (period[0], period[1])
        if isinstance(query, Trajectory):
            return (query.t_start, query.t_end)
        return None  # point/window queries carry no implicit period


def budget_buffers(
    shards,
    fraction: float = 0.10,
    total_max_pages: int = 1000,
    min_pages: int = 8,
) -> list[int]:
    """Split one global buffer budget across shard buffer pools.

    Each shard's pool is resized to ``fraction`` of its own page file,
    capped so the *sum* of caps equals ``total_max_pages`` distributed
    proportionally to shard size (every shard keeps at least
    ``min_pages``).  Returns the resulting per-shard capacities.
    """
    total_pages = sum(s.pagefile.num_pages for s in shards)
    capacities: list[int] = []
    for s in shards:
        if total_pages > 0:
            share = int(total_max_pages * s.pagefile.num_pages / total_pages)
        else:
            share = min_pages
        cap = s.buffer.resize_to_fraction(
            fraction, max(min_pages, share), min_pages
        )
        capacities.append(cap)
    return capacities
