"""Saving and loading sharded indexes.

A sharded index persists as a **directory**: one
``shard_<i>.pages`` file (plus its ``.meta.json`` sidecar, both written
by :func:`repro.index.persistence.save_index`) per shard, and a
``manifest.json`` tying them together:

.. code-block:: json

    {
      "version": 2,
      "kind": "rtree",
      "num_shards": 4,
      "partitioner": {"kind": "temporal", "num_shards": 4,
                      "boundaries": [500.0, 1000.0, 1500.0]},
      "shards": [
        {"file": "shard_0000.pages", "num_nodes": 12, "num_entries": 310,
         "num_pages": 14, "pages_sha256": "…",
         "extent": [0.0, 0.0, 0.0, 1.0, 1.0, 500.0]},
        ...
      ]
    }

``extent`` is the shard's root MBR (``null`` for an empty shard) so a
loader — or an external tool — can do shard pre-filtering straight from
the manifest; ``pages_sha256`` is each shard file's content digest,
recorded at save time for ``fsck``/``verify``-time integrity checks.

The directory is committed crash-safely: every shard file is published
atomically by ``save_index`` (tmp + fsync + rename), and the manifest —
itself written atomically — goes **last**, making it the commit point:
a crash mid-save never leaves a manifest pointing at torn shards.
``load_sharded_index`` validates the manifest and every shard file
before touching pages, raising
:class:`~repro.exceptions.StorageError` on corruption or missing
shards.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..exceptions import StorageError
from ..index import NO_PAGE
from ..index.persistence import load_index, save_index
from ..storage import atomic_write_bytes
from .index import ShardedIndex

__all__ = [
    "save_sharded_index",
    "load_sharded_index",
    "read_manifest",
    "MANIFEST_NAME",
]

MANIFEST_NAME = "manifest.json"

_MANIFEST_VERSION = 2


def _shard_filename(i: int) -> str:
    return f"shard_{i:04d}.pages"


def save_sharded_index(
    sharded: ShardedIndex,
    directory: str | Path,
    *,
    signatures: bool = False,
) -> None:
    """Write every shard's pages + a ``manifest.json`` into
    ``directory`` (created; must not already contain a manifest).

    Shards are committed first (each atomically), the manifest last —
    the manifest's existence means the whole directory is complete.
    With ``signatures=True`` each non-empty shard also gets a
    trajectory-signature sidecar (see :mod:`repro.filter`).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest_path = directory / MANIFEST_NAME
    if manifest_path.exists():
        raise StorageError(f"{manifest_path} already exists; refusing to overwrite")

    shard_records = []
    for i, index in enumerate(sharded.shards):
        filename = _shard_filename(i)
        shard_meta = save_index(
            index, directory / filename, signatures=signatures
        )
        extent = (
            list(index.mbr().as_tuple()) if index.root_page != NO_PAGE else None
        )
        shard_records.append(
            {
                "file": filename,
                "num_nodes": index.num_nodes,
                "num_entries": index.num_entries,
                "num_pages": shard_meta["num_pages"],
                "pages_sha256": shard_meta["pages_sha256"],
                "extent": extent,
            }
        )

    manifest = {
        "version": _MANIFEST_VERSION,
        "kind": sharded.kind,
        "num_shards": sharded.num_shards,
        "partitioner": sharded.partitioner_params,
        "shards": shard_records,
    }
    atomic_write_bytes(
        manifest_path, json.dumps(manifest, indent=2).encode("ascii")
    )


def read_manifest(directory: str | Path) -> dict:
    """Read and structurally validate a shard directory's manifest."""
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise StorageError(f"missing shard manifest {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise StorageError(f"{manifest_path}: corrupt manifest: {exc}") from exc
    version = manifest.get("version")
    if version == 1:
        raise StorageError(
            f"{manifest_path}: this is a v1 shard directory; this build "
            f"reads manifest version {_MANIFEST_VERSION}.  Migrate each "
            f"shard with repro.index.migrate_index_v1 (or rebuild) — "
            f"see docs/STORAGE.md"
        )
    if version != _MANIFEST_VERSION:
        raise StorageError(
            f"{manifest_path}: unsupported manifest version {version!r}"
        )
    records = manifest.get("shards")
    if not isinstance(records, list) or not records:
        raise StorageError(f"{manifest_path}: manifest lists no shards")
    if len(records) != manifest.get("num_shards"):
        raise StorageError(
            f"{manifest_path}: num_shards={manifest.get('num_shards')} but "
            f"{len(records)} shard records"
        )
    return manifest


def load_sharded_index(
    directory: str | Path,
    buffer_fraction: float = 0.10,
    buffer_max_pages: int = 1000,
    *,
    backend: str = "disk",
    verify: bool = False,
) -> ShardedIndex:
    """Reopen a sharded index directory for querying (read-only).

    ``backend``/``verify`` are forwarded to :func:`load_index` per
    shard.  The ``buffer_max_pages`` budget is global: it is split
    evenly across shards here, and the engine's planner re-budgets
    proportionally to shard size when it opens a session.
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    records = manifest["shards"]

    per_shard_pages = max(1, buffer_max_pages // len(records))
    shards = []
    for record in records:
        shard_path = directory / record["file"]
        # load_index would silently create an empty page file, so check
        # existence first to turn a missing shard into a hard error.
        if not shard_path.exists():
            raise StorageError(f"missing shard file {shard_path}")
        index = load_index(
            shard_path,
            buffer_fraction,
            per_shard_pages,
            backend=backend,
            verify=verify,
        )
        if index.num_entries != record["num_entries"]:
            raise StorageError(
                f"{shard_path}: manifest says {record['num_entries']} "
                f"entries, sidecar says {index.num_entries}"
            )
        shards.append(index)
    return ShardedIndex(
        shards,
        kind=manifest.get("kind"),
        partitioner_params=manifest.get("partitioner"),
    )
