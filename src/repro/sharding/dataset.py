"""Partitioned view of a trajectory dataset.

A :class:`ShardedDataset` *is a* :class:`~repro.trajectory.TrajectoryDataset`
holding every trajectory (so dataset-level algorithms — linear scan,
CNN, quality experiments — run on it unchanged), plus the partition:
``shards[i]`` is a plain :class:`TrajectoryDataset` with shard *i*'s
trajectories and ``assignments`` maps object id → shard id.  Shards are
disjoint and cover the full dataset; trajectories are shared, never
copied.
"""

from __future__ import annotations

from typing import Iterable

from ..trajectory import Trajectory, TrajectoryDataset
from .partitioners import Partitioner

__all__ = ["ShardedDataset"]


class ShardedDataset(TrajectoryDataset):
    """A dataset plus its trajectory-to-shard partition."""

    def __init__(
        self, trajectories: Iterable[Trajectory], partitioner: Partitioner
    ) -> None:
        super().__init__(trajectories)
        partitioner.fit(self)
        self.partitioner = partitioner
        self.num_shards = partitioner.num_shards
        self.shards: list[TrajectoryDataset] = [
            TrajectoryDataset() for _ in range(self.num_shards)
        ]
        self.assignments: dict = {}
        for tr in self:
            shard = partitioner.shard_of(tr)
            self.shards[shard].add(tr)
            self.assignments[tr.object_id] = shard

    @classmethod
    def partition(
        cls, dataset: TrajectoryDataset, partitioner: Partitioner
    ) -> "ShardedDataset":
        """Partition an existing dataset (insertion order preserved)."""
        return cls(dataset, partitioner)

    def shard_of(self, object_id) -> int:
        """Shard id holding ``object_id``; raises ``KeyError`` when
        unknown."""
        try:
            return self.assignments[object_id]
        except KeyError:
            raise KeyError(f"no trajectory with id {object_id!r}") from None

    def shard_sizes(self) -> list[int]:
        return [len(s) for s in self.shards]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedDataset({len(self)} trajectories, "
            f"{self.num_shards} shards via {self.partitioner.kind}, "
            f"sizes={self.shard_sizes()})"
        )
