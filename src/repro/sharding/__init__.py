"""Dataset/index sharding: partitioners, sharded build, manifest I/O.

The serving-scale layer: partition a trajectory collection into N
disjoint shards, build one paged index per shard, and persist the whole
thing as a directory with a JSON manifest.  The cross-shard search
(:func:`repro.search.bfmst.bfmst_search_sharded`) and the
planner/executor engine (:class:`repro.engine.ShardedQueryEngine`)
build on these primitives.
"""

from .dataset import ShardedDataset
from .index import ShardedIndex, build_sharded_index
from .partitioners import (
    PARTITIONER_KINDS,
    HashPartitioner,
    Partitioner,
    RoundRobinPartitioner,
    SpatialPartitioner,
    TemporalPartitioner,
    make_partitioner,
    partitioner_from_params,
)
from .persistence import (
    MANIFEST_NAME,
    load_sharded_index,
    save_sharded_index,
)

__all__ = [
    "Partitioner",
    "RoundRobinPartitioner",
    "HashPartitioner",
    "SpatialPartitioner",
    "TemporalPartitioner",
    "PARTITIONER_KINDS",
    "make_partitioner",
    "partitioner_from_params",
    "ShardedDataset",
    "ShardedIndex",
    "build_sharded_index",
    "MANIFEST_NAME",
    "save_sharded_index",
    "load_sharded_index",
]
