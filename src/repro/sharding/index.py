"""Per-shard index build and the aggregate :class:`ShardedIndex`.

Each shard gets its own complete :class:`~repro.index.base.TrajectoryIndex`
(own page file, own LRU buffer pool); :class:`ShardedIndex` is the thin
aggregate the planner and the cross-shard search operate on.  The
aggregate ``max_speed`` is the maximum over shards — trajectories are
partitioned, never split, so this equals the single-index value and the
speed-dependent DISSIM bounds stay *identical* to the unsharded search.
"""

from __future__ import annotations

from ..exceptions import IndexError_, QueryError
from ..geometry import MBR3D
from ..index import NO_PAGE, TrajectoryIndex
from ..storage import IOStats
from .dataset import ShardedDataset

__all__ = ["ShardedIndex", "build_sharded_index"]


class _PooledIOStats:
    """Snapshot/diff view over several ``IOStats`` blocks, summed — lets
    ``query_trace`` account page traffic across every shard at once."""

    def __init__(self, sources: list[IOStats]) -> None:
        self._sources = sources

    def snapshot(self) -> IOStats:
        total = IOStats()
        for s in self._sources:
            total.physical_reads += s.physical_reads
            total.physical_writes += s.physical_writes
            total.logical_reads += s.logical_reads
            total.buffer_hits += s.buffer_hits
            total.buffer_misses += s.buffer_misses
            total.evictions += s.evictions
        return total

    def diff(self, earlier: IOStats) -> IOStats:
        return self.snapshot().diff(earlier)


class ShardedIndex:
    """N per-shard trajectory indexes behind one aggregate facade."""

    is_sharded = True

    def __init__(
        self,
        shards: list[TrajectoryIndex],
        kind: str | None = None,
        partitioner_params: dict | None = None,
    ) -> None:
        if not shards:
            raise QueryError("a sharded index needs at least one shard")
        self.shards = shards
        self.kind = kind
        self.partitioner_params = partitioner_params
        self.page_size = shards[0].page_size

    # ------------------------------------------------------------------
    # aggregate metadata (mirrors the TrajectoryIndex attributes the
    # search and engine layers consume)
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def num_nodes(self) -> int:
        return sum(s.num_nodes for s in self.shards)

    @property
    def num_entries(self) -> int:
        return sum(s.num_entries for s in self.shards)

    @property
    def trajectory_ids(self) -> set:
        out: set = set()
        for s in self.shards:
            out |= s.trajectory_ids
        return out

    @property
    def max_speed(self) -> float:
        # Global V_max ingredient: the fastest segment over all shards.
        return max(s.max_speed for s in self.shards)

    @property
    def node_accesses(self) -> int:
        return sum(s.node_accesses for s in self.shards)

    @property
    def stats(self) -> _PooledIOStats:
        """Aggregate I/O counters over the shard page files (the
        duck-typed source :func:`repro.obs.query_trace` looks for)."""
        return _PooledIOStats([s.pagefile.stats for s in self.shards])

    def extents(self) -> list[MBR3D | None]:
        """Per-shard root MBRs (``None`` for empty shards) — the
        planner's pre-filter input."""
        return [
            s.mbr() if s.root_page != NO_PAGE else None for s in self.shards
        ]

    def mbr(self) -> MBR3D:
        boxes = [b for b in self.extents() if b is not None]
        if not boxes:
            raise IndexError_("empty index has no MBR")
        out = boxes[0]
        for b in boxes[1:]:
            out = out.union(b)
        return out

    def range_search(self, box: MBR3D) -> list:
        """Leaf entries intersecting ``box``, concatenated over shards
        (same contract as
        :meth:`~repro.index.base.TrajectoryIndex.range_search`, so the
        range/CNN algorithms run on a sharded index unchanged)."""
        out: list = []
        for s in self.shards:
            out.extend(s.range_search(box))
        return out

    def size_mb(self) -> float:
        return sum(s.size_mb() for s in self.shards)

    def close(self) -> None:
        """Close any disk-backed shard page files."""
        for s in self.shards:
            close = getattr(s.pagefile, "close", None)
            if close is not None:
                close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedIndex({self.num_shards} shards, kind={self.kind!r}, "
            f"{self.num_entries} entries)"
        )


def build_sharded_index(
    sharded: ShardedDataset,
    index_cls: type[TrajectoryIndex],
    page_size: int = 4096,
    buffer_fraction: float = 0.10,
    buffer_max_pages: int = 1000,
) -> ShardedIndex:
    """Build one finalized index per shard of ``sharded``.

    Empty shards (possible under skewed range partitions) get an empty
    finalized index so shard ids stay aligned with the dataset's.
    """
    from ..index.persistence import _kind_of

    shards: list[TrajectoryIndex] = []
    for shard_ds in sharded.shards:
        index = index_cls(page_size=page_size)
        index.bulk_insert(shard_ds)
        index.finalize(buffer_fraction, buffer_max_pages)
        shards.append(index)
    return ShardedIndex(
        shards,
        kind=_kind_of(shards[0]),
        partitioner_params=sharded.partitioner.params(),
    )
