"""Trajectory-to-shard assignment strategies.

A partitioner maps every trajectory of a dataset to exactly one of
``num_shards`` shards — trajectories are never split across shards, so
a candidate's DISSIM accumulation happens entirely inside one shard
and the cross-shard search merges *disjoint* candidate sets.

Four strategies cover the usual serving layouts:

* :class:`RoundRobinPartitioner` — dataset order modulo shard count;
  the load-balancing default when nothing is known about the data,
* :class:`HashPartitioner` — a multiplicative hash of the (integer)
  trajectory id; stable under dataset reordering,
* :class:`SpatialPartitioner` — equi-populated slabs over the
  trajectory MBR centre's x coordinate (quantile boundaries are
  computed from the dataset being partitioned and persisted in the
  shard manifest),
* :class:`TemporalPartitioner` — the same quantile scheme over the
  trajectory's temporal midpoint; with staggered fleets this gives the
  planner's time-extent pre-filter real pruning power.

``partitioner.params()`` round-trips through the JSON shard manifest
(:mod:`repro.sharding.persistence`) via :func:`partitioner_from_params`.
"""

from __future__ import annotations

from bisect import bisect_right

from ..exceptions import QueryError, TrajectoryError
from ..trajectory import Trajectory, TrajectoryDataset

__all__ = [
    "Partitioner",
    "RoundRobinPartitioner",
    "HashPartitioner",
    "SpatialPartitioner",
    "TemporalPartitioner",
    "PARTITIONER_KINDS",
    "make_partitioner",
    "partitioner_from_params",
]

# Knuth's multiplicative constant — spreads consecutive integer ids
# across shards without the modulo banding of ``tid % n``.
_HASH_MULTIPLIER = 2654435761
_HASH_MODULUS = 1 << 32


class Partitioner:
    """Base class: assigns trajectories to ``num_shards`` shards."""

    kind = "abstract"

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise QueryError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards

    def fit(self, dataset: TrajectoryDataset) -> "Partitioner":
        """Derive any data-dependent state (quantile boundaries) from
        the dataset about to be partitioned; returns ``self``."""
        return self

    def shard_of(self, trajectory: Trajectory) -> int:
        """Shard id in ``[0, num_shards)`` for one trajectory."""
        raise NotImplementedError

    def params(self) -> dict:
        """JSON-ready manifest block reconstructing this partitioner."""
        return {"kind": self.kind, "num_shards": self.num_shards}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(num_shards={self.num_shards})"


class RoundRobinPartitioner(Partitioner):
    """Dataset order modulo shard count (balanced by construction)."""

    kind = "round_robin"

    def __init__(self, num_shards: int) -> None:
        super().__init__(num_shards)
        self._next = 0
        self._assigned: dict = {}

    def shard_of(self, trajectory: Trajectory) -> int:
        oid = trajectory.object_id
        shard = self._assigned.get(oid)
        if shard is None:
            shard = self._next % self.num_shards
            self._assigned[oid] = shard
            self._next += 1
        return shard


class HashPartitioner(Partitioner):
    """Multiplicative hash of the integer trajectory id."""

    kind = "hash"

    def shard_of(self, trajectory: Trajectory) -> int:
        oid = trajectory.object_id
        if not isinstance(oid, int):
            raise TrajectoryError(
                f"hash partitioning requires integer object ids, got {oid!r}"
            )
        return (oid * _HASH_MULTIPLIER % _HASH_MODULUS) % self.num_shards


class _QuantilePartitioner(Partitioner):
    """Shared machinery of the range partitioners: sort every
    trajectory's scalar key, cut at equi-populated quantiles, assign by
    bisection.  Boundaries are the manifest-persisted state."""

    def __init__(
        self, num_shards: int, boundaries: list[float] | None = None
    ) -> None:
        super().__init__(num_shards)
        self.boundaries = list(boundaries) if boundaries is not None else None

    def _key(self, trajectory: Trajectory) -> float:
        raise NotImplementedError

    def fit(self, dataset: TrajectoryDataset) -> "Partitioner":
        keys = sorted(self._key(tr) for tr in dataset)
        if not keys:
            raise TrajectoryError("cannot fit a range partitioner on an empty dataset")
        self.boundaries = [
            keys[(i * len(keys)) // self.num_shards]
            for i in range(1, self.num_shards)
        ]
        return self

    def shard_of(self, trajectory: Trajectory) -> int:
        if self.boundaries is None:
            raise QueryError(
                f"{self.kind} partitioner is unfitted: call fit(dataset) "
                f"or construct it with explicit boundaries"
            )
        return bisect_right(self.boundaries, self._key(trajectory))

    def params(self) -> dict:
        out = super().params()
        out["boundaries"] = self.boundaries
        return out


class SpatialPartitioner(_QuantilePartitioner):
    """Equi-populated x-slabs over the trajectory MBR centre."""

    kind = "spatial"

    def _key(self, trajectory: Trajectory) -> float:
        box = trajectory.mbr()
        return (box.xmin + box.xmax) / 2.0


class TemporalPartitioner(_QuantilePartitioner):
    """Equi-populated slabs over the trajectory's temporal midpoint."""

    kind = "temporal"

    def _key(self, trajectory: Trajectory) -> float:
        return (trajectory.t_start + trajectory.t_end) / 2.0


PARTITIONER_KINDS = {
    cls.kind: cls
    for cls in (
        RoundRobinPartitioner,
        HashPartitioner,
        SpatialPartitioner,
        TemporalPartitioner,
    )
}


def make_partitioner(kind: str, num_shards: int) -> Partitioner:
    """``kind`` in round_robin | hash | spatial | temporal → instance
    (range partitioners come back unfitted; ``fit`` runs at partition
    time)."""
    try:
        cls = PARTITIONER_KINDS[kind]
    except KeyError:
        raise QueryError(
            f"unknown partitioner kind {kind!r}; expected one of "
            f"{sorted(PARTITIONER_KINDS)}"
        ) from None
    return cls(num_shards)


def partitioner_from_params(params: dict) -> Partitioner:
    """Rebuild a partitioner from its manifest ``params()`` block."""
    kind = params.get("kind")
    if kind not in PARTITIONER_KINDS:
        raise QueryError(f"unknown partitioner kind {kind!r} in manifest")
    cls = PARTITIONER_KINDS[kind]
    num_shards = int(params["num_shards"])
    if issubclass(cls, _QuantilePartitioner):
        return cls(num_shards, boundaries=params.get("boundaries"))
    return cls(num_shards)
