"""repro.obs — query-level observability.

The measurement substrate for the paper's observable costs (node
accesses, pruned candidates, refinement work) and for performance
regression tracking: a lightweight metrics registry (counters, gauges,
timers, histograms), a per-query :class:`QueryTrace` that composes the
storage layer's :class:`~repro.storage.stats.IOStats` snapshot/diff
with the new instrumentation points, and JSON export for benchmark
harnesses.

Tracing is opt-in and zero-cost-when-disabled: instrumentation sites
across the layers guard on :data:`repro.obs.state.ACTIVE`, which is
``None`` unless a :func:`query_trace` block is open.  See
``docs/OBSERVABILITY.md`` for the metric name catalogue.
"""

from . import state
from .registry import (
    Counter,
    DEFAULT_HISTOGRAM_BOUNDS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopRegistry,
    NOOP_REGISTRY,
    Timer,
)
from .trace import QueryTrace, query_trace

__all__ = [
    "state",
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "NoopRegistry",
    "NOOP_REGISTRY",
    "DEFAULT_HISTOGRAM_BOUNDS",
    "QueryTrace",
    "query_trace",
]
