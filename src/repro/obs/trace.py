"""Per-query trace context.

A :class:`QueryTrace` scopes one query (or any unit of work): while it
is active (installed in :mod:`repro.obs.state` by the
:func:`query_trace` context manager), every instrumentation point in
the storage, index, search and distance layers records into its
registry.  On exit it composes the existing
:class:`~repro.storage.stats.IOStats` snapshot/diff mechanism — the
page-traffic view the seed already had — with the new counters, and
the whole thing serialises to one JSON document.

Usage::

    from repro.obs import query_trace

    with query_trace(index, name="q42") as trace:
        result = bfmst_search(index, None, query, period=period, k=5)
    print(trace.to_json(indent=2))

``source`` may be anything that leads to an ``IOStats``: the stats
block itself, a page file / buffer manager (``.stats``), or an index
(``.pagefile.stats``).  Pass ``None`` to trace without I/O accounting.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager

from . import state as _state
from .registry import MetricsRegistry

__all__ = ["QueryTrace", "query_trace"]


def _resolve_io(source):
    """Duck-typed walk from ``source`` to an ``IOStats``-like object
    (anything with ``snapshot``/``diff``); ``None`` stays ``None``."""
    if source is None:
        return None
    for obj in (
        source,
        getattr(source, "stats", None),
        getattr(getattr(source, "pagefile", None), "stats", None),
    ):
        if obj is not None and hasattr(obj, "snapshot") and hasattr(obj, "diff"):
            return obj
    raise TypeError(
        f"cannot find IOStats on {type(source).__name__!r}: pass an "
        f"IOStats, a page file, a buffer manager or an index"
    )


def _io_as_dict(io) -> dict:
    """Counter fields of an ``IOStats`` (dataclass or compatible)."""
    fields = (
        "physical_reads",
        "physical_writes",
        "logical_reads",
        "buffer_hits",
        "buffer_misses",
        "evictions",
        "fsyncs",
        "mmap_reads",
        "checksum_failures",
    )
    out = {f: getattr(io, f) for f in fields if hasattr(io, f)}
    if hasattr(io, "hit_ratio"):
        out["hit_ratio"] = io.hit_ratio
    return out


class QueryTrace:
    """One query's worth of metrics plus the I/O delta it caused."""

    __slots__ = (
        "name",
        "registry",
        "wall_time_s",
        "io",
        "_io_source",
        "_io_before",
        "_t0",
    )

    def __init__(self, name: str = "query", io=None, registry=None) -> None:
        self.name = name
        self.registry = registry if registry is not None else MetricsRegistry()
        self.wall_time_s = 0.0
        self.io = None  # IOStats diff, set by finish()
        self._io_source = _resolve_io(io)
        self._io_before = None
        self._t0 = None

    @property
    def enabled(self) -> bool:
        """False when backed by the no-op registry."""
        return self.registry.enabled

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "QueryTrace":
        self._t0 = time.perf_counter()
        if self._io_source is not None:
            self._io_before = self._io_source.snapshot()
        return self

    def finish(self) -> "QueryTrace":
        if self._t0 is not None:
            self.wall_time_s = time.perf_counter() - self._t0
        if self._io_source is not None and self._io_before is not None:
            self.io = self._io_source.diff(self._io_before)
        return self

    # ------------------------------------------------------------------
    # recording (thin delegates so call sites only need the trace)
    # ------------------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        self.registry.inc(name, n)

    def observe(self, name: str, value: float) -> None:
        self.registry.observe(name, value)

    def record_max(self, name: str, value: float) -> None:
        self.registry.record_max(name, value)

    def time(self, name: str):
        return self.registry.time(name)

    @property
    def counters(self) -> dict[str, int]:
        return self.registry.counters

    @property
    def buffer_hit_ratio(self) -> float:
        """Hit ratio of the traced window's buffer traffic (0 when no
        I/O source was attached or nothing was requested)."""
        if self.io is None:
            return 0.0
        return self.io.hit_ratio

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_time_s": self.wall_time_s,
            "io": _io_as_dict(self.io) if self.io is not None else None,
            "metrics": self.registry.as_dict(),
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


@contextmanager
def query_trace(source=None, *, name: str = "query", registry=None):
    """Activate a :class:`QueryTrace` for the duration of the block.

    Installs the trace in the process-global slot (nesting restores the
    previous trace on exit) and snapshots/diffs the I/O stats reachable
    from ``source``.  Pass ``registry=NOOP_REGISTRY`` to exercise the
    trace lifecycle with inert instruments.
    """
    trace = QueryTrace(name=name, io=source, registry=registry)
    previous = _state.ACTIVE
    _state.ACTIVE = trace
    trace.start()
    try:
        yield trace
    finally:
        trace.finish()
        _state.ACTIVE = previous
