"""Metric instruments and the registry that owns them.

Four instrument kinds cover everything the paper's evaluation reports
(node accesses, pruned candidates, refinement work) and what a perf
regression harness needs on top:

* :class:`Counter` — monotonically increasing event count,
* :class:`Gauge` — last-value / high-water-mark sample,
* :class:`Timer` — accumulated wall time with call count,
* :class:`Histogram` — bucketed value distribution with min/max/sum.

A :class:`MetricsRegistry` creates instruments on first use and can
serialise the whole set to JSON (and back — see :meth:`from_dict`), so
benchmark runs can persist machine-readable counter lines next to
their timings.

:class:`NoopRegistry` (singleton :data:`NOOP_REGISTRY`) is the
zero-cost stand-in: every mutating method is inert and every accessor
returns shared do-nothing instruments, so hooks wired against it never
record anything.
"""

from __future__ import annotations

import json
import time
from bisect import bisect_right
from contextlib import contextmanager

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "NoopRegistry",
    "NOOP_REGISTRY",
    "DEFAULT_HISTOGRAM_BOUNDS",
]

# 1-2-5 decades: wide enough for entry counts, node fanouts and
# millisecond timings alike without tuning per metric.
DEFAULT_HISTOGRAM_BOUNDS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, n: int = 1) -> int:
        """Add ``n`` (default 1); returns the new value."""
        self.value += n
        return self.value

    def as_dict(self) -> int:
        return self.value


class Gauge:
    """A point-in-time sample (supports high-water-mark updates)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0) -> None:
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def record_max(self, value: float) -> None:
        """Keep the largest value seen (high-water mark)."""
        if value > self.value:
            self.value = value

    def as_dict(self) -> float:
        return self.value


class Timer:
    """Accumulated wall-clock time over any number of timed sections."""

    __slots__ = ("name", "count", "total_seconds", "max_seconds")

    def __init__(
        self,
        name: str,
        count: int = 0,
        total_seconds: float = 0.0,
        max_seconds: float = 0.0,
    ) -> None:
        self.name = name
        self.count = count
        self.total_seconds = total_seconds
        self.max_seconds = max_seconds

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    @contextmanager
    def time(self):
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.record(time.perf_counter() - start)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "max_seconds": self.max_seconds,
        }


class Histogram:
    """Fixed-bound bucketed distribution with exact min/max/sum.

    ``bounds`` are the *upper* edges of the first ``len(bounds)``
    buckets; one overflow bucket catches everything above the last
    edge (so ``counts`` has ``len(bounds) + 1`` slots).
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: tuple[float, ...] | None = None) -> None:
        self.name = name
        self.bounds = tuple(bounds) if bounds else DEFAULT_HISTOGRAM_BOUNDS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must be sorted: {self.bounds}")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def record(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Create-on-first-use instrument store with JSON round-tripping."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def timer(self, name: str) -> Timer:
        t = self._timers.get(name)
        if t is None:
            t = self._timers[name] = Timer(name)
        return t

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, bounds)
        return h

    # ------------------------------------------------------------------
    # one-shot conveniences (the forms the instrumentation sites use)
    # ------------------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).record(value)

    def record_max(self, name: str, value: float) -> None:
        self.gauge(name).record_max(value)

    def time(self, name: str):
        """``with registry.time("phase"): ...`` context manager."""
        return self.timer(name).time()

    # ------------------------------------------------------------------
    # inspection / export
    # ------------------------------------------------------------------
    @property
    def counters(self) -> dict[str, int]:
        """Plain ``{name: value}`` view of every counter."""
        return {name: c.value for name, c in self._counters.items()}

    def value(self, name: str) -> int:
        """Current value of a counter (0 when never incremented)."""
        c = self._counters.get(name)
        return c.value if c is not None else 0

    def snapshot(self) -> dict[str, int]:
        """Independent copy of the counter values (for before/after
        diffs around a query)."""
        return dict(self.counters)

    def as_dict(self) -> dict:
        return {
            "counters": {n: c.as_dict() for n, c in sorted(self._counters.items())},
            "gauges": {n: g.as_dict() for n, g in sorted(self._gauges.items())},
            "timers": {n: t.as_dict() for n, t in sorted(self._timers.items())},
            "histograms": {
                n: h.as_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        reg = cls()
        for name, value in data.get("counters", {}).items():
            reg._counters[name] = Counter(name, value)
        for name, value in data.get("gauges", {}).items():
            reg._gauges[name] = Gauge(name, value)
        for name, t in data.get("timers", {}).items():
            reg._timers[name] = Timer(
                name, t["count"], t["total_seconds"], t["max_seconds"]
            )
        for name, h in data.get("histograms", {}).items():
            hist = Histogram(name, tuple(h["bounds"]))
            hist.counts = list(h["counts"])
            hist.count = h["count"]
            hist.total = h["total"]
            hist.min = h["min"] if h["min"] is not None else float("inf")
            hist.max = h["max"] if h["max"] is not None else float("-inf")
            reg._histograms[name] = hist
        return reg

    @classmethod
    def from_json(cls, text: str) -> "MetricsRegistry":
        return cls.from_dict(json.loads(text))

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()
        self._histograms.clear()


class _NoopCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> int:
        return 0


class _NoopGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def record_max(self, value: float) -> None:
        pass


class _NoopTimer(Timer):
    __slots__ = ()

    def record(self, seconds: float) -> None:
        pass

    @contextmanager
    def time(self):
        yield self


class _NoopHistogram(Histogram):
    __slots__ = ()

    def record(self, value: float) -> None:
        pass


class NoopRegistry(MetricsRegistry):
    """A registry whose instruments discard everything.

    The default registry of the observability layer: hooks wired
    against it stay inert, so instrumented code paths cost nothing
    beyond the guard check.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._noop_counter = _NoopCounter("noop")
        self._noop_gauge = _NoopGauge("noop")
        self._noop_timer = _NoopTimer("noop")
        self._noop_histogram = _NoopHistogram("noop")

    def counter(self, name: str) -> Counter:
        return self._noop_counter

    def gauge(self, name: str) -> Gauge:
        return self._noop_gauge

    def timer(self, name: str) -> Timer:
        return self._noop_timer

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None
    ) -> Histogram:
        return self._noop_histogram

    def inc(self, name: str, n: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def record_max(self, name: str, value: float) -> None:
        pass


NOOP_REGISTRY = NoopRegistry()
