"""Process-global active-trace slot.

Instrumentation sites across the storage, index, search and distance
layers guard every recording with ``state.ACTIVE is not None`` — a
single module-attribute load and identity test, the cheapest check
Python offers — so a process that never opens a
:func:`~repro.obs.trace.query_trace` pays (almost) nothing for the
observability layer.

This module deliberately imports nothing: it sits below every other
``repro`` module so any layer can read the slot without import cycles.
Only :func:`repro.obs.trace.query_trace` writes it.
"""

from __future__ import annotations

__all__ = ["ACTIVE", "get_active"]

# The currently active QueryTrace, or None when tracing is off.
ACTIVE = None  # type: ignore[var-annotated]


def get_active():
    """The active :class:`~repro.obs.trace.QueryTrace`, or ``None``."""
    return ACTIVE
