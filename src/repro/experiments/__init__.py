"""Experiment harness regenerating the paper's tables and figures."""

from .datasets import (
    PAPER_SPECS,
    DatasetSpec,
    build_dataset,
    build_index,
    scaled_specs,
    table2,
)
from .performance import (
    PerfPoint,
    q1_cardinality,
    q2_query_length,
    q3_k,
    run_workload,
)
from .quality import (
    DEFAULT_MEASURES,
    DEFAULT_P_VALUES,
    QualityPoint,
    compression_profile,
    quality_experiment,
)
from .ascii_chart import ascii_chart, ascii_multi_chart
from .report import format_table, print_table

__all__ = [
    "DatasetSpec",
    "PAPER_SPECS",
    "scaled_specs",
    "build_dataset",
    "build_index",
    "table2",
    "QualityPoint",
    "quality_experiment",
    "compression_profile",
    "DEFAULT_P_VALUES",
    "DEFAULT_MEASURES",
    "PerfPoint",
    "run_workload",
    "q1_cardinality",
    "q2_query_length",
    "q3_k",
    "format_table",
    "print_table",
    "ascii_chart",
    "ascii_multi_chart",
]
