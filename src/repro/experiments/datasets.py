"""Dataset construction and the Table 2 summary.

Table 2 of the paper lists, per dataset: number of objects, number of
entries (line segments), the speed distribution, and the sizes of the
3D R-tree and TB-tree built over it.  :func:`table2` regenerates
exactly those columns for any scale.

The paper's full-scale datasets (S0100...S1000, ~2000 samples/object,
up to 2M entries) are one parameter away; the default ``scale``
shrinks the sample counts so a pure-Python run stays interactive (the
scaling *trends*, which is what Figure 10 is about, survive — see
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datagen import generate_gstd, generate_trucks
from ..index import RStarTree, RTree3D, STRTree, TBTree, TrajectoryIndex
from ..trajectory import TrajectoryDataset

__all__ = ["DatasetSpec", "PAPER_SPECS", "build_dataset", "build_index", "table2"]


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """One row of Table 2."""

    name: str
    kind: str  # "trucks" | "gstd"
    num_objects: int
    samples_per_object: int
    speed_distribution: str
    speed_sigma: float


#: The paper's datasets at full scale (Table 2).
PAPER_SPECS = (
    DatasetSpec("Trucks", "trucks", 273, 412, "Lognormal", 1.0),
    DatasetSpec("S0100", "gstd", 100, 2000, "Lognormal", 0.6),
    DatasetSpec("S0250", "gstd", 250, 2000, "Lognormal", 0.6),
    DatasetSpec("S0500", "gstd", 500, 2000, "Lognormal", 0.6),
    DatasetSpec("S1000", "gstd", 1000, 2000, "Lognormal", 0.6),
)


def scaled_specs(scale: float = 0.1) -> tuple[DatasetSpec, ...]:
    """The paper's specs with sample counts multiplied by ``scale``
    (object counts untouched — cardinality is the Q1 variable).

    The Trucks row keeps at least half its paper sampling density: its
    trajectories are few, and the TB-tree size comparison of Table 2
    only makes sense when a trajectory fills whole leaves.
    """
    out = []
    for s in PAPER_SPECS:
        minimum = s.samples_per_object // 2 if s.kind == "trucks" else 10
        out.append(
            DatasetSpec(
                s.name,
                s.kind,
                s.num_objects,
                max(int(s.samples_per_object * scale), minimum),
                s.speed_distribution,
                s.speed_sigma,
            )
        )
    return tuple(out)


def build_dataset(spec: DatasetSpec, seed: int = 7) -> TrajectoryDataset:
    """Generate the dataset a spec describes."""
    if spec.kind == "trucks":
        return generate_trucks(
            spec.num_objects,
            spec.samples_per_object,
            seed=seed,
            speed_sigma=spec.speed_sigma,
        )
    if spec.kind == "gstd":
        # "the heading of objects in all cases was random" (Sec. 5.1)
        return generate_gstd(
            spec.num_objects,
            spec.samples_per_object,
            seed=seed,
            speed_sigma=spec.speed_sigma,
            heading="random",
        )
    raise ValueError(f"unknown dataset kind {spec.kind!r}")


def build_index(
    dataset: TrajectoryDataset,
    tree: str = "rtree",
    page_size: int = 4096,
    finalize: bool = True,
) -> TrajectoryIndex:
    """Build a finalized 3D R-tree (``tree='rtree'``) or TB-tree
    (``'tbtree'``) over the dataset with the paper's 4 KB pages and
    10 %-capped-at-1000-pages buffer."""
    if tree == "rtree":
        index: TrajectoryIndex = RTree3D(page_size=page_size)
    elif tree == "tbtree":
        index = TBTree(page_size=page_size)
    elif tree == "strtree":
        index = STRTree(page_size=page_size)
    elif tree == "rstar":
        index = RStarTree(page_size=page_size)
    else:
        raise ValueError(f"unknown tree kind {tree!r}")
    index.bulk_insert(dataset)
    if finalize:
        index.finalize()
    return index


def table2(specs=None, seed: int = 7) -> list[dict]:
    """Regenerate Table 2: one dict per dataset with object/entry
    counts and both index sizes in MB."""
    if specs is None:
        specs = scaled_specs()
    rows = []
    for spec in specs:
        dataset = build_dataset(spec, seed=seed)
        rtree = build_index(dataset, "rtree")
        tbtree = build_index(dataset, "tbtree")
        rows.append(
            {
                "dataset": spec.name,
                "objects": len(dataset),
                "entries": dataset.total_segments(),
                "speed_distribution": spec.speed_distribution,
                "sigma": spec.speed_sigma,
                "rtree_mb": rtree.size_mb(),
                "tbtree_mb": tbtree.size_mb(),
            }
        )
    return rows
