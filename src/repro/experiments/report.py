"""Plain-text table rendering for the experiment harness.

Every experiment returns structured rows; these helpers print them the
way the paper's tables/figures read, so a bench run's stdout *is* the
reproduction artifact.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "print_table"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render an ASCII table; floats use ``float_fmt``, everything else
    ``str()``."""

    def cell(v) -> str:
        if isinstance(v, bool):
            return str(v)
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, v in enumerate(row):
            widths[i] = max(widths[i], len(v))

    def line(values: Sequence[str]) -> str:
        return "  ".join(v.rjust(w) for v, w in zip(values, widths))

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> None:
    print(format_table(headers, rows, title, float_fmt))
    print()
