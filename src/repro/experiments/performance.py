"""The performance experiments — Figure 10 / Table 3 of the paper.

Three query sets, evaluated on both trees:

* **Q1** — scale dataset cardinality (S0100...S1000), query length 5 %,
  k = 1;
* **Q2** — scale query length 1 %...100 % on S0500, k = 1;
* **Q3** — scale k 1...10 on S0500, query length 5 %.

Each point reports mean execution time and mean pruning power (the
fraction of index nodes never touched), exactly the two panels of
Figure 10.  Correctness is cross-checked against the linear scan when
``verify=True``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..datagen import make_workload
from ..index import TrajectoryIndex
from ..search import bfmst_search, linear_scan_kmst
from ..trajectory import TrajectoryDataset
from .datasets import DatasetSpec, build_dataset, build_index

__all__ = [
    "PerfPoint",
    "run_workload",
    "q1_cardinality",
    "q2_query_length",
    "q3_k",
]


@dataclass(frozen=True, slots=True)
class PerfPoint:
    """One point of a Figure 10 panel."""

    tree: str
    variable: str  # what was swept: "objects" | "query_length" | "k"
    value: float
    queries: int
    mean_time_ms: float
    mean_pruning_power: float
    mean_node_accesses: float
    mean_leaf_accesses: float
    mean_entries_processed: float
    mismatches: int  # BFMST vs linear scan disagreements (0 expected)

    @property
    def retrieval_density(self) -> float:
        """Trajectory entries integrated per leaf page read — the
        clustering benefit behind the paper's Q2 crossover claim (the
        TB-tree's trajectory-bundled pages deliver more candidate data
        per I/O as queries lengthen)."""
        if self.mean_leaf_accesses == 0:
            return 0.0
        return self.mean_entries_processed / self.mean_leaf_accesses


def run_workload(
    index: TrajectoryIndex,
    dataset: TrajectoryDataset,
    workload,
    k: int = 1,
    tree_name: str = "rtree",
    variable: str = "objects",
    value: float = 0.0,
    verify: bool = False,
) -> PerfPoint:
    """Execute every query of a workload against one index and
    aggregate time / pruning statistics."""
    total_time = 0.0
    total_pruning = 0.0
    total_accesses = 0.0
    total_leaves = 0.0
    total_entries = 0.0
    mismatches = 0
    for query, period in workload:
        start = time.perf_counter()
        result = bfmst_search(index, None, query, period=period, k=k)
        matches, stats = result.matches, result.stats
        total_time += time.perf_counter() - start
        total_pruning += stats.pruning_power
        total_accesses += stats.node_accesses
        total_leaves += stats.leaf_accesses
        total_entries += stats.entries_processed
        if verify:
            truth = linear_scan_kmst(
                None, dataset, query, period=period, k=k, exact=True
            )
            got = {m.trajectory_id for m in matches}
            want = {m.trajectory_id for m in truth.matches}
            if got != want:
                mismatches += 1
    n = len(workload)
    return PerfPoint(
        tree_name,
        variable,
        value,
        n,
        1000.0 * total_time / n,
        total_pruning / n,
        total_accesses / n,
        total_leaves / n,
        total_entries / n,
        mismatches,
    )


def _gstd_spec(num_objects: int, samples: int) -> DatasetSpec:
    return DatasetSpec(
        f"S{num_objects:04d}", "gstd", num_objects, samples, "Lognormal", 0.6
    )


def q1_cardinality(
    cardinalities=(100, 250, 500, 1000),
    samples_per_object: int = 100,
    num_queries: int = 20,
    query_length: float = 0.05,
    trees=("rtree", "tbtree"),
    seed: int = 7,
    verify: bool = False,
    page_size: int = 4096,
) -> list[PerfPoint]:
    """Q1: execution time / pruning power vs dataset cardinality.

    ``page_size`` may be scaled down together with the per-object
    sample count so the leaves-per-trajectory geometry (and with it
    the TB-tree's temporal selectivity) matches the paper's full-scale
    setup — see EXPERIMENTS.md.
    """
    points: list[PerfPoint] = []
    for n in cardinalities:
        dataset = build_dataset(_gstd_spec(n, samples_per_object), seed=seed)
        workload = make_workload(dataset, num_queries, query_length, seed=seed)
        for tree in trees:
            index = build_index(dataset, tree, page_size=page_size)
            points.append(
                run_workload(
                    index,
                    dataset,
                    workload,
                    k=1,
                    tree_name=tree,
                    variable="objects",
                    value=float(n),
                    verify=verify,
                )
            )
    return points


def q2_query_length(
    query_lengths=(0.01, 0.05, 0.25, 0.50, 1.00),
    num_objects: int = 500,
    samples_per_object: int = 100,
    num_queries: int = 10,
    trees=("rtree", "tbtree"),
    seed: int = 7,
    verify: bool = False,
    page_size: int = 4096,
) -> list[PerfPoint]:
    """Q2: execution time / pruning power vs query length on S0500."""
    dataset = build_dataset(_gstd_spec(num_objects, samples_per_object), seed=seed)
    indexes = {
        tree: build_index(dataset, tree, page_size=page_size) for tree in trees
    }
    points: list[PerfPoint] = []
    for length in query_lengths:
        workload = make_workload(dataset, num_queries, length, seed=seed)
        for tree in trees:
            points.append(
                run_workload(
                    indexes[tree],
                    dataset,
                    workload,
                    k=1,
                    tree_name=tree,
                    variable="query_length",
                    value=length,
                    verify=verify,
                )
            )
    return points


def q3_k(
    ks=(1, 2, 5, 10),
    num_objects: int = 500,
    samples_per_object: int = 100,
    num_queries: int = 10,
    query_length: float = 0.05,
    trees=("rtree", "tbtree"),
    seed: int = 7,
    verify: bool = False,
    page_size: int = 4096,
) -> list[PerfPoint]:
    """Q3: execution time / pruning power vs k on S0500."""
    dataset = build_dataset(_gstd_spec(num_objects, samples_per_object), seed=seed)
    indexes = {
        tree: build_index(dataset, tree, page_size=page_size) for tree in trees
    }
    workload = make_workload(dataset, num_queries, query_length, seed=seed)
    points: list[PerfPoint] = []
    for k in ks:
        for tree in trees:
            points.append(
                run_workload(
                    indexes[tree],
                    dataset,
                    workload,
                    k=k,
                    tree_name=tree,
                    variable="k",
                    value=float(k),
                    verify=verify,
                )
            )
    return points
