"""Tiny ASCII line charts for the experiment harness.

The paper's evaluation is figures, not tables; these helpers render a
figure-shaped view of a series directly into the bench output, so a
``pytest benchmarks/ | tee`` transcript *looks* like Figure 10:

    ms
    398.07 |                                        o
    298.61 |
    199.14 |                   o
     99.68 |        o
      0.21 | o
           +-----------------------------------------
             100      250       500            1000

Deterministic, dependency-free, and itself under test.
"""

from __future__ import annotations

__all__ = ["ascii_chart", "ascii_multi_chart"]


def ascii_chart(
    xs: list[float],
    ys: list[float],
    height: int = 10,
    width: int = 48,
    y_label: str = "",
    marker: str = "o",
) -> str:
    """Scatter one series on a character grid (x and y scaled to the
    data ranges; y axis annotated with real values).  The marker is
    ``y_label``'s first letter when a label is given, else ``marker``.
    """
    return ascii_multi_chart(xs, {y_label or marker: ys}, height, width)


def ascii_multi_chart(
    xs: list[float],
    series: dict[str, list[float]],
    height: int = 10,
    width: int = 48,
) -> str:
    """Several series on one grid; each gets the first letter of its
    name as its marker.  Returns a multi-line string."""
    if not xs:
        raise ValueError("no data points")
    if height < 2 or width < 8:
        raise ValueError("chart too small")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(ys)} points, x has {len(xs)}"
            )
    all_y = [y for ys in series.values() for y in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    x_lo, x_hi = min(xs), max(xs)
    y_span = (y_hi - y_lo) or 1.0
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for name, ys in series.items():
        marker = name[0] if name else "o"
        for x, y in zip(xs, ys):
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((y - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    label_width = max(
        len(f"{y_hi:.2f}"), len(f"{y_lo:.2f}")
    )
    lines = []
    for i, row in enumerate(grid):
        frac = (height - 1 - i) / (height - 1)
        value = y_lo + frac * y_span
        lines.append(f"{value:>{label_width}.2f} | " + "".join(row).rstrip())
    lines.append(" " * label_width + " +" + "-" * width)
    # x tick labels at both ends
    left = f"{x_lo:g}"
    right = f"{x_hi:g}"
    pad = width - len(left) - len(right)
    lines.append(
        " " * (label_width + 3) + left + " " * max(pad, 1) + right
    )
    if len(series) > 1:
        legend = "   ".join(f"{name[0]} = {name}" for name in series)
        lines.append(" " * (label_width + 3) + legend)
    return "\n".join(lines)
