"""The quality experiment — Figure 9 (and Figure 8) of the paper.

Protocol (Section 5.2): compress every trajectory of the Trucks
dataset with TD-TR at parameter ``p`` (a fraction of the trajectory's
length), use each compressed copy as a 1-MST query against the original
dataset, and count how often a measure fails to return the original
trajectory as the most similar.  Measures: DISSIM (ours), LCSS and EDR
plus their interpolation-improved variants, with ``eps`` set to a
quarter of the maximum coordinate standard deviation over the
z-normalised dataset, as [5] prescribes.  DTW is offered as an optional
extra (the paper excludes it as dominated).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..compression import td_tr_fraction
from ..distance import fast as _fast
from ..distance.dtw import dtw_distance
from ..distance.edr import edr_distance
from ..distance.lcss import lcss_distance
from ..search import linear_scan_kmst
from ..trajectory import Trajectory, TrajectoryDataset

__all__ = [
    "DEFAULT_P_VALUES",
    "DEFAULT_MEASURES",
    "QualityPoint",
    "quality_experiment",
    "compression_profile",
]

DEFAULT_P_VALUES = (0.001, 0.01, 0.02, 0.05, 0.10)
DEFAULT_MEASURES = ("DISSIM", "LCSS", "LCSS-I", "EDR", "EDR-I")


@dataclass(frozen=True, slots=True)
class QualityPoint:
    """One point of Figure 9."""

    measure: str
    p: float
    queries: int
    failures: int

    @property
    def failure_rate(self) -> float:
        return self.failures / self.queries if self.queries else 0.0


def _interpolated(query: Trajectory, target: Trajectory) -> Trajectory:
    """The "-I" enrichment: resample the query at the target's
    timestamps inside the query lifetime."""
    stamps = sorted(
        set(p.t for p in query.samples)
        | set(
            t
            for t in (p.t for p in target.samples)
            if query.t_start <= t <= query.t_end
        )
    )
    return query.resampled(stamps) if len(stamps) >= 2 else query


def _dp_value_fast(measure, query, q_arr, tr, eps: float) -> float:
    """One (query, candidate) DP value via the numpy row-sweeps."""
    t_arr = _fast.coords(tr)
    if measure == "LCSS":
        return _fast.lcss_distance_fast(q_arr, t_arr, eps)
    if measure == "EDR":
        return float(_fast.edr_distance_fast(q_arr, t_arr, eps))
    if measure == "LCSS-I":
        return _fast.lcss_distance_fast(
            _fast.coords(_interpolated(query, tr)), t_arr, eps
        )
    if measure == "EDR-I":
        return float(
            _fast.edr_distance_fast(
                _fast.coords(_interpolated(query, tr)), t_arr, eps
            )
        )
    if measure == "DTW":
        return _fast.dtw_distance_fast(q_arr, t_arr)
    raise ValueError(f"unknown measure {measure!r}")


def _dp_value_reference(measure, query, tr, eps: float) -> float:
    """The same value via the pure-Python reference metrics — the
    no-numpy fallback (orders of magnitude slower, identical results)."""
    if measure == "LCSS":
        return lcss_distance(query, tr, eps)
    if measure == "EDR":
        return float(edr_distance(query, tr, eps))
    if measure == "LCSS-I":
        return lcss_distance(_interpolated(query, tr), tr, eps)
    if measure == "EDR-I":
        return float(edr_distance(_interpolated(query, tr), tr, eps))
    if measure == "DTW":
        return dtw_distance(query, tr)
    raise ValueError(f"unknown measure {measure!r}")


def _most_similar_dp(
    measure: str,
    query: Trajectory,
    dataset: TrajectoryDataset,
    eps: float,
) -> int:
    """Argmin trajectory id under a DP-based measure (lower id wins
    ties, making failures deterministic)."""
    best_id = None
    best_val = None
    use_fast = _fast.have_numpy()
    q_arr = _fast.coords(query) if use_fast else None
    for tr in dataset:
        if use_fast:
            val = _dp_value_fast(measure, query, q_arr, tr, eps)
        else:
            val = _dp_value_reference(measure, query, tr, eps)
        key = (val, tr.object_id)
        if best_val is None or key < best_val:
            best_val = key
            best_id = tr.object_id
    assert best_id is not None
    return best_id


def quality_experiment(
    dataset: TrajectoryDataset,
    p_values=DEFAULT_P_VALUES,
    measures=DEFAULT_MEASURES,
    max_queries: int | None = None,
    seed: int = 99,
) -> list[QualityPoint]:
    """Run the Figure 9 protocol and return one :class:`QualityPoint`
    per (measure, p) pair.

    ``max_queries`` caps how many trajectories are used as queries (a
    seeded sample); ``None`` uses all of them, like the paper.
    """
    ids = dataset.ids()
    if max_queries is not None and max_queries < len(ids):
        rng = random.Random(seed)
        ids = rng.sample(ids, max_queries)

    normalised = dataset.normalised()
    eps = normalised.max_spatial_std() / 4.0

    points: list[QualityPoint] = []
    for p in p_values:
        compressed = {oid: td_tr_fraction(dataset[oid], p) for oid in ids}
        norm_compressed = {
            oid: td_tr_fraction(normalised[oid], p) for oid in ids
        }
        for measure in measures:
            failures = 0
            for oid in ids:
                if measure == "DISSIM":
                    query = compressed[oid]
                    result = linear_scan_kmst(
                        None, dataset, query,
                        period=(query.t_start, query.t_end), k=1,
                    )
                    winner = result.ids[0] if result.matches else None
                else:
                    winner = _most_similar_dp(
                        measure, norm_compressed[oid], normalised, eps
                    )
                if winner != oid:
                    failures += 1
            points.append(QualityPoint(measure, p, len(ids), failures))
    return points


def compression_profile(
    trajectory: Trajectory, p_values=(0.0, 0.001, 0.01, 0.02)
) -> list[tuple[float, int]]:
    """Figure 8: vertex counts of one trajectory compressed at the
    paper's p values, as ``(p, num_vertices)`` pairs."""
    return [(p, len(td_tr_fraction(trajectory, p))) for p in p_values]
