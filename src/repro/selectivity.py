"""Selectivity estimation for spatiotemporal queries.

The paper's second future-work direction (Section 6) is selectivity
estimation for query optimisation, in the spirit of Tao, Sun &
Papadias.  This module provides the classic building block: a uniform
(x, y, t) grid histogram over the indexed segments, from which an
optimiser can estimate

* how many segments / distinct objects a **range query** will touch
  (pick index scan vs. full scan), and
* how expensive a **k-MST query window** will be (how much data is
  temporally alive and spatially near the query corridor).

Estimates are *estimates*: the contract is calibration on benign data
(tested), never exactness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .exceptions import QueryError, TrajectoryError
from .geometry import MBR2D, MBR3D
from .trajectory import Trajectory, TrajectoryDataset

__all__ = ["SpatioTemporalHistogram", "MSTCostEstimate"]


@dataclass(frozen=True, slots=True)
class MSTCostEstimate:
    """Rough cost prediction for a k-MST query window."""

    alive_segments: float  # segments expected inside the time window
    corridor_segments: float  # of those, near the query's spatial corridor
    corridor_fraction: float  # corridor / alive (1.0 => nothing prunable)


class SpatioTemporalHistogram:
    """A uniform (x, y, t) grid of segment counts.

    Each segment contributes weight 1, spread over the cells its
    bounding box overlaps proportionally to overlap volume (degenerate
    boxes fall back to their centre cell).  Memory is
    ``nx * ny * nt`` floats — 16x16x16 (the default) is 4096 cells.
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        nx: int = 16,
        ny: int = 16,
        nt: int = 16,
    ) -> None:
        if min(nx, ny, nt) < 1:
            raise QueryError("histogram resolution must be >= 1 per axis")
        if len(dataset) == 0:
            raise TrajectoryError("cannot build a histogram of nothing")
        self.nx, self.ny, self.nt = nx, ny, nt
        self.bounds = dataset.mbr()
        self.total_segments = dataset.total_segments()
        self._cells = [0.0] * (nx * ny * nt)
        self._steps = (
            max(self.bounds.xmax - self.bounds.xmin, 1e-12) / nx,
            max(self.bounds.ymax - self.bounds.ymin, 1e-12) / ny,
            max(self.bounds.tmax - self.bounds.tmin, 1e-12) / nt,
        )
        for tr in dataset:
            for seg in tr.segments():
                self._deposit(seg.mbr())

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _axis_range(self, lo: float, hi: float, axis: int) -> range:
        origin = (self.bounds.xmin, self.bounds.ymin, self.bounds.tmin)[axis]
        step = self._steps[axis]
        n = (self.nx, self.ny, self.nt)[axis]
        first = min(max(int((lo - origin) / step), 0), n - 1)
        last = min(max(int(math.ceil((hi - origin) / step)) - 1, first), n - 1)
        return range(first, last + 1)

    def _cell_bounds(self, i: int, axis: int) -> tuple[float, float]:
        origin = (self.bounds.xmin, self.bounds.ymin, self.bounds.tmin)[axis]
        step = self._steps[axis]
        return (origin + i * step, origin + (i + 1) * step)

    def _deposit(self, box: MBR3D) -> None:
        xs = self._axis_range(box.xmin, box.xmax, 0)
        ys = self._axis_range(box.ymin, box.ymax, 1)
        ts = self._axis_range(box.tmin, box.tmax, 2)
        weights = []
        for i in xs:
            wx = _overlap(self._cell_bounds(i, 0), (box.xmin, box.xmax))
            for j in ys:
                wy = _overlap(self._cell_bounds(j, 1), (box.ymin, box.ymax))
                for k in ts:
                    wt = _overlap(self._cell_bounds(k, 2), (box.tmin, box.tmax))
                    weights.append((self._index(i, j, k), wx * wy * wt))
        total = sum(w for _idx, w in weights)
        if total <= 0.0:
            # Degenerate box (point/axis-parallel): centre cell only.
            i = self._axis_range(box.xmin, box.xmax, 0)[0]
            j = self._axis_range(box.ymin, box.ymax, 1)[0]
            k = self._axis_range(box.tmin, box.tmax, 2)[0]
            self._cells[self._index(i, j, k)] += 1.0
            return
        for idx, w in weights:
            self._cells[idx] += w / total

    def _index(self, i: int, j: int, k: int) -> int:
        return (k * self.ny + j) * self.nx + i

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def estimate_box_count(self, box: MBR3D) -> float:
        """Expected number of segments whose box intersects ``box``
        (uniformity-within-cell assumption)."""
        total = 0.0
        xs = self._axis_range(box.xmin, box.xmax, 0)
        ys = self._axis_range(box.ymin, box.ymax, 1)
        ts = self._axis_range(box.tmin, box.tmax, 2)
        for i in xs:
            fx = _coverage(self._cell_bounds(i, 0), (box.xmin, box.xmax))
            for j in ys:
                fy = _coverage(self._cell_bounds(j, 1), (box.ymin, box.ymax))
                for k in ts:
                    ft = _coverage(self._cell_bounds(k, 2), (box.tmin, box.tmax))
                    total += self._cells[self._index(i, j, k)] * fx * fy * ft
        return total

    def estimate_range_selectivity(
        self, window: MBR2D, t_start: float, t_end: float
    ) -> float:
        """Fraction of all segments a range query is expected to touch."""
        if t_start > t_end:
            raise QueryError(f"inverted interval [{t_start}, {t_end}]")
        box = MBR3D(
            window.xmin, window.ymin, t_start, window.xmax, window.ymax, t_end
        )
        return min(self.estimate_box_count(box) / self.total_segments, 1.0)

    def estimate_alive_segments(self, t_start: float, t_end: float) -> float:
        """Segments expected inside a time window (spatially anywhere)."""
        box = MBR3D(
            self.bounds.xmin,
            self.bounds.ymin,
            t_start,
            self.bounds.xmax,
            self.bounds.ymax,
            t_end,
        )
        return self.estimate_box_count(box)

    def estimate_mst_cost(
        self, query: Trajectory, t_start: float, t_end: float,
        corridor_width: float | None = None,
    ) -> MSTCostEstimate:
        """Predict how much data a BFMST run over this window will
        face: everything temporally alive, and the subset inside the
        query's spatial corridor (its bounding rectangle, inflated by
        ``corridor_width``, default one spatial cell)."""
        alive = self.estimate_alive_segments(t_start, t_end)
        pad = corridor_width
        if pad is None:
            pad = max(self._steps[0], self._steps[1])
        q = query.sliced(max(t_start, query.t_start), min(t_end, query.t_end))
        r = q.spatial_mbr()
        corridor = MBR3D(
            r.xmin - pad, r.ymin - pad, t_start,
            r.xmax + pad, r.ymax + pad, t_end,
        )
        near = self.estimate_box_count(corridor)
        near = min(near, alive) if alive > 0 else near
        fraction = near / alive if alive > 0 else 1.0
        return MSTCostEstimate(alive, near, min(fraction, 1.0))


def _overlap(cell: tuple[float, float], span: tuple[float, float]) -> float:
    """Length of the intersection of two 1D intervals."""
    return max(0.0, min(cell[1], span[1]) - max(cell[0], span[0]))


def _coverage(cell: tuple[float, float], span: tuple[float, float]) -> float:
    """Fraction of the cell the span covers (for intersect-counting we
    additionally count touching cells fully when the span is
    degenerate)."""
    width = cell[1] - cell[0]
    if width <= 0.0:
        return 1.0
    return min(_overlap(cell, span) / width, 1.0)
