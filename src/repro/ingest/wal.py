"""The write-ahead log of the live ingestion path.

One WAL file is an append-only sequence of CRC-framed point records —
the same 16-byte v2 frame the page format uses (``repro.storage.format``),
packed back-to-back with no padding.  The payload of every record is a
fixed ``<qddd`` quad: ``(object_id, x, y, t)``.

Durability contract: :meth:`WriteAheadLog.append` hands the framed
record to the OS; :meth:`WriteAheadLog.sync` flushes and fsyncs, so a
point is durable once the ``sync`` that follows it returns.  Recovery
(:func:`recover_wal`) scans the log front to back, replays the longest
clean prefix and truncates everything from the first framing/CRC
violation onwards — a torn tail disappears, a bit-flip in the middle
fences off the records behind it.  Either way the surviving state is a
prefix of what was acknowledged; the log never yields a record that
was not written exactly as it is returned.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import NamedTuple

from ..exceptions import StorageError
from ..storage import RECORD_HEADER_BYTES, frame_record, fsync_directory, parse_record
from ..storage.format import KIND_WAL

__all__ = [
    "WAL_RECORD_BYTES",
    "WalRecord",
    "WriteAheadLog",
    "replay_wal",
    "recover_wal",
]

_POINT_FMT = struct.Struct("<qddd")  # object_id, x, y, t

#: On-disk size of one point record (16-byte frame + 32-byte payload).
WAL_RECORD_BYTES = RECORD_HEADER_BYTES + _POINT_FMT.size


class WalRecord(NamedTuple):
    """One replayed WAL entry: a single GPS point of one object."""

    object_id: int
    x: float
    y: float
    t: float


class WriteAheadLog:
    """Append-only framed point log over one file."""

    def __init__(self, path: str | Path, *, registry=None) -> None:
        self.path = Path(path)
        self._registry = registry
        self._fh = open(self.path, "ab")
        self._unsynced = 0

    # ------------------------------------------------------------------
    def _inc(self, name: str, n: int = 1) -> None:
        if self._registry is not None:
            self._registry.inc(name, n)

    def append(self, object_id: int, x: float, y: float, t: float) -> None:
        """Frame one point and hand it to the OS (durable after
        :meth:`sync`)."""
        payload = _POINT_FMT.pack(object_id, x, y, t)
        self._fh.write(frame_record(payload, KIND_WAL))
        self._unsynced += 1
        self._inc("ingest.wal_appends")

    def sync(self) -> None:
        """Flush and fsync: every appended record is durable on return."""
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._unsynced = 0
        self._inc("ingest.wal_syncs")

    @property
    def unsynced_appends(self) -> int:
        return self._unsynced

    def size_bytes(self) -> int:
        self._fh.flush()
        return self.path.stat().st_size

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def replay_wal(path: str | Path) -> tuple[list[WalRecord], int, str | None]:
    """Scan a WAL file and return ``(records, clean_bytes, damage)``.

    ``records`` is the longest clean prefix; ``clean_bytes`` is its
    length on disk; ``damage`` is ``None`` for a fully clean log, else
    the error message of the first bad frame.  Never raises for a
    damaged log — the caller decides whether a damaged tail is a crash
    artefact to truncate (:func:`recover_wal`) or a reason to refuse.
    """
    data = Path(path).read_bytes()
    records: list[WalRecord] = []
    offset = 0
    while offset < len(data):
        try:
            kind, payload, end = parse_record(
                data, offset, where=f"{path}: record {len(records)}"
            )
        except StorageError as exc:
            return records, offset, str(exc)
        if len(payload) != _POINT_FMT.size:
            return (
                records,
                offset,
                f"{path}: record {len(records)} carries {len(payload)} "
                f"payload bytes, point records carry {_POINT_FMT.size}",
            )
        oid, x, y, t = _POINT_FMT.unpack(payload)
        records.append(WalRecord(oid, x, y, t))
        offset = end
    return records, offset, None


def recover_wal(path: str | Path, *, registry=None) -> list[WalRecord]:
    """Replay the clean prefix of a WAL and truncate any damaged tail.

    Returns the surviving records.  After this call the file on disk
    contains exactly the returned records (fsynced), so a second
    recovery is a no-op.
    """
    path = Path(path)
    records, clean_bytes, damage = replay_wal(path)
    if damage is not None:
        dropped = path.stat().st_size - clean_bytes
        with open(path, "r+b") as fh:
            fh.truncate(clean_bytes)
            fh.flush()
            os.fsync(fh.fileno())
        fsync_directory(path.parent)
        if registry is not None:
            registry.inc("ingest.wal_truncations")
            registry.inc("ingest.wal_truncated_bytes", dropped)
    if registry is not None:
        registry.inc("ingest.wal_replayed_records", len(records))
    return records
