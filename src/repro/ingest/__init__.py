"""repro.ingest — the live ingestion subsystem.

Crash-safe online writes layered on the durable-storage machinery: a
CRC-framed write-ahead log (:mod:`repro.ingest.wal`), a mutable
TB-tree memtable (:mod:`repro.ingest.memtable`) and generation-based
immutable serving with pinned, refcounted snapshots
(:mod:`repro.ingest.store`).  See ``docs/INGEST.md`` for the formats
and the recovery semantics.
"""

from .memtable import Memtable
from .store import Generation, IngestStore, LiveView, merged_kmst
from .wal import (
    WAL_RECORD_BYTES,
    WalRecord,
    WriteAheadLog,
    recover_wal,
    replay_wal,
)

__all__ = [
    "IngestStore",
    "LiveView",
    "Generation",
    "Memtable",
    "merged_kmst",
    "WriteAheadLog",
    "WalRecord",
    "WAL_RECORD_BYTES",
    "replay_wal",
    "recover_wal",
]
