"""The mutable in-memory index absorbing live appends.

The memtable is a TB-tree — the one structure in the codebase built
for this access pattern: a new point of an object appends one segment
to the object's *active leaf* (``TBTree.insert_entry``), an O(1)
amortised chained-leaf append, exactly the insertion path the original
TB-tree paper designed for trajectory growth.

An object lives in the memtable with its **entire** point history
("dirty-set" semantics): the first post-compaction point of an object
adopts the full history from the store, so the merged query path can
search the memtable for dirty objects and the immutable generation for
everything else — two disjoint sets whose union is exactly the
from-scratch dataset, which is what makes live answers byte-identical
to a rebuild.

:meth:`Memtable.snapshot` freezes the current tree for lock-free
querying: the build buffer is flushed and the in-memory page list is
shallow-copied (pages are immutable ``bytes``), so a snapshot costs
O(pages) pointer copies and shares all page data with the live tree.
"""

from __future__ import annotations

from ..exceptions import TrajectoryError
from ..geometry import STPoint, STSegment
from ..index import LeafEntry, TBTree
from ..storage import InMemoryPageFile
from ..trajectory import Trajectory

__all__ = ["Memtable"]


class Memtable:
    """Mutable TB-tree plus the point buffers feeding it."""

    def __init__(self, page_size: int = 4096, *, registry=None) -> None:
        self.page_size = page_size
        self._registry = registry
        self._tree = TBTree(page_size=page_size)
        #: object id -> full point history (``(x, y, t)`` tuples) of
        #: every object that has received a point since the last
        #: compaction (the dirty set), including single-point objects
        #: whose first segment has not materialised yet.
        self._points: dict[int, list[tuple[float, float, float]]] = {}
        #: every point the memtable holds, seeded history included
        self.num_points = 0
        #: only the points that arrived since this memtable was born —
        #: the compaction-threshold measure (seeding an object's history
        #: re-counts old points in ``num_points`` but not here)
        self.new_points = 0

    def _inc(self, name: str, n: int = 1) -> None:
        if self._registry is not None:
            self._registry.inc(name, n)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def adopt(self, object_id: int, history: list[tuple[float, float, float]]) -> None:
        """Bring a (possibly pre-existing) object into the dirty set
        with its full history; further points go through :meth:`append`.
        """
        if object_id in self._points:
            raise TrajectoryError(f"object {object_id} already in memtable")
        self._points[object_id] = pts = list(history)
        self.num_points += len(pts)
        self.new_points += 1  # the point that made the object dirty
        if len(pts) >= 2:
            self._tree.insert(Trajectory(object_id, pts))
        if len(pts) > 1:
            self._inc("ingest.memtable_seeds")

    def append(self, object_id: int, x: float, y: float, t: float) -> None:
        """Absorb one more point of an already-dirty object."""
        pts = self._points[object_id]
        prev = pts[-1]
        pts.append((x, y, t))
        self.num_points += 1
        self.new_points += 1
        if object_id in self._tree.trajectory_ids:
            seg = STSegment(STPoint(*prev), STPoint(x, y, t))
            if seg.speed > self._tree.max_speed:
                self._tree.max_speed = seg.speed
            self._tree.insert_entry(LeafEntry(object_id, seg))
        elif len(pts) >= 2:
            # second point of a brand-new object: its first segment(s)
            self._tree.insert(Trajectory(object_id, pts))

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def __contains__(self, object_id: int) -> bool:
        return object_id in self._points

    def __len__(self) -> int:
        return len(self._points)

    @property
    def dirty_ids(self) -> set[int]:
        return set(self._points)

    @property
    def num_entries(self) -> int:
        return self._tree.num_entries

    @property
    def max_speed(self) -> float:
        return self._tree.max_speed

    def points_of(self, object_id: int) -> list[tuple[float, float, float]]:
        return list(self._points[object_id])

    def snapshot(self) -> TBTree | None:
        """A frozen copy of the current tree (``None`` when empty).

        The snapshot owns a shallow copy of the page list, so later
        appends to the live tree never touch it; it is finalized
        (read-only) and safe to search from another thread.
        """
        if self._tree.num_entries == 0:
            return None
        live = self._tree
        live.buffer.flush(live._serializer)
        pagefile = InMemoryPageFile(self.page_size)
        pagefile._pages = list(live.pagefile._pages)
        frozen = TBTree(pagefile=pagefile)
        frozen.root_page = live.root_page
        frozen.num_nodes = live.num_nodes
        frozen.num_entries = live.num_entries
        frozen.max_speed = live.max_speed
        frozen.trajectory_ids = set(live.trajectory_ids)
        frozen._active_leaf = dict(live._active_leaf)
        frozen._finalized = True
        return frozen
