"""The live ingestion store: WAL + memtable + immutable generations.

An :class:`IngestStore` owns one directory::

    store/
      MANIFEST.json            <- commit point (atomic_write_bytes)
      wal-000001.log           <- the active write-ahead log
      gen-000003.pages         <- current generation's index (v2 pages)
      gen-000003.pages.meta.json
      gen-000003.data.json     <- point history snapshot at compaction

Write path: :meth:`IngestStore.append` validates the point (integer
id, finite coordinates, strictly increasing time per object), frames
it into the WAL, then absorbs it into the memtable.  Points are
durable once the WAL fsync covering them returns (``sync_every=1``,
the default, fsyncs every append; raise it to trade durability lag for
throughput).

Compaction (:meth:`compact`) freezes the current state into the next
*generation*: a full index over every object's complete history, saved
with the crash-safe ``save_index`` protocol and served read-only over
the mmap backend, plus a JSON snapshot of the raw point history.  The
manifest rewrite is the commit point; the WAL is rotated to a fresh
file just before it and the superseded one deleted just after, so a
crash at *any* instant recovers to either the old generation + full
WAL or the new generation + empty WAL — the same logical state.
Superseded generation files are removed once no reader pins them.

Query path: :meth:`view` pins the current generation (refcounted — a
racing compaction retires but never invalidates it) and snapshots the
memtable (O(pages) shallow copy).  A view searches the generation
*excluding* the dirty objects and the memtable snapshot (which holds
every dirty object's full history) under one shared k-th-best bound —
two disjoint candidate sets whose union is exactly the from-scratch
dataset, making every answer byte-identical to a full rebuild.
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path

from ..exceptions import StorageError, TrajectoryError
from ..index import load_index, save_index
from ..obs import MetricsRegistry
from ..obs import state as _obs
from ..search.bfmst import bfmst_search_sharded
from ..search.results import SearchStats
from ..storage import atomic_write_bytes, fsync_directory
from ..trajectory import Trajectory, TrajectoryDataset
from .memtable import Memtable
from .wal import WriteAheadLog, recover_wal

__all__ = ["Generation", "IngestStore", "LiveView", "merged_kmst"]

MANIFEST_NAME = "MANIFEST.json"
_MANIFEST_FORMAT = 1

_TREE_KINDS = ("rtree", "rstar", "tbtree", "strtree")


class _Recorder:
    """Fan counter increments out to the store's always-on registry and
    (when a query trace is active) the global observability slot."""

    __slots__ = ("registry",)

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry

    def inc(self, name: str, n: int = 1) -> None:
        self.registry.inc(name, n)
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.registry.inc(name, n)


class Generation:
    """One published, immutable index generation (refcounted)."""

    def __init__(self, number: int, index, pages_path: Path, data_path: Path) -> None:
        self.number = number
        self.index = index
        self.pages_path = pages_path
        self.data_path = data_path
        self.refcount = 0
        self.retired = False


class _MergedIndex:
    """Duck-typed sharded index over disjoint live parts, so the
    cross-shard BFMST machinery (shared k-th-best bound, global
    ranking/refinement) merges them exactly like physical shards."""

    is_sharded = True

    def __init__(self, shards: list) -> None:
        self.shards = shards

    @property
    def num_nodes(self) -> int:
        return sum(s.num_nodes for s in self.shards)

    @property
    def max_speed(self) -> float:
        return max((s.max_speed for s in self.shards), default=0.0)


def merged_kmst(
    views: list["LiveView"],
    query: Trajectory,
    period: tuple[float, float] | None = None,
    k: int = 1,
    *,
    kernels: str | None = "auto",
    filter: str = "auto",
    use_heuristic1: bool = True,
    use_heuristic2: bool = True,
    refine: bool = True,
    vmax: float | None = None,
):
    """k-MST over the union of several pinned views (one per store)
    under a single shared bound; returns ``(matches, stats)``.

    ``filter`` is the signature-filter mode: compacted generations
    carry sidecars and get filtered, the memtable part has none and is
    searched unfiltered (mode ``"on"`` therefore requires every part
    to carry one and is mainly useful in tests)."""
    parts = [part for view in views for part in view.parts]
    if not parts:
        return [], SearchStats()
    shard_hooks = {
        pos: {"exclude_ids": exclude}
        for pos, (_index, exclude) in enumerate(parts)
        if exclude
    }
    return bfmst_search_sharded(
        _MergedIndex([index for index, _exclude in parts]),
        query,
        period,
        k,
        vmax=vmax,
        use_heuristic1=use_heuristic1,
        use_heuristic2=use_heuristic2,
        refine=refine,
        kernels=kernels,
        filter=filter,
        shard_hooks=shard_hooks,
    )


class LiveView:
    """A consistent, pinned snapshot of one store for querying.

    ``parts`` is a list of ``(index, exclude_ids)`` pairs: the pinned
    generation index (dirty objects excluded) and the frozen memtable
    snapshot.  Close (or use as a context manager) to release the
    generation pin.
    """

    def __init__(self, store: "IngestStore", generation: Generation | None, parts) -> None:
        self._store = store
        self._generation = generation
        self.parts = parts
        self._closed = False

    @property
    def generation_number(self) -> int:
        return -1 if self._generation is None else self._generation.number

    def kmst(
        self,
        query: Trajectory,
        period: tuple[float, float] | None = None,
        k: int = 1,
        **kwargs,
    ):
        if self._closed:
            raise StorageError("view is closed")
        return merged_kmst([self], query, period, k, **kwargs)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            if self._generation is not None:
                self._store._unpin(self._generation)

    def __enter__(self) -> "LiveView":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class IngestStore:
    """Crash-safe online write path over one directory (see module
    docstring).  Thread-safe: appends/compactions serialise on one
    lock, queries run against pinned views outside it."""

    def __init__(
        self,
        directory: str | Path,
        *,
        sync_every: int = 1,
        auto_compact_points: int | None = None,
        _create: bool = False,
        tree: str = "tbtree",
        page_size: int = 4096,
    ) -> None:
        self.directory = Path(directory)
        self.metrics = MetricsRegistry()
        self._rec = _Recorder(self.metrics)
        self._lock = threading.RLock()
        self._closed = False
        self.sync_every = sync_every
        self.auto_compact_points = auto_compact_points
        self._failpoints = None  # test hook: callable(site_name)

        #: authoritative in-memory history: object id -> [(x, y, t), ...]
        self._history: dict[int, list[tuple[float, float, float]]] = {}
        self._last_t: dict[int, float] = {}
        self.num_points = 0
        self._generation: Generation | None = None

        if _create:
            self._initialise(tree, page_size)
        self._open_existing()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: str | Path,
        *,
        tree: str = "tbtree",
        page_size: int = 4096,
        sync_every: int = 1,
        auto_compact_points: int | None = None,
    ) -> "IngestStore":
        """Initialise a fresh store directory (which must not already
        hold one) and open it."""
        return cls(
            directory,
            sync_every=sync_every,
            auto_compact_points=auto_compact_points,
            _create=True,
            tree=tree,
            page_size=page_size,
        )

    @classmethod
    def open(
        cls,
        directory: str | Path,
        *,
        sync_every: int = 1,
        auto_compact_points: int | None = None,
    ) -> "IngestStore":
        """Open an existing store, recovering the WAL."""
        return cls(
            directory,
            sync_every=sync_every,
            auto_compact_points=auto_compact_points,
        )

    def _initialise(self, tree: str, page_size: int) -> None:
        if tree not in _TREE_KINDS:
            raise StorageError(
                f"unknown generation tree kind {tree!r}; expected one of "
                f"{list(_TREE_KINDS)}"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        if (self.directory / MANIFEST_NAME).exists():
            raise StorageError(
                f"{self.directory} already holds an ingest store"
            )
        wal_name = self._wal_name(1)
        (self.directory / wal_name).touch()
        fsync_directory(self.directory)
        self._write_manifest(
            {
                "format": _MANIFEST_FORMAT,
                "tree": tree,
                "page_size": page_size,
                "generation": -1,
                "wal": wal_name,
                "wal_seq": 1,
            }
        )

    def _open_existing(self) -> None:
        manifest_path = self.directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise StorageError(
                f"{self.directory} is not an ingest store (no {MANIFEST_NAME}); "
                f"use IngestStore.create"
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise StorageError(
                f"{manifest_path}: corrupt manifest: {exc}"
            ) from exc
        if manifest.get("format") != _MANIFEST_FORMAT:
            raise StorageError(
                f"{manifest_path}: unsupported store format "
                f"{manifest.get('format')!r}"
            )
        self.tree = manifest["tree"]
        if self.tree not in _TREE_KINDS:
            raise StorageError(
                f"{manifest_path}: unknown tree kind {self.tree!r}"
            )
        self.page_size = int(manifest["page_size"])
        self._wal_seq = int(manifest["wal_seq"])
        gen_number = int(manifest["generation"])
        wal_name = manifest["wal"]

        self._remove_orphans(gen_number, wal_name)

        if gen_number >= 0:
            self._generation = self._load_generation(gen_number)
            self._history = self._read_history(self._generation.data_path)
            for oid, pts in self._history.items():
                self._last_t[oid] = pts[-1][2]
            self.num_points = sum(len(pts) for pts in self._history.values())

        self._memtable = Memtable(self.page_size, registry=self._rec)
        wal_path = self.directory / wal_name
        if not wal_path.exists():
            raise StorageError(f"missing WAL file {wal_path}")
        records = recover_wal(wal_path, registry=self._rec)
        for i, rec in enumerate(records):
            last = self._last_t.get(rec.object_id)
            if last is not None and rec.t <= last:
                raise StorageError(
                    f"{wal_path}: record {i} regresses time for object "
                    f"{rec.object_id} ({rec.t} after {last})"
                )
            self._apply(rec.object_id, rec.x, rec.y, rec.t)
        if records:
            self._rec.inc("ingest.recoveries")
        self._wal = WriteAheadLog(wal_path, registry=self._rec)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._wal.close()
            if self._generation is not None:
                if self._generation.index.signatures is not None:
                    self._generation.index.signatures.close()
                self._generation.index.pagefile.close()

    def __enter__(self) -> "IngestStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # directory plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _wal_name(seq: int) -> str:
        return f"wal-{seq:06d}.log"

    def _gen_paths(self, number: int) -> tuple[Path, Path]:
        return (
            self.directory / f"gen-{number:06d}.pages",
            self.directory / f"gen-{number:06d}.data.json",
        )

    def _write_manifest(self, manifest: dict) -> None:
        atomic_write_bytes(
            self.directory / MANIFEST_NAME,
            json.dumps(manifest, indent=2).encode("ascii"),
        )

    def _manifest(self) -> dict:
        return {
            "format": _MANIFEST_FORMAT,
            "tree": self.tree,
            "page_size": self.page_size,
            "generation": (
                -1 if self._generation is None else self._generation.number
            ),
            "wal": self._wal_name(self._wal_seq),
            "wal_seq": self._wal_seq,
        }

    def _remove_orphans(self, gen_number: int, wal_name: str) -> None:
        """Delete leftovers of an interrupted compaction: generation
        files other than the committed one, WAL files other than the
        manifest's, and stray temporaries."""
        keep = {wal_name}
        if gen_number >= 0:
            pages, data = self._gen_paths(gen_number)
            keep.update(
                {
                    pages.name,
                    pages.name + ".meta.json",
                    pages.name + ".sig",
                    data.name,
                }
            )
        for path in self.directory.iterdir():
            name = path.name
            if name == MANIFEST_NAME or name in keep:
                continue
            if (
                name.startswith(("gen-", "wal-"))
                or name.endswith(".tmp")
            ):
                path.unlink(missing_ok=True)

    def _load_generation(self, number: int) -> Generation:
        pages, data = self._gen_paths(number)
        index = load_index(pages, backend="mmap")
        index.buffer.enable_thread_safety()
        return Generation(number, index, pages, data)

    @staticmethod
    def _read_history(data_path: Path) -> dict[int, list[tuple[float, float, float]]]:
        try:
            doc = json.loads(data_path.read_text())
        except FileNotFoundError:
            raise StorageError(f"missing generation data snapshot {data_path}")
        except json.JSONDecodeError as exc:
            raise StorageError(
                f"{data_path}: corrupt data snapshot: {exc}"
            ) from exc
        return {
            int(oid): [(float(x), float(y), float(t)) for x, y, t in pts]
            for oid, pts in doc["objects"].items()
        }

    def _fault(self, site: str) -> None:
        if self._failpoints is not None:
            self._failpoints(site)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def append(self, object_id: int, x: float, y: float, t: float) -> None:
        """Absorb one point: WAL first, then memtable.  Raises
        :class:`~repro.exceptions.TrajectoryError` for malformed points
        (nothing is written in that case)."""
        with self._lock:
            self._check_open()
            if not isinstance(object_id, int):
                raise TrajectoryError(
                    f"ingest requires integer object ids, got {object_id!r}"
                )
            x, y, t = float(x), float(y), float(t)
            if not (math.isfinite(x) and math.isfinite(y) and math.isfinite(t)):
                raise TrajectoryError(
                    f"object {object_id}: non-finite point ({x}, {y}, {t})"
                )
            last = self._last_t.get(object_id)
            if last is not None and t <= last:
                raise TrajectoryError(
                    f"object {object_id}: timestamps must strictly increase "
                    f"({t} after {last})"
                )
            self._wal.append(object_id, x, y, t)
            if self.sync_every and self._wal.unsynced_appends >= self.sync_every:
                self._wal.sync()
            self._apply(object_id, x, y, t)
            if (
                self.auto_compact_points
                and self._memtable.new_points >= self.auto_compact_points
            ):
                self.compact()

    def extend(self, points) -> int:
        """Append an iterable of ``(object_id, x, y, t)`` rows; returns
        how many were absorbed."""
        n = 0
        for object_id, x, y, t in points:
            self.append(object_id, x, y, t)
            n += 1
        return n

    def sync(self) -> None:
        """Force WAL durability for every acknowledged append."""
        with self._lock:
            self._check_open()
            self._wal.sync()

    def _apply(self, object_id: int, x: float, y: float, t: float) -> None:
        history = self._history.setdefault(object_id, [])
        history.append((x, y, t))
        self._last_t[object_id] = t
        self.num_points += 1
        if object_id in self._memtable:
            self._memtable.append(object_id, x, y, t)
        else:
            self._memtable.adopt(object_id, history)
        self._rec.inc("ingest.memtable_points")

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("ingest store is closed")

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def compact(self) -> int | None:
        """Flush the memtable into the next immutable generation.

        Returns the new generation number, or ``None`` when the
        memtable is empty (nothing to do).  The store keeps serving
        throughout; views pinned before the publish keep their
        generation until released.
        """
        with self._lock:
            self._check_open()
            if self._memtable.num_points == 0:
                return None
            try:
                return self._compact_locked()
            except BaseException:
                # A half-applied compaction leaves the in-process state
                # untrustworthy; the on-disk state is always consistent,
                # so the recovery path is close + reopen.
                self._closed = True
                raise

    def _compact_locked(self) -> int:
        self._wal.sync()
        number = (
            0 if self._generation is None else self._generation.number + 1
        )
        pages_path, data_path = self._gen_paths(number)
        self._fault("compact.begin")

        index = self._build_generation_index()
        save_index(index, pages_path, signatures=True)
        self._fault("compact.pages_committed")

        doc = {
            "objects": {
                str(oid): [list(p) for p in pts]
                for oid, pts in sorted(self._history.items())
            }
        }
        atomic_write_bytes(
            data_path, json.dumps(doc).encode("ascii")
        )
        self._fault("compact.data_committed")

        old_wal_path = self._wal.path
        new_seq = self._wal_seq + 1
        new_wal_path = self.directory / self._wal_name(new_seq)
        new_wal_path.touch()
        fsync_directory(self.directory)
        self._fault("compact.wal_rotated")

        # the commit point: after this rename the store *is* at the
        # new generation; before it, recovery sees the old one.
        old_generation = self._generation
        self._wal_seq = new_seq
        self._generation = self._load_generation(number)
        self._write_manifest(self._manifest())
        self._fault("compact.manifest_committed")

        self._wal.close()
        self._wal = WriteAheadLog(new_wal_path, registry=self._rec)
        old_wal_path.unlink(missing_ok=True)
        self._memtable = Memtable(self.page_size, registry=self._rec)
        if old_generation is not None:
            self._retire(old_generation)
        self._rec.inc("ingest.compactions")
        self._rec.inc("ingest.generations_published")
        self._fault("compact.done")
        return number

    def _build_generation_index(self):
        from ..index.persistence import _KINDS

        index = _KINDS[self.tree](page_size=self.page_size)
        for oid in sorted(self._history):
            pts = self._history[oid]
            if len(pts) >= 2:
                index.insert(Trajectory(oid, pts))
        index.finalize()
        return index

    # ------------------------------------------------------------------
    # generation pinning
    # ------------------------------------------------------------------
    def _retire(self, generation: Generation) -> None:
        generation.retired = True
        if generation.refcount == 0:
            self._dispose(generation)

    def _dispose(self, generation: Generation) -> None:
        if generation.index.signatures is not None:
            generation.index.signatures.close()
        generation.index.pagefile.close()
        generation.pages_path.unlink(missing_ok=True)
        generation.pages_path.with_name(
            generation.pages_path.name + ".meta.json"
        ).unlink(missing_ok=True)
        generation.pages_path.with_name(
            generation.pages_path.name + ".sig"
        ).unlink(missing_ok=True)
        generation.data_path.unlink(missing_ok=True)
        self._rec.inc("ingest.generations_retired")

    def _unpin(self, generation: Generation) -> None:
        with self._lock:
            generation.refcount -= 1
            self._rec.inc("ingest.generation_unpins")
            if generation.retired and generation.refcount == 0:
                self._dispose(generation)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def view(self) -> LiveView:
        """Pin a consistent snapshot: the current generation (if any)
        plus a frozen memtable copy."""
        with self._lock:
            self._check_open()
            snapshot = self._memtable.snapshot()
            parts = []
            generation = self._generation
            if generation is not None and generation.index.num_entries > 0:
                generation.refcount += 1
                self._rec.inc("ingest.generation_pins")
                exclude = (
                    frozenset(snapshot.trajectory_ids)
                    if snapshot is not None
                    else frozenset()
                )
                parts.append((generation.index, exclude))
            else:
                generation = None
            if snapshot is not None:
                parts.append((snapshot, frozenset()))
            return LiveView(self, generation, parts)

    def kmst(
        self,
        query: Trajectory,
        period: tuple[float, float] | None = None,
        k: int = 1,
        **kwargs,
    ):
        """One-shot k-MST over a fresh view; returns ``(matches, stats)``."""
        with self.view() as view:
            return view.kmst(query, period, k, **kwargs)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def ids(self) -> list[int]:
        with self._lock:
            return sorted(self._history)

    def trajectory(self, object_id: int) -> Trajectory:
        """The current full trajectory of one object (>= 2 points)."""
        with self._lock:
            pts = self._history.get(object_id)
            if pts is None:
                raise KeyError(f"no object {object_id!r} in the store")
            return Trajectory(object_id, list(pts))

    def current_dataset(self) -> TrajectoryDataset:
        """A from-scratch dataset of the store's current state — every
        object with at least two points (the rebuild oracle's input)."""
        with self._lock:
            return TrajectoryDataset(
                Trajectory(oid, list(pts))
                for oid, pts in sorted(self._history.items())
                if len(pts) >= 2
            )

    @property
    def generation_number(self) -> int:
        return -1 if self._generation is None else self._generation.number

    @property
    def memtable_points(self) -> int:
        return self._memtable.num_points

    def info(self) -> dict:
        with self._lock:
            return {
                "directory": str(self.directory),
                "tree": self.tree,
                "page_size": self.page_size,
                "objects": len(self._history),
                "points": self.num_points,
                "generation": self.generation_number,
                "memtable_points": self._memtable.num_points,
                "memtable_objects": len(self._memtable),
                "wal_bytes": self._wal.size_bytes(),
                "counters": {
                    name: value
                    for name, value in sorted(self.metrics.counters.items())
                    if name.startswith("ingest.")
                },
            }
