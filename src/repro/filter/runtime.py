"""Query-time signature evaluation: provable DISSIM lower bounds.

For one query ``Q`` over period ``[t1, tn]`` with relative speed bound
``V_max``, :class:`SignatureFilter` turns a trajectory's signature into
a number ``lb`` with ``lb <= DISSIM(Q, S, t1, tn)``.  Two independent
bounds are combined with ``max``:

**Probe bound.**  The covered stretch ``[lo, hi]`` (period ∩ signature
span) is cut into ``M`` equal subintervals probed at their midpoints
``t_j``.  The true position at ``t_j`` lies within the segment radius
``r_j`` of the simplified polyline (the TD-TR radii are certified), so
``d_j = max(0, |Q(t_j) - P(t_j)| - r_j) <= d(t_j)``, and the distance
function is ``V_max``-Lipschitz, so over the whole subinterval
``d(t) >= max(0, d_j - V_max |t - t_j|)``.  Integrating that hinge
exactly gives, with ``L`` the subinterval length and ``c = V_max L/2``:
``d_j L - V_max L^2/4`` when ``d_j >= c``, else ``d_j^2 / V_max``.
Summing the ``M`` pieces lower-bounds the integral over ``[lo, hi]``,
and the integrand is non-negative elsewhere, so the sum lower-bounds
the full DISSIM.

**Cell bound.**  The query's path cells and the trajectory's signature
cells are conservative covers, so the distance at any covered time is
at least the minimal gap between the two cell sets:
``g = min over pairs of max((|dcx|-1)^+ cell_w, (|dcy|-1)^+ cell_h)``;
``g * |period ∩ span|`` lower-bounds the integral.

Both bounds are valid for *partial* candidates too: a candidate's
reported value is always an upper bound on (or the exact value of) its
full-period DISSIM, which the signature bound lower-bounds.

The numpy kernel performs the exact same IEEE operations in the same
order as the scalar fallback (interpolation as ``x_i + frac * (x_{i+1}
- x_i)``, ``sqrt(dx*dx + dy*dy)``, per-probe hinge, final sum
accumulated by a Python loop in both paths), so the two are bit-equal
and ``kernels=`` never changes an answer.
"""

from __future__ import annotations

import math
from bisect import bisect_right

from ..distance.kernels import _numpy
from ..exceptions import QueryError
from .signature import TrajectorySignatures, rasterize_cells, unpack_cell

__all__ = ["SignatureFilter", "DEFAULT_PROBES"]

#: Number of midpoint probes per bound evaluation.  More probes tighten
#: the Lipschitz slack (the subintervals shrink) at linear cost.
DEFAULT_PROBES = 32


class SignatureFilter:
    """Per-query evaluator of the signature lower bounds.

    One instance is built per ``(query, period, vmax)`` triple — the
    engine creates it at the top of each search — and memoises the
    per-trajectory bounds, so repeated checks against a tightening
    threshold cost one dict lookup.

    ``kernels`` must be concrete (``"numpy"`` or ``"python"``); the
    ``"auto"`` resolution happens in the search layer alongside the
    distance kernels.
    """

    __slots__ = (
        "sigs",
        "query",
        "t_start",
        "t_end",
        "vmax",
        "kernels",
        "probes",
        "checks",
        "pruned",
        "_bounds",
        "_query_cells",
        "_query_cells_np",
        "_qpos",
        "_np",
    )

    def __init__(
        self,
        sigs: TrajectorySignatures,
        query,
        t_start: float,
        t_end: float,
        vmax: float,
        *,
        kernels: str = "python",
        probes: int = DEFAULT_PROBES,
    ) -> None:
        if kernels not in ("numpy", "python"):
            raise QueryError(
                f"filter kernels must be 'numpy' or 'python', got {kernels!r}"
            )
        if vmax < 0.0:
            raise QueryError(f"negative vmax {vmax}")
        if probes < 1:
            raise QueryError(f"probes must be >= 1, got {probes}")
        self.sigs = sigs
        self.query = query
        self.t_start = t_start
        self.t_end = t_end
        self.vmax = vmax
        self.kernels = kernels
        self.probes = probes
        self.checks = 0
        self.pruned = 0
        self._bounds: dict[int, float | None] = {}
        self._query_cells: tuple[list[int], list[int]] | None = None
        self._query_cells_np = None
        self._qpos: dict[tuple[float, float], tuple[list, list]] = {}
        self._np = _numpy() if kernels == "numpy" else None

    # ------------------------------------------------------------------
    # pruning interface
    # ------------------------------------------------------------------
    def should_prune(self, tid: int, threshold: float) -> bool:
        """True when the signature certifies ``DISSIM > threshold``.

        Strict comparison: equality never prunes, mirroring the strict
        inequalities of Heuristics 1/2, so a pruned candidate provably
        cannot displace any answer-set member.
        """
        self.checks += 1
        lb = self.bound(tid)
        if lb is not None and lb > threshold:
            self.pruned += 1
            return True
        return False

    def page_tids(self, page_id: int):
        return self.sigs.page_tids(page_id)

    def bound(self, tid: int) -> float | None:
        """Memoised lower bound for one trajectory (``None`` when the
        sidecar has no signature for it — never prune then)."""
        try:
            return self._bounds[tid]
        except KeyError:
            pass
        knots = self.sigs.knots(tid)
        lb = None if knots is None else self._evaluate(tid, knots)
        self._bounds[tid] = lb
        return lb

    # ------------------------------------------------------------------
    # bound evaluation
    # ------------------------------------------------------------------
    def _evaluate(self, tid: int, knots) -> float:
        kt, kx, ky, radii = knots
        lo = kt[0] if kt[0] > self.t_start else self.t_start
        hi = kt[-1] if kt[-1] < self.t_end else self.t_end
        if lo >= hi:
            return 0.0
        lb_cells = self._cell_gap(tid) * (hi - lo)
        if len(kt) < 2:
            return lb_cells
        if self.kernels == "numpy":
            lb_probe = self._probe_bound_numpy(kt, kx, ky, radii, lo, hi)
        else:
            lb_probe = self._probe_bound_python(kt, kx, ky, radii, lo, hi)
        return lb_probe if lb_probe > lb_cells else lb_cells

    def _probe_times(self, lo: float, hi: float) -> tuple[float, list[float]]:
        span = hi - lo
        m = self.probes
        length = span / m
        return length, [lo + (j + 0.5) * length for j in range(m)]

    def _query_positions(
        self, lo: float, hi: float, times: list[float]
    ) -> tuple[list, list]:
        # Scalar interpolation against the query polyline on both
        # kernel paths — identical values by construction.  Memoised by
        # probe window: trajectories spanning the whole query period
        # (the common case) share one evaluation.
        cached = self._qpos.get((lo, hi))
        if cached is not None:
            return cached
        qx: list[float] = []
        qy: list[float] = []
        for t in times:
            p = self.query.position_at(t)
            qx.append(p.x)
            qy.append(p.y)
        self._qpos[(lo, hi)] = (qx, qy)
        return qx, qy

    def _probe_bound_python(self, kt, kx, ky, radii, lo, hi) -> float:
        length, times = self._probe_times(lo, hi)
        qx, qy = self._query_positions(lo, hi, times)
        vmax = self.vmax
        cap = vmax * length * 0.5
        last = len(kt) - 2
        contributions = []
        for j, t in enumerate(times):
            idx = bisect_right(kt, t) - 1
            if idx < 0:
                idx = 0
            elif idx > last:
                idx = last
            frac = (t - kt[idx]) / (kt[idx + 1] - kt[idx])
            px = kx[idx] + frac * (kx[idx + 1] - kx[idx])
            py = ky[idx] + frac * (ky[idx + 1] - ky[idx])
            dx = qx[j] - px
            dy = qy[j] - py
            d = math.sqrt(dx * dx + dy * dy) - radii[idx]
            if d < 0.0:
                d = 0.0
            if vmax > 0.0:
                if d >= cap:
                    c = d * length - vmax * length * length * 0.25
                else:
                    c = d * d / vmax
            else:
                c = d * length
            contributions.append(c)
        total = 0.0
        for c in contributions:
            total += c
        return total

    def _probe_bound_numpy(self, kt, kx, ky, radii, lo, hi) -> float:
        np = self._np
        length, times = self._probe_times(lo, hi)
        qx, qy = self._query_positions(lo, hi, times)
        vmax = self.vmax
        cap = vmax * length * 0.5
        t = np.asarray(times, dtype=np.float64)
        kt_a = np.asarray(kt, dtype=np.float64)
        kx_a = np.asarray(kx, dtype=np.float64)
        ky_a = np.asarray(ky, dtype=np.float64)
        r_a = np.asarray(radii, dtype=np.float64)
        idx = np.searchsorted(kt_a, t, side="right") - 1
        np.clip(idx, 0, len(kt) - 2, out=idx)
        frac = (t - kt_a[idx]) / (kt_a[idx + 1] - kt_a[idx])
        px = kx_a[idx] + frac * (kx_a[idx + 1] - kx_a[idx])
        py = ky_a[idx] + frac * (ky_a[idx + 1] - ky_a[idx])
        dx = np.asarray(qx, dtype=np.float64) - px
        dy = np.asarray(qy, dtype=np.float64) - py
        d = np.sqrt(dx * dx + dy * dy) - r_a[idx]
        np.maximum(d, 0.0, out=d)
        if vmax > 0.0:
            far = d * length - vmax * length * length * 0.25
            near = d * d / vmax
            contributions = np.where(d >= cap, far, near)
        else:
            contributions = d * length
        # Linear Python accumulation, matching the scalar path exactly
        # (numpy's pairwise summation would reorder the additions).
        total = 0.0
        for c in contributions.tolist():
            total += c
        return total

    # ------------------------------------------------------------------
    # cell bound
    # ------------------------------------------------------------------
    def _ensure_query_cells(self) -> tuple[list[int], list[int]]:
        if self._query_cells is None:
            pts = []
            for seg in self.query.segments():
                a, b = seg.start, seg.end
                if b.t <= self.t_start or a.t >= self.t_end:
                    continue
                if not pts:
                    pts.append(_clip_point(seg, max(a.t, self.t_start)))
                pts.append(_clip_point(seg, min(b.t, self.t_end)))
            packed = sorted(
                rasterize_cells(
                    pts, self.sigs.x0, self.sigs.y0, self.sigs.cell_w, self.sigs.cell_h
                )
            )
            qcx = []
            qcy = []
            for p in packed:
                cx, cy = unpack_cell(p)
                qcx.append(cx)
                qcy.append(cy)
            self._query_cells = (qcx, qcy)
        return self._query_cells

    def _cell_gap(self, tid: int) -> float:
        """Minimal certified distance between the query's cells and the
        trajectory's cells (0 when the sets touch).  Pure min/max over
        exact integer differences — order-independent, so the numpy and
        scalar paths agree bit-for-bit."""
        qcx, qcy = self._ensure_query_cells()
        if not qcx:
            return 0.0
        cell_w = self.sigs.cell_w
        cell_h = self.sigs.cell_h
        if self._np is not None:
            np = self._np
            tcx, tcy = self.sigs.cell_coords_np(tid, np)
            if not len(tcx):
                return 0.0
            if self._query_cells_np is None:
                self._query_cells_np = (
                    np.asarray(qcx, dtype=np.int64),
                    np.asarray(qcy, dtype=np.int64),
                )
            qcx_a, qcy_a = self._query_cells_np
            dcx = np.abs(tcx[:, None] - qcx_a[None, :]) - 1
            dcy = np.abs(tcy[:, None] - qcy_a[None, :]) - 1
            np.maximum(dcx, 0, out=dcx)
            np.maximum(dcy, 0, out=dcy)
            gaps = np.maximum(dcx * cell_w, dcy * cell_h)
            return float(gaps.min())
        cells = self.sigs.cell_list(tid)
        if not cells:
            return 0.0
        best = math.inf
        for p in cells:
            tcx, tcy = unpack_cell(p)
            for i in range(len(qcx)):
                dcx = tcx - qcx[i]
                if dcx < 0:
                    dcx = -dcx
                dcx -= 1
                if dcx < 0:
                    dcx = 0
                dcy = tcy - qcy[i]
                if dcy < 0:
                    dcy = -dcy
                dcy -= 1
                if dcy < 0:
                    dcy = 0
                gap = max(dcx * cell_w, dcy * cell_h)
                if gap < best:
                    best = gap
                    if best == 0.0:
                        return 0.0
        return best


def _clip_point(seg, t: float) -> tuple[float, float]:
    a, b = seg.start, seg.end
    if t <= a.t:
        return a.x, a.y
    if t >= b.t:
        return b.x, b.y
    frac = (t - a.t) / (b.t - a.t)
    return a.x + frac * (b.x - a.x), a.y + frac * (b.y - a.y)
