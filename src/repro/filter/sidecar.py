"""Binary ``.sig`` sidecar: crash-safe persistence for signatures.

The sidecar sits next to the index page file (``foo.pages`` →
``foo.pages.sig``) and is committed with the same write-temp → fsync →
atomic-rename discipline as every other artefact, *after* the index
itself: a crash between the two leaves a valid index without a sidecar,
which simply serves unfiltered.

Layout (little-endian, all array sections 8-byte aligned):

========================  =======================================
``<4sI``                  magic ``RSIG``, format version
``<3q``                   binding: num_nodes, num_entries, root_page
``<5d``                   simplify_p, x0, y0, cell_w, cell_h
``<5q``                   n_traj, n_leaf_pages, total_knots,
                          total_cells, total_leaf_tids
``n_traj × q``            trajectory ids (sorted)
``(n_traj+1) × q``        knot offsets (CSR)
``(n_traj+1) × q``        cell offsets (CSR)
``total_knots × d`` ×3    knot t / x / y
``(total_knots-n) × d``   per-segment radii
``total_cells × q``       packed grid cells (sorted per object)
``n_leaf_pages × q``      leaf page ids (sorted)
``(n_leaf_pages+1) × q``  leaf-tid offsets (CSR)
``total_leaf_tids × q``   per-leaf trajectory ids (sorted)
``<I``                    CRC-32 of everything above
========================  =======================================

Loading mmaps the file read-only and serves the arrays as zero-copy
``memoryview`` casts; :meth:`TrajectorySignatures.close` releases them.
"""

from __future__ import annotations

import mmap
import struct
import zlib
from array import array
from pathlib import Path

from ..exceptions import StorageError
from ..storage.atomic import atomic_write_bytes
from .signature import TrajectorySignatures

__all__ = ["signature_sidecar_path", "write_signatures", "load_signatures"]

MAGIC = b"RSIG"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<4sI3q5d5q")


def _as_bytes(fmt: str, seq) -> bytes:
    """Serialise an array/memoryview/sequence as packed native bytes
    (the toolchain targets little-endian platforms, matching the page
    file's native framing)."""
    if isinstance(seq, (array, memoryview)):
        return seq.tobytes()
    return array(fmt, seq).tobytes()


def signature_sidecar_path(index_path: str | Path) -> Path:
    """``foo.pages`` → ``foo.pages.sig``."""
    path = Path(index_path)
    return path.with_name(path.name + ".sig")


def write_signatures(sigs: TrajectorySignatures, sig_path: str | Path) -> dict:
    """Serialise and atomically commit a sidecar; returns a small meta
    dict (size, counts) for logging."""
    n = len(sigs.tids)
    parts = [
        _HEADER.pack(
            MAGIC,
            FORMAT_VERSION,
            sigs.binding[0],
            sigs.binding[1],
            sigs.binding[2],
            sigs.simplify_p,
            sigs.x0,
            sigs.y0,
            sigs.cell_w,
            sigs.cell_h,
            n,
            len(sigs.leaf_pages),
            len(sigs.knot_t),
            len(sigs.cells),
            len(sigs.leaf_tids),
        ),
        _as_bytes("q", sigs.tids),
        _as_bytes("q", sigs.knot_offsets),
        _as_bytes("q", sigs.cell_offsets),
        _as_bytes("d", sigs.knot_t),
        _as_bytes("d", sigs.knot_x),
        _as_bytes("d", sigs.knot_y),
        _as_bytes("d", sigs.radii),
        _as_bytes("q", sigs.cells),
        _as_bytes("q", sigs.leaf_pages),
        _as_bytes("q", sigs.leaf_tid_offsets),
        _as_bytes("q", sigs.leaf_tids),
    ]
    body = b"".join(parts)
    blob = body + struct.pack("<I", zlib.crc32(body))
    atomic_write_bytes(sig_path, blob)
    return {
        "path": str(sig_path),
        "bytes": len(blob),
        "trajectories": n,
        "leaf_pages": len(sigs.leaf_pages),
        "knots": len(sigs.knot_t),
        "cells": len(sigs.cells),
    }


def load_signatures(
    sig_path: str | Path,
    expected_binding: tuple[int, int, int] | None = None,
) -> TrajectorySignatures:
    """mmap a sidecar read-only, verify CRC and binding, and return the
    signature store.  Raises :class:`StorageError` on any corruption or
    on an index/sidecar mismatch."""
    sig_path = Path(sig_path)
    try:
        fh = open(sig_path, "rb")
    except OSError as exc:
        raise StorageError(f"{sig_path}: cannot open signature sidecar: {exc}")
    try:
        mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    except (ValueError, OSError) as exc:
        fh.close()
        raise StorageError(f"{sig_path}: cannot mmap signature sidecar: {exc}")
    fh.close()

    views: list[memoryview] = []
    try:
        size = len(mm)
        if size < _HEADER.size + 4:
            raise StorageError(f"{sig_path}: signature sidecar truncated")
        base = memoryview(mm)
        views.append(base)
        (crc_stored,) = struct.unpack_from("<I", base, size - 4)
        if zlib.crc32(base[: size - 4]) != crc_stored:
            raise StorageError(f"{sig_path}: signature sidecar CRC mismatch")
        (
            magic,
            version,
            num_nodes,
            num_entries,
            root_page,
            simplify_p,
            x0,
            y0,
            cell_w,
            cell_h,
            n_traj,
            n_leaf_pages,
            total_knots,
            total_cells,
            total_leaf_tids,
        ) = _HEADER.unpack_from(base, 0)
        if magic != MAGIC:
            raise StorageError(f"{sig_path}: not a signature sidecar")
        if version != FORMAT_VERSION:
            raise StorageError(
                f"{sig_path}: unsupported sidecar version {version} "
                f"(this build speaks {FORMAT_VERSION})"
            )
        if min(n_traj, n_leaf_pages, total_knots, total_cells, total_leaf_tids) < 0:
            raise StorageError(f"{sig_path}: negative section count")
        binding = (num_nodes, num_entries, root_page)
        if expected_binding is not None and binding != tuple(expected_binding):
            raise StorageError(
                f"{sig_path}: sidecar was built for a different index "
                f"(sidecar binding {binding}, index {tuple(expected_binding)})"
            )

        offset = _HEADER.size
        sections = [
            ("q", n_traj),
            ("q", n_traj + 1),
            ("q", n_traj + 1),
            ("d", total_knots),
            ("d", total_knots),
            ("d", total_knots),
            ("d", total_knots - n_traj),
            ("q", total_cells),
            ("q", n_leaf_pages),
            ("q", n_leaf_pages + 1),
            ("q", total_leaf_tids),
        ]
        expected_size = _HEADER.size + sum(8 * count for _f, count in sections) + 4
        if size != expected_size:
            raise StorageError(
                f"{sig_path}: sidecar size {size} does not match its "
                f"section counts (expected {expected_size})"
            )
        arrays = []
        for fmt, count in sections:
            view = base[offset : offset + 8 * count].cast(fmt)
            views.append(view)
            arrays.append(view)
            offset += 8 * count

        def close(_views=views, _mm=mm):
            for v in _views:
                v.release()
            _mm.close()

        return TrajectorySignatures(
            binding=binding,
            simplify_p=simplify_p,
            x0=x0,
            y0=y0,
            cell_w=cell_w,
            cell_h=cell_h,
            tids=arrays[0],
            knot_offsets=arrays[1],
            cell_offsets=arrays[2],
            knot_t=arrays[3],
            knot_x=arrays[4],
            knot_y=arrays[5],
            radii=arrays[6],
            cells=arrays[7],
            leaf_pages=arrays[8],
            leaf_tid_offsets=arrays[9],
            leaf_tids=arrays[10],
            close=close,
        )
    except StorageError:
        for v in views:
            v.release()
        mm.close()
        raise
