"""Building per-trajectory signatures from a finished index.

The builder walks the tree once, reconstructs each trajectory's sample
sequence from its leaf segments, and distils three things per object:

* a TD-TR-simplified polyline (knots) with a certified radius per kept
  segment — the maximum Synchronized Euclidean Distance of the dropped
  samples, so the true position at time ``t`` is always within
  ``radius`` of the simplified position at ``t``,
* the set of grid cells the original path crosses (conservative: the
  per-segment bounding-box cells, a superset of the swept cells),
* nothing else — a signature is a few hundred bytes.

The builder also records, per leaf page, the distinct trajectory ids
stored on it, so the search can skip reading a leaf whose candidates
are all already settled.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right

from ..compression.tdtr import td_tr_with_radii
from ..exceptions import IndexError_
from ..trajectory import Trajectory

__all__ = ["TrajectorySignatures", "build_signatures", "rasterize_cells"]

#: Default TD-TR tolerance as a fraction of each trajectory's travelled
#: length (the paper's ``p`` parameterisation; 2 % keeps signatures tiny
#: while the radii stay small enough to prune with).
DEFAULT_SIMPLIFY_P = 0.02

#: Grid resolution (cells per axis over the indexed extent).
GRID_CELLS = 64


def pack_cell(cx: int, cy: int) -> int:
    """Pack a cell coordinate pair into one signed 64-bit integer."""
    return (cx << 32) | (cy & 0xFFFFFFFF)


def unpack_cell(packed: int) -> tuple[int, int]:
    cy = packed & 0xFFFFFFFF
    if cy >= 1 << 31:
        cy -= 1 << 32
    return packed >> 32, cy


def rasterize_cells(
    points: list[tuple[float, float]],
    x0: float,
    y0: float,
    cell_w: float,
    cell_h: float,
) -> set[int]:
    """Packed grid cells covering a polyline, conservatively.

    Each consecutive point pair is subdivided at its midpoint until
    every piece's bounding box spans at most two cells per axis, then
    that box's cells are added.  Every sub-segment lies inside its own
    bounding box, so the union is a superset of the cells the straight
    segments actually sweep — exactly what a lower bound needs — while
    staying within a small constant factor of the true swept set (the
    naive whole-segment bounding box of a long diagonal segment covers
    quadratically many cells).  The grid extends infinitely (cell
    indexes are plain floor divisions), so out-of-extent points stay
    sound.
    """
    cells: set[int] = set()
    if not points:
        return cells
    if len(points) == 1:
        px, py = points[0]
        cells.add(pack_cell(int((px - x0) // cell_w), int((py - y0) // cell_h)))
        return cells
    for pair in zip(points, points[1:]):
        stack = [pair]
        while stack:
            (ax, ay), (bx, by) = stack.pop()
            cx_lo = int((min(ax, bx) - x0) // cell_w)
            cx_hi = int((max(ax, bx) - x0) // cell_w)
            cy_lo = int((min(ay, by) - y0) // cell_h)
            cy_hi = int((max(ay, by) - y0) // cell_h)
            if cx_hi - cx_lo > 1 or cy_hi - cy_lo > 1:
                mx = (ax + bx) / 2.0
                my = (ay + by) / 2.0
                # Midpoint splitting always terminates: each half's
                # bounding box shrinks towards a point.
                if (mx, my) != (ax, ay) and (mx, my) != (bx, by):
                    stack.append(((ax, ay), (mx, my)))
                    stack.append(((mx, my), (bx, by)))
                    continue
            for cx in range(cx_lo, cx_hi + 1):
                for cy in range(cy_lo, cy_hi + 1):
                    cells.add(pack_cell(cx, cy))
    return cells


class TrajectorySignatures:
    """Column-oriented signature store for one index.

    All per-trajectory data lives in flat CSR-style arrays so the store
    round-trips through the binary sidecar without per-object parsing
    and serves straight out of an mmap.  ``binding`` ties the sidecar
    to the exact index it was built from.
    """

    __slots__ = (
        "binding",
        "simplify_p",
        "x0",
        "y0",
        "cell_w",
        "cell_h",
        "tids",
        "knot_offsets",
        "cell_offsets",
        "knot_t",
        "knot_x",
        "knot_y",
        "radii",
        "cells",
        "leaf_pages",
        "leaf_tid_offsets",
        "leaf_tids",
        "_tid_pos",
        "_leaf_pos",
        "_cell_np",
        "_close",
    )

    def __init__(
        self,
        binding: tuple[int, int, int],
        simplify_p: float,
        x0: float,
        y0: float,
        cell_w: float,
        cell_h: float,
        tids,
        knot_offsets,
        cell_offsets,
        knot_t,
        knot_x,
        knot_y,
        radii,
        cells,
        leaf_pages,
        leaf_tid_offsets,
        leaf_tids,
        close=None,
    ) -> None:
        self.binding = binding
        self.simplify_p = simplify_p
        self.x0 = x0
        self.y0 = y0
        self.cell_w = cell_w
        self.cell_h = cell_h
        self.tids = tids
        self.knot_offsets = knot_offsets
        self.cell_offsets = cell_offsets
        self.knot_t = knot_t
        self.knot_x = knot_x
        self.knot_y = knot_y
        self.radii = radii
        self.cells = cells
        self.leaf_pages = leaf_pages
        self.leaf_tid_offsets = leaf_tid_offsets
        self.leaf_tids = leaf_tids
        self._tid_pos = {tid: i for i, tid in enumerate(tids)}
        self._leaf_pos = {page: i for i, page in enumerate(leaf_pages)}
        self._cell_np: dict = {}
        self._close = close

    def __len__(self) -> int:
        return len(self.tids)

    def __contains__(self, tid: int) -> bool:
        return tid in self._tid_pos

    def position(self, tid: int) -> int | None:
        return self._tid_pos.get(tid)

    def knots(self, tid: int) -> tuple[list, list, list, list] | None:
        """``(t, x, y, radii)`` of one trajectory's simplified polyline
        (plain lists — detached from any backing buffer)."""
        i = self._tid_pos.get(tid)
        if i is None:
            return None
        a, b = self.knot_offsets[i], self.knot_offsets[i + 1]
        ra, rb = a - i, b - 1 - i  # radii arrays omit one slot per object
        return (
            list(self.knot_t[a:b]),
            list(self.knot_x[a:b]),
            list(self.knot_y[a:b]),
            list(self.radii[ra:rb]),
        )

    def cell_list(self, tid: int) -> list[int] | None:
        i = self._tid_pos.get(tid)
        if i is None:
            return None
        a, b = self.cell_offsets[i], self.cell_offsets[i + 1]
        return list(self.cells[a:b])

    def cell_coords_np(self, tid: int, np):
        """One trajectory's unpacked ``(cx, cy)`` int64 ndarrays,
        memoised on the store (queries share a store, so the unpacking
        cost is paid once per trajectory, not once per query).  Values
        match :func:`unpack_cell` exactly.  ``None`` for unknown tids."""
        cached = self._cell_np.get(tid)
        if cached is not None:
            return cached
        i = self._tid_pos.get(tid)
        if i is None:
            return None
        a, b = self.cell_offsets[i], self.cell_offsets[i + 1]
        packed = np.asarray(self.cells[a:b], dtype=np.int64)
        tcy = packed & np.int64(0xFFFFFFFF)
        tcy = np.where(tcy >= 1 << 31, tcy - (1 << 32), tcy)
        tcx = packed >> 32
        coords = (tcx, tcy)
        self._cell_np[tid] = coords
        return coords

    def page_tids(self, page_id: int) -> list[int] | None:
        """Distinct trajectory ids on a leaf page (``None`` when the
        page is unknown — the caller must then read the page)."""
        i = self._leaf_pos.get(page_id)
        if i is None:
            return None
        a, b = self.leaf_tid_offsets[i], self.leaf_tid_offsets[i + 1]
        return list(self.leaf_tids[a:b])

    def close(self) -> None:
        """Release the mmap backing (no-op for in-memory stores)."""
        if self._close is not None:
            close, self._close = self._close, None
            close()


def build_signatures(
    index, *, simplify_p: float = DEFAULT_SIMPLIFY_P
) -> TrajectorySignatures:
    """Build signatures for every trajectory of a finished index.

    Walks the tree once: leaf segments are regrouped per object (their
    endpoints reconstruct the original sample sequence exactly — both
    endpoints of every segment are original samples), TD-TR-simplified
    with certified radii, and rasterised onto a ``GRID_CELLS`` ×
    ``GRID_CELLS`` grid over the indexed extent.
    """
    if getattr(index, "num_entries", 0) <= 0:
        raise IndexError_("cannot build signatures for an empty index")

    samples: dict[int, dict[float, tuple[float, float]]] = {}
    page_tid_sets: dict[int, set[int]] = {}
    xmin = ymin = float("inf")
    xmax = ymax = float("-inf")
    for node in index.nodes():
        if not node.is_leaf:
            continue
        tid_set = page_tid_sets.setdefault(node.page_id, set())
        for entry in node.entries:
            tid = entry.trajectory_id
            tid_set.add(tid)
            seq = samples.setdefault(tid, {})
            for pt in (entry.segment.start, entry.segment.end):
                seq[pt.t] = (pt.x, pt.y)
                if pt.x < xmin:
                    xmin = pt.x
                if pt.x > xmax:
                    xmax = pt.x
                if pt.y < ymin:
                    ymin = pt.y
                if pt.y > ymax:
                    ymax = pt.y

    cell_w = (xmax - xmin) / GRID_CELLS
    cell_h = (ymax - ymin) / GRID_CELLS
    if cell_w <= 0.0:
        cell_w = 1.0
    if cell_h <= 0.0:
        cell_h = 1.0

    tids = array("q", sorted(samples))
    knot_offsets = array("q", [0])
    cell_offsets = array("q", [0])
    knot_t = array("d")
    knot_x = array("d")
    knot_y = array("d")
    radii = array("d")
    cells = array("q")
    for tid in tids:
        pts = [(t, xy[0], xy[1]) for t, xy in sorted(samples[tid].items())]
        traj = Trajectory(int(tid), [(x, y, t) for t, x, y in pts])
        kept, seg_radii = td_tr_with_radii(traj, simplify_p * traj.length())
        for i in kept:
            t, x, y = pts[i]
            knot_t.append(t)
            knot_x.append(x)
            knot_y.append(y)
        radii.extend(seg_radii)
        knot_offsets.append(len(knot_t))
        tid_cells = rasterize_cells(
            [(x, y) for _t, x, y in pts], xmin, ymin, cell_w, cell_h
        )
        cells.extend(sorted(tid_cells))
        cell_offsets.append(len(cells))

    leaf_pages = array("q", sorted(page_tid_sets))
    leaf_tid_offsets = array("q", [0])
    leaf_tids = array("q")
    for page in leaf_pages:
        leaf_tids.extend(sorted(page_tid_sets[page]))
        leaf_tid_offsets.append(len(leaf_tids))

    return TrajectorySignatures(
        binding=(index.num_nodes, index.num_entries, index.root_page),
        simplify_p=simplify_p,
        x0=xmin,
        y0=ymin,
        cell_w=cell_w,
        cell_h=cell_h,
        tids=tids,
        knot_offsets=knot_offsets,
        cell_offsets=cell_offsets,
        knot_t=knot_t,
        knot_x=knot_x,
        knot_y=knot_y,
        radii=radii,
        cells=cells,
        leaf_pages=leaf_pages,
        leaf_tid_offsets=leaf_tid_offsets,
        leaf_tids=leaf_tids,
    )


def segment_index(knot_t, t: float) -> int:
    """Index of the simplified segment containing time ``t`` (clamped
    to the polyline, matching ``numpy.searchsorted(side='right') - 1``
    with the same clamp on the vectorised path)."""
    idx = bisect_right(knot_t, t) - 1
    if idx < 0:
        return 0
    last = len(knot_t) - 2
    return last if idx > last else idx
