"""Signature filter tier: compact per-trajectory lower bounds.

A *signature* is a tiny in-RAM summary of one indexed trajectory — a
TD-TR-downsampled polyline with certified per-segment error radii plus
the set of grid cells its path crosses.  From it the filter computes a
provable lower bound on the trajectory's DISSIM against any query, so
BFMST can reject hopeless candidates before touching their index pages
or running exact integrals.  Answers are byte-identical to unfiltered
search by construction: a candidate is only pruned when its lower bound
strictly exceeds the current k-th-best upper bound, which certifies it
can never enter the answer set.

Signatures are built at index build / ingest compaction time
(:func:`build_signatures`), persisted as a ``.sig`` sidecar next to the
page file (:mod:`repro.filter.sidecar`), mmap-served read-only, and
evaluated by :class:`SignatureFilter` with the same
``kernels=auto|numpy|python`` dispatch (bit-equal paths) as the
distance kernels.
"""

from .runtime import SignatureFilter
from .sidecar import (
    load_signatures,
    signature_sidecar_path,
    write_signatures,
)
from .signature import TrajectorySignatures, build_signatures

__all__ = [
    "TrajectorySignatures",
    "build_signatures",
    "SignatureFilter",
    "write_signatures",
    "load_signatures",
    "signature_sidecar_path",
]
