"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class TrajectoryError(ReproError):
    """Raised for malformed trajectories (empty, unsorted, duplicated
    timestamps, NaN coordinates, ...)."""


class TemporalCoverageError(ReproError):
    """Raised when an operation requires a trajectory to cover a time
    period it does not (see ``coverage='full'`` semantics of DISSIM)."""


class StorageError(ReproError):
    """Raised by the paged-storage layer (page overflow, bad page id,
    corrupt page payload, ...)."""


class PageOverflowError(StorageError):
    """Raised when a serialised node does not fit in one page."""


class ChecksumError(StorageError):
    """Raised when a framed page fails its read-time integrity check
    (CRC mismatch or corrupted padding) — see ``repro.storage.format``."""


class IndexError_(ReproError):
    """Raised for structural index violations (named with a trailing
    underscore to avoid shadowing the builtin :class:`IndexError`)."""


class QueryError(ReproError):
    """Raised for invalid query specifications (k < 1, empty or inverted
    time periods, query trajectory not covering the period, ...)."""


class DeadlineExceeded(QueryError):
    """Raised when a query's deadline budget expires before (or while)
    it executes — see ``QueryEngine.execute(..., deadline=...)`` and the
    ``deadline_ms`` field of :class:`repro.search.spec.QuerySpec`.  The
    serving tier maps this to HTTP 504."""


class ServeError(ReproError):
    """Raised by the :mod:`repro.serve` front-end for serving-layer
    failures (bad configuration, startup/shutdown problems)."""
