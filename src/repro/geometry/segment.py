"""Spatiotemporal line segments (linearly moving points).

A trajectory edge between two consecutive samples is a point moving with
constant velocity: ``P(t) = P(ts) + v * (t - ts)`` for ``t`` in
``[ts, te]``.  This module provides that kinematic primitive plus the
distance machinery the paper builds on:

* the *trinomial coefficients* ``(a, b, c)`` of the squared Euclidean
  distance between two co-temporal segments, so that
  ``D(t) = sqrt(a*tau^2 + b*tau + c)`` with ``tau`` measured from the
  common start time (working in local time keeps the numbers small and
  the formulas stable), and
* the exact minimum distance between a moving point and a static
  rectangle over a time window (the building block of MINDIST(Q, N)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import TrajectoryError
from .mbr import MBR2D, MBR3D
from .point import Point, STPoint

__all__ = [
    "STSegment",
    "distance_trinomial_coefficients",
    "min_moving_point_rect_distance",
]


@dataclass(frozen=True, slots=True)
class STSegment:
    """A moving point travelling in a straight line from ``start`` to
    ``end`` between the two sample timestamps.

    ``start.t < end.t`` is required: a segment spans a positive amount
    of time (instantaneous "segments" are rejected at trajectory
    construction time).
    """

    start: STPoint
    end: STPoint

    def __post_init__(self) -> None:
        if not (self.start.t < self.end.t):
            raise TrajectoryError(
                f"segment must span positive time: {self.start.t} .. {self.end.t}"
            )

    @property
    def ts(self) -> float:
        """Segment start time."""
        return self.start.t

    @property
    def te(self) -> float:
        """Segment end time."""
        return self.end.t

    @property
    def duration(self) -> float:
        return self.end.t - self.start.t

    @property
    def velocity(self) -> tuple[float, float]:
        """Constant velocity ``(vx, vy)`` of the moving point."""
        dt = self.duration
        return ((self.end.x - self.start.x) / dt, (self.end.y - self.start.y) / dt)

    @property
    def speed(self) -> float:
        """Scalar speed of the moving point."""
        vx, vy = self.velocity
        return math.hypot(vx, vy)

    def spatial_length(self) -> float:
        """Length of the spatial projection of the segment."""
        return self.start.distance_to(self.end)

    def covers_time(self, t: float) -> bool:
        return self.ts <= t <= self.te

    def position_at(self, t: float) -> Point:
        """Interpolated position at time ``t`` (must lie in the span).

        The span endpoints return the sample positions *exactly* —
        interpolating at ``frac == 1.0`` can otherwise round a hair
        outside the segment's bounding box.
        """
        if not self.covers_time(t):
            raise TrajectoryError(
                f"time {t} outside segment span [{self.ts}, {self.te}]"
            )
        if t == self.ts:
            return Point(self.start.x, self.start.y)
        if t == self.te:
            return Point(self.end.x, self.end.y)
        frac = (t - self.ts) / self.duration
        return Point(
            self.start.x + frac * (self.end.x - self.start.x),
            self.start.y + frac * (self.end.y - self.start.y),
        )

    def st_point_at(self, t: float) -> STPoint:
        """Interpolated spatiotemporal point at time ``t``."""
        p = self.position_at(t)
        return STPoint(p.x, p.y, t)

    def clipped(self, t_start: float, t_end: float) -> "STSegment":
        """The sub-segment restricted to ``[t_start, t_end]``.

        The window must intersect the segment span in a positive-length
        interval.
        """
        lo = max(self.ts, t_start)
        hi = min(self.te, t_end)
        if not (lo < hi):
            raise TrajectoryError(
                f"clip window [{t_start}, {t_end}] does not overlap "
                f"segment span [{self.ts}, {self.te}]"
            )
        if lo == self.ts and hi == self.te:
            return self
        return STSegment(self.st_point_at(lo), self.st_point_at(hi))

    def mbr(self) -> MBR3D:
        """The 3D bounding box of the segment (what a leaf entry stores)."""
        return MBR3D(
            min(self.start.x, self.end.x),
            min(self.start.y, self.end.y),
            self.ts,
            max(self.start.x, self.end.x),
            max(self.start.y, self.end.y),
            self.te,
        )


def distance_trinomial_coefficients(
    q: STSegment, t: STSegment
) -> tuple[float, float, float, float, float]:
    """Trinomial coefficients of the squared distance between two
    co-temporal moving points.

    Returns ``(a, b, c, t_lo, t_hi)`` such that for local time
    ``tau = time - t_lo`` in ``[0, t_hi - t_lo]`` the squared Euclidean
    distance between the two moving points is
    ``a * tau**2 + b * tau + c`` (``a >= 0`` and the discriminant
    ``b**2 - 4ac <= 0`` up to rounding, since a squared distance is
    never negative).

    ``q`` and ``t`` must overlap in a positive-length time interval;
    both are clipped to the common window ``[t_lo, t_hi]`` first.
    """
    t_lo = max(q.ts, t.ts)
    t_hi = min(q.te, t.te)
    if not (t_lo < t_hi):
        raise TrajectoryError(
            f"segments do not overlap in time: [{q.ts},{q.te}] vs [{t.ts},{t.te}]"
        )
    qc = q.clipped(t_lo, t_hi)
    tc = t.clipped(t_lo, t_hi)
    # Relative motion: delta(tau) = dp + dv * tau, squared norm is the
    # trinomial.
    dx0 = qc.start.x - tc.start.x
    dy0 = qc.start.y - tc.start.y
    qvx, qvy = qc.velocity
    tvx, tvy = tc.velocity
    dvx = qvx - tvx
    dvy = qvy - tvy
    a = dvx * dvx + dvy * dvy
    b = 2.0 * (dx0 * dvx + dy0 * dvy)
    c = dx0 * dx0 + dy0 * dy0
    return (a, b, c, t_lo, t_hi)


def min_moving_point_rect_distance(
    seg: STSegment, rect: MBR2D, t_start: float | None = None, t_end: float | None = None
) -> float:
    """Exact minimum distance from a moving point to a static rectangle.

    Computes ``min over t in window`` of the distance between
    ``seg``'s position at ``t`` and ``rect``; the window defaults to the
    full segment span and is intersected with it otherwise.

    The per-axis clearance ``dx(t) = max(0, xmin - x(t), x(t) - xmax)``
    is piecewise linear with breakpoints where the coordinate crosses a
    rectangle side; on each piece the squared distance is a quadratic,
    minimised analytically.  Exact (up to floating point), no sampling.
    """
    lo = seg.ts if t_start is None else max(seg.ts, t_start)
    hi = seg.te if t_end is None else min(seg.te, t_end)
    if lo > hi:
        raise TrajectoryError(
            f"window [{t_start}, {t_end}] does not overlap segment "
            f"span [{seg.ts}, {seg.te}]"
        )
    if lo == hi:
        p = seg.position_at(lo)
        return rect.mindist_to_point(p)

    vx, vy = seg.velocity
    x0 = seg.start.x + vx * (lo - seg.ts)
    y0 = seg.start.y + vy * (lo - seg.ts)
    span = hi - lo

    breaks = {0.0, span}
    for coord0, v, side_lo, side_hi in (
        (x0, vx, rect.xmin, rect.xmax),
        (y0, vy, rect.ymin, rect.ymax),
    ):
        if v != 0.0:
            for side in (side_lo, side_hi):
                tau = (side - coord0) / v
                if 0.0 < tau < span:
                    breaks.add(tau)
    taus = sorted(breaks)

    def clearance(coord0: float, v: float, side_lo: float, side_hi: float, tau: float):
        """(value, slope) of the axis clearance at local time ``tau``."""
        pos = coord0 + v * tau
        if pos < side_lo:
            return (side_lo - pos, -v)
        if pos > side_hi:
            return (pos - side_hi, v)
        return (0.0, 0.0)

    def dist_sq_at(tau: float) -> float:
        dxv, _ = clearance(x0, vx, rect.xmin, rect.xmax, tau)
        dyv, _ = clearance(y0, vy, rect.ymin, rect.ymax, tau)
        return dxv * dxv + dyv * dyv

    # Candidate minima are the breakpoints and, per piece, the vertex
    # of the quadratic dist^2(tau) = (dxv + dxs*(tau-mid))^2 +
    # (dyv + dys*(tau-mid))^2.  The quadratic only *locates* the
    # vertex; every candidate is then evaluated directly — evaluating
    # the extrapolated quadratic at a far-away endpoint cancels
    # catastrophically when the true minimum is near zero.
    best_sq = min(dist_sq_at(tau) for tau in taus)
    for i in range(len(taus) - 1):
        a_tau, b_tau = taus[i], taus[i + 1]
        mid = (a_tau + b_tau) / 2.0
        dxv, dxs = clearance(x0, vx, rect.xmin, rect.xmax, mid)
        dyv, dys = clearance(y0, vy, rect.ymin, rect.ymax, mid)
        a2 = dxs * dxs + dys * dys
        if a2 > 0.0:
            vertex = mid - (dxv * dxs + dyv * dys) / a2
            if a_tau < vertex < b_tau:
                best_sq = min(best_sq, dist_sq_at(vertex))
    return math.sqrt(best_sq)
