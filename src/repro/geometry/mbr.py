"""Axis-aligned minimum bounding rectangles in 2D and 3D (x, y, t).

These are the bounding volumes stored in R-tree / TB-tree nodes.  The 3D
box treats time as the third axis, exactly as the 3D R-tree of
Theodoridis et al. does; the spatial projection (:meth:`MBR3D.spatial`)
is what MINDIST computations work against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from .point import Point, STPoint

__all__ = ["MBR2D", "MBR3D", "point_rect_distance"]


@dataclass(frozen=True, slots=True)
class MBR2D:
    """A closed axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(f"inverted MBR2D: {self}")

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "MBR2D":
        """Bounding rectangle of a non-empty point collection."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot bound an empty point collection")
        return cls(
            min(p.x for p in pts),
            min(p.y for p in pts),
            max(p.x for p in pts),
            max(p.y for p in pts),
        )

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    def area(self) -> float:
        """Rectangle area (zero for degenerate rectangles)."""
        return self.width * self.height

    def margin(self) -> float:
        """Half-perimeter, the R*-tree 'margin' measure."""
        return self.width + self.height

    def center(self) -> Point:
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def contains_point(self, p: Point) -> bool:
        return self.xmin <= p.x <= self.xmax and self.ymin <= p.y <= self.ymax

    def contains(self, other: "MBR2D") -> bool:
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and self.xmax >= other.xmax
            and self.ymax >= other.ymax
        )

    def intersects(self, other: "MBR2D") -> bool:
        return not (
            self.xmax < other.xmin
            or other.xmax < self.xmin
            or self.ymax < other.ymin
            or other.ymax < self.ymin
        )

    def union(self, other: "MBR2D") -> "MBR2D":
        return MBR2D(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def intersection_area(self, other: "MBR2D") -> float:
        """Area of the overlap region (zero when disjoint)."""
        w = min(self.xmax, other.xmax) - max(self.xmin, other.xmin)
        h = min(self.ymax, other.ymax) - max(self.ymin, other.ymin)
        if w <= 0.0 or h <= 0.0:
            return 0.0
        return w * h

    def mindist_to_point(self, p: Point) -> float:
        """Minimum Euclidean distance from ``p`` to this rectangle
        (zero when ``p`` lies inside)."""
        return point_rect_distance(p.x, p.y, self.xmin, self.ymin, self.xmax, self.ymax)


def point_rect_distance(
    px: float, py: float, xmin: float, ymin: float, xmax: float, ymax: float
) -> float:
    """Distance from point ``(px, py)`` to the rectangle, zero inside."""
    dx = max(xmin - px, 0.0, px - xmax)
    dy = max(ymin - py, 0.0, py - ymax)
    return math.hypot(dx, dy)


@dataclass(frozen=True, slots=True)
class MBR3D:
    """A closed axis-aligned box in (x, y, t) space.

    This is the bounding volume of trajectory line segments and index
    nodes.  ``tmin``/``tmax`` bound the temporal extent.
    """

    xmin: float
    ymin: float
    tmin: float
    xmax: float
    ymax: float
    tmax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax or self.tmin > self.tmax:
            raise ValueError(f"inverted MBR3D: {self}")

    @classmethod
    def from_st_points(cls, points: Iterable[STPoint]) -> "MBR3D":
        """Bounding box of a non-empty spatiotemporal point collection."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot bound an empty point collection")
        return cls(
            min(p.x for p in pts),
            min(p.y for p in pts),
            min(p.t for p in pts),
            max(p.x for p in pts),
            max(p.y for p in pts),
            max(p.t for p in pts),
        )

    @property
    def spatial(self) -> MBR2D:
        """The (x, y) projection of the box."""
        return MBR2D(self.xmin, self.ymin, self.xmax, self.ymax)

    @property
    def duration(self) -> float:
        return self.tmax - self.tmin

    def volume(self) -> float:
        """Box volume in (x, y, t) space."""
        return (
            (self.xmax - self.xmin)
            * (self.ymax - self.ymin)
            * (self.tmax - self.tmin)
        )

    def margin(self) -> float:
        """Sum of the three edge lengths (R*-tree margin in 3D)."""
        return (
            (self.xmax - self.xmin)
            + (self.ymax - self.ymin)
            + (self.tmax - self.tmin)
        )

    def contains_point(self, p: STPoint) -> bool:
        return (
            self.xmin <= p.x <= self.xmax
            and self.ymin <= p.y <= self.ymax
            and self.tmin <= p.t <= self.tmax
        )

    def contains(self, other: "MBR3D") -> bool:
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and self.tmin <= other.tmin
            and self.xmax >= other.xmax
            and self.ymax >= other.ymax
            and self.tmax >= other.tmax
        )

    def intersects(self, other: "MBR3D") -> bool:
        return not (
            self.xmax < other.xmin
            or other.xmax < self.xmin
            or self.ymax < other.ymin
            or other.ymax < self.ymin
            or self.tmax < other.tmin
            or other.tmax < self.tmin
        )

    def union(self, other: "MBR3D") -> "MBR3D":
        return MBR3D(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            min(self.tmin, other.tmin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
            max(self.tmax, other.tmax),
        )

    def overlaps_period(self, t_start: float, t_end: float) -> bool:
        """True when the box's temporal extent intersects ``[t_start, t_end]``."""
        return not (self.tmax < t_start or t_end < self.tmin)

    def enlargement(self, other: "MBR3D") -> float:
        """Volume increase needed to also cover ``other`` (R-tree
        choose-subtree criterion).  Pure arithmetic — no intermediate
        box object, this sits on the insertion hot path."""
        dx = max(self.xmax, other.xmax) - min(self.xmin, other.xmin)
        dy = max(self.ymax, other.ymax) - min(self.ymin, other.ymin)
        dt = max(self.tmax, other.tmax) - min(self.tmin, other.tmin)
        return dx * dy * dt - self.volume()

    def as_tuple(self) -> tuple[float, float, float, float, float, float]:
        return (self.xmin, self.ymin, self.tmin, self.xmax, self.ymax, self.tmax)
