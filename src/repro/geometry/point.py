"""Planar and spatiotemporal points.

The paper models a trajectory as a sequence of timestamped 2D positions
with linear interpolation in between; :class:`STPoint` is that sample
type and :class:`Point` the purely spatial projection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Point", "STPoint"]


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the 2D plane."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


@dataclass(frozen=True, slots=True)
class STPoint:
    """A spatiotemporal point: a 2D position sampled at time ``t``."""

    x: float
    y: float
    t: float

    @property
    def spatial(self) -> Point:
        """The spatial projection ``(x, y)``."""
        return Point(self.x, self.y)

    def distance_to(self, other: "STPoint") -> float:
        """*Spatial* Euclidean distance to ``other`` (time ignored)."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float, dt: float = 0.0) -> "STPoint":
        """Return a copy shifted by ``(dx, dy, dt)``."""
        return STPoint(self.x + dx, self.y + dy, self.t + dt)

    def as_tuple(self) -> tuple[float, float, float]:
        """Return ``(x, y, t)``."""
        return (self.x, self.y, self.t)

    def is_finite(self) -> bool:
        """True when all three coordinates are finite numbers."""
        return math.isfinite(self.x) and math.isfinite(self.y) and math.isfinite(self.t)
