"""Geometric primitives: points, bounding boxes, moving segments."""

from .mbr import MBR2D, MBR3D, point_rect_distance
from .point import Point, STPoint
from .segment import (
    STSegment,
    distance_trinomial_coefficients,
    min_moving_point_rect_distance,
)

__all__ = [
    "Point",
    "STPoint",
    "STSegment",
    "MBR2D",
    "MBR3D",
    "point_rect_distance",
    "distance_trinomial_coefficients",
    "min_moving_point_rect_distance",
]
