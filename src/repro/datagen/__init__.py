"""Data generation: GSTD-style synthetic movement, the synthetic
Trucks fleet, and Table 3 query workloads."""

from .gstd import GSTDConfig, GSTDGenerator, generate_gstd
from .trucks import TrucksConfig, TrucksGenerator, generate_trucks
from .workloads import QueryWorkload, make_query, make_workload

__all__ = [
    "GSTDConfig",
    "GSTDGenerator",
    "generate_gstd",
    "TrucksConfig",
    "TrucksGenerator",
    "generate_trucks",
    "QueryWorkload",
    "make_query",
    "make_workload",
]
