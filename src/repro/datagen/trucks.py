"""Synthetic "Trucks" fleet generator.

The paper's quality study (Section 5.2) uses the real Trucks dataset
from the R-tree portal — 273 trajectories of delivery trucks around
Athens, 112 203 line segments.  That archive is not available offline,
so this module generates the closest synthetic equivalent (see the
substitution table in DESIGN.md): a depot-anchored fleet whose trucks

* drive depot -> destination -> depot trips along L-shaped (Manhattan)
  paths, mimicking road-constrained movement,
* share a pool of routes (several trucks service the same
  destinations, so genuinely similar trajectories exist),
* move with log-normal speeds (sigma = 1, Table 2's value for the
  real data) and dwell at stops,
* are all sampled over one common time window, so every trajectory is
  valid during any query period.

What the quality experiment needs from the data is realistic heading
persistence, stops, *timestamps*, and the existence of an unambiguous
ground truth (each compressed copy's original) — all preserved here.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..exceptions import TrajectoryError
from ..trajectory import Trajectory, TrajectoryDataset

__all__ = ["TrucksConfig", "TrucksGenerator", "generate_trucks"]


@dataclass(frozen=True, slots=True)
class TrucksConfig:
    """Fleet parameters; the full-scale values of the real dataset are
    ``num_trucks=273`` with ``samples_per_truck`` ~ 410."""

    num_trucks: int = 50
    samples_per_truck: int = 150
    duration: float = 1000.0
    region_size: float = 100.0  # km-ish square
    num_routes: int = 20  # shared destination pool
    trips_per_truck: int = 3
    speed_sigma: float = 1.0  # Table 2's sigma for the real data
    dwell_fraction: float = 0.15  # time parked at depot/stops
    length_variation: float = 0.0  # per-truck sample-count spread (0.5 => ±50%)
    gps_noise: float = 0.0  # per-sample position jitter (region units)
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_trucks < 1:
            raise TrajectoryError("num_trucks must be >= 1")
        if self.samples_per_truck < 2:
            raise TrajectoryError("samples_per_truck must be >= 2")
        if self.num_routes < 1:
            raise TrajectoryError("num_routes must be >= 1")
        if not (0.0 <= self.dwell_fraction < 0.9):
            raise TrajectoryError("dwell_fraction must be in [0, 0.9)")
        if not (0.0 <= self.length_variation < 1.0):
            raise TrajectoryError("length_variation must be in [0, 1)")
        if self.gps_noise < 0.0:
            raise TrajectoryError("gps_noise must be non-negative")


class TrucksGenerator:
    """Deterministic (seeded) fleet generator."""

    def __init__(self, config: TrucksConfig | None = None) -> None:
        self.config = config if config is not None else TrucksConfig()

    def generate(self) -> TrajectoryDataset:
        cfg = self.config
        rng = random.Random(cfg.seed)
        depot = (cfg.region_size / 2.0, cfg.region_size / 2.0)
        routes = [
            (
                rng.uniform(0.05, 0.95) * cfg.region_size,
                rng.uniform(0.05, 0.95) * cfg.region_size,
            )
            for _ in range(cfg.num_routes)
        ]
        dataset = TrajectoryDataset()
        for oid in range(cfg.num_trucks):
            dataset.add(self._one_truck(oid, depot, routes, rng))
        return dataset

    # ------------------------------------------------------------------
    def _one_truck(
        self,
        oid: int,
        depot: tuple[float, float],
        routes: list[tuple[float, float]],
        rng: random.Random,
    ) -> Trajectory:
        cfg = self.config
        waypoints = self._waypoints(depot, routes, rng)
        leg_lengths = [
            abs(b[0] - a[0]) + abs(b[1] - a[1])
            for a, b in zip(waypoints, waypoints[1:])
        ]
        total_len = sum(leg_lengths) or 1.0
        # Assign each leg a time share proportional to its length over
        # a (1 - dwell) fraction of the window, inserting dwells at the
        # waypoints; per-leg speed noise makes the shares log-normal.
        driving_time = cfg.duration * (1.0 - cfg.dwell_fraction)
        dwell_each = (cfg.duration - driving_time) / max(len(waypoints) - 1, 1)
        raw_shares = [
            (length / total_len) * math.exp(rng.gauss(0.0, cfg.speed_sigma) * 0.2)
            for length in leg_lengths
        ]
        norm = sum(raw_shares) or 1.0
        leg_times = [driving_time * s / norm for s in raw_shares]

        # Piecewise path in (x, y, t): drive each Manhattan leg, then
        # dwell at the waypoint.
        knots: list[tuple[float, float, float]] = []
        t = 0.0
        x, y = waypoints[0]
        knots.append((x, y, t))
        for (wx, wy), leg_t in zip(waypoints[1:], leg_times):
            # L-shaped leg: horizontal then vertical, time split by length.
            horiz = abs(wx - x)
            vert = abs(wy - y)
            leg_len = horiz + vert
            if leg_len > 0.0:
                t_h = leg_t * (horiz / leg_len)
                t_v = leg_t - t_h
                if horiz > 0.0 and t_h > 0.0:
                    t += t_h
                    x = wx
                    knots.append((x, y, t))
                if vert > 0.0 and t_v > 0.0:
                    t += t_v
                    y = wy
                    knots.append((x, y, t))
            if dwell_each > 0.0:
                t += dwell_each
                knots.append((x, y, t))
        if knots[-1][2] < cfg.duration:
            knots.append((x, y, cfg.duration))

        # Real fleet loggers record at heterogeneous rates; the
        # variation also drives the EDR failure mode of Section 5.2.
        n = cfg.samples_per_truck
        if cfg.length_variation > 0.0:
            spread = cfg.length_variation
            n = max(2, round(n * (1.0 + rng.uniform(-spread, spread))))
        samples = _resample_knots(knots, n)
        if cfg.gps_noise > 0.0:
            samples = [
                (
                    x + rng.gauss(0.0, cfg.gps_noise),
                    y + rng.gauss(0.0, cfg.gps_noise),
                    t,
                )
                for x, y, t in samples
            ]
        return Trajectory(oid, samples)

    def _waypoints(
        self,
        depot: tuple[float, float],
        routes: list[tuple[float, float]],
        rng: random.Random,
    ) -> list[tuple[float, float]]:
        """depot -> route -> depot -> route -> ... -> depot."""
        cfg = self.config
        pts = [depot]
        for _ in range(cfg.trips_per_truck):
            dest = routes[rng.randrange(len(routes))]
            # Small per-truck offset: same route, not the same pixels.
            jitter = cfg.region_size * 0.01
            pts.append(
                (
                    dest[0] + rng.uniform(-jitter, jitter),
                    dest[1] + rng.uniform(-jitter, jitter),
                )
            )
            pts.append(depot)
        return pts


def _resample_knots(
    knots: list[tuple[float, float, float]], n: int
) -> list[tuple[float, float, float]]:
    """Sample the piecewise-linear (x, y, t) path at ``n`` regular
    instants spanning its full duration (GPS-logger style)."""
    t0 = knots[0][2]
    t1 = knots[-1][2]
    out: list[tuple[float, float, float]] = []
    k = 0
    for i in range(n):
        t = t0 + (t1 - t0) * i / (n - 1)
        while k + 1 < len(knots) - 1 and knots[k + 1][2] <= t:
            k += 1
        a, b = knots[k], knots[k + 1]
        span = b[2] - a[2]
        frac = 0.0 if span <= 0.0 else (t - a[2]) / span
        out.append(
            (a[0] + frac * (b[0] - a[0]), a[1] + frac * (b[1] - a[1]), t)
        )
    return out


def generate_trucks(
    num_trucks: int = 50,
    samples_per_truck: int = 150,
    seed: int = 42,
    **overrides,
) -> TrajectoryDataset:
    """Convenience wrapper; full paper scale is
    ``generate_trucks(273, 412)`` (~112 K segments)."""
    cfg = TrucksConfig(
        num_trucks=num_trucks,
        samples_per_truck=samples_per_truck,
        seed=seed,
        **overrides,
    )
    return TrucksGenerator(cfg).generate()
