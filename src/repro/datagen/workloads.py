"""Query workload generators (Table 3 of the paper).

Every performance query is "part of a random data trajectory": pick a
trajectory, pick a random window covering ``query_length`` of the
common time span, slice it out, and use the slice as the query.  The
source trajectory remains in the dataset — finding it (dissimilarity
zero over the window) is the expected behaviour, exactly as in the
paper's setup.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..exceptions import QueryError
from ..trajectory import Trajectory, TrajectoryDataset

__all__ = ["QueryWorkload", "make_query", "make_workload"]


@dataclass(frozen=True, slots=True)
class QueryWorkload:
    """A reproducible batch of (query trajectory, period) pairs."""

    queries: tuple[tuple[Trajectory, tuple[float, float]], ...]
    query_length: float
    seed: int

    def __iter__(self):
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)


def make_query(
    dataset: TrajectoryDataset,
    query_length: float,
    rng: random.Random,
    query_id: int = -1,
) -> tuple[Trajectory, tuple[float, float]]:
    """One Table 3-style query: a ``query_length`` fraction of a random
    data trajectory's lifetime, sliced out and re-labelled."""
    if not (0.0 < query_length <= 1.0):
        raise QueryError(
            f"query_length must be in (0, 1], got {query_length}"
        )
    ids = dataset.ids()
    source = dataset[ids[rng.randrange(len(ids))]]
    window = source.duration * query_length
    if query_length >= 1.0:
        t_lo = source.t_start
    else:
        t_lo = source.t_start + rng.uniform(0.0, source.duration - window)
    t_hi = min(t_lo + window, source.t_end)
    query = source.sliced(t_lo, t_hi).with_id(query_id)
    return (query, (t_lo, t_hi))


def make_workload(
    dataset: TrajectoryDataset,
    num_queries: int,
    query_length: float = 0.05,
    seed: int = 1234,
) -> QueryWorkload:
    """A batch of ``num_queries`` reproducible queries (the paper runs
    sets of 500)."""
    if num_queries < 1:
        raise QueryError(f"num_queries must be >= 1, got {num_queries}")
    rng = random.Random(seed)
    queries = tuple(
        make_query(dataset, query_length, rng, query_id=-(i + 1))
        for i in range(num_queries)
    )
    return QueryWorkload(queries, query_length, seed)
