"""GSTD-style synthetic trajectory generator (after Theodoridis,
Silva & Nascimento [17], re-implemented from the paper's description).

Each moving object starts at a position drawn from the initial
distribution, then takes steps with a random heading and a speed drawn
from a normal or log-normal distribution (Table 2 of the paper uses
log-normal with sigma = 0.6).  Objects live in the unit square and
bounce off its walls; every object is sampled over the same time
window so the whole dataset is valid during any query period — the
paper's standing assumption.

The sampling clock can be jittered per object
(``sampling_jitter > 0``) to produce the *different sampling rates*
the DISSIM metric is designed to cope with.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Literal

from ..exceptions import TrajectoryError
from ..trajectory import Trajectory, TrajectoryDataset

__all__ = ["GSTDConfig", "GSTDGenerator", "generate_gstd"]


@dataclass(frozen=True, slots=True)
class GSTDConfig:
    """Knobs of the generator; defaults mirror Table 2 at small scale."""

    num_objects: int = 100
    samples_per_object: int = 200
    duration: float = 2000.0
    speed_distribution: Literal["lognormal", "normal"] = "lognormal"
    speed_scale: float = 0.002  # median step speed (space units / time unit)
    speed_sigma: float = 0.6  # Table 2's sigma
    initial_distribution: Literal["uniform", "gaussian"] = "uniform"
    heading: Literal["random", "persistent"] = "persistent"
    turn_sigma: float = 0.5  # heading random-walk step (radians)
    sampling_jitter: float = 0.3  # 0 = regular clock, <1 = fraction of dt
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_objects < 1:
            raise TrajectoryError("num_objects must be >= 1")
        if self.samples_per_object < 2:
            raise TrajectoryError("samples_per_object must be >= 2")
        if self.duration <= 0.0:
            raise TrajectoryError("duration must be positive")
        if not (0.0 <= self.sampling_jitter < 1.0):
            raise TrajectoryError("sampling_jitter must be in [0, 1)")
        if self.speed_scale <= 0.0:
            raise TrajectoryError("speed_scale must be positive")


class GSTDGenerator:
    """Deterministic (seeded) GSTD-style generator."""

    def __init__(self, config: GSTDConfig | None = None) -> None:
        self.config = config if config is not None else GSTDConfig()

    def generate(self) -> TrajectoryDataset:
        cfg = self.config
        rng = random.Random(cfg.seed)
        dataset = TrajectoryDataset()
        for oid in range(cfg.num_objects):
            dataset.add(self._one_trajectory(oid, rng))
        return dataset

    # ------------------------------------------------------------------
    def _one_trajectory(self, oid: int, rng: random.Random) -> Trajectory:
        cfg = self.config
        x, y = self._initial_position(rng)
        theta = rng.uniform(0.0, 2.0 * math.pi)
        times = self._sampling_times(rng)
        samples = [(x, y, times[0])]
        for prev_t, cur_t in zip(times, times[1:]):
            dt = cur_t - prev_t
            theta = self._next_heading(theta, rng)
            speed = self._draw_speed(rng)
            x += speed * dt * math.cos(theta)
            y += speed * dt * math.sin(theta)
            x, theta = _reflect(x, theta, axis="x")
            y, theta = _reflect(y, theta, axis="y")
            samples.append((x, y, cur_t))
        return Trajectory(oid, samples)

    def _initial_position(self, rng: random.Random) -> tuple[float, float]:
        if self.config.initial_distribution == "uniform":
            return (rng.random(), rng.random())
        # Gaussian around the centre, clipped into the square.
        return (
            min(max(rng.gauss(0.5, 0.15), 0.0), 1.0),
            min(max(rng.gauss(0.5, 0.15), 0.0), 1.0),
        )

    def _sampling_times(self, rng: random.Random) -> list[float]:
        """A strictly increasing clock spanning exactly [0, duration];
        interior ticks are jittered per object when configured."""
        cfg = self.config
        n = cfg.samples_per_object
        dt = cfg.duration / (n - 1)
        times = [0.0]
        for i in range(1, n - 1):
            base = i * dt
            if cfg.sampling_jitter > 0.0:
                base += rng.uniform(-1.0, 1.0) * cfg.sampling_jitter * dt * 0.49
            times.append(base)
        times.append(cfg.duration)
        # Jitter magnitude < dt/2 keeps the clock monotonic by
        # construction; assert to make the invariant loud.
        for a, b in zip(times, times[1:]):
            if b <= a:
                raise TrajectoryError("non-monotonic sampling clock generated")
        return times

    def _next_heading(self, theta: float, rng: random.Random) -> float:
        if self.config.heading == "random":
            return rng.uniform(0.0, 2.0 * math.pi)
        return theta + rng.gauss(0.0, self.config.turn_sigma)

    def _draw_speed(self, rng: random.Random) -> float:
        cfg = self.config
        if cfg.speed_distribution == "lognormal":
            return cfg.speed_scale * math.exp(rng.gauss(0.0, cfg.speed_sigma))
        return abs(rng.gauss(cfg.speed_scale, cfg.speed_sigma * cfg.speed_scale))


def _reflect(coord: float, theta: float, axis: str) -> tuple[float, float]:
    """Bounce a coordinate back into [0, 1], mirroring the heading."""
    bounced = False
    while coord < 0.0 or coord > 1.0:
        if coord < 0.0:
            coord = -coord
        else:
            coord = 2.0 - coord
        bounced = True
    if bounced:
        theta = math.pi - theta if axis == "x" else -theta
    return coord, theta


def generate_gstd(
    num_objects: int,
    samples_per_object: int = 200,
    seed: int = 7,
    **overrides,
) -> TrajectoryDataset:
    """Convenience wrapper: one call per synthetic dataset of Table 2
    (S0100 = ``generate_gstd(100)``, ... S1000 = ``generate_gstd(1000)``)."""
    cfg = GSTDConfig(
        num_objects=num_objects,
        samples_per_object=samples_per_object,
        seed=seed,
        **overrides,
    )
    return GSTDGenerator(cfg).generate()
