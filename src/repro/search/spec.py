"""The canonical, wire-serializable query description.

A :class:`QuerySpec` is the *one* request shape shared by every caller
of the search stack: the six unified :mod:`repro.search.api` entry
points construct one for each call, the batched engines
(:class:`~repro.engine.QueryEngine`,
:class:`~repro.engine.ShardedQueryEngine`,
:class:`~repro.engine.LiveQueryEngine`) execute them directly, the
``repro batch`` / ``repro serve`` CLIs read them from files and
sockets, and :mod:`repro.serve` uses the JSON form verbatim as its
wire format.  ``engine.QueryRequest`` is the same class under its
pre-promotion name.

The JSON envelope is versioned (``"spec": 1``) and uses stable field
names::

    {"spec": 1, "kind": "mst", "k": 5,
     "query": {"type": "trajectory", "id": -1, "samples": [[x, y, t], ...]},
     "period": [t_lo, t_hi] | null,
     "kernels": "auto" | "numpy" | "python" | null,
     "deadline_ms": 250.0 | null,
     "options": {...}}

``query`` is a tagged union over the three query object types
(``trajectory`` / ``point`` / ``window``).  ``deadline_ms`` is a
*budget*: admission control turns it into an absolute deadline and the
engines abort work past it (see :mod:`repro.serve`); it is therefore
excluded from :meth:`cache_key`, which identifies the *answer* a spec
determines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..exceptions import QueryError
from ..geometry import MBR2D, Point
from ..trajectory import Trajectory

__all__ = [
    "SPEC_VERSION",
    "QuerySpec",
    "encode_query",
    "decode_query",
]

SPEC_VERSION = 1

#: Accepted ``kind`` spellings -> canonical algorithm name.
KIND_ALIASES = {
    "mst": "mst",
    "bfmst": "mst",
    "kmst": "mst",
    "linear_scan": "linear_scan",
    "scan": "linear_scan",
    "nn": "nn",
    "range": "range",
    "continuous_nn": "continuous_nn",
    "cnn": "continuous_nn",
    "time_relaxed": "time_relaxed",
}

#: Spec fields that ``options`` must never shadow (they would turn
#: into duplicate keyword arguments at dispatch time).
_RESERVED_OPTION_KEYS = frozenset(
    {"kind", "query", "period", "k", "kernels", "deadline_ms", "trace"}
)


def encode_query(query) -> dict:
    """Tagged JSON-ready encoding of a query object."""
    if isinstance(query, Trajectory):
        return {
            "type": "trajectory",
            "id": query.object_id,
            "samples": [
                [float(p.x), float(p.y), float(p.t)] for p in query.samples
            ],
        }
    if isinstance(query, Point):
        return {"type": "point", "x": float(query.x), "y": float(query.y)}
    if isinstance(query, MBR2D):
        return {
            "type": "window",
            "xmin": float(query.xmin),
            "ymin": float(query.ymin),
            "xmax": float(query.xmax),
            "ymax": float(query.ymax),
        }
    raise QueryError(
        f"unsupported query object {type(query).__name__}; expected "
        f"Trajectory, Point or MBR2D"
    )


def decode_query(doc):
    """Inverse of :func:`encode_query`; raises :class:`QueryError` on
    malformed documents (bad tag, missing fields, invalid geometry)."""
    if not isinstance(doc, dict):
        raise QueryError(f"query must be a tagged object, got {type(doc).__name__}")
    tag = doc.get("type")
    try:
        if tag == "trajectory":
            return Trajectory(
                doc["id"],
                [(float(x), float(y), float(t)) for x, y, t in doc["samples"]],
            )
        if tag == "point":
            return Point(float(doc["x"]), float(doc["y"]))
        if tag == "window":
            return MBR2D(
                float(doc["xmin"]),
                float(doc["ymin"]),
                float(doc["xmax"]),
                float(doc["ymax"]),
            )
    except QueryError:
        raise
    except Exception as exc:  # malformed coordinates, short samples, ...
        raise QueryError(f"malformed {tag!r} query object: {exc}") from exc
    raise QueryError(
        f"unknown query type {tag!r}; expected trajectory, point or window"
    )


def _jsonable_option(value):
    """Options travel on the wire: coerce the containers the in-process
    API accepts (frozenset exclude_ids, tuples) into JSON equivalents."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    return value


@dataclass
class QuerySpec:
    """One query, fully described — in process and on the wire.

    ``kind`` selects the algorithm (``"mst"``, ``"linear_scan"``,
    ``"nn"``, ``"range"``, ``"continuous_nn"``, ``"time_relaxed"``,
    plus the aliases in :data:`KIND_ALIASES`); ``query`` is the
    matching query object (trajectory, point or window); ``options``
    passes algorithm-specific keywords through to the unified API
    (``vmax``, ``exact``, ``grid``, ``exclude_ids``, ...).
    ``kernels`` picks the hot-path implementation when the executing
    context does not impose its own; ``deadline_ms`` is the caller's
    latency budget, enforced by deadline-aware executors.
    """

    kind: str
    query: object
    period: tuple[float, float] | None = None
    k: int = 1
    options: dict = field(default_factory=dict)
    kernels: str | None = None
    deadline_ms: float | None = None

    def canonical_kind(self) -> str:
        try:
            return KIND_ALIASES[self.kind]
        except (KeyError, TypeError):
            raise QueryError(
                f"unknown query kind {self.kind!r}; expected one of "
                f"{sorted(set(KIND_ALIASES.values()))}"
            ) from None

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "spec": SPEC_VERSION,
            "kind": self.canonical_kind(),
            "k": self.k,
            "query": encode_query(self.query),
            "period": (
                [float(self.period[0]), float(self.period[1])]
                if self.period is not None
                else None
            ),
            "kernels": self.kernels,
            "deadline_ms": (
                float(self.deadline_ms) if self.deadline_ms is not None else None
            ),
            "options": {
                name: _jsonable_option(value)
                for name, value in sorted(self.options.items())
            },
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, doc) -> "QuerySpec":
        """Validating inverse of :meth:`as_dict`.

        Raises :class:`QueryError` on anything malformed — unknown
        version or kind, bad ``k``/``period``/``deadline_ms``, options
        that would shadow spec fields — so wire-facing callers can map
        it straight to a 400.
        """
        if not isinstance(doc, dict):
            raise QueryError(
                f"query spec must be an object, got {type(doc).__name__}"
            )
        version = doc.get("spec", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise QueryError(
                f"unsupported spec version {version!r} (this build speaks "
                f"version {SPEC_VERSION})"
            )
        unknown = set(doc) - {
            "spec", "kind", "k", "query", "period", "kernels",
            "deadline_ms", "options",
        }
        if unknown:
            raise QueryError(f"unknown spec fields {sorted(unknown)}")
        if "kind" not in doc or "query" not in doc:
            raise QueryError("query spec requires 'kind' and 'query'")
        k = doc.get("k", 1)
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise QueryError(f"k must be a positive integer, got {k!r}")
        period = doc.get("period")
        if period is not None:
            if (
                not isinstance(period, (list, tuple))
                or len(period) != 2
                or not all(isinstance(v, (int, float)) for v in period)
            ):
                raise QueryError(
                    f"period must be [t_start, t_end] or null, got {period!r}"
                )
            period = (float(period[0]), float(period[1]))
            if period[0] > period[1]:
                raise QueryError(f"inverted period {period!r}")
        kernels = doc.get("kernels")
        if kernels not in (None, "auto", "numpy", "python"):
            raise QueryError(
                f"kernels must be auto|numpy|python or null, got {kernels!r}"
            )
        deadline_ms = doc.get("deadline_ms")
        if deadline_ms is not None:
            if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
                raise QueryError(
                    f"deadline_ms must be a positive number, got {deadline_ms!r}"
                )
            deadline_ms = float(deadline_ms)
        options = doc.get("options") or {}
        if not isinstance(options, dict):
            raise QueryError(f"options must be an object, got {options!r}")
        shadowed = set(options) & _RESERVED_OPTION_KEYS
        if shadowed:
            raise QueryError(
                f"options {sorted(shadowed)} shadow spec fields; set them "
                f"as top-level spec fields instead"
            )
        options = dict(options)
        if "exclude_ids" in options:
            try:
                options["exclude_ids"] = frozenset(options["exclude_ids"])
            except TypeError:
                raise QueryError(
                    f"exclude_ids must be a list of ids, got "
                    f"{options['exclude_ids']!r}"
                ) from None
        spec = cls(
            kind=doc["kind"],
            query=decode_query(doc["query"]),
            period=period,
            k=k,
            options=options,
            kernels=kernels,
            deadline_ms=deadline_ms,
        )
        spec.canonical_kind()  # validates the kind eagerly
        return spec

    @classmethod
    def from_json(cls, text: str | bytes) -> "QuerySpec":
        try:
            doc = json.loads(text)
        except (ValueError, UnicodeDecodeError) as exc:
            raise QueryError(f"query spec is not valid JSON: {exc}") from exc
        return cls.from_dict(doc)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def cache_key(self) -> str:
        """Canonical identity of the *answer* this spec determines:
        the wire form minus the deadline budget (two calls that differ
        only in latency budget return the same result)."""
        doc = self.as_dict()
        del doc["deadline_ms"]
        return json.dumps(doc, sort_keys=True)
