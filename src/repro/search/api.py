"""The unified search API — one signature for every algorithm.

Every entry point accepts the same three leading arguments::

    fn(ctx_or_index, dataset, query, *, period=None, k=1, trace=None, ...)
    -> SearchResult

* ``ctx_or_index`` — a :class:`~repro.engine.QueryEngine` execution
  context (anything exposing ``.index``/``.dataset`` and a
  ``search_hooks(query, period)`` method), a bare
  :class:`~repro.index.TrajectoryIndex`, or ``None`` for index-free
  algorithms,
* ``dataset`` — the :class:`~repro.trajectory.TrajectoryDataset`
  (``None`` to take the context's, or for index-only algorithms),
* ``query`` — the query object: a :class:`~repro.trajectory.Trajectory`
  for (k-)MST / continuous NN / time-relaxed, a
  :class:`~repro.geometry.Point` for point NN, an
  :class:`~repro.geometry.MBR2D` window for range queries.

All entry points return a :class:`~repro.search.results.SearchResult`
whose ``stats`` block has the same field set regardless of algorithm;
the result carries the :class:`~repro.search.spec.QuerySpec` the call
was built from (``result.spec``), so any answer can be re-asked —
in-process, from a batch file, or over the ``repro serve`` wire.
:func:`execute_spec` is the inverse: it dispatches a spec against any
context.

**Legacy forms.**  The pre-unification positional forms (discriminated
by the type of the second positional argument) were deprecated in the
engine PR and are now **removed**: they raise :class:`TypeError` with
a migration hint.  See the migration table in the README.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext

from ..exceptions import QueryError
from ..geometry import MBR2D, Point
from ..obs import state as _obs
from ..trajectory import Trajectory, TrajectoryDataset
from . import bfmst as _bfmst
from . import continuous_nn as _cnn
from . import linear_scan as _scan
from . import nn as _nn
from . import range_query as _range
from . import time_relaxed as _trx
from .results import MSTMatch, SearchResult, SearchStats
from .spec import QuerySpec

__all__ = [
    "bfmst_search",
    "linear_scan_kmst",
    "nearest_neighbours",
    "range_query",
    "continuous_nearest_neighbour",
    "time_relaxed_kmst",
    "resolve_context",
    "execute_spec",
]


# ----------------------------------------------------------------------
# shared plumbing
# ----------------------------------------------------------------------
def resolve_context(ctx_or_index, dataset):
    """Split the unified API's first two arguments into
    ``(index, dataset, ctx)``.

    A *context* is duck-typed — anything with ``.index`` and a callable
    ``search_hooks`` qualifies (the engine's execution context does; no
    import of :mod:`repro.engine` happens here, so the layering stays
    acyclic).  An explicit ``dataset`` argument wins over the
    context's.  As an ergonomic special case a
    :class:`~repro.trajectory.TrajectoryDataset` passed in the context
    slot of an index-free algorithm is treated as the dataset.
    """
    if (
        ctx_or_index is not None
        and hasattr(ctx_or_index, "index")
        and callable(getattr(ctx_or_index, "search_hooks", None))
    ):
        if dataset is None:
            dataset = getattr(ctx_or_index, "dataset", None)
        return ctx_or_index.index, dataset, ctx_or_index
    if dataset is None and isinstance(ctx_or_index, TrajectoryDataset):
        return None, ctx_or_index, None
    return ctx_or_index, dataset, None


def _legacy_error(name: str, hint: str) -> TypeError:
    """The pre-unification positional forms went through a deprecation
    cycle (DeprecationWarning since the engine PR) and are now removed;
    point the caller at the replacement instead of failing obscurely
    inside argument binding."""
    return TypeError(
        f"the positional {name} form was removed; call the unified form "
        f"{hint} (returns SearchResult) — see the migration table in the "
        f"README"
    )


@contextmanager
def _installed(trace):
    previous = _obs.ACTIVE
    _obs.ACTIVE = trace
    fresh = getattr(trace, "_t0", None) is None
    if fresh:
        trace.start()
    try:
        yield trace
    finally:
        if fresh:
            trace.finish()
        _obs.ACTIVE = previous


def _tracing(trace):
    """Install ``trace`` as the active QueryTrace for the call (it is
    started/finished only if the caller has not already started it)."""
    return _installed(trace) if trace is not None else nullcontext()


def _new_form_args(args: tuple, dataset, query, name: str):
    """Bind the new form's trailing positionals ``(dataset, query)``."""
    if len(args) > 2:
        raise TypeError(
            f"unified {name}() takes 3 positional arguments "
            f"(ctx_or_index, dataset, query); got {len(args) + 1}"
        )
    if args:
        if dataset is not None:
            raise TypeError(f"{name}() got duplicate 'dataset'")
        dataset = args[0]
    if len(args) == 2:
        if query is not None:
            raise TypeError(f"{name}() got duplicate 'query'")
        query = args[1]
    if query is None:
        raise TypeError(f"{name}() missing required argument: 'query'")
    return dataset, query


def _attach(result: SearchResult, spec: QuerySpec, trace) -> SearchResult:
    """Stamp the result envelope with the spec it answers and the trace
    it ran under, so serialised results are self-describing."""
    result.spec = spec
    result.trace_id = getattr(trace, "name", None) if trace is not None else None
    return result


def _require_index(index, name: str):
    if index is None:
        raise QueryError(f"{name} requires an index (or engine context)")
    return index


def _is_sharded(index) -> bool:
    """True for a :class:`~repro.sharding.ShardedIndex` (duck-typed so
    the search layer keeps no import of :mod:`repro.sharding`)."""
    return bool(getattr(index, "is_sharded", False))


def _merge_shard_stats(agg, parts) -> None:
    """Fold per-shard :class:`SearchStats` into an aggregate (sums for
    the additive counters; ``total_nodes`` stays the caller's global
    figure so pruning power is measured against the whole collection).
    """
    for s in parts:
        agg.node_accesses += s.node_accesses
        agg.leaf_accesses += s.leaf_accesses
        agg.internal_accesses += s.internal_accesses
        agg.entries_processed += s.entries_processed
        agg.candidates_created += s.candidates_created
        agg.candidates_completed += s.candidates_completed
        agg.candidates_rejected += s.candidates_rejected
        agg.dissim_evaluations += s.dissim_evaluations
        agg.buffer_hits += s.buffer_hits
        agg.buffer_misses += s.buffer_misses
        agg.heap_high_water = max(agg.heap_high_water, s.heap_high_water)


# ----------------------------------------------------------------------
# k-MST (BFMST)
# ----------------------------------------------------------------------
def bfmst_search(
    ctx_or_index,
    *args,
    dataset=None,
    query=None,
    period: tuple[float, float] | None = None,
    k: int = 1,
    vmax: float | None = None,
    use_heuristic1: bool = True,
    use_heuristic2: bool = True,
    refine: bool = True,
    exclude_ids=frozenset(),
    kernels: str | None = None,
    filter: str = "auto",
    mindist_fn=None,
    segment_dissim_fn=None,
    mindist_batch_fn=None,
    segment_dissim_batch_fn=None,
    refinement_cache=None,
    heap_scratch: list | None = None,
    trace=None,
) -> SearchResult:
    """Index-based k-Most-Similar-Trajectory search (the paper's BFMST).

    Unified form: ``bfmst_search(ctx_or_index, dataset, query, *,
    period=None, k=1, ...) -> SearchResult`` (``dataset`` may be
    ``None`` — BFMST reads only the index).  ``kernels`` selects the
    hot-path implementation (``"auto"``/``"numpy"``/``"python"``; see
    :mod:`repro.distance.kernels`) — ``None`` keeps the classic
    per-entry scalar path.  ``filter`` controls the signature filter
    tier (``"auto"`` filters when the index carries a signature
    sidecar, ``"on"`` requires one, ``"off"`` disables it; answers are
    identical either way — see :mod:`repro.filter`).  An explicit
    ``"on"``/``"off"`` always wins over an engine context's configured
    default.  The removed legacy form
    ``bfmst_search(index, query, period, k=...)`` raises
    :class:`TypeError`.
    """
    if args and isinstance(args[0], Trajectory):
        raise _legacy_error(
            "bfmst_search(index, query, ...)",
            "bfmst_search(index, None, query, k=...)",
        )
    dataset, query, = _new_form_args(args, dataset, query, "bfmst_search")
    options = {}
    if vmax is not None:
        options["vmax"] = vmax
    if not use_heuristic1:
        options["use_heuristic1"] = False
    if not use_heuristic2:
        options["use_heuristic2"] = False
    if not refine:
        options["refine"] = False
    if exclude_ids:
        options["exclude_ids"] = frozenset(exclude_ids)
    if filter != "auto":
        options["filter"] = filter
    spec = QuerySpec("mst", query, period, k, options, kernels=kernels)
    index, dataset, ctx = resolve_context(ctx_or_index, dataset)
    _require_index(index, "bfmst_search")
    hooks = ctx.search_hooks(query, period) if ctx is not None else {}
    with _tracing(trace):
        if _is_sharded(index):
            matches, stats = _bfmst.bfmst_search_sharded(
                index, query, period, k, vmax,
                use_heuristic1, use_heuristic2, refine, exclude_ids,
                kernels=hooks.get("kernels", kernels),
                filter=filter if filter != "auto" else hooks.get("filter", "auto"),
                selected=hooks.get("selected"),
                shard_hooks=hooks.get("shard_hooks"),
                refinement_cache=hooks.get(
                    "refinement_cache", refinement_cache
                ),
                executor=hooks.get("shard_executor"),
            )
        else:
            matches, stats = _bfmst.bfmst_search(
                index, query, period, k, vmax,
                use_heuristic1, use_heuristic2, refine, exclude_ids,
                kernels=hooks.get("kernels", kernels),
                filter=filter if filter != "auto" else hooks.get("filter", "auto"),
                mindist_fn=hooks.get("mindist_fn", mindist_fn),
                segment_dissim_fn=hooks.get(
                    "segment_dissim_fn", segment_dissim_fn
                ),
                mindist_batch_fn=hooks.get(
                    "mindist_batch_fn", mindist_batch_fn
                ),
                segment_dissim_batch_fn=hooks.get(
                    "segment_dissim_batch_fn", segment_dissim_batch_fn
                ),
                refinement_cache=hooks.get(
                    "refinement_cache", refinement_cache
                ),
                heap_scratch=hooks.get("heap_scratch", heap_scratch),
            )
    return _attach(SearchResult("bfmst", matches, stats), spec, trace)


# ----------------------------------------------------------------------
# linear-scan k-MST
# ----------------------------------------------------------------------
def linear_scan_kmst(
    ctx_or_index,
    *args,
    dataset=None,
    query=None,
    period: tuple[float, float] | None = None,
    k: int = 1,
    exact: bool = False,
    exclude_ids=frozenset(),
    kernels: str | None = None,
    trace=None,
) -> SearchResult:
    """Exhaustive k-MST — the index-free ground truth.

    Unified form: ``linear_scan_kmst(None, dataset, query, *, k=1,
    exact=False, ...) -> SearchResult``.  ``kernels`` is accepted for
    schema uniformity (every entry point shares the QuerySpec field
    set) but the scan has no vectorised path yet.  The removed legacy
    form ``linear_scan_kmst(dataset, query, period, k, ...)`` raises
    :class:`TypeError`.
    """
    if args and isinstance(args[0], Trajectory):
        raise _legacy_error(
            "linear_scan_kmst(dataset, query, ...)",
            "linear_scan_kmst(None, dataset, query, k=...)",
        )
    dataset, query = _new_form_args(args, dataset, query, "linear_scan_kmst")
    options = {}
    if exact:
        options["exact"] = True
    if exclude_ids:
        options["exclude_ids"] = frozenset(exclude_ids)
    spec = QuerySpec("linear_scan", query, period, k, options, kernels=kernels)
    _index, dataset, _ctx = resolve_context(ctx_or_index, dataset)
    if dataset is None:
        raise QueryError("linear_scan_kmst requires a dataset")
    with _tracing(trace):
        matches, stats = _scan.linear_scan_with_stats(
            dataset, query, period, k, exact, exclude_ids
        )
    return _attach(SearchResult("linear_scan", matches, stats), spec, trace)


# ----------------------------------------------------------------------
# point nearest neighbours
# ----------------------------------------------------------------------
def nearest_neighbours(
    ctx_or_index,
    *args,
    dataset=None,
    query=None,
    period: tuple[float, float] | None = None,
    k: int = 1,
    kernels: str | None = None,
    trace=None,
) -> SearchResult:
    """Historical point-NN: the k objects passing closest to a location.

    Unified form: ``nearest_neighbours(ctx_or_index, dataset, point, *,
    period=(t_start, t_end), k=1, ...) -> SearchResult`` — the match
    ``dissim`` slot carries the point distance.  ``kernels`` is
    accepted for schema uniformity (no vectorised path yet).  The
    removed legacy form
    ``nearest_neighbours(index, point, t_start, t_end, k)`` raises
    :class:`TypeError`.
    """
    if args and isinstance(args[0], Point):
        raise _legacy_error(
            "nearest_neighbours(index, point, t_start, t_end, ...)",
            "nearest_neighbours(index, None, point, period=(t_start, t_end))",
        )
    dataset, point = _new_form_args(args, dataset, query, "nearest_neighbours")
    spec = QuerySpec("nn", point, period, k, kernels=kernels)
    index, _dataset, _ctx = resolve_context(ctx_or_index, dataset)
    _require_index(index, "nearest_neighbours")
    if period is None:
        raise QueryError("nearest_neighbours requires period=(t_start, t_end)")
    t_start, t_end = period
    with _tracing(trace):
        if _is_sharded(index):
            # Disjoint shards: the global k best is the k best of the
            # per-shard k bests.
            pairs = []
            parts = []
            for shard in index.shards:
                shard_pairs, shard_stats = _nn.nearest_neighbours_with_stats(
                    shard, point, t_start, t_end, k
                )
                pairs.extend(shard_pairs)
                parts.append(shard_stats)
            pairs.sort(key=lambda p: (p[1], p[0]))
            pairs = pairs[:k]
            stats = SearchStats(total_nodes=index.num_nodes)
            _merge_shard_stats(stats, parts)
        else:
            pairs, stats = _nn.nearest_neighbours_with_stats(
                index, point, t_start, t_end, k
            )
    matches = [MSTMatch(tid, dist, 0.0, True) for tid, dist in pairs]
    return _attach(SearchResult("nn", matches, stats), spec, trace)


# ----------------------------------------------------------------------
# spatiotemporal range
# ----------------------------------------------------------------------
def range_query(
    ctx_or_index,
    *args,
    dataset=None,
    query=None,
    period: tuple[float, float] | None = None,
    kernels: str | None = None,
    trace=None,
) -> SearchResult:
    """Objects whose path enters a spatial window during an interval.

    Unified form: ``range_query(ctx_or_index, dataset, window, *,
    period=(t_start, t_end), ...) -> SearchResult`` — hits are unranked
    :class:`MSTMatch` rows (``dissim`` 0) sorted by id.  ``kernels`` is
    accepted for schema uniformity (no vectorised path yet).  The
    removed legacy form ``range_query(index, window, t_start, t_end)``
    raises :class:`TypeError`.
    """
    if args and isinstance(args[0], MBR2D):
        raise _legacy_error(
            "range_query(index, window, t_start, t_end)",
            "range_query(index, None, window, period=(t_start, t_end))",
        )
    dataset, window = _new_form_args(args, dataset, query, "range_query")
    spec = QuerySpec("range", window, period, kernels=kernels)
    index, _dataset, _ctx = resolve_context(ctx_or_index, dataset)
    _require_index(index, "range_query")
    if period is None:
        raise QueryError("range_query requires period=(t_start, t_end)")
    t_start, t_end = period
    with _tracing(trace):
        hits, stats = _range.range_query_with_stats(
            index, window, t_start, t_end
        )
    matches = [MSTMatch(tid, 0.0, 0.0, True) for tid in sorted(hits)]
    return _attach(
        SearchResult("range", matches, stats, extras={"hit_ids": sorted(hits)}),
        spec,
        trace,
    )


# ----------------------------------------------------------------------
# historical continuous NN
# ----------------------------------------------------------------------
def continuous_nearest_neighbour(
    ctx_or_index,
    *args,
    dataset=None,
    query=None,
    period: tuple[float, float] | None = None,
    exclude_ids=frozenset(),
    index=None,
    kernels: str | None = None,
    trace=None,
) -> SearchResult:
    """Nearest object at every instant of the period.

    Unified form: ``continuous_nearest_neighbour(ctx_or_index, dataset,
    query, *, period=(t_start, t_end), ...) -> SearchResult`` — the
    interval partition is in ``result.extras["intervals"]`` (also via
    ``result.intervals``); ``matches`` lists the distinct winners in
    order of first appearance.  An index in the context slot enables
    candidate pruning.  ``kernels`` is accepted for schema uniformity
    (no vectorised path yet).  The removed legacy form
    ``continuous_nearest_neighbour(dataset, query, t_start, t_end,
    index=...)`` raises :class:`TypeError`.
    """
    if args and isinstance(args[0], Trajectory):
        raise _legacy_error(
            "continuous_nearest_neighbour(dataset, query, t_start, t_end, ...)",
            "continuous_nearest_neighbour(index, dataset, query, "
            "period=(t_start, t_end))",
        )
    if index is not None:
        raise TypeError(
            "the unified continuous_nearest_neighbour() takes the index "
            "through the first (ctx_or_index) argument, not index="
        )
    dataset, q = _new_form_args(
        args, dataset, query, "continuous_nearest_neighbour"
    )
    options = {}
    if exclude_ids:
        options["exclude_ids"] = frozenset(exclude_ids)
    spec = QuerySpec("continuous_nn", q, period, options=options, kernels=kernels)
    index, dataset, _ctx = resolve_context(ctx_or_index, dataset)
    if dataset is None:
        raise QueryError("continuous_nearest_neighbour requires a dataset")
    if period is None:
        raise QueryError(
            "continuous_nearest_neighbour requires period=(t_start, t_end)"
        )
    t_start, t_end = period
    with _tracing(trace):
        intervals, stats = _cnn.continuous_nn_with_stats(
            dataset, q, t_start, t_end, index, exclude_ids
        )
    winners: list[int] = []
    for piece in intervals:
        if piece.object_id not in winners:
            winners.append(piece.object_id)
    matches = [MSTMatch(oid, 0.0, 0.0, True) for oid in winners]
    return _attach(
        SearchResult(
            "continuous_nn", matches, stats, extras={"intervals": intervals}
        ),
        spec,
        trace,
    )


# ----------------------------------------------------------------------
# time-relaxed k-MST
# ----------------------------------------------------------------------
def time_relaxed_kmst(
    ctx_or_index,
    *args,
    dataset=None,
    query=None,
    k: int = 1,
    grid: int = 64,
    exclude_ids=frozenset(),
    kernels: str | None = None,
    trace=None,
) -> SearchResult:
    """k-MST minimised over all admissible query time shifts.

    Unified form: ``time_relaxed_kmst(None, dataset, query, *, k=1,
    grid=64, ...) -> SearchResult`` — the optimal shift per answer is
    in ``result.extras["shifts"]`` (a ``{trajectory_id: shift}``
    mapping).  ``kernels`` is accepted for schema uniformity (no
    vectorised path yet).  The removed legacy form
    ``time_relaxed_kmst(dataset, query, k, grid)`` raises
    :class:`TypeError`.
    """
    if args and isinstance(args[0], Trajectory):
        raise _legacy_error(
            "time_relaxed_kmst(dataset, query, ...)",
            "time_relaxed_kmst(None, dataset, query, k=...)",
        )
    dataset, q = _new_form_args(args, dataset, query, "time_relaxed_kmst")
    options = {}
    if grid != 64:
        options["grid"] = grid
    if exclude_ids:
        options["exclude_ids"] = frozenset(exclude_ids)
    spec = QuerySpec("time_relaxed", q, None, k, options, kernels=kernels)
    _index, dataset, _ctx = resolve_context(ctx_or_index, dataset)
    if dataset is None:
        raise QueryError("time_relaxed_kmst requires a dataset")
    with _tracing(trace):
        pairs, stats = _trx.time_relaxed_with_stats(
            dataset, q, k, grid, exclude_ids
        )
    matches = [m for m, _shift in pairs]
    shifts = {m.trajectory_id: shift for m, shift in pairs}
    return _attach(
        SearchResult("time_relaxed", matches, stats, extras={"shifts": shifts}),
        spec,
        trace,
    )


# ----------------------------------------------------------------------
# spec dispatch
# ----------------------------------------------------------------------
#: canonical kind -> (entry point, takes period, takes k)
_DISPATCH = {
    "mst": (bfmst_search, True, True),
    "linear_scan": (linear_scan_kmst, True, True),
    "nn": (nearest_neighbours, True, True),
    "range": (range_query, True, False),
    "continuous_nn": (continuous_nearest_neighbour, True, False),
    "time_relaxed": (time_relaxed_kmst, False, True),
}


def execute_spec(ctx_or_index, dataset, spec: QuerySpec, *, trace=None) -> SearchResult:
    """Dispatch a :class:`~repro.search.spec.QuerySpec` against any
    context — the single execution path shared by the unified API's
    callers, the batched engines and ``repro serve``.

    ``spec.options`` are forwarded as keyword arguments to the entry
    point (unknown options therefore raise ``TypeError`` — the serving
    layer maps both that and :class:`QueryError` to a 400).
    ``spec.deadline_ms`` is *not* enforced here: deadline budgets are
    the executing engine's job (:meth:`repro.engine.QueryEngine.execute`).
    """
    kind = spec.canonical_kind()
    fn, takes_period, takes_k = _DISPATCH[kind]
    kwargs = dict(spec.options)
    if spec.kernels is not None:
        kwargs.setdefault("kernels", spec.kernels)
    if takes_period:
        kwargs["period"] = spec.period
    elif spec.period is not None:
        raise QueryError(f"{kind} queries do not take a period")
    if takes_k:
        kwargs["k"] = spec.k
    elif spec.k != 1:
        raise QueryError(f"{kind} queries do not take k")
    return fn(ctx_or_index, dataset, spec.query, trace=trace, **kwargs)
