"""The unified search API — one signature for every algorithm.

Every entry point accepts the same three leading arguments::

    fn(ctx_or_index, dataset, query, *, period=None, k=1, trace=None, ...)
    -> SearchResult

* ``ctx_or_index`` — a :class:`~repro.engine.QueryEngine` execution
  context (anything exposing ``.index``/``.dataset`` and a
  ``search_hooks(query, period)`` method), a bare
  :class:`~repro.index.TrajectoryIndex`, or ``None`` for index-free
  algorithms,
* ``dataset`` — the :class:`~repro.trajectory.TrajectoryDataset`
  (``None`` to take the context's, or for index-only algorithms),
* ``query`` — the query object: a :class:`~repro.trajectory.Trajectory`
  for (k-)MST / continuous NN / time-relaxed, a
  :class:`~repro.geometry.Point` for point NN, an
  :class:`~repro.geometry.MBR2D` window for range queries.

All entry points return a :class:`~repro.search.results.SearchResult`
whose ``stats`` block has the same field set regardless of algorithm.

**Legacy forms.**  Each function still accepts its pre-unification
positional form (discriminated by the type of the second positional
argument) and returns the old result shape, but emits a
:class:`DeprecationWarning`; see the deprecation table in the README.
The repro package itself never uses the legacy forms — CI runs the
engine smoke test with ``-W error::DeprecationWarning`` to keep it
that way.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager, nullcontext

from ..exceptions import QueryError
from ..geometry import MBR2D, Point
from ..obs import state as _obs
from ..trajectory import Trajectory, TrajectoryDataset
from . import bfmst as _bfmst
from . import continuous_nn as _cnn
from . import linear_scan as _scan
from . import nn as _nn
from . import range_query as _range
from . import time_relaxed as _trx
from .results import MSTMatch, SearchResult, SearchStats

__all__ = [
    "bfmst_search",
    "linear_scan_kmst",
    "nearest_neighbours",
    "range_query",
    "continuous_nearest_neighbour",
    "time_relaxed_kmst",
    "resolve_context",
]


# ----------------------------------------------------------------------
# shared plumbing
# ----------------------------------------------------------------------
def resolve_context(ctx_or_index, dataset):
    """Split the unified API's first two arguments into
    ``(index, dataset, ctx)``.

    A *context* is duck-typed — anything with ``.index`` and a callable
    ``search_hooks`` qualifies (the engine's execution context does; no
    import of :mod:`repro.engine` happens here, so the layering stays
    acyclic).  An explicit ``dataset`` argument wins over the
    context's.  As an ergonomic special case a
    :class:`~repro.trajectory.TrajectoryDataset` passed in the context
    slot of an index-free algorithm is treated as the dataset.
    """
    if (
        ctx_or_index is not None
        and hasattr(ctx_or_index, "index")
        and callable(getattr(ctx_or_index, "search_hooks", None))
    ):
        if dataset is None:
            dataset = getattr(ctx_or_index, "dataset", None)
        return ctx_or_index.index, dataset, ctx_or_index
    if dataset is None and isinstance(ctx_or_index, TrajectoryDataset):
        return None, ctx_or_index, None
    return ctx_or_index, dataset, None


def _warn_legacy(name: str, hint: str) -> None:
    warnings.warn(
        f"the positional {name} form is deprecated; call the unified "
        f"form {hint} (returns SearchResult)",
        DeprecationWarning,
        stacklevel=3,
    )


@contextmanager
def _installed(trace):
    previous = _obs.ACTIVE
    _obs.ACTIVE = trace
    fresh = getattr(trace, "_t0", None) is None
    if fresh:
        trace.start()
    try:
        yield trace
    finally:
        if fresh:
            trace.finish()
        _obs.ACTIVE = previous


def _tracing(trace):
    """Install ``trace`` as the active QueryTrace for the call (it is
    started/finished only if the caller has not already started it)."""
    return _installed(trace) if trace is not None else nullcontext()


def _fill_positional(legacy: list, extra: tuple, name: str) -> list:
    if len(extra) > len(legacy):
        raise TypeError(
            f"{name}() takes at most {len(legacy) + 2} positional "
            f"arguments ({len(extra) + 2} given)"
        )
    for i, value in enumerate(extra):
        legacy[i] = value
    return legacy


def _new_form_args(args: tuple, dataset, query, name: str):
    """Bind the new form's trailing positionals ``(dataset, query)``."""
    if len(args) > 2:
        raise TypeError(
            f"unified {name}() takes 3 positional arguments "
            f"(ctx_or_index, dataset, query); got {len(args) + 1}"
        )
    if args:
        if dataset is not None:
            raise TypeError(f"{name}() got duplicate 'dataset'")
        dataset = args[0]
    if len(args) == 2:
        if query is not None:
            raise TypeError(f"{name}() got duplicate 'query'")
        query = args[1]
    if query is None:
        raise TypeError(f"{name}() missing required argument: 'query'")
    return dataset, query


def _require_index(index, name: str):
    if index is None:
        raise QueryError(f"{name} requires an index (or engine context)")
    return index


def _is_sharded(index) -> bool:
    """True for a :class:`~repro.sharding.ShardedIndex` (duck-typed so
    the search layer keeps no import of :mod:`repro.sharding`)."""
    return bool(getattr(index, "is_sharded", False))


def _merge_shard_stats(agg, parts) -> None:
    """Fold per-shard :class:`SearchStats` into an aggregate (sums for
    the additive counters; ``total_nodes`` stays the caller's global
    figure so pruning power is measured against the whole collection).
    """
    for s in parts:
        agg.node_accesses += s.node_accesses
        agg.leaf_accesses += s.leaf_accesses
        agg.internal_accesses += s.internal_accesses
        agg.entries_processed += s.entries_processed
        agg.candidates_created += s.candidates_created
        agg.candidates_completed += s.candidates_completed
        agg.candidates_rejected += s.candidates_rejected
        agg.dissim_evaluations += s.dissim_evaluations
        agg.buffer_hits += s.buffer_hits
        agg.buffer_misses += s.buffer_misses
        agg.heap_high_water = max(agg.heap_high_water, s.heap_high_water)


# ----------------------------------------------------------------------
# k-MST (BFMST)
# ----------------------------------------------------------------------
def bfmst_search(
    ctx_or_index,
    *args,
    dataset=None,
    query=None,
    period: tuple[float, float] | None = None,
    k: int = 1,
    vmax: float | None = None,
    use_heuristic1: bool = True,
    use_heuristic2: bool = True,
    refine: bool = True,
    exclude_ids=frozenset(),
    kernels: str | None = None,
    mindist_fn=None,
    segment_dissim_fn=None,
    mindist_batch_fn=None,
    segment_dissim_batch_fn=None,
    refinement_cache=None,
    heap_scratch: list | None = None,
    trace=None,
) -> SearchResult:
    """Index-based k-Most-Similar-Trajectory search (the paper's BFMST).

    Unified form: ``bfmst_search(ctx_or_index, dataset, query, *,
    period=None, k=1, ...) -> SearchResult`` (``dataset`` may be
    ``None`` — BFMST reads only the index).  ``kernels`` selects the
    hot-path implementation (``"auto"``/``"numpy"``/``"python"``; see
    :mod:`repro.distance.kernels`) — ``None`` keeps the classic
    per-entry scalar path.  Legacy form
    ``bfmst_search(index, query, period, k=...)`` still returns the old
    ``(matches, stats)`` tuple with a :class:`DeprecationWarning`.
    """
    if args and isinstance(args[0], Trajectory):
        _warn_legacy(
            "bfmst_search(index, query, ...)",
            "bfmst_search(index, None, query, k=...)",
        )
        period, k, vmax, use_heuristic1, use_heuristic2, refine, exclude_ids = (
            _fill_positional(
                [period, k, vmax, use_heuristic1, use_heuristic2, refine,
                 exclude_ids],
                args[1:],
                "bfmst_search",
            )
        )
        return _bfmst.bfmst_search(
            ctx_or_index, args[0], period, k, vmax,
            use_heuristic1, use_heuristic2, refine, exclude_ids,
            mindist_fn=mindist_fn, segment_dissim_fn=segment_dissim_fn,
            refinement_cache=refinement_cache, heap_scratch=heap_scratch,
        )
    dataset, query, = _new_form_args(args, dataset, query, "bfmst_search")
    index, dataset, ctx = resolve_context(ctx_or_index, dataset)
    _require_index(index, "bfmst_search")
    hooks = ctx.search_hooks(query, period) if ctx is not None else {}
    with _tracing(trace):
        if _is_sharded(index):
            matches, stats = _bfmst.bfmst_search_sharded(
                index, query, period, k, vmax,
                use_heuristic1, use_heuristic2, refine, exclude_ids,
                kernels=hooks.get("kernels", kernels),
                selected=hooks.get("selected"),
                shard_hooks=hooks.get("shard_hooks"),
                refinement_cache=hooks.get(
                    "refinement_cache", refinement_cache
                ),
                executor=hooks.get("shard_executor"),
            )
        else:
            matches, stats = _bfmst.bfmst_search(
                index, query, period, k, vmax,
                use_heuristic1, use_heuristic2, refine, exclude_ids,
                kernels=hooks.get("kernels", kernels),
                mindist_fn=hooks.get("mindist_fn", mindist_fn),
                segment_dissim_fn=hooks.get(
                    "segment_dissim_fn", segment_dissim_fn
                ),
                mindist_batch_fn=hooks.get(
                    "mindist_batch_fn", mindist_batch_fn
                ),
                segment_dissim_batch_fn=hooks.get(
                    "segment_dissim_batch_fn", segment_dissim_batch_fn
                ),
                refinement_cache=hooks.get(
                    "refinement_cache", refinement_cache
                ),
                heap_scratch=hooks.get("heap_scratch", heap_scratch),
            )
    return SearchResult("bfmst", matches, stats)


# ----------------------------------------------------------------------
# linear-scan k-MST
# ----------------------------------------------------------------------
def linear_scan_kmst(
    ctx_or_index,
    *args,
    dataset=None,
    query=None,
    period: tuple[float, float] | None = None,
    k: int = 1,
    exact: bool = False,
    exclude_ids=frozenset(),
    trace=None,
) -> SearchResult:
    """Exhaustive k-MST — the index-free ground truth.

    Unified form: ``linear_scan_kmst(None, dataset, query, *, k=1,
    exact=False, ...) -> SearchResult``.  Legacy form
    ``linear_scan_kmst(dataset, query, period, k, ...)`` still returns
    the bare match list with a :class:`DeprecationWarning`.
    """
    if args and isinstance(args[0], Trajectory):
        _warn_legacy(
            "linear_scan_kmst(dataset, query, ...)",
            "linear_scan_kmst(None, dataset, query, k=...)",
        )
        period, k, exact, exclude_ids = _fill_positional(
            [period, k, exact, exclude_ids], args[1:], "linear_scan_kmst"
        )
        return _scan.linear_scan_kmst(
            ctx_or_index, args[0], period, k, exact, exclude_ids
        )
    dataset, query = _new_form_args(args, dataset, query, "linear_scan_kmst")
    _index, dataset, _ctx = resolve_context(ctx_or_index, dataset)
    if dataset is None:
        raise QueryError("linear_scan_kmst requires a dataset")
    with _tracing(trace):
        matches, stats = _scan.linear_scan_with_stats(
            dataset, query, period, k, exact, exclude_ids
        )
    return SearchResult("linear_scan", matches, stats)


# ----------------------------------------------------------------------
# point nearest neighbours
# ----------------------------------------------------------------------
def nearest_neighbours(
    ctx_or_index,
    *args,
    dataset=None,
    query=None,
    period: tuple[float, float] | None = None,
    k: int = 1,
    trace=None,
) -> SearchResult:
    """Historical point-NN: the k objects passing closest to a location.

    Unified form: ``nearest_neighbours(ctx_or_index, dataset, point, *,
    period=(t_start, t_end), k=1, ...) -> SearchResult`` — the match
    ``dissim`` slot carries the point distance.  Legacy form
    ``nearest_neighbours(index, point, t_start, t_end, k)`` still
    returns the ``(trajectory_id, distance)`` list with a
    :class:`DeprecationWarning`.
    """
    if args and isinstance(args[0], Point):
        _warn_legacy(
            "nearest_neighbours(index, point, t_start, t_end, ...)",
            "nearest_neighbours(index, None, point, period=(t_start, t_end))",
        )
        t_start, t_end, k = _fill_positional(
            [None, None, k], args[1:], "nearest_neighbours"
        )
        if t_start is None or t_end is None:
            raise TypeError(
                "legacy nearest_neighbours() requires t_start and t_end"
            )
        return _nn.nearest_neighbours(ctx_or_index, args[0], t_start, t_end, k)
    dataset, point = _new_form_args(args, dataset, query, "nearest_neighbours")
    index, _dataset, _ctx = resolve_context(ctx_or_index, dataset)
    _require_index(index, "nearest_neighbours")
    if period is None:
        raise QueryError("nearest_neighbours requires period=(t_start, t_end)")
    t_start, t_end = period
    with _tracing(trace):
        if _is_sharded(index):
            # Disjoint shards: the global k best is the k best of the
            # per-shard k bests.
            pairs = []
            parts = []
            for shard in index.shards:
                shard_pairs, shard_stats = _nn.nearest_neighbours_with_stats(
                    shard, point, t_start, t_end, k
                )
                pairs.extend(shard_pairs)
                parts.append(shard_stats)
            pairs.sort(key=lambda p: (p[1], p[0]))
            pairs = pairs[:k]
            stats = SearchStats(total_nodes=index.num_nodes)
            _merge_shard_stats(stats, parts)
        else:
            pairs, stats = _nn.nearest_neighbours_with_stats(
                index, point, t_start, t_end, k
            )
    matches = [MSTMatch(tid, dist, 0.0, True) for tid, dist in pairs]
    return SearchResult("nn", matches, stats)


# ----------------------------------------------------------------------
# spatiotemporal range
# ----------------------------------------------------------------------
def range_query(
    ctx_or_index,
    *args,
    dataset=None,
    query=None,
    period: tuple[float, float] | None = None,
    trace=None,
) -> SearchResult:
    """Objects whose path enters a spatial window during an interval.

    Unified form: ``range_query(ctx_or_index, dataset, window, *,
    period=(t_start, t_end), ...) -> SearchResult`` — hits are unranked
    :class:`MSTMatch` rows (``dissim`` 0) sorted by id.  Legacy form
    ``range_query(index, window, t_start, t_end)`` still returns the
    bare id set with a :class:`DeprecationWarning`.
    """
    if args and isinstance(args[0], MBR2D):
        _warn_legacy(
            "range_query(index, window, t_start, t_end)",
            "range_query(index, None, window, period=(t_start, t_end))",
        )
        t_start, t_end = _fill_positional([None, None], args[1:], "range_query")
        if t_start is None or t_end is None:
            raise TypeError("legacy range_query() requires t_start and t_end")
        return _range.range_query(ctx_or_index, args[0], t_start, t_end)
    dataset, window = _new_form_args(args, dataset, query, "range_query")
    index, _dataset, _ctx = resolve_context(ctx_or_index, dataset)
    _require_index(index, "range_query")
    if period is None:
        raise QueryError("range_query requires period=(t_start, t_end)")
    t_start, t_end = period
    with _tracing(trace):
        hits, stats = _range.range_query_with_stats(
            index, window, t_start, t_end
        )
    matches = [MSTMatch(tid, 0.0, 0.0, True) for tid in sorted(hits)]
    return SearchResult("range", matches, stats, extras={"hit_ids": sorted(hits)})


# ----------------------------------------------------------------------
# historical continuous NN
# ----------------------------------------------------------------------
def continuous_nearest_neighbour(
    ctx_or_index,
    *args,
    dataset=None,
    query=None,
    period: tuple[float, float] | None = None,
    exclude_ids=frozenset(),
    index=None,
    trace=None,
) -> SearchResult:
    """Nearest object at every instant of the period.

    Unified form: ``continuous_nearest_neighbour(ctx_or_index, dataset,
    query, *, period=(t_start, t_end), ...) -> SearchResult`` — the
    interval partition is in ``result.extras["intervals"]`` (also via
    ``result.intervals``); ``matches`` lists the distinct winners in
    order of first appearance.  An index in the context slot enables
    candidate pruning.  Legacy form
    ``continuous_nearest_neighbour(dataset, query, t_start, t_end,
    index=...)`` still returns the bare interval list with a
    :class:`DeprecationWarning`.
    """
    if args and isinstance(args[0], Trajectory):
        _warn_legacy(
            "continuous_nearest_neighbour(dataset, query, t_start, t_end, ...)",
            "continuous_nearest_neighbour(index, dataset, query, "
            "period=(t_start, t_end))",
        )
        t_start, t_end, legacy_index, exclude_ids = _fill_positional(
            [None, None, index, exclude_ids],
            args[1:],
            "continuous_nearest_neighbour",
        )
        if t_start is None or t_end is None:
            raise TypeError(
                "legacy continuous_nearest_neighbour() requires "
                "t_start and t_end"
            )
        return _cnn.continuous_nearest_neighbour(
            ctx_or_index, args[0], t_start, t_end, legacy_index, exclude_ids
        )
    if index is not None:
        raise TypeError(
            "the unified continuous_nearest_neighbour() takes the index "
            "through the first (ctx_or_index) argument, not index="
        )
    dataset, q = _new_form_args(
        args, dataset, query, "continuous_nearest_neighbour"
    )
    index, dataset, _ctx = resolve_context(ctx_or_index, dataset)
    if dataset is None:
        raise QueryError("continuous_nearest_neighbour requires a dataset")
    if period is None:
        raise QueryError(
            "continuous_nearest_neighbour requires period=(t_start, t_end)"
        )
    t_start, t_end = period
    with _tracing(trace):
        intervals, stats = _cnn.continuous_nn_with_stats(
            dataset, q, t_start, t_end, index, exclude_ids
        )
    winners: list[int] = []
    for piece in intervals:
        if piece.object_id not in winners:
            winners.append(piece.object_id)
    matches = [MSTMatch(oid, 0.0, 0.0, True) for oid in winners]
    return SearchResult(
        "continuous_nn", matches, stats, extras={"intervals": intervals}
    )


# ----------------------------------------------------------------------
# time-relaxed k-MST
# ----------------------------------------------------------------------
def time_relaxed_kmst(
    ctx_or_index,
    *args,
    dataset=None,
    query=None,
    k: int = 1,
    grid: int = 64,
    exclude_ids=frozenset(),
    trace=None,
) -> SearchResult:
    """k-MST minimised over all admissible query time shifts.

    Unified form: ``time_relaxed_kmst(None, dataset, query, *, k=1,
    grid=64, ...) -> SearchResult`` — the optimal shift per answer is
    in ``result.extras["shifts"]`` (a ``{trajectory_id: shift}``
    mapping).  Legacy form ``time_relaxed_kmst(dataset, query, k,
    grid)`` still returns the ``(match, shift)`` pair list with a
    :class:`DeprecationWarning`.
    """
    if args and isinstance(args[0], Trajectory):
        _warn_legacy(
            "time_relaxed_kmst(dataset, query, ...)",
            "time_relaxed_kmst(None, dataset, query, k=...)",
        )
        k, grid, exclude_ids = _fill_positional(
            [k, grid, exclude_ids], args[1:], "time_relaxed_kmst"
        )
        return _trx.time_relaxed_kmst(
            ctx_or_index, args[0], k, grid, exclude_ids
        )
    dataset, q = _new_form_args(args, dataset, query, "time_relaxed_kmst")
    _index, dataset, _ctx = resolve_context(ctx_or_index, dataset)
    if dataset is None:
        raise QueryError("time_relaxed_kmst requires a dataset")
    with _tracing(trace):
        pairs, stats = _trx.time_relaxed_with_stats(
            dataset, q, k, grid, exclude_ids
        )
    matches = [m for m, _shift in pairs]
    shifts = {m.trajectory_id: shift for m, shift in pairs}
    return SearchResult("time_relaxed", matches, stats, extras={"shifts": shifts})
