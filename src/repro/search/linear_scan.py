"""Linear-scan k-MST — the index-free ground truth.

Evaluates DISSIM between the query and every qualifying trajectory and
keeps the k smallest.  Used for correctness testing (BFMST must return
the same answer set), as the pruning-power denominator in spirit, and
as the honest baseline a user without an index would run.
"""

from __future__ import annotations

from ..distance import dissim, dissim_exact
from ..exceptions import QueryError, TemporalCoverageError
from ..obs import state as _obs
from ..trajectory import Trajectory, TrajectoryDataset
from .results import MSTMatch, SearchStats

__all__ = ["linear_scan_kmst", "linear_scan_with_stats"]


def linear_scan_with_stats(
    dataset: TrajectoryDataset,
    query: Trajectory,
    period: tuple[float, float] | None = None,
    k: int = 1,
    exact: bool = False,
    exclude_ids: set[int] | frozenset[int] = frozenset(),
) -> tuple[list[MSTMatch], SearchStats]:
    """:func:`linear_scan_kmst` plus a :class:`SearchStats` block with
    the same field semantics as BFMST's, so JSONL rows are comparable
    across algorithms (index-only fields stay 0)."""
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    t_start, t_end = period if period is not None else (query.t_start, query.t_end)
    if not query.covers(t_start, t_end):
        raise TemporalCoverageError(
            f"query {query.object_id!r} does not cover the period "
            f"[{t_start}, {t_end}]"
        )
    trace = _obs.ACTIVE
    if trace is not None:
        trace.registry.inc("search.linear_scan.queries")
    stats = SearchStats()
    skipped = 0
    matches: list[MSTMatch] = []
    for tr in dataset:
        if tr.object_id in exclude_ids:
            continue
        if not tr.covers(t_start, t_end):
            skipped += 1
            if trace is not None:
                trace.registry.inc("search.linear_scan.skipped_coverage")
            continue
        if trace is not None:
            trace.registry.inc("search.linear_scan.evaluations")
        stats.candidates_created += 1
        stats.candidates_completed += 1
        stats.dissim_evaluations += 1
        stats.entries_processed += max(0, len(tr) - 1)
        if exact:
            value = dissim_exact(query, tr, (t_start, t_end))
            matches.append(MSTMatch(tr.object_id, value, 0.0, True))
        else:
            result = dissim(query, tr, (t_start, t_end))
            matches.append(
                MSTMatch(tr.object_id, result.approx, result.error_bound, True)
            )
    matches.sort(key=lambda m: (m.dissim, m.trajectory_id))
    stats.extra["skipped_coverage"] = skipped
    return matches[:k], stats


def linear_scan_kmst(
    dataset: TrajectoryDataset,
    query: Trajectory,
    period: tuple[float, float] | None = None,
    k: int = 1,
    exact: bool = False,
    exclude_ids: set[int] | frozenset[int] = frozenset(),
) -> list[MSTMatch]:
    """Return the k most similar trajectories by exhaustive evaluation.

    Trajectories not covering the period are skipped (Definition 1
    requires common validity).  With ``exact=True`` the closed-form
    integral is used; otherwise the paper's trapezoid approximation
    (whose error bound is carried into the result).
    """
    matches, _stats = linear_scan_with_stats(
        dataset, query, period, k, exact, exclude_ids
    )
    return matches
