"""Historical continuous nearest-neighbour search (after Frentzos,
Gratsias, Pelekis & Theodoridis [6]).

"Who was closest to the moving query object at *every* instant of
``[t1, tn]``?"  The answer is a partition of the period into intervals,
each labelled with the object nearest throughout — the query type whose
MINDIST machinery the MST paper reuses, so it belongs in the same
library.

The computation is the *lower envelope* of the candidates' distance
functions.  Between two consecutive shared timestamps every candidate's
squared distance to the query is one quadratic (the trinomial of
Section 3), so the envelope is computed exactly: walk each elementary
interval, keep the current winner, and jump to the next analytic
crossing (root of a quadratic difference).

``index=`` enables candidate pruning: a cheap upper bound on the
best-possible distance (one real candidate's worst case) turns into an
inflated corridor box, and only trajectories with a segment in that box
survive — the others can never win any instant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..distance import distance_at, merged_timestamps
from ..exceptions import QueryError, TemporalCoverageError
from ..geometry import MBR3D, distance_trinomial_coefficients
from ..index import TrajectoryIndex
from ..trajectory import Trajectory, TrajectoryDataset
from .results import SearchStats

__all__ = [
    "NNInterval",
    "continuous_nearest_neighbour",
    "continuous_nn_with_stats",
]

# Relative step used to nudge past a crossing when re-evaluating the
# winner (distance curves may osculate).
_NUDGE = 1e-12


@dataclass(frozen=True, slots=True)
class NNInterval:
    """One piece of the continuous-NN answer: ``object_id`` is the
    nearest object throughout ``[t_lo, t_hi]``."""

    t_lo: float
    t_hi: float
    object_id: int


def continuous_nn_with_stats(
    dataset: TrajectoryDataset,
    query: Trajectory,
    t_start: float,
    t_end: float,
    index: TrajectoryIndex | None = None,
    exclude_ids: set[int] | frozenset[int] = frozenset(),
) -> tuple[list[NNInterval], SearchStats]:
    """:func:`continuous_nearest_neighbour` plus a
    :class:`SearchStats` block: ``candidates_created`` counts the
    covering candidates, ``candidates_completed`` those surviving index
    pruning (equal without an index), ``entries_processed`` the
    elementary envelope intervals walked."""
    if t_start >= t_end:
        raise QueryError(f"empty or inverted period [{t_start}, {t_end}]")
    if not query.covers(t_start, t_end):
        raise TemporalCoverageError(
            f"query {query.object_id!r} does not cover "
            f"[{t_start}, {t_end}]"
        )
    stats = SearchStats()
    if index is not None:
        stats.total_nodes = index.num_nodes
    candidates = [
        tr
        for tr in dataset
        if tr.object_id not in exclude_ids and tr.covers(t_start, t_end)
    ]
    stats.candidates_created = len(candidates)
    if not candidates:
        return [], stats
    if index is not None and len(candidates) > 1:
        accesses_before = index.node_accesses
        keep = _index_candidate_ids(index, dataset, query, t_start, t_end)
        stats.node_accesses = max(0, index.node_accesses - accesses_before)
        if keep:
            filtered = [tr for tr in candidates if tr.object_id in keep]
            if filtered:
                candidates = filtered
    stats.candidates_completed = len(candidates)
    stats.candidates_rejected = stats.candidates_created - len(candidates)

    # Elementary intervals: between consecutive *merged* timestamps of
    # the query and every candidate, each candidate's squared distance
    # is a single quadratic.
    stamps: set[float] = {t_start, t_end}
    stamps.update(query.sampling_timestamps_in(t_start, t_end))
    for tr in candidates:
        stamps.update(tr.sampling_timestamps_in(t_start, t_end))
    grid = sorted(stamps)

    pieces: list[NNInterval] = []
    for lo, hi in zip(grid, grid[1:]):
        if not (lo < (lo + hi) / 2.0 < hi):
            continue  # sub-ulp sliver
        stats.entries_processed += 1
        pieces.extend(_envelope_on_interval(query, candidates, lo, hi))

    return _coalesce(pieces), stats


def continuous_nearest_neighbour(
    dataset: TrajectoryDataset,
    query: Trajectory,
    t_start: float,
    t_end: float,
    index: TrajectoryIndex | None = None,
    exclude_ids: set[int] | frozenset[int] = frozenset(),
) -> list[NNInterval]:
    """The time-partitioned nearest neighbour of ``query`` over
    ``[t_start, t_end]``.

    Candidates are the dataset trajectories covering the full period
    (the paper family's standing assumption).  Returns maximal
    intervals; adjacent intervals always have different winners.
    """
    intervals, _stats = continuous_nn_with_stats(
        dataset, query, t_start, t_end, index, exclude_ids
    )
    return intervals


# ----------------------------------------------------------------------
# envelope on one elementary interval
# ----------------------------------------------------------------------
def _envelope_on_interval(
    query: Trajectory, candidates: list[Trajectory], lo: float, hi: float
) -> list[NNInterval]:
    mid = (lo + hi) / 2.0
    qseg = query.segment_covering(mid).clipped(lo, hi)
    span = hi - lo
    funcs: list[tuple[int, float, float, float]] = []  # (oid, a, b, c)
    for tr in candidates:
        tseg = tr.segment_covering(mid).clipped(lo, hi)
        a, b, c, _t0, _t1 = distance_trinomial_coefficients(qseg, tseg)
        funcs.append((tr.object_id, a, b, c))

    out: list[NNInterval] = []
    tau = 0.0
    guard = 0
    max_pieces = 2 * len(funcs) * len(funcs) + 4  # analytic upper bound
    while tau < span and guard <= max_pieces:
        guard += 1
        winner = _argmin_at(funcs, tau, span)
        cross = _next_crossing(funcs, winner, tau, span)
        end = span if cross is None else cross
        out.append(NNInterval(lo + tau, lo + end, funcs[winner][0]))
        if cross is None:
            break
        tau = max(cross, tau + span * _NUDGE)
    return out


def _value(f, tau: float) -> float:
    _oid, a, b, c = f
    return (a * tau + b) * tau + c


def _argmin_at(funcs, tau: float, span: float) -> int:
    """Index of the function smallest just *after* ``tau`` (ties broken
    by the derivative, then by probing forward)."""
    eps = span * 1e-9
    probe = min(tau + eps, span)
    best = 0
    best_key = None
    for i, f in enumerate(funcs):
        _oid, a, b, c = f
        key = (_value(f, probe), 2.0 * a * probe + b, f[0])
        if best_key is None or key < best_key:
            best_key = key
            best = i
    return best


def _next_crossing(funcs, winner: int, tau: float, span: float) -> float | None:
    """Earliest time in ``(tau, span)`` where some other function drops
    (strictly) below the current winner."""
    _w_oid, wa, wb, wc = funcs[winner]
    earliest: float | None = None
    lo_bound = tau + span * 1e-12
    for i, (oid, a, b, c) in enumerate(funcs):
        if i == winner:
            continue
        # g(tau) = other - winner; crossing when g hits 0 going down.
        ga = a - wa
        gb = b - wb
        gc = c - wc
        for root in _roots_in(ga, gb, gc, lo_bound, span):
            # require the other to actually be lower just after
            after = min(root + span * 1e-9, span)
            if _value((oid, a, b, c), after) < _value(funcs[winner], after):
                if earliest is None or root < earliest:
                    earliest = root
                break
    return earliest


def _roots_in(a: float, b: float, c: float, lo: float, hi: float) -> list[float]:
    """Sorted real roots of ``a x^2 + b x + c`` inside ``(lo, hi]``."""
    roots: list[float] = []
    if a == 0.0:
        if b != 0.0:
            roots = [-c / b]
    else:
        disc = b * b - 4.0 * a * c
        if disc >= 0.0:
            s = math.sqrt(disc)
            # numerically stable pair
            q = -(b + math.copysign(s, b)) / 2.0
            r1 = q / a
            r2 = c / q if q != 0.0 else r1
            roots = sorted((r1, r2))
    return [r for r in roots if lo < r <= hi]


def _coalesce(pieces: list[NNInterval]) -> list[NNInterval]:
    out: list[NNInterval] = []
    for piece in pieces:
        if out and out[-1].object_id == piece.object_id:
            out[-1] = NNInterval(out[-1].t_lo, piece.t_hi, piece.object_id)
        else:
            out.append(piece)
    return out


# ----------------------------------------------------------------------
# index-based candidate pruning
# ----------------------------------------------------------------------
def _index_candidate_ids(
    index: TrajectoryIndex,
    dataset: TrajectoryDataset,
    query: Trajectory,
    t_start: float,
    t_end: float,
) -> set[int]:
    """Ids that could win at some instant: everything with a segment
    inside the query corridor inflated by an upper bound on the
    nearest distance.

    The bound: pick any covering candidate and take its *maximum*
    distance to the query over the period (evaluated at the merged
    timestamps — exact for piecewise-linear motion up to the convexity
    of each piece, then padded).  At every instant the true nearest is
    at most that far away.
    """
    pivot = None
    for tr in dataset:
        if tr.covers(t_start, t_end):
            pivot = tr
            break
    if pivot is None:
        return set()
    stamps = merged_timestamps(query, pivot, t_start, t_end)
    worst = max(distance_at(query, pivot, t) for t in stamps)
    # Each distance piece is convex (sqrt of a quadratic), so its
    # maximum over a piece is at a piece endpoint: `worst` is exact.
    sliced = query.sliced(t_start, t_end)
    r = sliced.spatial_mbr()
    box = MBR3D(
        r.xmin - worst, r.ymin - worst, t_start,
        r.xmax + worst, r.ymax + worst, t_end,
    )
    return {e.trajectory_id for e in index.range_search(box)}
