"""Time-Relaxed MST queries — the paper's announced future work
(Section 6), implemented here as an extension.

A time-relaxed query asks for the minimum dissimilarity between the
query and each candidate *regardless of when the query object starts*:
``TR-DISSIM(Q, T) = min over tau of DISSIM(Q shifted by tau, T)``,
where the shift range keeps the (whole) shifted query inside the
candidate's lifetime.

The objective is continuous and piecewise smooth in ``tau`` but not
convex, so the minimiser is located by a coarse grid scan (one point
per smallest sampling interval, capped) followed by golden-section
refinement inside the best bracket.
"""

from __future__ import annotations

import math

from ..distance import dissim_exact
from ..exceptions import QueryError
from ..trajectory import Trajectory, TrajectoryDataset
from .results import MSTMatch, SearchStats

__all__ = ["time_relaxed_dissim", "time_relaxed_kmst", "time_relaxed_with_stats"]

_GOLDEN = (math.sqrt(5.0) - 1.0) / 2.0


def time_relaxed_dissim(
    query: Trajectory,
    target: Trajectory,
    grid: int = 64,
    tolerance: float = 1e-6,
) -> tuple[float, float]:
    """``(best_dissim, best_shift)`` minimising
    ``DISSIM(query >> shift, target)`` over all shifts that keep the
    query inside the target's lifetime.

    Raises :class:`QueryError` when the target is shorter than the
    query (no admissible shift exists).
    """
    tau_lo = target.t_start - query.t_start
    tau_hi = target.t_end - query.t_end
    if tau_hi < tau_lo:
        raise QueryError(
            f"target {target.object_id!r} (duration {target.duration}) is "
            f"shorter than the query (duration {query.duration})"
        )

    def objective(tau: float) -> float:
        shifted = query.time_shifted(tau)
        return dissim_exact(
            shifted, target, (shifted.t_start, shifted.t_end)
        )

    if tau_hi == tau_lo:
        return (objective(tau_lo), tau_lo)

    # Coarse scan to find the best bracket.
    steps = max(2, min(grid, 512))
    taus = [tau_lo + (tau_hi - tau_lo) * i / steps for i in range(steps + 1)]
    values = [objective(t) for t in taus]
    best_i = min(range(len(values)), key=values.__getitem__)
    a = taus[max(best_i - 1, 0)]
    b = taus[min(best_i + 1, len(taus) - 1)]

    # Golden-section refinement inside [a, b].
    c = b - _GOLDEN * (b - a)
    d = a + _GOLDEN * (b - a)
    fc = objective(c)
    fd = objective(d)
    span = tau_hi - tau_lo
    while (b - a) > tolerance * max(span, 1.0):
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - _GOLDEN * (b - a)
            fc = objective(c)
        else:
            a, c, fc = c, d, fd
            d = a + _GOLDEN * (b - a)
            fd = objective(d)
    best_tau = (a + b) / 2.0
    best_val = objective(best_tau)
    # Keep whichever of the coarse and refined candidates won (the
    # refinement only explored one bracket).
    if values[best_i] < best_val:
        return (values[best_i], taus[best_i])
    return (best_val, best_tau)


def time_relaxed_with_stats(
    dataset: TrajectoryDataset,
    query: Trajectory,
    k: int = 1,
    grid: int = 64,
    exclude_ids: set[int] | frozenset[int] = frozenset(),
) -> tuple[list[tuple[MSTMatch, float]], SearchStats]:
    """:func:`time_relaxed_kmst` plus a :class:`SearchStats` block:
    ``candidates_created``/``candidates_completed`` count the evaluated
    candidates, ``candidates_rejected`` those skipped as shorter than
    the query, ``dissim_evaluations`` one per optimised candidate."""
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    stats = SearchStats()
    out: list[tuple[MSTMatch, float]] = []
    for tr in dataset:
        if tr.object_id in exclude_ids:
            continue
        if tr.duration < query.duration:
            stats.candidates_rejected += 1
            continue
        stats.candidates_created += 1
        stats.candidates_completed += 1
        stats.dissim_evaluations += 1
        value, shift = time_relaxed_dissim(query, tr, grid)
        out.append((MSTMatch(tr.object_id, value, 0.0, True), shift))
    out.sort(key=lambda item: (item[0].dissim, item[0].trajectory_id))
    return out[:k], stats


def time_relaxed_kmst(
    dataset: TrajectoryDataset,
    query: Trajectory,
    k: int = 1,
    grid: int = 64,
    exclude_ids: set[int] | frozenset[int] = frozenset(),
) -> list[tuple[MSTMatch, float]]:
    """The k candidates with the smallest time-relaxed dissimilarity,
    as ``(match, best_shift)`` pairs; candidates shorter than the query
    are skipped."""
    out, _stats = time_relaxed_with_stats(dataset, query, k, grid, exclude_ids)
    return out
