"""Point nearest-neighbour search over indexed trajectories (after [6]).

"Which object passed closest to location ``p`` during ``[t1, t2]``?" —
the historical NN query of Frentzos et al.'s companion paper, served by
the same index as BFMST.  Implemented with the standard best-first
strategy: nodes and leaf entries are popped from one priority queue
keyed by MINDIST to the query point, and the first ``k`` popped leaf
entries (deduplicated per object) are the exact answer.
"""

from __future__ import annotations

import heapq
import math

from ..exceptions import QueryError
from ..geometry import MBR2D, Point, min_moving_point_rect_distance
from ..index import NO_PAGE, TrajectoryIndex
from ..obs import state as _obs
from ..trajectory import TrajectoryDataset
from .results import SearchStats

__all__ = [
    "nearest_neighbours",
    "nearest_neighbours_with_stats",
    "nearest_neighbours_brute_force",
]


def _point_rect(p: Point, box) -> float:
    return box.spatial.mindist_to_point(p)


def _segment_point_distance(seg, p: Point, t_start: float, t_end: float) -> float | None:
    """Minimum distance from the moving point to the static point ``p``
    over the window; ``None`` without temporal overlap."""
    lo = max(seg.ts, t_start)
    hi = min(seg.te, t_end)
    if lo > hi:
        return None
    # A point is a degenerate rectangle.
    rect = MBR2D(p.x, p.y, p.x, p.y)
    return min_moving_point_rect_distance(seg, rect, lo, hi)


def nearest_neighbours_with_stats(
    index: TrajectoryIndex,
    point: Point,
    t_start: float,
    t_end: float,
    k: int = 1,
) -> tuple[list[tuple[int, float]], SearchStats]:
    """:func:`nearest_neighbours` plus a :class:`SearchStats` block with
    the same field semantics as BFMST's (node accesses are counted
    locally, so the numbers stay per-query under concurrency)."""
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    if t_start > t_end:
        raise QueryError(f"inverted interval [{t_start}, {t_end}]")
    stats = SearchStats(total_nodes=index.num_nodes)
    out: list[tuple[int, float]] = []
    seen: set[int] = set()
    if index.root_page == NO_PAGE:
        return out, stats
    trace = _obs.ACTIVE
    reg = trace.registry if trace is not None else None
    if reg is not None:
        reg.inc("search.nn.queries")
    counter = 0
    # Heap items: (distance, tie, kind, payload); kind 0 = node page,
    # kind 1 = resolved leaf entry distance.
    heap: list = [(0.0, counter, 0, index.root_page)]
    while heap and len(out) < k:
        dist, _tie, kind, payload = heapq.heappop(heap)
        if kind == 1:
            tid = payload
            if tid not in seen:
                seen.add(tid)
                out.append((tid, dist))
                stats.candidates_completed += 1
            continue
        node = index.read_node(payload)
        stats.node_accesses += 1
        if node.is_leaf:
            stats.leaf_accesses += 1
        else:
            stats.internal_accesses += 1
        if reg is not None:
            reg.inc("search.nn.nodes_visited")
        if node.is_leaf:
            for e in node.entries:
                if e.trajectory_id in seen:
                    continue
                d = _segment_point_distance(e.segment, point, t_start, t_end)
                stats.entries_processed += 1
                if reg is not None:
                    reg.inc("search.nn.entries_evaluated")
                if d is None:
                    continue
                counter += 1
                stats.candidates_created += 1
                heapq.heappush(heap, (d, counter, 1, e.trajectory_id))
        else:
            for e in node.entries:
                if not e.mbr.overlaps_period(t_start, t_end):
                    continue
                counter += 1
                stats.mindist_evaluations += 1
                heapq.heappush(
                    heap, (_point_rect(point, e.mbr), counter, 0, e.child_page)
                )
    return out, stats


def nearest_neighbours(
    index: TrajectoryIndex,
    point: Point,
    t_start: float,
    t_end: float,
    k: int = 1,
) -> list[tuple[int, float]]:
    """The ``k`` objects passing closest to ``point`` during the
    interval, as ``(trajectory_id, distance)`` sorted ascending."""
    out, _stats = nearest_neighbours_with_stats(index, point, t_start, t_end, k)
    return out


def nearest_neighbours_brute_force(
    dataset: TrajectoryDataset,
    point: Point,
    t_start: float,
    t_end: float,
    k: int = 1,
) -> list[tuple[int, float]]:
    """Index-free reference implementation."""
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    best: list[tuple[int, float]] = []
    for tr in dataset:
        if not tr.overlaps(t_start, t_end):
            continue
        d_min = math.inf
        for seg in tr.segments_overlapping(t_start, t_end):
            d = _segment_point_distance(seg, point, t_start, t_end)
            if d is not None and d < d_min:
                d_min = d
        if math.isfinite(d_min):
            best.append((tr.object_id, d_min))
    best.sort(key=lambda item: (item[1], item[0]))
    return best[:k]
