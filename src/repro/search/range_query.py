"""Classical spatiotemporal range queries on the same indexes.

The paper's selling point is that MST search needs **no dedicated
index**: the very R-tree/TB-tree that serves range and topological
queries serves similarity too.  This module is the "traditional" side
of that claim: find the objects inside a spatial window during a time
interval.
"""

from __future__ import annotations

from ..geometry import MBR2D, MBR3D
from ..index import TrajectoryIndex
from ..obs import state as _obs
from ..trajectory import TrajectoryDataset
from .results import SearchStats

__all__ = ["range_query", "range_query_with_stats", "range_query_brute_force"]


def range_query_with_stats(
    index: TrajectoryIndex,
    window: MBR2D,
    t_start: float,
    t_end: float,
) -> tuple[set[int], SearchStats]:
    """:func:`range_query` plus a :class:`SearchStats` block with the
    same field semantics as BFMST's.

    ``node_accesses`` comes from the index's global counter diff (the
    box search does its reads internally), so a *concurrent* caller
    should serialise range queries or accept batch-level attribution.
    """
    box = MBR3D(
        window.xmin, window.ymin, t_start, window.xmax, window.ymax, t_end
    )
    trace = _obs.ACTIVE
    reg = trace.registry if trace is not None else None
    if reg is not None:
        reg.inc("search.range.queries")
    stats = SearchStats(total_nodes=index.num_nodes)
    accesses_before = index.node_accesses
    hits: set[int] = set()
    for entry in index.range_search(box):
        stats.entries_processed += 1
        if reg is not None:
            reg.inc("search.range.candidate_entries")
        if entry.trajectory_id in hits:
            continue
        stats.candidates_created += 1
        if _segment_enters(entry.segment, window, t_start, t_end):
            hits.add(entry.trajectory_id)
            stats.candidates_completed += 1
            if reg is not None:
                reg.inc("search.range.verified_hits")
    stats.node_accesses = max(0, index.node_accesses - accesses_before)
    return hits, stats


def range_query(
    index: TrajectoryIndex,
    window: MBR2D,
    t_start: float,
    t_end: float,
) -> set[int]:
    """Ids of objects with at least one segment whose *path* enters the
    spatial window during ``[t_start, t_end]``.

    Candidate segments come from the index's box search; each is then
    verified exactly (a segment's MBB may touch the window while the
    moving point never does).
    """
    hits, _stats = range_query_with_stats(index, window, t_start, t_end)
    return hits


def range_query_brute_force(
    dataset: TrajectoryDataset,
    window: MBR2D,
    t_start: float,
    t_end: float,
) -> set[int]:
    """Index-free reference implementation (for tests and baselines)."""
    hits: set[int] = set()
    for tr in dataset:
        if not tr.overlaps(t_start, t_end):
            continue
        for seg in tr.segments_overlapping(t_start, t_end):
            if _segment_enters(seg, window, t_start, t_end):
                hits.add(tr.object_id)
                break
    return hits


def _segment_enters(seg, window: MBR2D, t_start: float, t_end: float) -> bool:
    """Exact check: does the moving point come within distance 0 of the
    window during the overlap of its span with the query interval?"""
    from ..geometry import min_moving_point_rect_distance

    lo = max(seg.ts, t_start)
    hi = min(seg.te, t_end)
    if lo > hi:
        return False
    return min_moving_point_rect_distance(seg, window, lo, hi) == 0.0
