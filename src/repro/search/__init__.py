"""Query processing: BFMST (the paper's algorithm), the linear-scan
ground truth, classical range/NN queries and the time-relaxed
extension."""

from .bfmst import bfmst_search
from .browse import bfmst_browse
from .continuous_nn import NNInterval, continuous_nearest_neighbour
from .linear_scan import linear_scan_kmst
from .nn import nearest_neighbours, nearest_neighbours_brute_force
from .range_query import range_query, range_query_brute_force
from .results import MSTMatch, SearchStats
from .time_relaxed import time_relaxed_dissim, time_relaxed_kmst

__all__ = [
    "bfmst_search",
    "bfmst_browse",
    "linear_scan_kmst",
    "range_query",
    "range_query_brute_force",
    "nearest_neighbours",
    "nearest_neighbours_brute_force",
    "continuous_nearest_neighbour",
    "NNInterval",
    "time_relaxed_dissim",
    "time_relaxed_kmst",
    "MSTMatch",
    "SearchStats",
]
