"""Query processing: BFMST (the paper's algorithm), the linear-scan
ground truth, classical range/NN queries and the time-relaxed
extension.

The canonical entry points — :func:`bfmst_search`,
:func:`linear_scan_kmst`, :func:`nearest_neighbours`,
:func:`range_query`, :func:`continuous_nearest_neighbour`,
:func:`time_relaxed_kmst` — are the *unified* dispatchers from
:mod:`repro.search.api`: one shared signature
``fn(ctx_or_index, dataset, query, *, period=..., k=..., trace=None)``
returning a :class:`SearchResult`.  The pre-unification positional
forms were removed (they raise :class:`TypeError` with a migration
hint); the raw algorithm implementations remain importable from their
own modules (e.g. :func:`repro.search.bfmst.bfmst_search`).

:class:`QuerySpec` is the wire-serializable description of any of the
six calls — the same schema in process, in ``repro batch`` files, and
on the ``repro serve`` socket — and :func:`execute_spec` dispatches
one against any context.
"""

from .api import (
    bfmst_search,
    continuous_nearest_neighbour,
    execute_spec,
    linear_scan_kmst,
    nearest_neighbours,
    range_query,
    resolve_context,
    time_relaxed_kmst,
)
from .browse import bfmst_browse
from .continuous_nn import NNInterval, continuous_nn_with_stats
from .linear_scan import linear_scan_with_stats
from .nn import nearest_neighbours_brute_force, nearest_neighbours_with_stats
from .range_query import range_query_brute_force, range_query_with_stats
from .results import ENVELOPE_VERSION, MSTMatch, SearchResult, SearchStats
from .spec import SPEC_VERSION, QuerySpec
from .time_relaxed import time_relaxed_dissim, time_relaxed_with_stats

__all__ = [
    # unified API
    "bfmst_search",
    "linear_scan_kmst",
    "nearest_neighbours",
    "range_query",
    "continuous_nearest_neighbour",
    "time_relaxed_kmst",
    "resolve_context",
    "execute_spec",
    # wire schema & result types
    "QuerySpec",
    "SPEC_VERSION",
    "ENVELOPE_VERSION",
    "MSTMatch",
    "SearchStats",
    "SearchResult",
    "NNInterval",
    # stats-bearing implementations & reference baselines
    "bfmst_browse",
    "linear_scan_with_stats",
    "nearest_neighbours_with_stats",
    "nearest_neighbours_brute_force",
    "range_query_with_stats",
    "range_query_brute_force",
    "continuous_nn_with_stats",
    "time_relaxed_dissim",
    "time_relaxed_with_stats",
]
