"""BFMST — the best-first k-Most-Similar-Trajectory search (Section 4).

The algorithm dequeues index nodes in increasing MINDIST order
(Hjaltason-Samet traversal), incrementally accumulates per-candidate
dissimilarity as leaf segments arrive, and prunes with the paper's two
heuristics:

* **Heuristic 1** — a candidate whose OPTDISSIM (speed-dependent lower
  bound) exceeds the current k-th best upper value can never make the
  answer: move it to *Rejected*.
* **Heuristic 2** — when the dequeued node's MINDISSIMINC
  (speed-independent lower bound, Definition 6) exceeds the current
  k-th best, no remaining node can improve any candidate: terminate.

Error management follows Section 4.4, simplified by the one-sidedness
of the trapezoid rule (the approximation never under-estimates, see
``repro.distance.trinomial``): every candidate carries a certified
interval ``[lower, upper]``; pruning compares lower bounds against the
k-th smallest upper bound; after termination, candidates whose
intervals straddle the k-th boundary are *refined* with the exact
closed-form integral before the final ranking.

The algorithm assumes — like the paper — that indexed trajectories are
valid throughout the query period; candidates that never complete
their coverage are returned (if they make the top k) as certified
upper bounds with ``exact=False``.
"""

from __future__ import annotations

import math
from contextlib import nullcontext

from ..distance import PartialDissim, segment_dissim
from ..exceptions import QueryError, TemporalCoverageError
from ..geometry import STSegment
from ..index import TrajectoryIndex, best_first_nodes
from ..obs import state as _obs
from ..trajectory import Trajectory
from .results import MSTMatch, SearchStats

__all__ = ["bfmst_search"]


class _Candidate:
    """Per-trajectory bookkeeping: coverage record plus the retrieved
    segment windows (kept so ambiguous answers can be re-integrated
    exactly during refinement)."""

    __slots__ = ("tid", "partial", "windows")

    def __init__(self, tid: int, t_start: float, t_end: float) -> None:
        self.tid = tid
        self.partial = PartialDissim(t_start, t_end)
        self.windows: list[tuple[STSegment, float, float]] = []


class _TopK:
    """The k smallest candidate upper bounds (the paper's MSim buffer).

    Candidate values only ever decrease (more coverage tightens
    PESDISSIM; completion replaces it with the measured DISSIM), and
    rejected candidates always lie above the threshold, so a simple
    sorted list with replace-the-max updates stays exact.
    """

    __slots__ = ("k", "items")

    def __init__(self, k: int) -> None:
        self.k = k
        self.items: list[list] = []  # [upper, tid] sorted ascending

    def update(self, tid: int, upper: float) -> None:
        for item in self.items:
            if item[1] == tid:
                item[0] = upper
                self.items.sort(key=lambda it: it[0])
                return
        if len(self.items) < self.k:
            self.items.append([upper, tid])
            self.items.sort(key=lambda it: it[0])
        elif upper < self.items[-1][0]:
            self.items[-1] = [upper, tid]
            self.items.sort(key=lambda it: it[0])

    @property
    def threshold(self) -> float:
        """Upper bound on the true k-th smallest dissimilarity; ``inf``
        until k candidates exist."""
        if len(self.items) < self.k:
            return math.inf
        return self.items[-1][0]


def bfmst_search(
    index: TrajectoryIndex,
    query: Trajectory,
    period: tuple[float, float] | None = None,
    k: int = 1,
    vmax: float | None = None,
    use_heuristic1: bool = True,
    use_heuristic2: bool = True,
    refine: bool = True,
    exclude_ids: set[int] | frozenset[int] = frozenset(),
    *,
    mindist_fn=None,
    segment_dissim_fn=None,
    refinement_cache=None,
    heap_scratch: list | None = None,
) -> tuple[list[MSTMatch], SearchStats]:
    """Run a k-MST search and return ``(matches, stats)``.

    This is the algorithm implementation; the documented entry point is
    the unified :func:`repro.search.bfmst_search` dispatcher, which
    adds the engine/context plumbing and the :class:`SearchResult`
    return shape.  The keyword-only hooks are how the
    :class:`repro.engine.QueryEngine` amortises work across a batch —
    ``mindist_fn`` memoises node MINDIST evaluations,
    ``segment_dissim_fn`` memoises the per-leaf-entry DISSIM window
    integrals, ``refinement_cache`` (a mapping-like ``get``/``put``
    pair keyed by trajectory id) memoises exact refinement integrals
    for repeated queries, and ``heap_scratch`` donates a reusable
    priority-queue buffer.  None of them changes the answer, only the
    work done.

    Parameters
    ----------
    index:
        A finalized (or at least fully built) :class:`RTree3D` or
        :class:`TBTree`.
    query:
        The query trajectory ``Q``.
    period:
        The query period ``[t1, tn]``; defaults to the query's
        lifetime.  The query must cover it.
    k:
        Number of most similar trajectories to return.
    vmax:
        The paper's ``V_max`` — sum of the maximum indexed speed and
        the maximum query speed; computed from the index metadata when
        omitted.  Must dominate the true maximum for the bounds to be
        safe (it does when derived from the data).
    use_heuristic1 / use_heuristic2:
        Ablation switches for OPTDISSIM candidate pruning and
        MINDISSIMINC early termination.
    refine:
        Re-integrate exactly (arcsinh closed form) the candidates whose
        certified intervals straddle the k-th boundary before ranking.
    exclude_ids:
        Trajectory ids never to report (e.g. the query itself when it
        is also indexed).
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    t_start, t_end = period if period is not None else (query.t_start, query.t_end)
    if t_start >= t_end:
        raise QueryError(f"empty or inverted query period [{t_start}, {t_end}]")
    if not query.covers(t_start, t_end):
        raise TemporalCoverageError(
            f"query {query.object_id!r} does not cover the period "
            f"[{t_start}, {t_end}]"
        )
    if vmax is None:
        vmax = index.max_speed + query.max_speed()
    if vmax < 0.0:
        raise QueryError(f"negative vmax {vmax}")

    stats = SearchStats(total_nodes=index.num_nodes)
    io_before = index.pagefile.stats.snapshot()
    period_len = t_end - t_start

    # Counter baseline so the SearchStats enrichment reports *this*
    # query's work even when one trace spans several queries.
    trace = _obs.ACTIVE
    if trace is not None and trace.registry.enabled:
        reg = trace.registry
        counters_before = (
            reg.value("index.mindist_evaluations"),
            reg.value("distance.exact_integrals"),
            reg.value("distance.trapezoid_integrals"),
        )
    else:
        trace = None

    seg_dissim = segment_dissim_fn or segment_dissim
    valid: dict[int, _Candidate] = {}
    completed: dict[int, _Candidate] = {}
    rejected: set[int] = set(exclude_ids)
    top = _TopK(k)
    dequeued = 0

    for node_dist, node in best_first_nodes(
        index, query, t_start, t_end, mindist_fn=mindist_fn, heap=heap_scratch
    ):
        dequeued += 1
        # ---- Heuristic 2: MINDISSIMINC early termination -------------
        threshold = top.threshold
        if use_heuristic2 and math.isfinite(threshold):
            base = node_dist * period_len
            if base > threshold:
                # The paper's shortcut: only compute the candidate
                # OPTDISSIMINC's when the cheap bound already exceeds
                # the threshold (Definition 6 is a min, so otherwise
                # MINDISSIMINC <= base <= threshold anyway).
                if all(
                    c.partial.optdissim_inc(node_dist) > threshold
                    for c in valid.values()
                ):
                    stats.terminated_early = True
                    stats.h2_termination_depth = dequeued
                    break

        if not node.is_leaf:
            stats.internal_accesses += 1
            continue
        stats.leaf_accesses += 1

        # ---- leaf processing: temporal plane sweep -------------------
        for entry in sorted(node.entries, key=lambda e: e.segment.ts):
            tid = entry.trajectory_id
            if tid in rejected or tid in completed:
                continue
            lo = max(entry.segment.ts, t_start)
            hi = min(entry.segment.te, t_end)
            if lo >= hi:
                continue
            cand = valid.get(tid)
            if cand is None:
                cand = _Candidate(tid, t_start, t_end)
                valid[tid] = cand
                stats.candidates_created += 1
            integral, d_lo, d_hi = seg_dissim(query, entry.segment, lo, hi)
            cand.partial.add_interval(lo, hi, integral, d_lo, d_hi)
            cand.windows.append((entry.segment, lo, hi))
            stats.entries_processed += 1
            stats.dissim_evaluations += 1

            if cand.partial.is_complete():
                del valid[tid]
                completed[tid] = cand
                stats.candidates_completed += 1
                top.update(tid, cand.partial.retrieved_integral().upper)
                continue

            top.update(tid, cand.partial.pesdissim(vmax))
            if use_heuristic1:
                threshold = top.threshold
                if (
                    math.isfinite(threshold)
                    and cand.partial.optdissim(vmax) > threshold
                ):
                    del valid[tid]
                    rejected.add(tid)
                    stats.candidates_rejected += 1

    matches = _assemble(
        completed, valid, vmax, query, top, k, refine, stats, refinement_cache
    )

    # Each dequeue is exactly one read_node call and nothing else in
    # this query reads nodes, so the local counter equals the global
    # node-access delta — and stays correct when batches run on the
    # engine's threaded executor.
    stats.node_accesses = dequeued
    io_after = index.pagefile.stats.diff(io_before)
    stats.buffer_hits = io_after.buffer_hits
    stats.buffer_misses = io_after.buffer_misses
    if trace is not None:
        reg = trace.registry
        stats.mindist_evaluations = (
            reg.value("index.mindist_evaluations") - counters_before[0]
        )
        stats.exact_integral_evals = (
            reg.value("distance.exact_integrals") - counters_before[1]
        )
        stats.trapezoid_evals = (
            reg.value("distance.trapezoid_integrals") - counters_before[2]
        )
        stats.heap_high_water = int(reg.gauge("index.heap_high_water").value)
        reg.inc("search.bfmst.queries")
        reg.inc("search.bfmst.node_accesses", stats.node_accesses)
        reg.inc("search.bfmst.entries_processed", stats.entries_processed)
        reg.inc("search.bfmst.candidates_created", stats.candidates_created)
        reg.inc("search.bfmst.h1_rejections", stats.candidates_rejected)
        reg.inc("search.bfmst.refinements", stats.refinement_candidates)
        if stats.terminated_early:
            reg.inc("search.bfmst.h2_terminations")
            reg.gauge("search.bfmst.h2_termination_depth").set(
                stats.h2_termination_depth
            )
        reg.observe("search.bfmst.leaf_accesses", stats.leaf_accesses)
    return matches, stats


def _assemble(
    completed: dict[int, _Candidate],
    valid: dict[int, _Candidate],
    vmax: float,
    query: Trajectory,
    top: _TopK,
    k: int,
    refine: bool,
    stats: SearchStats,
    refinement_cache=None,
) -> list[MSTMatch]:
    """Rank the candidates, exactly re-integrating the ambiguous ones
    (the paper's post-processing step, Section 4.4)."""
    scored: list[MSTMatch] = []
    for cand in completed.values():
        total = cand.partial.retrieved_integral()
        scored.append(
            MSTMatch(cand.tid, total.upper, total.error_bound, exact=True)
        )
    for cand in valid.values():
        # Never completed (terminated early, or the trajectory does not
        # span the whole period): report the certified upper bound.
        scored.append(
            MSTMatch(cand.tid, cand.partial.pesdissim(vmax), 0.0, exact=False)
        )
    scored.sort(key=lambda m: (m.upper, m.trajectory_id))
    if not scored:
        return []

    if refine and _needs_refinement(scored, k):
        trace = _obs.ACTIVE
        timed = (
            trace.time("search.bfmst.refinement")
            if trace is not None
            else nullcontext()
        )
        kth_upper = scored[min(k, len(scored)) - 1].upper
        refined: dict[int, float] = {}
        with timed:
            for m in scored:
                if not (m.exact and m.error_bound > 0.0 and m.lower <= kth_upper):
                    continue
                cand = completed[m.trajectory_id]
                # A completed candidate's windows tile the whole query
                # period, so its exact total is a function of (query,
                # period, trajectory) alone — safe to memoise across
                # repeated queries regardless of k.
                exact_total = (
                    refinement_cache.get(m.trajectory_id)
                    if refinement_cache is not None
                    else None
                )
                if exact_total is None:
                    exact_total = 0.0
                    for seg, lo, hi in cand.windows:
                        integral, _dl, _dh = segment_dissim(
                            query, seg, lo, hi, exact=True
                        )
                        exact_total += integral.approx
                    if refinement_cache is not None:
                        refinement_cache.put(m.trajectory_id, exact_total)
                refined[m.trajectory_id] = exact_total
                stats.refinement_candidates += 1
        scored = [
            MSTMatch(m.trajectory_id, refined[m.trajectory_id], 0.0, True)
            if m.trajectory_id in refined
            else m
            for m in scored
        ]
        scored.sort(key=lambda m: (m.upper, m.trajectory_id))
    return scored[:k]


def _needs_refinement(scored: list[MSTMatch], k: int) -> bool:
    """True when certified intervals around the k-th boundary overlap,
    i.e. the approximate ranking might differ from the exact one."""
    boundary = min(k, len(scored)) - 1
    kth_upper = scored[boundary].upper
    # An outside candidate whose lower end dips below the k-th upper
    # could swap into the answer set...
    for m in scored[boundary + 1 :]:
        if m.lower < kth_upper:
            return True
    # ...and adjacent inside candidates with overlapping intervals
    # could swap order.
    for i in range(boundary):
        overlap = scored[i + 1].lower < scored[i].upper
        fuzzy = scored[i].error_bound > 0.0 or scored[i + 1].error_bound > 0.0
        if overlap and fuzzy:
            return True
    return False
