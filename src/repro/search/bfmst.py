"""BFMST — the best-first k-Most-Similar-Trajectory search (Section 4).

The algorithm dequeues index nodes in increasing MINDIST order
(Hjaltason-Samet traversal), incrementally accumulates per-candidate
dissimilarity as leaf segments arrive, and prunes with the paper's two
heuristics:

* **Heuristic 1** — a candidate whose OPTDISSIM (speed-dependent lower
  bound) exceeds the current k-th best upper value can never make the
  answer: move it to *Rejected*.
* **Heuristic 2** — when the dequeued node's MINDISSIMINC
  (speed-independent lower bound, Definition 6) exceeds the current
  k-th best, no remaining node can improve any candidate: terminate.

Error management follows Section 4.4, simplified by the one-sidedness
of the trapezoid rule (the approximation never under-estimates, see
``repro.distance.trinomial``): every candidate carries a certified
interval ``[lower, upper]``; pruning compares lower bounds against the
k-th smallest upper bound; after termination, candidates whose
intervals straddle the k-th boundary are *refined* with the exact
closed-form integral before the final ranking.

The algorithm assumes — like the paper — that indexed trajectories are
valid throughout the query period; candidates that never complete
their coverage are returned (if they make the top k) as certified
upper bounds with ``exact=False``.

**Sharded execution.** The traversal core (:func:`_search_shard`)
operates on one tree and one shared :class:`_TopK` bound, so the same
code serves both the classic single-index search and
:func:`bfmst_search_sharded`, which advances one best-first heap per
shard under a shared (lock-protected) k-th-best bound: a tight
candidate completed in shard 0 immediately raises the H1/H2 pruning
threshold seen by every other shard.  Because trajectories are never
split across shards, candidate accumulation stays local to one shard
and the per-shard candidate sets merge disjointly before the common
ranking/refinement step.

A candidate's final DISSIM is the **canonical sum** of its retrieved
window integrals in time order — not the arrival-order association the
incremental coalescing happens to produce — so the reported values are
bit-identical regardless of the tree shape or shard layout that
delivered the segments.
"""

from __future__ import annotations

import math
import threading
from contextlib import nullcontext

from ..distance import PartialDissim, segment_dissim
from ..distance.kernels import make_segment_dissim_batch, resolve_kernels
from ..distance.trinomial import IntegralResult
from ..exceptions import QueryError, TemporalCoverageError
from ..filter.runtime import SignatureFilter
from ..geometry import STSegment
from ..index import TrajectoryIndex, best_first_nodes
from ..index.mindist import make_mindist_batch
from ..obs import state as _obs
from ..trajectory import Trajectory
from .results import MSTMatch, SearchStats

FILTER_MODES = ("auto", "on", "off")

__all__ = [
    "bfmst_search",
    "bfmst_search_sharded",
    "CandidateRecord",
    "candidate_records",
    "merge_shard_records",
    "make_signature_filter",
    "FILTER_MODES",
]


def make_signature_filter(
    index, query, t_start, t_end, vmax, mode, kernels
) -> SignatureFilter | None:
    """Build the per-query :class:`SignatureFilter` for one tree.

    ``mode`` — ``"auto"`` filters when the index has a signature
    sidecar attached and stays silent otherwise, ``"on"`` demands one,
    ``"off"`` disables filtering.  The filter kernel follows the
    search's ``kernels`` choice (``None`` — the classic scalar path —
    maps to the scalar filter; the two filter kernels are bit-equal, so
    this is presentation only).
    """
    if mode not in FILTER_MODES:
        raise QueryError(
            f"filter must be one of {FILTER_MODES}, got {mode!r}"
        )
    if mode == "off":
        return None
    if getattr(index, "num_entries", 0) <= 0:
        # An empty shard never gets a sidecar and has nothing to
        # prune — filter='on' is vacuously satisfied.
        return None
    sigs = getattr(index, "signatures", None)
    if sigs is None:
        if mode == "on":
            raise QueryError(
                "filter='on' requires a signature sidecar, but the index "
                "has none attached (build with signatures, or use "
                "filter='auto')"
            )
        return None
    kern = kernels if kernels in ("numpy", "python") else (
        resolve_kernels(kernels) if kernels == "auto" else "python"
    )
    return SignatureFilter(sigs, query, t_start, t_end, vmax, kernels=kern)


class _Candidate:
    """Per-trajectory bookkeeping: coverage record plus the retrieved
    segment windows with their integrals (kept so the final value and
    the exact refinement are canonical time-ordered sums, and ambiguous
    answers can be re-integrated exactly)."""

    __slots__ = ("tid", "partial", "windows", "total")

    def __init__(self, tid: int, t_start: float, t_end: float) -> None:
        self.tid = tid
        self.partial = PartialDissim(t_start, t_end)
        self.windows: list[tuple[float, float, STSegment, IntegralResult]] = []
        self.total: IntegralResult | None = None  # set on completion

    def canonical_total(self) -> IntegralResult:
        """Sum of the window integrals in time order — independent of
        the order the index traversal delivered them."""
        total = IntegralResult(0.0, 0.0)
        for _lo, _hi, _seg, integral in sorted(
            self.windows, key=lambda w: w[0]
        ):
            total = total + integral
        return total


class CandidateRecord:
    """One candidate's contribution to the global ranking, detached
    from the live traversal state.

    This is the neutral currency between a shard search and the merge
    step: the in-process paths convert :class:`_Candidate` maps into
    records (:func:`candidate_records`), and the process-pool executor
    ships the same records across the process boundary inside a
    columnar :class:`~repro.engine.planner.ShardAnswer`.  ``windows``
    — ``(lo, hi, segment)`` triples, time-clipped — are carried only
    for completed (``exact=True``) candidates so the merge step can
    re-integrate them exactly during refinement.
    """

    __slots__ = ("tid", "dissim", "error_bound", "exact", "windows")

    def __init__(
        self,
        tid: int,
        dissim: float,
        error_bound: float,
        exact: bool,
        windows: list[tuple[float, float, STSegment]] = (),
    ) -> None:
        self.tid = tid
        self.dissim = dissim
        self.error_bound = error_bound
        self.exact = exact
        self.windows = windows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CandidateRecord(tid={self.tid}, dissim={self.dissim!r}, "
            f"error_bound={self.error_bound!r}, exact={self.exact}, "
            f"windows={len(self.windows)})"
        )


def candidate_records(
    completed: dict[int, "_Candidate"],
    valid: dict[int, "_Candidate"],
    vmax: float,
) -> list[CandidateRecord]:
    """Detach one shard's candidate maps into merge-ready records.

    Completed candidates report their canonical time-ordered total
    (value and Lemma 1 error bound) plus the retrieved windows for
    exact refinement; never-completed candidates report their certified
    PESDISSIM upper bound and carry no windows (they are never
    refined).
    """
    records: list[CandidateRecord] = []
    for cand in completed.values():
        total = cand.total if cand.total is not None else cand.canonical_total()
        records.append(
            CandidateRecord(
                cand.tid,
                total.upper,
                total.error_bound,
                True,
                [(lo, hi, seg) for lo, hi, seg, _integral in cand.windows],
            )
        )
    for cand in valid.values():
        records.append(
            CandidateRecord(
                cand.tid, cand.partial.pesdissim(vmax), 0.0, False, ()
            )
        )
    return records


class _TopK:
    """The k smallest candidate upper bounds (the paper's MSim buffer).

    Candidate values only ever decrease (more coverage tightens
    PESDISSIM; completion replaces it with the measured DISSIM), and
    rejected candidates always lie above the threshold, so a simple
    sorted list with replace-the-max updates stays exact.
    """

    __slots__ = ("k", "items")

    def __init__(self, k: int) -> None:
        self.k = k
        self.items: list[list] = []  # [upper, tid] sorted ascending

    def update(self, tid: int, upper: float) -> None:
        for item in self.items:
            if item[1] == tid:
                item[0] = upper
                self.items.sort(key=lambda it: it[0])
                return
        if len(self.items) < self.k:
            self.items.append([upper, tid])
            self.items.sort(key=lambda it: it[0])
        elif upper < self.items[-1][0]:
            self.items[-1] = [upper, tid]
            self.items.sort(key=lambda it: it[0])

    @property
    def threshold(self) -> float:
        """Upper bound on the true k-th smallest dissimilarity; ``inf``
        until k candidates exist."""
        if len(self.items) < self.k:
            return math.inf
        return self.items[-1][0]


class _SharedTopK(_TopK):
    """A :class:`_TopK` safe to share across shard searches.

    The lock covers reads too: an unsynchronised ``threshold`` during
    another thread's in-place sort could observe a non-maximal tail
    element and over-prune.  Updates from different shards never target
    the same trajectory id (shards are disjoint), but they do race on
    the buffer itself.
    """

    __slots__ = ("_lock",)

    def __init__(self, k: int) -> None:
        super().__init__(k)
        self._lock = threading.Lock()

    def update(self, tid: int, upper: float) -> None:
        with self._lock:
            _TopK.update(self, tid, upper)

    @property
    def threshold(self) -> float:
        with self._lock:
            return _TopK.threshold.fget(self)


def _search_shard(
    index: TrajectoryIndex,
    query: Trajectory,
    t_start: float,
    t_end: float,
    vmax: float,
    use_heuristic1: bool,
    use_heuristic2: bool,
    top: _TopK,
    exclude_ids,
    stats: SearchStats,
    *,
    mindist_fn=None,
    segment_dissim_fn=None,
    mindist_batch_fn=None,
    segment_dissim_batch_fn=None,
    heap_scratch: list | None = None,
    sig_filter: SignatureFilter | None = None,
) -> tuple[dict[int, _Candidate], dict[int, _Candidate]]:
    """Advance one tree's best-first traversal to completion under a
    (possibly shared) top-k bound.

    Returns ``(completed, valid)`` candidate maps; prunes with H1/H2
    against ``top.threshold``, which — when ``top`` is shared across
    shards — may tighten at any moment from another shard's progress.
    Mutates ``stats`` (one shard's counters) in place.

    The two batch hooks switch the hot path to the vectorised kernels:
    ``mindist_batch_fn`` scores all entries of a dequeued internal node
    in one call, ``segment_dissim_batch_fn`` integrates all qualifying
    windows of a leaf up front; the per-entry state updates then
    *replay* those precomputed results in the original sequential
    order, so pruning/completion decisions — and the answer — are
    exactly those of the scalar path.

    ``sig_filter`` plugs in the signature tier: candidates whose
    signature lower bound strictly exceeds the current threshold are
    moved to *Rejected* before their first integral (the same contract
    as Heuristic 1 — the bound certifies they can never displace an
    answer-set member, because the k buffered upper bounds all lie at
    or below the threshold and thresholds only tighten), and a leaf
    page all of whose trajectories are already settled is skipped
    without being read.
    """
    seg_dissim = segment_dissim_fn or segment_dissim
    io_before = index.pagefile.stats.snapshot()
    period_len = t_end - t_start

    valid: dict[int, _Candidate] = {}
    completed: dict[int, _Candidate] = {}
    rejected: set[int] = set(exclude_ids)
    dequeued = 0

    if sig_filter is not None:

        def leaf_admit(_dist: float, page_id: int) -> bool:
            page_tids = sig_filter.page_tids(page_id)
            if page_tids is None:
                return True
            admit = False
            threshold = top.threshold
            check = math.isfinite(threshold)
            for tid in page_tids:
                if tid in rejected or tid in completed:
                    continue
                if tid in valid:
                    admit = True
                    continue
                if check and sig_filter.should_prune(tid, threshold):
                    rejected.add(tid)
                    continue
                admit = True
            if not admit:
                stats.leaf_skips += 1
            return admit

    else:
        leaf_admit = None

    for node_dist, node in best_first_nodes(
        index,
        query,
        t_start,
        t_end,
        mindist_fn=mindist_fn,
        mindist_batch_fn=mindist_batch_fn,
        heap=heap_scratch,
        leaf_admit=leaf_admit,
    ):
        dequeued += 1
        # ---- Heuristic 2: MINDISSIMINC early termination -------------
        threshold = top.threshold
        if use_heuristic2 and math.isfinite(threshold):
            base = node_dist * period_len
            if base > threshold:
                # The paper's shortcut: only compute the candidate
                # OPTDISSIMINC's when the cheap bound already exceeds
                # the threshold (Definition 6 is a min, so otherwise
                # MINDISSIMINC <= base <= threshold anyway).
                if all(
                    c.partial.optdissim_inc(node_dist) > threshold
                    for c in valid.values()
                ):
                    stats.terminated_early = True
                    stats.h2_termination_depth = dequeued
                    break

        if not node.is_leaf:
            stats.internal_accesses += 1
            continue
        stats.leaf_accesses += 1

        # ---- leaf processing: temporal plane sweep -------------------
        entries = sorted(node.entries, key=lambda e: e.segment.ts)
        if segment_dissim_batch_fn is not None:
            # Integrate every window qualifying *now* in one batch; the
            # sequential replay below may skip a few of them (a
            # candidate completing or being rejected mid-leaf), which
            # wastes their integrals but changes no decision.
            batch_pos: dict[int, int] | None = {}
            batch_items = []
            batch_threshold = top.threshold if sig_filter is not None else math.inf
            sig_check = sig_filter is not None and math.isfinite(batch_threshold)
            for i, entry in enumerate(entries):
                tid = entry.trajectory_id
                if tid in rejected or tid in completed:
                    continue
                if sig_check and tid not in valid:
                    # First touch of this trajectory in this leaf: when
                    # its signature bound already exceeds the threshold
                    # now, the (monotonically tightening) threshold
                    # guarantees the sequential replay below prunes it
                    # too, so its integrals need not be batched at all.
                    lb = sig_filter.bound(tid)
                    if lb is not None and lb > batch_threshold:
                        continue
                lo = max(entry.segment.ts, t_start)
                hi = min(entry.segment.te, t_end)
                if lo >= hi:
                    continue
                batch_pos[i] = len(batch_items)
                batch_items.append((entry.segment, lo, hi))
            batch_results = (
                segment_dissim_batch_fn(query, batch_items)
                if batch_items
                else []
            )
        else:
            batch_pos = None
        for i, entry in enumerate(entries):
            tid = entry.trajectory_id
            if tid in rejected or tid in completed:
                continue
            lo = max(entry.segment.ts, t_start)
            hi = min(entry.segment.te, t_end)
            if lo >= hi:
                continue
            cand = valid.get(tid)
            if cand is None:
                if sig_filter is not None:
                    # Signature tier: reject at first touch when the
                    # certified lower bound beats the current k-th-best
                    # upper bound — before any DISSIM integral.
                    threshold = top.threshold
                    if math.isfinite(threshold) and sig_filter.should_prune(
                        tid, threshold
                    ):
                        rejected.add(tid)
                        continue
                cand = _Candidate(tid, t_start, t_end)
                valid[tid] = cand
                stats.candidates_created += 1
            if batch_pos is not None:
                integral, d_lo, d_hi = batch_results[batch_pos[i]]
            else:
                integral, d_lo, d_hi = seg_dissim(query, entry.segment, lo, hi)
            if cand.partial.add_interval(lo, hi, integral, d_lo, d_hi):
                cand.windows.append((lo, hi, entry.segment, integral))
            stats.entries_processed += 1
            stats.dissim_evaluations += 1

            if cand.partial.is_complete():
                del valid[tid]
                completed[tid] = cand
                stats.candidates_completed += 1
                cand.total = cand.canonical_total()
                top.update(tid, cand.total.upper)
                continue

            top.update(tid, cand.partial.pesdissim(vmax))
            if use_heuristic1:
                threshold = top.threshold
                if (
                    math.isfinite(threshold)
                    and cand.partial.optdissim(vmax) > threshold
                ):
                    del valid[tid]
                    rejected.add(tid)
                    stats.candidates_rejected += 1

    # Each dequeue is exactly one read_node call and nothing else in
    # this search reads this shard's nodes, so the local counter equals
    # the shard's node-access delta — and stays correct when shards run
    # on the engine's threaded executor.
    stats.node_accesses = dequeued
    if sig_filter is not None:
        stats.signature_checks += sig_filter.checks
        stats.signature_pruned += sig_filter.pruned
    io_after = index.pagefile.stats.diff(io_before)
    stats.buffer_hits = io_after.buffer_hits
    stats.buffer_misses = io_after.buffer_misses
    stats.mmap_reads = io_after.mmap_reads
    stats.checksum_failures = io_after.checksum_failures
    return completed, valid


def _validate(query, period, k):
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    t_start, t_end = period if period is not None else (query.t_start, query.t_end)
    if t_start >= t_end:
        raise QueryError(f"empty or inverted query period [{t_start}, {t_end}]")
    if not query.covers(t_start, t_end):
        raise TemporalCoverageError(
            f"query {query.object_id!r} does not cover the period "
            f"[{t_start}, {t_end}]"
        )
    return t_start, t_end


def _counters_before(trace):
    reg = trace.registry
    return (
        reg.value("index.mindist_evaluations"),
        reg.value("distance.exact_integrals"),
        reg.value("distance.trapezoid_integrals"),
        reg.value("distance.kernel_batches"),
        reg.value("distance.kernel_segments"),
        reg.value("index.mindist_batched"),
    )


def _harvest(trace, stats, before) -> None:
    reg = trace.registry
    stats.mindist_evaluations = (
        reg.value("index.mindist_evaluations") - before[0]
    )
    stats.exact_integral_evals = (
        reg.value("distance.exact_integrals") - before[1]
    )
    stats.trapezoid_evals = (
        reg.value("distance.trapezoid_integrals") - before[2]
    )
    stats.kernel_batches = reg.value("distance.kernel_batches") - before[3]
    stats.kernel_segments = reg.value("distance.kernel_segments") - before[4]
    stats.mindist_batched = reg.value("index.mindist_batched") - before[5]
    stats.heap_high_water = int(reg.gauge("index.heap_high_water").value)
    reg.inc("search.bfmst.queries")
    reg.inc("search.bfmst.node_accesses", stats.node_accesses)
    reg.inc("search.bfmst.entries_processed", stats.entries_processed)
    reg.inc("search.bfmst.candidates_created", stats.candidates_created)
    reg.inc("search.bfmst.h1_rejections", stats.candidates_rejected)
    reg.inc("search.bfmst.refinements", stats.refinement_candidates)
    if (
        stats.signature_checks
        or stats.signature_pruned
        or stats.leaf_skips
        or stats.refinement_skipped
    ):
        reg.inc("filter.signature_checks", stats.signature_checks)
        reg.inc("filter.pruned", stats.signature_pruned)
        reg.inc("filter.leaf_skips", stats.leaf_skips)
        reg.inc("filter.refinement_skipped", stats.refinement_skipped)
    if stats.terminated_early:
        reg.inc("search.bfmst.h2_terminations")
        reg.gauge("search.bfmst.h2_termination_depth").set(
            stats.h2_termination_depth
        )
    reg.observe("search.bfmst.leaf_accesses", stats.leaf_accesses)


def bfmst_search(
    index: TrajectoryIndex,
    query: Trajectory,
    period: tuple[float, float] | None = None,
    k: int = 1,
    vmax: float | None = None,
    use_heuristic1: bool = True,
    use_heuristic2: bool = True,
    refine: bool = True,
    exclude_ids: set[int] | frozenset[int] = frozenset(),
    *,
    kernels: str | None = None,
    filter: str = "auto",
    mindist_fn=None,
    segment_dissim_fn=None,
    mindist_batch_fn=None,
    segment_dissim_batch_fn=None,
    refinement_cache=None,
    heap_scratch: list | None = None,
) -> tuple[list[MSTMatch], SearchStats]:
    """Run a k-MST search and return ``(matches, stats)``.

    This is the algorithm implementation; the documented entry point is
    the unified :func:`repro.search.bfmst_search` dispatcher, which
    adds the engine/context plumbing and the :class:`SearchResult`
    return shape.  The keyword-only hooks are how the
    :class:`repro.engine.QueryEngine` amortises work across a batch —
    ``mindist_fn`` memoises node MINDIST evaluations,
    ``segment_dissim_fn`` memoises the per-leaf-entry DISSIM window
    integrals, ``refinement_cache`` (a mapping-like ``get``/``put``
    pair keyed by trajectory id) memoises exact refinement integrals
    for repeated queries, and ``heap_scratch`` donates a reusable
    priority-queue buffer.  None of them changes the answer, only the
    work done.

    ``kernels`` selects the hot-path implementation: ``"numpy"`` (the
    vectorised kernels), ``"python"`` (the batched call plumbing over
    the scalar reference code) or ``"auto"`` (numpy when importable).
    ``None`` — the default — keeps the classic per-entry scalar path.
    Explicit ``mindist_batch_fn`` / ``segment_dissim_batch_fn`` hooks
    (the engine's caching wrappers) override the resolved kernels.

    ``filter`` engages the signature tier (``"auto"`` — the default —
    when the index carries a signature sidecar, ``"on"`` to require
    one, ``"off"`` never): candidates whose signature lower bound
    certifies them out of the answer are rejected before any page read
    or integral, and ambiguous-ranking refinement skips candidates the
    bound already places outside the k-th boundary.  Answers are
    byte-identical to ``filter="off"`` by construction.

    A :class:`~repro.sharding.ShardedIndex` is accepted too and
    delegates to :func:`bfmst_search_sharded` (the per-shard hooks are
    then unavailable — use the sharded engine for cached sharded
    serving).

    Parameters
    ----------
    index:
        A finalized (or at least fully built) :class:`RTree3D` or
        :class:`TBTree` — or a :class:`~repro.sharding.ShardedIndex`.
    query:
        The query trajectory ``Q``.
    period:
        The query period ``[t1, tn]``; defaults to the query's
        lifetime.  The query must cover it.
    k:
        Number of most similar trajectories to return.
    vmax:
        The paper's ``V_max`` — sum of the maximum indexed speed and
        the maximum query speed; computed from the index metadata when
        omitted.  Must dominate the true maximum for the bounds to be
        safe (it does when derived from the data).
    use_heuristic1 / use_heuristic2:
        Ablation switches for OPTDISSIM candidate pruning and
        MINDISSIMINC early termination.
    refine:
        Re-integrate exactly (arcsinh closed form) the candidates whose
        certified intervals straddle the k-th boundary before ranking.
    exclude_ids:
        Trajectory ids never to report (e.g. the query itself when it
        is also indexed).
    """
    if getattr(index, "is_sharded", False):
        return bfmst_search_sharded(
            index,
            query,
            period,
            k,
            vmax,
            use_heuristic1,
            use_heuristic2,
            refine,
            exclude_ids,
            kernels=kernels,
            filter=filter,
            refinement_cache=refinement_cache,
        )
    t_start, t_end = _validate(query, period, k)
    if vmax is None:
        vmax = index.max_speed + query.max_speed()
    if vmax < 0.0:
        raise QueryError(f"negative vmax {vmax}")
    sig_filter = make_signature_filter(
        index, query, t_start, t_end, vmax, filter, kernels
    )
    if kernels is not None:
        if mindist_batch_fn is None:
            mindist_batch_fn = make_mindist_batch(kernels)
        if segment_dissim_batch_fn is None:
            segment_dissim_batch_fn = make_segment_dissim_batch(kernels)

    stats = SearchStats(total_nodes=index.num_nodes)

    # Counter baseline so the SearchStats enrichment reports *this*
    # query's work even when one trace spans several queries.
    trace = _obs.ACTIVE
    if trace is not None and trace.registry.enabled:
        before = _counters_before(trace)
    else:
        trace = None

    top = _TopK(k)
    completed, valid = _search_shard(
        index,
        query,
        t_start,
        t_end,
        vmax,
        use_heuristic1,
        use_heuristic2,
        top,
        exclude_ids,
        stats,
        mindist_fn=mindist_fn,
        segment_dissim_fn=segment_dissim_fn,
        mindist_batch_fn=mindist_batch_fn,
        segment_dissim_batch_fn=segment_dissim_batch_fn,
        heap_scratch=heap_scratch,
        sig_filter=sig_filter,
    )
    matches = _assemble(
        candidate_records(completed, valid, vmax),
        query,
        k,
        refine,
        stats,
        refinement_cache,
        sig_lookup=None if sig_filter is None else sig_filter.bound,
    )
    if trace is not None:
        _harvest(trace, stats, before)
    return matches, stats


def bfmst_search_sharded(
    index,
    query: Trajectory,
    period: tuple[float, float] | None = None,
    k: int = 1,
    vmax: float | None = None,
    use_heuristic1: bool = True,
    use_heuristic2: bool = True,
    refine: bool = True,
    exclude_ids: set[int] | frozenset[int] = frozenset(),
    *,
    kernels: str | None = None,
    filter: str = "auto",
    selected: list[int] | None = None,
    shard_hooks: dict[int, dict] | None = None,
    refinement_cache=None,
    executor=None,
) -> tuple[list[MSTMatch], SearchStats]:
    """Cross-shard k-MST over a :class:`~repro.sharding.ShardedIndex`.

    Every selected shard runs the same best-first traversal as the
    single-index search, but all of them share one k-th-best bound, so
    pruning crosses shard boundaries.  The disjoint per-shard candidate
    sets are merged and ranked/refined once, globally.  ``vmax``
    defaults to the *global* maximum over shards plus the query's — the
    same value the unsharded search would use, which (together with the
    canonical window summation) makes the answer bit-identical to the
    single-index path.

    Parameters beyond :func:`bfmst_search`'s:

    selected:
        Shard ids to search (the planner's pre-filter); ``None``
        searches all.  Skipping a shard whose extent cannot overlap the
        query period is answer-preserving.
    shard_hooks:
        Optional per-shard-id dict of ``mindist_fn`` /
        ``segment_dissim_fn`` / ``mindist_batch_fn`` /
        ``segment_dissim_batch_fn`` / ``heap_scratch`` hooks (the
        sharded engine's caches).  ``kernels`` (same semantics as
        :func:`bfmst_search`) supplies batch implementations to shards
        whose hooks leave them unset.  An ``exclude_ids`` hook unions
        extra per-shard exclusions onto the global set — the live
        ingestion path uses it to mask dirty objects out of an
        immutable generation while the memtable serves them.
    executor:
        Anything with ``.map(fn, items)`` (e.g. the engine's
        :class:`~repro.engine.executor.ThreadedExecutor`) to advance
        shards concurrently; ``None`` runs them serially.
    """
    t_start, t_end = _validate(query, period, k)
    shards = index.shards
    if vmax is None:
        vmax = index.max_speed + query.max_speed()
    if vmax < 0.0:
        raise QueryError(f"negative vmax {vmax}")
    if selected is None:
        selected = list(range(len(shards)))
    else:
        selected = list(selected)
        for sid in selected:
            if not 0 <= sid < len(shards):
                raise QueryError(f"shard id {sid} out of range [0, {len(shards)})")

    stats = SearchStats(total_nodes=index.num_nodes)
    trace = _obs.ACTIVE
    if trace is not None and trace.registry.enabled:
        before = _counters_before(trace)
    else:
        trace = None

    top: _TopK = _SharedTopK(k) if len(selected) > 1 else _TopK(k)
    hooks_by_shard = shard_hooks or {}
    if kernels is not None:
        default_mindist_batch = make_mindist_batch(kernels)
        default_segdissim_batch = make_segment_dissim_batch(kernels)
    else:
        default_mindist_batch = None
        default_segdissim_batch = None

    # One signature filter per shard (each shard carries its own
    # sidecar); trajectory ids are disjoint across shards, so the merge
    # step can probe them in any order.
    shard_filters: dict[int, SignatureFilter] = {}
    for sid in selected:
        filt = make_signature_filter(
            shards[sid], query, t_start, t_end, vmax, filter, kernels
        )
        if filt is not None:
            shard_filters[sid] = filt

    def merged_sig_lookup(tid: int):
        for filt in shard_filters.values():
            if tid in filt.sigs:
                return filt.bound(tid)
        return None

    def run(shard_id: int):
        shard_stats = SearchStats(total_nodes=shards[shard_id].num_nodes)
        hooks = hooks_by_shard.get(shard_id, {})
        extra_excludes = hooks.get("exclude_ids")
        shard_excludes = (
            exclude_ids
            if not extra_excludes
            else frozenset(exclude_ids) | frozenset(extra_excludes)
        )
        completed, valid = _search_shard(
            shards[shard_id],
            query,
            t_start,
            t_end,
            vmax,
            use_heuristic1,
            use_heuristic2,
            top,
            shard_excludes,
            shard_stats,
            mindist_fn=hooks.get("mindist_fn"),
            segment_dissim_fn=hooks.get("segment_dissim_fn"),
            mindist_batch_fn=hooks.get(
                "mindist_batch_fn", default_mindist_batch
            ),
            segment_dissim_batch_fn=hooks.get(
                "segment_dissim_batch_fn", default_segdissim_batch
            ),
            heap_scratch=hooks.get("heap_scratch"),
            sig_filter=shard_filters.get(shard_id),
        )
        return shard_id, candidate_records(completed, valid, vmax), shard_stats

    if executor is not None and len(selected) > 1:
        # Engine executors use the (index, item) map convention.
        outcomes = executor.map(lambda _i, sid: run(sid), selected)
    else:
        outcomes = [run(sid) for sid in selected]

    matches = merge_shard_records(
        outcomes,
        selected=selected,
        shard_nodes=[shard.num_nodes for shard in shards],
        query=query,
        k=k,
        refine=refine,
        stats=stats,
        refinement_cache=refinement_cache,
        trace=trace,
        before=before if trace is not None else None,
        sig_lookup=merged_sig_lookup if shard_filters else None,
    )
    return matches, stats


def merge_shard_records(
    outcomes,
    *,
    selected: list[int],
    shard_nodes: list[int],
    query: Trajectory,
    k: int,
    refine: bool,
    stats: SearchStats,
    refinement_cache=None,
    trace=None,
    before=None,
    sig_lookup=None,
) -> list[MSTMatch]:
    """Merge per-shard search outcomes into the global ranked answer.

    ``outcomes`` is an iterable of ``(shard_id, records, shard_stats)``
    triples — one per searched shard, each produced by
    :func:`candidate_records` over that shard's traversal result.
    Aggregates the shard counters into ``stats`` (including the
    ``per_shard`` breakdown with pruned-shard rows, sized from
    ``shard_nodes``), ranks/refines the concatenated records, and —
    when ``trace``/``before`` are given — harvests the trace counters
    exactly like the in-process path.

    This is the *single* merge implementation: both the in-process
    :func:`bfmst_search_sharded` and the process-pool executor path
    (which reconstitutes records from :class:`ShardAnswer` buffers)
    call it, so the two executors produce byte-identical results by
    construction.
    """
    records: list[CandidateRecord] = []
    per_shard: list[dict] = []
    for shard_id, shard_records, s in outcomes:
        records.extend(shard_records)
        stats.node_accesses += s.node_accesses
        stats.leaf_accesses += s.leaf_accesses
        stats.internal_accesses += s.internal_accesses
        stats.entries_processed += s.entries_processed
        stats.candidates_created += s.candidates_created
        stats.candidates_completed += s.candidates_completed
        stats.candidates_rejected += s.candidates_rejected
        stats.dissim_evaluations += s.dissim_evaluations
        stats.buffer_hits += s.buffer_hits
        stats.buffer_misses += s.buffer_misses
        stats.mmap_reads += s.mmap_reads
        stats.checksum_failures += s.checksum_failures
        stats.terminated_early = stats.terminated_early or s.terminated_early
        stats.h2_termination_depth = max(
            stats.h2_termination_depth, s.h2_termination_depth
        )
        stats.signature_checks += s.signature_checks
        stats.signature_pruned += s.signature_pruned
        stats.leaf_skips += s.leaf_skips
        per_shard.append(
            {
                "shard": shard_id,
                "pruned": False,
                "node_accesses": s.node_accesses,
                "leaf_accesses": s.leaf_accesses,
                "entries_processed": s.entries_processed,
                "candidates_created": s.candidates_created,
                "candidates_rejected": s.candidates_rejected,
                "signature_pruned": s.signature_pruned,
                "leaf_skips": s.leaf_skips,
                "terminated_early": s.terminated_early,
                "total_nodes": s.total_nodes,
            }
        )
    searched = set(selected)
    for shard_id in range(len(shard_nodes)):
        if shard_id not in searched:
            per_shard.append(
                {
                    "shard": shard_id,
                    "pruned": True,
                    "node_accesses": 0,
                    "leaf_accesses": 0,
                    "entries_processed": 0,
                    "candidates_created": 0,
                    "candidates_rejected": 0,
                    "terminated_early": False,
                    "total_nodes": shard_nodes[shard_id],
                }
            )
    per_shard.sort(key=lambda row: row["shard"])
    stats.extra["per_shard"] = per_shard
    stats.extra["shards_searched"] = len(selected)
    stats.extra["shards_pruned"] = len(shard_nodes) - len(selected)

    matches = _assemble(
        records, query, k, refine, stats, refinement_cache, sig_lookup
    )
    if trace is not None:
        _harvest(trace, stats, before)
        reg = trace.registry
        reg.inc("search.bfmst.sharded_queries")
        reg.inc("search.bfmst.shards_searched", len(selected))
        reg.inc("search.bfmst.shards_pruned", len(shard_nodes) - len(selected))
        for row in per_shard:
            if not row["pruned"]:
                label = row["shard"]
                reg.inc(f"search.shard.{label}.queries")
                reg.inc(
                    f"search.shard.{label}.node_accesses",
                    row["node_accesses"],
                )
                reg.inc(
                    f"search.shard.{label}.entries_processed",
                    row["entries_processed"],
                )
    return matches


def _assemble(
    records: list[CandidateRecord],
    query: Trajectory,
    k: int,
    refine: bool,
    stats: SearchStats,
    refinement_cache=None,
    sig_lookup=None,
) -> list[MSTMatch]:
    """Rank the candidate records, exactly re-integrating the ambiguous
    ones (the paper's post-processing step, Section 4.4)."""
    scored = [
        MSTMatch(r.tid, r.dissim, r.error_bound, exact=r.exact)
        for r in records
    ]
    scored.sort(key=lambda m: (m.upper, m.trajectory_id))
    if not scored:
        return []

    if refine and _needs_refinement(scored, k):
        by_tid = {r.tid: r for r in records}
        trace = _obs.ACTIVE
        timed = (
            trace.time("search.bfmst.refinement")
            if trace is not None
            else nullcontext()
        )
        kth_upper = scored[min(k, len(scored)) - 1].upper
        refined: dict[int, float] = {}
        with timed:
            for m in scored:
                if not (m.exact and m.error_bound > 0.0 and m.lower <= kth_upper):
                    continue
                if sig_lookup is not None:
                    # A signature bound above the k-th upper proves the
                    # exact value cannot enter the answer set — skip the
                    # exact re-integration (and keep the miss out of the
                    # refinement-LRU's hit-rate denominator).
                    lb = sig_lookup(m.trajectory_id)
                    if lb is not None and lb > kth_upper:
                        stats.refinement_skipped += 1
                        continue
                record = by_tid[m.trajectory_id]
                # A completed candidate's windows tile the whole query
                # period, so its exact total is a function of (query,
                # period, trajectory) alone — safe to memoise across
                # repeated queries regardless of k.
                exact_total = (
                    refinement_cache.get(m.trajectory_id)
                    if refinement_cache is not None
                    else None
                )
                if exact_total is None:
                    # Time-ordered summation: the exact value must not
                    # depend on segment arrival order either.
                    exact_total = 0.0
                    for lo, hi, seg in sorted(
                        record.windows, key=lambda w: w[0]
                    ):
                        integral, _dl, _dh = segment_dissim(
                            query, seg, lo, hi, exact=True
                        )
                        exact_total += integral.approx
                    if refinement_cache is not None:
                        refinement_cache.put(m.trajectory_id, exact_total)
                refined[m.trajectory_id] = exact_total
                stats.refinement_candidates += 1
        scored = [
            MSTMatch(m.trajectory_id, refined[m.trajectory_id], 0.0, True)
            if m.trajectory_id in refined
            else m
            for m in scored
        ]
        scored.sort(key=lambda m: (m.upper, m.trajectory_id))
    return scored[:k]


def _needs_refinement(scored: list[MSTMatch], k: int) -> bool:
    """True when certified intervals around the k-th boundary overlap,
    i.e. the approximate ranking might differ from the exact one."""
    boundary = min(k, len(scored)) - 1
    kth_upper = scored[boundary].upper
    # An outside candidate whose lower end dips below the k-th upper
    # could swap into the answer set...
    for m in scored[boundary + 1 :]:
        if m.lower < kth_upper:
            return True
    # ...and adjacent inside candidates with overlapping intervals
    # could swap order.
    for i in range(boundary):
        overlap = scored[i + 1].lower < scored[i].upper
        fuzzy = scored[i].error_bound > 0.0 or scored[i + 1].error_bound > 0.0
        if overlap and fuzzy:
            return True
    return False
