"""Incremental MST browsing (distance browsing, Hjaltason & Samet [8]).

``bfmst_browse`` is the lazy sibling of ``bfmst_search``: a generator
that yields trajectories one at a time in increasing DISSIM order,
without fixing ``k`` up front — stop consuming when you have seen
enough ("give me similar routes until I find one operated by another
carrier").  Taking the first k yields is equivalent to a k-MST query.

Emission rule: a completed candidate may be emitted once its (exactly
re-integrated) value is at most

* the *frontier barrier* — the next queued node's MINDIST times the
  period length (no unseen trajectory can beat that, Definition 6),
* every incomplete candidate's OPTDISSIMINC at the frontier MINDIST,
* every other completed-but-unemitted candidate's value.

All three only grow (the traversal is in non-decreasing MINDIST
order), so the emitted sequence is globally sorted.
"""

from __future__ import annotations

import math
from bisect import insort
from typing import Iterator

from ..distance import PartialDissim, segment_dissim
from ..exceptions import QueryError, TemporalCoverageError
from ..index import TrajectoryIndex, best_first_nodes
from ..trajectory import Trajectory
from .results import MSTMatch

__all__ = ["bfmst_browse"]


class _Candidate:
    __slots__ = ("tid", "partial", "windows")

    def __init__(self, tid: int, t_start: float, t_end: float) -> None:
        self.tid = tid
        self.partial = PartialDissim(t_start, t_end)
        self.windows: list = []


def bfmst_browse(
    index: TrajectoryIndex,
    query: Trajectory,
    period: tuple[float, float] | None = None,
    exclude_ids: set[int] | frozenset[int] = frozenset(),
) -> Iterator[MSTMatch]:
    """Yield matches in increasing exact-DISSIM order, lazily.

    Values of yielded matches are exact (closed-form re-integration);
    trajectories that never complete their coverage (they do not span
    the period) are yielded last as certified upper bounds with
    ``exact=False``.
    """
    t_start, t_end = period if period is not None else (query.t_start, query.t_end)
    if t_start >= t_end:
        raise QueryError(f"empty or inverted query period [{t_start}, {t_end}]")
    if not query.covers(t_start, t_end):
        raise TemporalCoverageError(
            f"query {query.object_id!r} does not cover "
            f"[{t_start}, {t_end}]"
        )
    period_len = t_end - t_start

    valid: dict[int, _Candidate] = {}
    done: set[int] = set(exclude_ids)
    # exact-valued, completed, not yet yielded: sorted (value, tid)
    ready: list[tuple[float, int]] = []

    def process_leaf(node) -> None:
        for entry in sorted(node.entries, key=lambda e: e.segment.ts):
            tid = entry.trajectory_id
            if tid in done:
                continue
            lo = max(entry.segment.ts, t_start)
            hi = min(entry.segment.te, t_end)
            if lo >= hi:
                continue
            cand = valid.get(tid)
            if cand is None:
                cand = _Candidate(tid, t_start, t_end)
                valid[tid] = cand
            integral, d_lo, d_hi = segment_dissim(query, entry.segment, lo, hi)
            cand.partial.add_interval(lo, hi, integral, d_lo, d_hi)
            cand.windows.append((entry.segment, lo, hi))
            if cand.partial.is_complete():
                del valid[tid]
                done.add(tid)
                exact_total = 0.0
                for seg, wlo, whi in cand.windows:
                    piece, _dl, _dh = segment_dissim(
                        query, seg, wlo, whi, exact=True
                    )
                    exact_total += piece.approx
                insort(ready, (exact_total, tid))

    def emittable(frontier_mindist: float) -> Iterator[MSTMatch]:
        while ready:
            value, tid = ready[0]
            if value > frontier_mindist * period_len:
                return
            if valid and any(
                c.partial.optdissim_inc(frontier_mindist) < value
                for c in valid.values()
            ):
                return
            ready.pop(0)
            yield MSTMatch(tid, value, 0.0, exact=True)

    pending = None
    for dist, node in best_first_nodes(index, query, t_start, t_end):
        if pending is not None:
            pending_node = pending
            if pending_node.is_leaf:
                process_leaf(pending_node)
            # everything still unseen is at least `dist` away
            yield from emittable(dist)
        pending = node
    if pending is not None:
        if pending.is_leaf:
            process_leaf(pending)
    # traversal exhausted: every covering candidate is complete
    yield from emittable(math.inf)
    # never-completed candidates (they do not span the period): report
    # certified upper bounds, worst-grounded by their pessimistic gap
    leftovers = sorted(
        (
            (c.partial.pesdissim(index.max_speed + query.max_speed()), tid)
            for tid, c in valid.items()
        ),
    )
    for value, tid in leftovers:
        yield MSTMatch(tid, value, 0.0, exact=False)
