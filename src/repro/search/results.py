"""Result and statistics types shared by the search algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MSTMatch", "SearchStats"]


@dataclass(frozen=True, slots=True)
class MSTMatch:
    """One answer of a (k-)MST search.

    ``dissim`` is the trapezoid-approximated DISSIM; the exact metric
    lies in ``[dissim - error_bound, dissim]`` (Lemma 1 is one-sided).
    ``exact`` is ``False`` only in the rare case the paper's Section
    4.4 discusses: the search terminated while this candidate was still
    partially retrieved, so ``dissim`` is a certified *upper* bound
    (its PESDISSIM) rather than a measured value.
    """

    trajectory_id: int
    dissim: float
    error_bound: float = 0.0
    exact: bool = True

    @property
    def lower(self) -> float:
        return self.dissim - self.error_bound

    @property
    def upper(self) -> float:
        return self.dissim


@dataclass
class SearchStats:
    """Observability block returned next to every BFMST answer.

    ``pruning_power`` is the paper's "pruned space": the fraction of
    index nodes the search never touched.
    """

    node_accesses: int = 0
    leaf_accesses: int = 0
    internal_accesses: int = 0
    entries_processed: int = 0
    candidates_created: int = 0
    candidates_completed: int = 0
    candidates_rejected: int = 0
    dissim_evaluations: int = 0
    total_nodes: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    terminated_early: bool = False
    refinement_candidates: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def pruning_power(self) -> float:
        """``1 - touched/total`` in [0, 1]; 0 for an empty index."""
        if self.total_nodes <= 0:
            return 0.0
        touched = min(self.node_accesses, self.total_nodes)
        return 1.0 - touched / self.total_nodes
