"""Result and statistics types shared by the search algorithms."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Iterator

__all__ = ["ENVELOPE_VERSION", "MSTMatch", "SearchStats", "SearchResult"]

#: Version tag of the SearchResult JSON envelope shared by
#: ``repro batch``, ``repro serve`` and the bench harnesses.
ENVELOPE_VERSION = 1


@dataclass(frozen=True, slots=True)
class MSTMatch:
    """One answer of a (k-)MST search.

    ``dissim`` is the trapezoid-approximated DISSIM; the exact metric
    lies in ``[dissim - error_bound, dissim]`` (Lemma 1 is one-sided).
    ``exact`` is ``False`` only in the rare case the paper's Section
    4.4 discusses: the search terminated while this candidate was still
    partially retrieved, so ``dissim`` is a certified *upper* bound
    (its PESDISSIM) rather than a measured value.
    """

    trajectory_id: int
    dissim: float
    error_bound: float = 0.0
    exact: bool = True

    @property
    def lower(self) -> float:
        return self.dissim - self.error_bound

    @property
    def upper(self) -> float:
        return self.dissim


@dataclass
class SearchStats:
    """Observability block returned next to every BFMST answer.

    ``pruning_power`` is the paper's "pruned space": the fraction of
    index nodes the search never touched.

    The fields after ``refinement_candidates`` are filled only when the
    query runs under a live :func:`repro.obs.query_trace` (they are
    harvested from the trace's registry); without one they stay at
    their zero defaults.  ``candidates_rejected`` *is* the Heuristic 1
    rejection count; ``terminated_early`` flags Heuristic 2, and
    ``h2_termination_depth`` records how many nodes had been dequeued
    when it fired (0 = ran to exhaustion).
    """

    node_accesses: int = 0
    leaf_accesses: int = 0
    internal_accesses: int = 0
    entries_processed: int = 0
    candidates_created: int = 0
    candidates_completed: int = 0
    candidates_rejected: int = 0
    dissim_evaluations: int = 0
    total_nodes: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    mmap_reads: int = 0
    checksum_failures: int = 0
    terminated_early: bool = False
    refinement_candidates: int = 0
    # signature filter tier (all zero when no sidecar is attached or
    # filter="off"): bound evaluations against a finite threshold,
    # candidates proven out before their first page touch, whole leaf
    # pages skipped unread, and exact re-integrations skipped because
    # the signature bound already cleared the k-th boundary.
    signature_checks: int = 0
    signature_pruned: int = 0
    leaf_skips: int = 0
    refinement_skipped: int = 0
    # --- trace-harvested enrichment (zero without a live QueryTrace) ---
    mindist_evaluations: int = 0
    heap_high_water: int = 0
    exact_integral_evals: int = 0
    trapezoid_evals: int = 0
    h2_termination_depth: int = 0
    # vectorised-kernel usage: how much of the query ran batched.
    # kernel_batches / kernel_segments count segment-DISSIM batches and
    # the windows they covered; mindist_batched counts batched node
    # expansions.  All zero on the scalar (kernels="python"/None) path.
    kernel_batches: int = 0
    kernel_segments: int = 0
    mindist_batched: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def pruning_power(self) -> float:
        """``1 - touched/total`` in [0, 1]; 0 for an empty index."""
        if self.total_nodes <= 0:
            return 0.0
        touched = min(self.node_accesses, self.total_nodes)
        return 1.0 - touched / self.total_nodes

    @property
    def buffer_hit_ratio(self) -> float:
        """Buffer hit ratio of this query's page traffic in [0, 1]."""
        total = self.buffer_hits + self.buffer_misses
        return self.buffer_hits / total if total else 0.0

    def as_dict(self) -> dict:
        """All fields plus the derived ratios, JSON-ready."""
        out = asdict(self)
        out["pruning_power"] = self.pruning_power
        out["buffer_hit_ratio"] = self.buffer_hit_ratio
        return out

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, doc: dict) -> "SearchStats":
        """Inverse of :meth:`as_dict`.  Derived ratios
        (``pruning_power``, ``buffer_hit_ratio``) and unknown keys from
        newer writers are ignored; missing fields keep their defaults.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in doc.items() if k in known})


@dataclass
class SearchResult:
    """The uniform answer envelope of the unified search API.

    Every search entry point — k-MST, linear scan, point NN, range,
    continuous NN, time-relaxed — returns one of these, so callers,
    the ``repro stats`` CLI and the bench JSONL rows can treat all
    algorithms alike:

    * ``algorithm`` — which algorithm produced the answer
      (``"bfmst"``, ``"linear_scan"``, ``"nn"``, ``"range"``,
      ``"continuous_nn"``, ``"time_relaxed"``),
    * ``matches`` — ranked :class:`MSTMatch` rows.  For point NN the
      ``dissim`` slot carries the point distance; for range queries the
      hits are unranked and ``dissim`` is 0,
    * ``stats`` — a :class:`SearchStats` with the *same field set* for
      every algorithm (fields an algorithm cannot measure stay 0),
    * ``extras`` — algorithm-specific payload (``"intervals"`` for
      continuous NN, ``"shifts"`` for time-relaxed),
    * ``trace_id`` — name of the :class:`~repro.obs.QueryTrace` the
      query ran under, if any,
    * ``spec`` — the :class:`~repro.search.spec.QuerySpec` the unified
      API built for this call (``None`` for results constructed by the
      raw algorithm functions).

    Iterating the result iterates ``matches``.

    The JSON envelope (:meth:`to_json`/:meth:`from_json`) is versioned
    (``"envelope": 1``) and shared verbatim by ``repro batch``,
    ``repro serve`` and the serving bench.  ``stats`` is telemetry —
    buffer hit counts vary with cache warmth — so answer identity is
    defined by :meth:`answer_json` (algorithm + matches + extras),
    which byte-compares stably across runs.
    """

    algorithm: str
    matches: list[MSTMatch] = field(default_factory=list)
    stats: SearchStats = field(default_factory=SearchStats)
    extras: dict = field(default_factory=dict)
    trace_id: str | None = None
    spec: object | None = None

    def __iter__(self) -> Iterator[MSTMatch]:
        return iter(self.matches)

    def __len__(self) -> int:
        return len(self.matches)

    @property
    def ids(self) -> list[int]:
        """Trajectory ids of the matches, in rank order."""
        return [m.trajectory_id for m in self.matches]

    @property
    def intervals(self):
        """Continuous-NN intervals (``None`` for other algorithms)."""
        return self.extras.get("intervals")

    def as_dict(self) -> dict:
        return {
            "envelope": ENVELOPE_VERSION,
            "algorithm": self.algorithm,
            "matches": [
                {
                    "trajectory_id": m.trajectory_id,
                    "dissim": m.dissim,
                    "error_bound": m.error_bound,
                    "exact": m.exact,
                }
                for m in self.matches
            ],
            "stats": self.stats.as_dict(),
            "extras": {
                k: v for k, v in self.extras.items() if _jsonable(v)
            },
            "trace_id": self.trace_id,
            "spec": self.spec.as_dict() if self.spec is not None else None,
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def answer_dict(self) -> dict:
        """The *answer* section only: algorithm, ranked matches and
        algorithm-specific extras.  Excludes ``stats`` (telemetry that
        varies with buffer warmth) and ``trace_id``, so two runs of the
        same spec against the same index compare byte-identical."""
        doc = self.as_dict()
        return {
            "algorithm": doc["algorithm"],
            "matches": doc["matches"],
            "extras": doc["extras"],
        }

    def answer_json(self) -> str:
        return json.dumps(self.answer_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, doc: dict) -> "SearchResult":
        """Validating inverse of :meth:`as_dict` (tuples inside extras
        come back as lists — JSON has no tuple)."""
        from ..exceptions import QueryError
        from .spec import QuerySpec

        if not isinstance(doc, dict):
            raise QueryError(
                f"result envelope must be an object, got {type(doc).__name__}"
            )
        version = doc.get("envelope", ENVELOPE_VERSION)
        if version != ENVELOPE_VERSION:
            raise QueryError(
                f"unsupported result envelope version {version!r} (this "
                f"build speaks version {ENVELOPE_VERSION})"
            )
        try:
            matches = [
                MSTMatch(
                    m["trajectory_id"],
                    m["dissim"],
                    m.get("error_bound", 0.0),
                    m.get("exact", True),
                )
                for m in doc.get("matches", [])
            ]
        except (TypeError, KeyError) as exc:
            raise QueryError(f"malformed matches in result envelope: {exc}") from exc
        spec_doc = doc.get("spec")
        return cls(
            algorithm=doc.get("algorithm", ""),
            matches=matches,
            stats=SearchStats.from_dict(doc.get("stats") or {}),
            extras=dict(doc.get("extras") or {}),
            trace_id=doc.get("trace_id"),
            spec=QuerySpec.from_dict(spec_doc) if spec_doc is not None else None,
        )

    @classmethod
    def from_json(cls, text: str | bytes) -> "SearchResult":
        from ..exceptions import QueryError

        try:
            doc = json.loads(text)
        except (ValueError, UnicodeDecodeError) as exc:
            raise QueryError(f"result envelope is not valid JSON: {exc}") from exc
        return cls.from_dict(doc)


def _jsonable(value) -> bool:
    try:
        json.dumps(value)
        return True
    except (TypeError, ValueError):
        return False
