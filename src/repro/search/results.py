"""Result and statistics types shared by the search algorithms."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Iterator

__all__ = ["MSTMatch", "SearchStats", "SearchResult"]


@dataclass(frozen=True, slots=True)
class MSTMatch:
    """One answer of a (k-)MST search.

    ``dissim`` is the trapezoid-approximated DISSIM; the exact metric
    lies in ``[dissim - error_bound, dissim]`` (Lemma 1 is one-sided).
    ``exact`` is ``False`` only in the rare case the paper's Section
    4.4 discusses: the search terminated while this candidate was still
    partially retrieved, so ``dissim`` is a certified *upper* bound
    (its PESDISSIM) rather than a measured value.
    """

    trajectory_id: int
    dissim: float
    error_bound: float = 0.0
    exact: bool = True

    @property
    def lower(self) -> float:
        return self.dissim - self.error_bound

    @property
    def upper(self) -> float:
        return self.dissim


@dataclass
class SearchStats:
    """Observability block returned next to every BFMST answer.

    ``pruning_power`` is the paper's "pruned space": the fraction of
    index nodes the search never touched.

    The fields after ``refinement_candidates`` are filled only when the
    query runs under a live :func:`repro.obs.query_trace` (they are
    harvested from the trace's registry); without one they stay at
    their zero defaults.  ``candidates_rejected`` *is* the Heuristic 1
    rejection count; ``terminated_early`` flags Heuristic 2, and
    ``h2_termination_depth`` records how many nodes had been dequeued
    when it fired (0 = ran to exhaustion).
    """

    node_accesses: int = 0
    leaf_accesses: int = 0
    internal_accesses: int = 0
    entries_processed: int = 0
    candidates_created: int = 0
    candidates_completed: int = 0
    candidates_rejected: int = 0
    dissim_evaluations: int = 0
    total_nodes: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    mmap_reads: int = 0
    checksum_failures: int = 0
    terminated_early: bool = False
    refinement_candidates: int = 0
    # --- trace-harvested enrichment (zero without a live QueryTrace) ---
    mindist_evaluations: int = 0
    heap_high_water: int = 0
    exact_integral_evals: int = 0
    trapezoid_evals: int = 0
    h2_termination_depth: int = 0
    # vectorised-kernel usage: how much of the query ran batched.
    # kernel_batches / kernel_segments count segment-DISSIM batches and
    # the windows they covered; mindist_batched counts batched node
    # expansions.  All zero on the scalar (kernels="python"/None) path.
    kernel_batches: int = 0
    kernel_segments: int = 0
    mindist_batched: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def pruning_power(self) -> float:
        """``1 - touched/total`` in [0, 1]; 0 for an empty index."""
        if self.total_nodes <= 0:
            return 0.0
        touched = min(self.node_accesses, self.total_nodes)
        return 1.0 - touched / self.total_nodes

    @property
    def buffer_hit_ratio(self) -> float:
        """Buffer hit ratio of this query's page traffic in [0, 1]."""
        total = self.buffer_hits + self.buffer_misses
        return self.buffer_hits / total if total else 0.0

    def as_dict(self) -> dict:
        """All fields plus the derived ratios, JSON-ready."""
        out = asdict(self)
        out["pruning_power"] = self.pruning_power
        out["buffer_hit_ratio"] = self.buffer_hit_ratio
        return out

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


@dataclass
class SearchResult:
    """The uniform answer envelope of the unified search API.

    Every search entry point — k-MST, linear scan, point NN, range,
    continuous NN, time-relaxed — returns one of these, so callers,
    the ``repro stats`` CLI and the bench JSONL rows can treat all
    algorithms alike:

    * ``algorithm`` — which algorithm produced the answer
      (``"bfmst"``, ``"linear_scan"``, ``"nn"``, ``"range"``,
      ``"continuous_nn"``, ``"time_relaxed"``),
    * ``matches`` — ranked :class:`MSTMatch` rows.  For point NN the
      ``dissim`` slot carries the point distance; for range queries the
      hits are unranked and ``dissim`` is 0,
    * ``stats`` — a :class:`SearchStats` with the *same field set* for
      every algorithm (fields an algorithm cannot measure stay 0),
    * ``extras`` — algorithm-specific payload (``"intervals"`` for
      continuous NN, ``"shifts"`` for time-relaxed).

    Iterating the result iterates ``matches``.
    """

    algorithm: str
    matches: list[MSTMatch] = field(default_factory=list)
    stats: SearchStats = field(default_factory=SearchStats)
    extras: dict = field(default_factory=dict)

    def __iter__(self) -> Iterator[MSTMatch]:
        return iter(self.matches)

    def __len__(self) -> int:
        return len(self.matches)

    @property
    def ids(self) -> list[int]:
        """Trajectory ids of the matches, in rank order."""
        return [m.trajectory_id for m in self.matches]

    @property
    def intervals(self):
        """Continuous-NN intervals (``None`` for other algorithms)."""
        return self.extras.get("intervals")

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "matches": [
                {
                    "trajectory_id": m.trajectory_id,
                    "dissim": m.dissim,
                    "error_bound": m.error_bound,
                    "exact": m.exact,
                }
                for m in self.matches
            ],
            "stats": self.stats.as_dict(),
            "extras": {
                k: v for k, v in self.extras.items() if _jsonable(v)
            },
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


def _jsonable(value) -> bool:
    try:
        json.dumps(value)
        return True
    except (TypeError, ValueError):
        return False
