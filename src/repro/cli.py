"""Command-line interface.

Everything a downstream user needs to try the system without writing
Python::

    python -m repro generate --kind gstd --objects 100 --samples 100 out.csv
    python -m repro build out.csv index.pages --tree rtree
    python -m repro info index.pages
    python -m repro query index.pages out.csv --object 3 --window 0.1 --k 5
    python -m repro query index.pages out.csv --k 5 --backend mmap
    python -m repro fsck index.pages
    python -m repro stats index.pages out.csv --k 5
    python -m repro batch index.pages out.csv --queries 8 --k 5 --repeat 2
    python -m repro shard build out.csv shards/ --shards 4 --partitioner hash
    python -m repro shard query shards/ out.csv --k 5 --executor thread
    python -m repro shard inspect shards/
    python -m repro stats shards/ out.csv --k 5 --per-shard
    python -m repro ingest init store/ --tree tbtree
    python -m repro ingest feed store/ out.csv --compact-every 5000
    python -m repro ingest query store/ --object 3 --k 5
    python -m repro ingest info store/
    python -m repro experiment table2
    python -m repro experiment quality --trucks 20 --queries 10

Each subcommand is a thin wrapper over the public API; the heavy
lifting (and the testing surface) lives in the library.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from . import __version__
from .datagen import generate_gstd, generate_trucks
from .exceptions import ReproError
from .experiments import (
    DEFAULT_MEASURES,
    print_table,
    q1_cardinality,
    q2_query_length,
    q3_k,
    quality_experiment,
    scaled_specs,
    table2,
)
from .index import load_index, save_index
from .search import bfmst_search
from .trajectory import read_csv, read_json, write_csv, write_json

__all__ = ["main", "build_parser"]

_TREE_CHOICES = ("rtree", "tbtree", "strtree")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Index-based Most Similar Trajectory Search "
        "(Frentzos et al., ICDE 2007) - reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("output", help="output file (.csv or .json)")
    gen.add_argument("--kind", choices=("gstd", "trucks"), default="gstd")
    gen.add_argument("--objects", type=int, default=100)
    gen.add_argument("--samples", type=int, default=100)
    gen.add_argument("--seed", type=int, default=7)

    build = sub.add_parser("build", help="build and save an index")
    build.add_argument("dataset", help="dataset file (.csv or .json)")
    build.add_argument("index", help="output index file")
    build.add_argument("--tree", choices=_TREE_CHOICES, default="rtree")
    build.add_argument("--page-size", type=int, default=4096)
    build.add_argument(
        "--signatures", action=argparse.BooleanOptionalAction, default=True,
        help="write the trajectory-signature sidecar (<index>.sig) that "
        "powers the query-time filter tier (default: on)",
    )

    info = sub.add_parser("info", help="describe a saved index")
    info.add_argument("index", help="index file")

    fsck = sub.add_parser(
        "fsck",
        help="verify a saved index (or shard directory): sidecar, "
        "digest and every page's checksum frame",
    )
    fsck.add_argument("path", help="index file or sharded manifest directory")
    fsck.add_argument(
        "--verbose", action="store_true",
        help="print a verdict for every page, not just the bad ones",
    )

    def add_backend_flag(p):
        p.add_argument(
            "--backend", choices=("disk", "mmap"), default="disk",
            help="page-store backend for serving (mmap is read-only, "
            "zero-copy)",
        )

    def add_kernels_flag(p):
        p.add_argument(
            "--kernels", choices=("auto", "numpy", "python"), default="auto",
            help="hot-path kernels: 'numpy' forces the vectorised batch "
            "kernels, 'python' the pure-Python reference, 'auto' "
            "(default) picks numpy when importable",
        )

    def add_filter_flag(p):
        p.add_argument(
            "--filter", choices=("auto", "on", "off"), default="auto",
            help="signature filter tier: 'auto' (default) uses the "
            "per-trajectory signature sidecar when the index carries "
            "one, 'on' requires it, 'off' never consults it "
            "(answers are byte-identical either way)",
        )

    query = sub.add_parser("query", help="run a k-MST query")
    query.add_argument("index", help="index file")
    query.add_argument("dataset", help="dataset the query is drawn from")
    query.add_argument(
        "--object", type=int, default=None,
        help="source object id for the query slice (default: random)",
    )
    query.add_argument(
        "--window", type=float, default=0.1,
        help="query length as a fraction of the source lifetime",
    )
    query.add_argument("--k", type=int, default=5)
    query.add_argument("--seed", type=int, default=1)
    add_backend_flag(query)
    add_kernels_flag(query)
    add_filter_flag(query)

    stats = sub.add_parser(
        "stats",
        help="run a k-MST query under a live trace and print JSON counters",
    )
    stats.add_argument("index", help="index file")
    stats.add_argument("dataset", help="dataset the query is drawn from")
    stats.add_argument(
        "--object", type=int, default=None,
        help="source object id for the query slice (default: random)",
    )
    stats.add_argument(
        "--window", type=float, default=0.1,
        help="query length as a fraction of the source lifetime",
    )
    stats.add_argument("--k", type=int, default=5)
    stats.add_argument("--seed", type=int, default=1)
    stats.add_argument(
        "--output", default=None,
        help="write the JSON document here instead of stdout",
    )
    stats.add_argument(
        "--per-shard", action="store_true",
        help="index is a sharded manifest directory; include the "
        "per-shard breakdown in the JSON document",
    )
    add_backend_flag(stats)
    add_kernels_flag(stats)
    add_filter_flag(stats)

    batch = sub.add_parser(
        "batch",
        help="run a k-MST workload through the batched query engine",
    )
    batch.add_argument("index", help="index file")
    batch.add_argument("dataset", help="dataset the queries are drawn from")
    batch.add_argument("--queries", type=int, default=8)
    batch.add_argument(
        "--window", type=float, default=0.1,
        help="query length as a fraction of the source lifetime",
    )
    batch.add_argument("--k", type=int, default=5)
    batch.add_argument("--seed", type=int, default=1)
    batch.add_argument(
        "--repeat", type=int, default=2,
        help="how many times each query appears in the batch",
    )
    batch.add_argument(
        "--executor", choices=("serial", "thread"), default="serial"
    )
    batch.add_argument("--workers", type=int, default=None)
    batch.add_argument(
        "--output", default=None,
        help="write per-query + batch JSONL rows here",
    )
    add_backend_flag(batch)
    add_kernels_flag(batch)
    add_filter_flag(batch)

    serve = sub.add_parser(
        "serve",
        help="serve queries over HTTP with admission control "
        "(POST /v1/query, GET /stats)",
    )
    serve.add_argument(
        "target",
        help="index file, sharded manifest directory, or live ingest "
        "store directory (auto-detected)",
    )
    serve.add_argument(
        "--dataset", default=None,
        help="dataset file; required for the scan-based query kinds "
        "(linear_scan, continuous_nn, time_relaxed)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8723,
        help="listening port (0 picks a free one)",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="query execution threads",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=64,
        help="admitted-request bound; the next request gets 429",
    )
    serve.add_argument(
        "--quota-rps", type=float, default=0.0,
        help="per-client sustained requests/second (0 disables quotas)",
    )
    serve.add_argument(
        "--quota-burst", type=int, default=20,
        help="per-client burst allowance",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=10_000.0,
        help="default per-query deadline budget",
    )
    serve.add_argument(
        "--max-deadline-ms", type=float, default=60_000.0,
        help="hard cap on any requested deadline budget",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=256,
        help="hot-query result cache size (0 disables)",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=10.0,
        help="seconds to let admitted requests finish on SIGTERM",
    )
    add_backend_flag(serve)
    add_kernels_flag(serve)
    add_filter_flag(serve)

    shard = sub.add_parser(
        "shard", help="build, query and inspect sharded indexes"
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)

    sbuild = shard_sub.add_parser(
        "build", help="partition a dataset and save a sharded index"
    )
    sbuild.add_argument("dataset", help="dataset file (.csv or .json)")
    sbuild.add_argument("directory", help="output manifest directory")
    sbuild.add_argument("--tree", choices=_TREE_CHOICES, default="rtree")
    sbuild.add_argument("--page-size", type=int, default=4096)
    sbuild.add_argument("--shards", type=int, default=4)
    sbuild.add_argument(
        "--partitioner",
        choices=("round_robin", "hash", "spatial", "temporal"),
        default="hash",
    )
    sbuild.add_argument(
        "--signatures", action=argparse.BooleanOptionalAction, default=True,
        help="write a trajectory-signature sidecar per shard "
        "(default: on)",
    )

    squery = shard_sub.add_parser(
        "query", help="run a k-MST query against a sharded index"
    )
    squery.add_argument("directory", help="sharded manifest directory")
    squery.add_argument("dataset", help="dataset the query is drawn from")
    squery.add_argument(
        "--object", type=int, default=None,
        help="source object id for the query slice (default: random)",
    )
    squery.add_argument(
        "--window", type=float, default=0.1,
        help="query length as a fraction of the source lifetime",
    )
    squery.add_argument("--k", type=int, default=5)
    squery.add_argument("--seed", type=int, default=1)
    squery.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="serial",
        help="shard fan-out: in-process serial/threaded, or one worker "
        "process per shard over shared mmap pages",
    )
    squery.add_argument("--workers", type=int, default=None)
    add_backend_flag(squery)
    add_kernels_flag(squery)
    add_filter_flag(squery)

    sinspect = shard_sub.add_parser(
        "inspect", help="describe a saved sharded index"
    )
    sinspect.add_argument("directory", help="sharded manifest directory")

    ingest = sub.add_parser(
        "ingest", help="live ingestion: WAL, memtable, generations"
    )
    ingest_sub = ingest.add_subparsers(dest="ingest_command", required=True)

    iinit = ingest_sub.add_parser("init", help="initialise a store directory")
    iinit.add_argument("directory", help="store directory to create")
    iinit.add_argument("--tree", choices=_TREE_CHOICES, default="tbtree")
    iinit.add_argument("--page-size", type=int, default=4096)

    ifeed = ingest_sub.add_parser(
        "feed",
        help="stream a dataset's points into the store in time order",
    )
    ifeed.add_argument("directory", help="store directory")
    ifeed.add_argument("dataset", help="dataset file (.csv or .json)")
    ifeed.add_argument(
        "--sync-every", type=int, default=64,
        help="fsync the WAL every N appends (1 = per-point durability)",
    )
    ifeed.add_argument(
        "--compact-every", type=int, default=None,
        help="compact after absorbing this many memtable points",
    )

    iquery = ingest_sub.add_parser(
        "query", help="run a k-MST query against the live store"
    )
    iquery.add_argument("directory", help="store directory")
    iquery.add_argument(
        "--object", type=int, default=None,
        help="source object id for the query slice (default: random)",
    )
    iquery.add_argument(
        "--window", type=float, default=0.1,
        help="query length as a fraction of the source lifetime",
    )
    iquery.add_argument("--k", type=int, default=5)
    iquery.add_argument("--seed", type=int, default=1)
    add_kernels_flag(iquery)
    add_filter_flag(iquery)

    icompact = ingest_sub.add_parser(
        "compact", help="flush the memtable into a new generation"
    )
    icompact.add_argument("directory", help="store directory")

    iinfo = ingest_sub.add_parser("info", help="describe a live store")
    iinfo.add_argument("directory", help="store directory")

    exp = sub.add_parser("experiment", help="regenerate a paper experiment")
    exp.add_argument(
        "which",
        choices=("table2", "quality", "q1", "q2", "q3"),
        help="which table/figure to regenerate",
    )
    exp.add_argument("--scale", type=float, default=1.0)
    exp.add_argument("--trucks", type=int, default=25, help="quality: fleet size")
    exp.add_argument("--queries", type=int, default=10)
    return parser


def _read_dataset(path: str):
    if path.endswith(".json"):
        return read_json(path)
    return read_csv(path)


def _write_dataset(dataset, path: str) -> None:
    if path.endswith(".json"):
        write_json(dataset, path)
    else:
        write_csv(dataset, path)


def _cmd_generate(args) -> int:
    if args.kind == "gstd":
        dataset = generate_gstd(args.objects, args.samples, seed=args.seed)
    else:
        dataset = generate_trucks(args.objects, args.samples, seed=args.seed)
    _write_dataset(dataset, args.output)
    print(
        f"wrote {len(dataset)} trajectories / "
        f"{dataset.total_segments()} segments to {args.output}"
    )
    return 0


def _coerce_int_ids(dataset):
    """CSV round-trips ids as strings; the index wants ints."""
    from .trajectory import TrajectoryDataset

    coerced = TrajectoryDataset()
    for tr in dataset:
        oid = tr.object_id
        coerced.add(tr.with_id(int(oid)) if not isinstance(oid, int) else tr)
    return coerced


def _cmd_build(args) -> int:
    from .experiments import build_index

    coerced = _coerce_int_ids(_read_dataset(args.dataset))
    start = time.perf_counter()
    index = build_index(coerced, args.tree, page_size=args.page_size)
    elapsed = time.perf_counter() - start
    meta = save_index(index, args.index, signatures=args.signatures)
    suffix = ""
    if meta.get("signatures"):
        suffix = f" (+{meta['signatures']['trajectories']}-signature sidecar)"
    print(
        f"built {args.tree} over {index.num_entries} segments in "
        f"{elapsed:.1f}s: {index.num_nodes} nodes, {index.size_mb():.2f} MB "
        f"-> {args.index}{suffix}"
    )
    return 0


def _cmd_info(args) -> int:
    index = load_index(args.index)
    try:
        print(f"kind:        {type(index).__name__}")
        print(f"page size:   {index.page_size}")
        print(f"nodes:       {index.num_nodes}")
        print(f"entries:     {index.num_entries}")
        print(f"height:      {index.height}")
        print(f"objects:     {len(index.trajectory_ids)}")
        print(f"size:        {index.size_mb():.2f} MB")
        print(f"max speed:   {index.max_speed:.6g}")
    finally:
        index.pagefile.close()
    return 0


def _pick_query(args, dataset):
    """Slice a query out of the dataset per the query/stats options;
    returns ``(source_id, query)`` or ``(source_id, None)`` when the
    requested object does not exist."""
    rng = random.Random(args.seed)
    ids = dataset.ids()
    source_id = args.object if args.object is not None else ids[
        rng.randrange(len(ids))
    ]
    source = dataset.get(source_id) or dataset.get(str(source_id))
    if source is None:
        return source_id, None
    window = source.duration * args.window
    t_lo = source.t_start + rng.uniform(0.0, source.duration - window)
    return source_id, source.sliced(t_lo, t_lo + window).with_id(-1)


def _cmd_fsck(args) -> int:
    from .index import fsck as run_fsck

    report = run_fsck(args.path)
    print(report.summary())
    if args.verbose:
        for rep in [report] + report.shards:
            for page in rep.pages:
                detail = f": {page.detail}" if page.detail else ""
                print(f"  {rep.path}: page {page.page_id}: "
                      f"{page.status}{detail}")
    return 0 if report.ok else 1


def _cmd_query(args) -> int:
    index = load_index(args.index, backend=args.backend)
    try:
        dataset = _read_dataset(args.dataset)
        source_id, query = _pick_query(args, dataset)
        if query is None:
            print(f"error: no trajectory {source_id!r} in {args.dataset}",
                  file=sys.stderr)
            return 2
        start = time.perf_counter()
        result = bfmst_search(
            index, None, query, period=(query.t_start, query.t_end),
            k=args.k, kernels=args.kernels, filter=args.filter,
        )
        matches, stats = result.matches, result.stats
        elapsed = time.perf_counter() - start
        print(
            f"query: {args.window:.0%} slice of object {source_id} "
            f"([{query.t_start:.2f}, {query.t_end:.2f}])"
        )
        for rank, m in enumerate(matches, start=1):
            print(f"  {rank:2d}. object {m.trajectory_id}  DISSIM={m.dissim:.6g}")
        print(
            f"{elapsed * 1000:.1f} ms, pruning power "
            f"{stats.pruning_power:.1%} "
            f"({stats.node_accesses}/{stats.total_nodes} nodes)"
        )
        if stats.signature_checks or stats.leaf_skips:
            print(
                f"filter: {stats.signature_pruned}/{stats.signature_checks} "
                f"signature checks pruned, {stats.leaf_skips} leaves "
                f"skipped, {stats.refinement_skipped} refinements skipped"
            )
    finally:
        index.pagefile.close()
    return 0


def _cmd_stats(args) -> int:
    from .obs import query_trace

    if args.per_shard:
        from .sharding import load_sharded_index

        index = load_sharded_index(args.index, backend=args.backend)
    else:
        index = load_index(args.index, backend=args.backend)
    try:
        dataset = _read_dataset(args.dataset)
        source_id, query = _pick_query(args, dataset)
        if query is None:
            print(f"error: no trajectory {source_id!r} in {args.dataset}",
                  file=sys.stderr)
            return 2
        with query_trace(index, name=f"object-{source_id}") as trace:
            result = bfmst_search(
                index, None, query,
                period=(query.t_start, query.t_end), k=args.k,
                kernels=args.kernels, filter=args.filter,
            )
        matches, stats = result.matches, result.stats
        doc = {
            "query": {
                "source_object": source_id,
                "window_fraction": args.window,
                "period": [query.t_start, query.t_end],
                "k": args.k,
                "seed": args.seed,
            },
            "matches": [
                {"trajectory_id": m.trajectory_id, "dissim": m.dissim,
                 "error_bound": m.error_bound, "exact": m.exact}
                for m in matches
            ],
            "search_stats": stats.as_dict(),
            "trace": trace.as_dict(),
        }
        if args.per_shard:
            doc["per_shard"] = stats.extra.get("per_shard", [])
            doc["shards_searched"] = stats.extra.get("shards_searched")
            doc["shards_pruned"] = stats.extra.get("shards_pruned")
        text = json.dumps(doc, indent=2, sort_keys=True)
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote trace to {args.output}")
        else:
            print(text)
    finally:
        if args.per_shard:
            index.close()
        else:
            index.pagefile.close()
    return 0


def _cmd_batch(args) -> int:
    from .datagen import make_workload
    from .engine import EngineConfig, QueryEngine, QueryRequest

    config = EngineConfig(
        executor=args.executor, max_workers=args.workers,
        kernels=args.kernels, filter=args.filter,
    )
    engine = QueryEngine.open(
        args.index, args.dataset, config=config, backend=args.backend
    )
    try:
        workload = list(
            make_workload(
                engine.dataset, args.queries,
                query_length=args.window, seed=args.seed,
            )
        )
        requests = [
            QueryRequest("mst", q, p, k=args.k) for q, p in workload
        ] * max(1, args.repeat)
        batch = engine.run_batch(requests)
        print(
            f"{len(batch)} queries in {batch.wall_time_s * 1000:.1f} ms "
            f"({batch.queries_per_sec:.1f} q/s, {batch.executor} executor)"
        )
        cache = batch.cache_counters
        for level in ("dissim", "mindist", "segdissim"):
            hits = cache.get(f"engine.cache.{level}.hits", 0)
            misses = cache.get(f"engine.cache.{level}.misses", 0)
            total = hits + misses
            ratio = hits / total if total else 0.0
            print(f"  {level} cache: {hits}/{total} hits ({ratio:.0%})")
        print(
            f"  buffer: {cache.get('engine.buffer.hits', 0)} hits, "
            f"{cache.get('engine.buffer.pinned', 0)} pages pinned"
        )
        if args.output:
            with open(args.output, "w") as fh:
                for i, result in enumerate(batch):
                    row = {"type": "query", "rank": i}
                    row.update(result.as_dict())
                    fh.write(json.dumps(row, sort_keys=True) + "\n")
                summary = {"type": "batch"}
                summary.update(batch.as_dict())
                fh.write(json.dumps(summary, sort_keys=True) + "\n")
            print(f"wrote {len(batch) + 1} JSONL rows to {args.output}")
    finally:
        engine.close()
        engine.index.pagefile.close()
    return 0


def _open_serving_engine(args):
    """Open the right engine for ``repro serve``'s target: a sharded
    manifest directory, a live ingest store, or a single index file.
    Returns ``(engine, cleanup)``."""
    from pathlib import Path

    from .engine import (
        EngineConfig,
        LiveQueryEngine,
        QueryEngine,
        ShardedQueryEngine,
    )

    config = EngineConfig(
        executor="thread", max_workers=args.workers, kernels=args.kernels,
        filter=args.filter,
    )
    target = Path(args.target)
    if target.is_dir():
        from .ingest.store import MANIFEST_NAME as INGEST_MANIFEST
        from .sharding import MANIFEST_NAME as SHARD_MANIFEST

        if (target / SHARD_MANIFEST).exists():
            engine = ShardedQueryEngine.open(
                target, args.dataset, config=config, backend=args.backend
            )

            def cleanup():
                engine.close()
                engine.index.close()

            return engine, cleanup
        if (target / INGEST_MANIFEST).exists():
            from .ingest import IngestStore

            store = IngestStore.open(target)
            engine = LiveQueryEngine(store, config=config)

            def cleanup():
                engine.close()
                store.close()

            return engine, cleanup
        raise ReproError(
            f"{target} is a directory but holds neither a sharded "
            f"manifest ({SHARD_MANIFEST}) nor an ingest store "
            f"({INGEST_MANIFEST})"
        )
    engine = QueryEngine.open(
        target, args.dataset, config=config, backend=args.backend
    )

    def cleanup():
        engine.close()
        engine.index.pagefile.close()

    return engine, cleanup


def _cmd_serve(args) -> int:
    import asyncio

    from .serve import ReproServer, ServeConfig

    engine, cleanup = _open_serving_engine(args)
    serve_config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_inflight=args.max_inflight,
        quota_rps=args.quota_rps,
        quota_burst=args.quota_burst,
        default_deadline_ms=args.deadline_ms,
        max_deadline_ms=args.max_deadline_ms,
        cache_entries=args.cache_entries,
        drain_grace_s=args.drain_grace,
    )

    async def run() -> None:
        server = ReproServer(engine, serve_config)
        await server.start()
        host, port = server.address
        print(
            f"serving {type(engine).__name__} on http://{host}:{port} "
            f"({serve_config.workers} workers, "
            f"{serve_config.max_inflight} max inflight, "
            f"quota {serve_config.quota_rps or 'off'} rps); "
            "SIGTERM/Ctrl-C drains"
        )
        await server.serve_until_drained()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    finally:
        cleanup()
    print("drained; all admitted requests finished")
    return 0


def _cmd_shard(args) -> int:
    return {
        "build": _cmd_shard_build,
        "query": _cmd_shard_query,
        "inspect": _cmd_shard_inspect,
    }[args.shard_command](args)


def _cmd_shard_build(args) -> int:
    from .index import RTree3D, STRTree, TBTree
    from .sharding import (
        ShardedDataset,
        build_sharded_index,
        make_partitioner,
        save_sharded_index,
    )

    index_cls = {"rtree": RTree3D, "tbtree": TBTree, "strtree": STRTree}[
        args.tree
    ]
    coerced = _coerce_int_ids(_read_dataset(args.dataset))
    partitioner = make_partitioner(args.partitioner, args.shards)
    sharded_ds = ShardedDataset.partition(coerced, partitioner)
    start = time.perf_counter()
    sharded = build_sharded_index(
        sharded_ds, index_cls, page_size=args.page_size
    )
    elapsed = time.perf_counter() - start
    try:
        save_sharded_index(
            sharded, args.directory, signatures=args.signatures
        )
        sizes = ", ".join(str(n) for n in sharded_ds.shard_sizes())
        print(
            f"built {args.shards}x {args.tree} ({args.partitioner} "
            f"partitioner) over {sharded.num_entries} segments in "
            f"{elapsed:.1f}s: {sharded.num_nodes} nodes, "
            f"{sharded.size_mb():.2f} MB -> {args.directory}"
        )
        print(f"trajectories per shard: [{sizes}]")
    finally:
        sharded.close()
    return 0


def _cmd_shard_query(args) -> int:
    from .engine import EngineConfig, QueryRequest, ShardedQueryEngine

    config = EngineConfig(
        executor=args.executor, max_workers=args.workers,
        kernels=args.kernels, filter=args.filter,
    )
    engine = ShardedQueryEngine.open(
        args.directory, config=config, backend=args.backend
    )
    try:
        dataset = _read_dataset(args.dataset)
        source_id, query = _pick_query(args, dataset)
        if query is None:
            print(f"error: no trajectory {source_id!r} in {args.dataset}",
                  file=sys.stderr)
            return 2
        start = time.perf_counter()
        result = engine.execute(
            QueryRequest(
                "mst", query, (query.t_start, query.t_end), k=args.k
            )
        )
        elapsed = time.perf_counter() - start
        matches, stats = result.matches, result.stats
        print(
            f"query: {args.window:.0%} slice of object {source_id} "
            f"([{query.t_start:.2f}, {query.t_end:.2f}]) over "
            f"{engine.index.num_shards} shards ({args.executor})"
        )
        for rank, m in enumerate(matches, start=1):
            print(f"  {rank:2d}. object {m.trajectory_id}  DISSIM={m.dissim:.6g}")
        print(
            f"{elapsed * 1000:.1f} ms, pruning power "
            f"{stats.pruning_power:.1%} "
            f"({stats.node_accesses}/{stats.total_nodes} nodes), "
            f"{stats.extra.get('shards_searched', 0)} shards searched / "
            f"{stats.extra.get('shards_pruned', 0)} pruned"
        )
        if stats.signature_checks or stats.leaf_skips:
            print(
                f"filter: {stats.signature_pruned}/{stats.signature_checks} "
                f"signature checks pruned, {stats.leaf_skips} leaves "
                f"skipped, {stats.refinement_skipped} refinements skipped"
            )
        for row in stats.extra.get("per_shard", []):
            if row.get("pruned"):
                print(f"  shard {row['shard']}: pruned by planner")
            else:
                print(
                    f"  shard {row['shard']}: "
                    f"{row['node_accesses']}/{row['total_nodes']} nodes, "
                    f"{row['entries_processed']} entries"
                )
    finally:
        engine.close()
        engine.index.close()
    return 0


def _cmd_shard_inspect(args) -> int:
    from .sharding import MANIFEST_NAME, load_sharded_index
    from pathlib import Path

    manifest = json.loads(
        (Path(args.directory) / MANIFEST_NAME).read_text()
    )
    index = load_sharded_index(args.directory)
    try:
        part = manifest["partitioner"]
        print(f"kind:        {manifest['kind']} x {index.num_shards} shards")
        print(f"partitioner: {part['kind']}")
        print(f"nodes:       {index.num_nodes}")
        print(f"entries:     {index.num_entries}")
        print(f"objects:     {len(index.trajectory_ids)}")
        print(f"size:        {index.size_mb():.2f} MB")
        print(f"max speed:   {index.max_speed:.6g}")
        for i, (shard, extent) in enumerate(
            zip(index.shards, index.extents())
        ):
            if extent is None:
                print(f"  shard {i}: empty")
                continue
            print(
                f"  shard {i}: {shard.num_nodes} nodes, "
                f"{shard.num_entries} entries, "
                f"{len(shard.trajectory_ids)} objects, "
                f"t=[{extent.tmin:.1f}, {extent.tmax:.1f}]"
            )
    finally:
        index.close()
    return 0


def _cmd_ingest(args) -> int:
    return {
        "init": _cmd_ingest_init,
        "feed": _cmd_ingest_feed,
        "query": _cmd_ingest_query,
        "compact": _cmd_ingest_compact,
        "info": _cmd_ingest_info,
    }[args.ingest_command](args)


def _cmd_ingest_init(args) -> int:
    from .ingest import IngestStore

    with IngestStore.create(
        args.directory, tree=args.tree, page_size=args.page_size
    ) as store:
        print(
            f"initialised {args.directory} "
            f"(tree={store.tree}, page_size={store.page_size})"
        )
    return 0


def _cmd_ingest_feed(args) -> int:
    from .ingest import IngestStore

    dataset = _coerce_int_ids(_read_dataset(args.dataset))
    events = sorted(
        (p.t, tr.object_id, p.x, p.y) for tr in dataset for p in tr
    )
    with IngestStore.open(
        args.directory,
        sync_every=args.sync_every,
        auto_compact_points=args.compact_every,
    ) as store:
        start = time.perf_counter()
        for t, oid, x, y in events:
            store.append(oid, x, y, t)
        store.sync()
        elapsed = time.perf_counter() - start
        rate = len(events) / elapsed if elapsed > 0 else 0.0
        print(
            f"absorbed {len(events)} points of {len(dataset)} objects "
            f"in {elapsed:.2f}s ({rate:.0f} points/s); "
            f"generation {store.generation_number}, "
            f"{store.memtable_points} memtable points"
        )
    return 0


def _cmd_ingest_query(args) -> int:
    from .ingest import IngestStore

    with IngestStore.open(args.directory) as store:
        dataset = store.current_dataset()
        if len(dataset) == 0:
            print("error: the store holds no queryable trajectories",
                  file=sys.stderr)
            return 2
        source_id, query = _pick_query(args, dataset)
        if query is None:
            print(f"error: no object {source_id!r} in the store",
                  file=sys.stderr)
            return 2
        start = time.perf_counter()
        matches, stats = store.kmst(
            query, (query.t_start, query.t_end), k=args.k,
            kernels=args.kernels, filter=args.filter,
        )
        elapsed = time.perf_counter() - start
        print(
            f"query from object {source_id} over "
            f"[{query.t_start:.1f}, {query.t_end:.1f}] "
            f"(generation {store.generation_number}, "
            f"{store.memtable_points} memtable points)"
        )
        for rank, m in enumerate(matches, start=1):
            print(f"  {rank}. object {m.trajectory_id}  "
                  f"dissim={m.dissim:.4f}")
        print(
            f"{elapsed * 1000.0:.1f} ms, {stats.node_accesses} node "
            f"accesses, pruning power {stats.pruning_power:.3f}"
        )
    return 0


def _cmd_ingest_compact(args) -> int:
    from .ingest import IngestStore

    with IngestStore.open(args.directory) as store:
        number = store.compact()
        if number is None:
            print("memtable empty; nothing to compact")
        else:
            print(f"published generation {number}")
    return 0


def _cmd_ingest_info(args) -> int:
    from .ingest import IngestStore

    with IngestStore.open(args.directory) as store:
        print(json.dumps(store.info(), indent=2))
    return 0


def _cmd_experiment(args) -> int:
    if args.which == "table2":
        rows = table2(scaled_specs(0.05 * args.scale))
        print_table(
            ["dataset", "objects", "entries", "R-tree MB", "TB-tree MB"],
            [
                [r["dataset"], r["objects"], r["entries"], r["rtree_mb"],
                 r["tbtree_mb"]]
                for r in rows
            ],
            title="Table 2",
        )
        return 0
    if args.which == "quality":
        dataset = generate_trucks(
            args.trucks, samples_per_truck=120, seed=29, length_variation=0.5
        )
        points = quality_experiment(
            dataset, max_queries=args.queries, seed=5
        )
        ps = sorted({pt.p for pt in points})
        by = {(pt.measure, pt.p): pt for pt in points}
        print_table(
            ["measure"] + [f"p={p * 100:g}%" for p in ps],
            [
                [m] + [f"{by[(m, p)].failure_rate:.0%}" for p in ps]
                for m in DEFAULT_MEASURES
            ],
            title="Figure 9: false 1-MST results",
        )
        return 0
    runner = {"q1": q1_cardinality, "q2": q2_query_length, "q3": q3_k}[args.which]
    points = runner(
        samples_per_object=max(int(150 * args.scale), 20),
        num_queries=args.queries,
        page_size=512,
    )
    print_table(
        ["tree", "value", "mean ms", "pruning", "node accesses"],
        [
            [p.tree, p.value, p.mean_time_ms, p.mean_pruning_power,
             p.mean_node_accesses]
            for p in points
        ],
        title=f"Figure 10 {args.which.upper()}",
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "generate": _cmd_generate,
        "build": _cmd_build,
        "info": _cmd_info,
        "fsck": _cmd_fsck,
        "query": _cmd_query,
        "stats": _cmd_stats,
        "batch": _cmd_batch,
        "serve": _cmd_serve,
        "shard": _cmd_shard,
        "ingest": _cmd_ingest,
        "experiment": _cmd_experiment,
    }[args.command]
    try:
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
