"""Trajectory compression algorithms (TD-TR and friends)."""

from .tdtr import (
    douglas_peucker,
    synchronized_euclidean_distance,
    td_tr,
    td_tr_fraction,
    td_tr_with_radii,
    uniform_downsample,
)

__all__ = [
    "synchronized_euclidean_distance",
    "td_tr",
    "td_tr_fraction",
    "td_tr_with_radii",
    "douglas_peucker",
    "uniform_downsample",
]
