"""Trajectory compression algorithms (TD-TR and friends)."""

from .tdtr import (
    douglas_peucker,
    synchronized_euclidean_distance,
    td_tr,
    td_tr_fraction,
    uniform_downsample,
)

__all__ = [
    "synchronized_euclidean_distance",
    "td_tr",
    "td_tr_fraction",
    "douglas_peucker",
    "uniform_downsample",
]
