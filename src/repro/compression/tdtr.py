"""Trajectory compression: TD-TR (Meratnia & By [12]), spatial
Douglas-Peucker, and uniform downsampling.

TD-TR is the time-ratio top-down algorithm the paper's quality study
uses to manufacture under-sampled queries: keep the endpoints, find the
sample with the largest *Synchronized Euclidean Distance* (the distance
between the recorded position and where the object would be at that
timestamp if it moved straight between the kept endpoints), and recurse
while that error exceeds the tolerance.  In the experiments the
tolerance is ``p`` (0.1 % ... 10 %) of each trajectory's travelled
length, matching Section 5.2.
"""

from __future__ import annotations

import math

from ..exceptions import TrajectoryError
from ..trajectory import Trajectory

__all__ = [
    "synchronized_euclidean_distance",
    "td_tr",
    "td_tr_fraction",
    "td_tr_with_radii",
    "douglas_peucker",
    "uniform_downsample",
]


def synchronized_euclidean_distance(traj: Trajectory, i: int, a: int, b: int) -> float:
    """SED of sample ``i`` against the straight movement from sample
    ``a`` to sample ``b`` (all indexes into ``traj``)."""
    pa, pb, pi = traj[a], traj[b], traj[i]
    span = pb.t - pa.t
    frac = 0.0 if span <= 0.0 else (pi.t - pa.t) / span
    sx = pa.x + frac * (pb.x - pa.x)
    sy = pa.y + frac * (pb.y - pa.y)
    return math.hypot(pi.x - sx, pi.y - sy)


def td_tr(traj: Trajectory, tolerance: float) -> Trajectory:
    """Top-Down Time-Ratio compression with an absolute SED tolerance.

    Always keeps the first and last samples, so the compressed
    trajectory spans the same time window as the original.
    """
    if tolerance < 0.0:
        raise TrajectoryError(f"negative tolerance {tolerance}")
    keep = _select_indices(traj, tolerance, _sed_error)
    return Trajectory(traj.object_id, [traj[i] for i in keep])


def td_tr_fraction(traj: Trajectory, p: float) -> Trajectory:
    """TD-TR with the paper's parameterisation: tolerance = ``p`` times
    the trajectory's travelled length (``p`` = 0.001 for "0.1 %")."""
    if p < 0.0:
        raise TrajectoryError(f"negative compression parameter {p}")
    if p == 0.0:
        return traj
    return td_tr(traj, p * traj.length())


def td_tr_with_radii(
    traj: Trajectory, tolerance: float
) -> tuple[list[int], list[float]]:
    """TD-TR selection plus a certified per-segment error radius.

    Returns ``(kept, radii)`` where ``kept`` is the sorted list of kept
    sample indexes and ``radii[j]`` is the maximum SED of the samples
    dropped between ``kept[j]`` and ``kept[j+1]`` (0.0 when none were
    dropped).  Because both the original trajectory and the simplified
    polyline move linearly between samples, their distance at any time
    ``t`` is a piecewise-linear function of ``t`` whose breakpoints are
    the original sample times — so the maximum over the whole segment
    equals the maximum SED at the dropped samples, and every point of
    the original path stays within ``radii[j]`` of the simplified
    segment at the synchronized timestamp.
    """
    if tolerance < 0.0:
        raise TrajectoryError(f"negative tolerance {tolerance}")
    kept = _select_indices(traj, tolerance, _sed_error)
    radii: list[float] = []
    for a, b in zip(kept, kept[1:]):
        worst = 0.0
        for i in range(a + 1, b):
            err = synchronized_euclidean_distance(traj, i, a, b)
            if err > worst:
                worst = err
        radii.append(worst)
    return kept, radii


def douglas_peucker(traj: Trajectory, tolerance: float) -> Trajectory:
    """Classic spatial Douglas-Peucker (perpendicular distance to the
    chord, time ignored) — included for comparison with TD-TR."""
    if tolerance < 0.0:
        raise TrajectoryError(f"negative tolerance {tolerance}")
    keep = _select_indices(traj, tolerance, _perpendicular_error)
    return Trajectory(traj.object_id, [traj[i] for i in keep])


def uniform_downsample(traj: Trajectory, keep_every: int) -> Trajectory:
    """Keep every ``keep_every``-th sample (endpoints always kept)."""
    if keep_every < 1:
        raise TrajectoryError(f"keep_every must be >= 1, got {keep_every}")
    idx = list(range(0, len(traj), keep_every))
    if idx[-1] != len(traj) - 1:
        idx.append(len(traj) - 1)
    return Trajectory(traj.object_id, [traj[i] for i in idx])


# ----------------------------------------------------------------------
def _sed_error(traj: Trajectory, i: int, a: int, b: int) -> float:
    return synchronized_euclidean_distance(traj, i, a, b)


def _perpendicular_error(traj: Trajectory, i: int, a: int, b: int) -> float:
    pa, pb, pi = traj[a], traj[b], traj[i]
    dx = pb.x - pa.x
    dy = pb.y - pa.y
    norm_sq = dx * dx + dy * dy
    if norm_sq == 0.0:
        return math.hypot(pi.x - pa.x, pi.y - pa.y)
    t = ((pi.x - pa.x) * dx + (pi.y - pa.y) * dy) / norm_sq
    t = min(max(t, 0.0), 1.0)
    return math.hypot(pi.x - (pa.x + t * dx), pi.y - (pa.y + t * dy))


def _select_indices(traj: Trajectory, tolerance: float, error_fn) -> list[int]:
    """Shared top-down recursion; returns the sorted kept indexes."""
    keep = {0, len(traj) - 1}
    stack = [(0, len(traj) - 1)]
    while stack:
        a, b = stack.pop()
        if b - a < 2:
            continue
        worst_i = -1
        worst_err = -1.0
        for i in range(a + 1, b):
            err = error_fn(traj, i, a, b)
            if err > worst_err:
                worst_err = err
                worst_i = i
        if worst_err > tolerance:
            keep.add(worst_i)
            stack.append((a, worst_i))
            stack.append((worst_i, b))
    return sorted(keep)
