"""repro — Index-based Most Similar Trajectory Search.

A from-scratch Python implementation of Frentzos, Gratsias &
Theodoridis, *Index-based Most Similar Trajectory Search* (ICDE 2007):
the DISSIM spatiotemporal dissimilarity metric with its trapezoid
approximation and error bound, the OPTDISSIM / PESDISSIM /
MINDISSIMINC pruning bounds, and the best-first k-MST search algorithm
over paged 3D R-tree / TB-tree indexes — plus the competitor measures,
data generators, compression and experiment harness the paper's
evaluation needs.

Quickstart::

    from repro import RTree3D, bfmst_search, generate_gstd, make_workload

    dataset = generate_gstd(100)
    index = RTree3D()
    index.bulk_insert(dataset)
    index.finalize()

    (query, period), = make_workload(dataset, 1, query_length=0.05)
    result = bfmst_search(index, None, query, period=period, k=3)
    for m in result:
        print(m.trajectory_id, m.dissim)

For batches, open a :class:`repro.engine.QueryEngine` — it caches
MINDIST/refinement work and pins the hot index levels across queries::

    from repro.engine import QueryEngine, QueryRequest

    with QueryEngine(index, dataset) as engine:
        batch = engine.run_batch(
            [QueryRequest("mst", query, period, k=3)]
        )
"""

from .compression import (
    douglas_peucker,
    td_tr,
    td_tr_fraction,
    uniform_downsample,
)
from .datagen import (
    GSTDConfig,
    GSTDGenerator,
    TrucksConfig,
    TrucksGenerator,
    generate_gstd,
    generate_trucks,
    make_query,
    make_workload,
)
from .distance import (
    DistanceProfile,
    PartialDissim,
    discrete_frechet_distance,
    dissim,
    dissim_exact,
    distance_at,
    dtw_distance,
    edr_distance,
    edr_i_distance,
    erp_distance,
    euclidean_distance,
    distance_profile,
    lcss_distance,
    lcss_i_distance,
    ldd,
    mindissim_inc,
)
from .engine import (
    BatchResult,
    EngineConfig,
    LiveQueryEngine,
    QueryEngine,
    QueryRequest,
)
from .exceptions import (
    IndexError_,
    PageOverflowError,
    QueryError,
    ReproError,
    StorageError,
    TemporalCoverageError,
    TrajectoryError,
)
from .geometry import MBR2D, MBR3D, Point, STPoint, STSegment
from .index import RStarTree, RTree3D, STRTree, TBTree, load_index, mindist, save_index
from .ingest import IngestStore, LiveView, WriteAheadLog
from .mod import MovingObjectDatabase
from .obs import (
    MetricsRegistry,
    NoopRegistry,
    NOOP_REGISTRY,
    QueryTrace,
    query_trace,
)
from .selectivity import MSTCostEstimate, SpatioTemporalHistogram
from .search import (
    MSTMatch,
    NNInterval,
    QuerySpec,
    SearchResult,
    SearchStats,
    bfmst_browse,
    bfmst_search,
    continuous_nearest_neighbour,
    execute_spec,
    linear_scan_kmst,
    nearest_neighbours,
    range_query,
    time_relaxed_dissim,
    time_relaxed_kmst,
)
from .trajectory import (
    Trajectory,
    TrajectoryDataset,
    detect_stops,
    sampling_stats,
    speed_profile,
    read_csv,
    read_json,
    write_csv,
    write_json,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # geometry
    "Point",
    "STPoint",
    "STSegment",
    "MBR2D",
    "MBR3D",
    # trajectory model
    "Trajectory",
    "TrajectoryDataset",
    "speed_profile",
    "sampling_stats",
    "detect_stops",
    "read_csv",
    "write_csv",
    "read_json",
    "write_json",
    # metric + bounds
    "dissim",
    "dissim_exact",
    "distance_at",
    "distance_profile",
    "DistanceProfile",
    "ldd",
    "PartialDissim",
    "mindissim_inc",
    # competitors
    "lcss_distance",
    "lcss_i_distance",
    "edr_distance",
    "edr_i_distance",
    "dtw_distance",
    "erp_distance",
    "discrete_frechet_distance",
    "euclidean_distance",
    # indexes
    "RTree3D",
    "RStarTree",
    "STRTree",
    "TBTree",
    "mindist",
    "save_index",
    "load_index",
    "MovingObjectDatabase",
    # search
    "bfmst_search",
    "bfmst_browse",
    "linear_scan_kmst",
    "range_query",
    "nearest_neighbours",
    "continuous_nearest_neighbour",
    "NNInterval",
    "time_relaxed_dissim",
    "time_relaxed_kmst",
    "MSTMatch",
    "SearchStats",
    "SearchResult",
    "QuerySpec",
    "execute_spec",
    # batched query engine
    "QueryEngine",
    "EngineConfig",
    "QueryRequest",
    "BatchResult",
    # live ingestion
    "IngestStore",
    "LiveView",
    "LiveQueryEngine",
    "WriteAheadLog",
    # observability
    "MetricsRegistry",
    "NoopRegistry",
    "NOOP_REGISTRY",
    "QueryTrace",
    "query_trace",
    # selectivity estimation (future-work extension)
    "SpatioTemporalHistogram",
    "MSTCostEstimate",
    # generators & compression
    "generate_gstd",
    "generate_trucks",
    "GSTDConfig",
    "GSTDGenerator",
    "TrucksConfig",
    "TrucksGenerator",
    "make_query",
    "make_workload",
    "td_tr",
    "td_tr_fraction",
    "douglas_peucker",
    "uniform_downsample",
    # errors
    "ReproError",
    "TrajectoryError",
    "TemporalCoverageError",
    "StorageError",
    "PageOverflowError",
    "IndexError_",
    "QueryError",
]
