"""The R*-tree variant (Beckmann, Kriegel, Schneider, Seeger 1990),
adapted to the 3D trajectory-segment setting.

The paper's BFMST algorithm "can be directly applied to any member of
the R-tree family"; this module adds the family's strongest classic
member so that claim is exercised beyond the two trees the paper
evaluates.  Differences from the plain :class:`RTree3D`:

* **choose-subtree** minimises *overlap enlargement* at the level just
  above the leaves (volume enlargement higher up),
* **split** picks the axis with the smallest margin sum and the
  distribution with the least overlap (ties: least volume),
* **forced reinsertion**: the first overflow on each level per insert
  evicts the 30 % of entries farthest from the node centre and
  re-inserts them, improving storage utilisation and box quality.
"""

from __future__ import annotations

import math

from ..geometry import MBR3D
from .entry import LeafEntry
from .node import Node
from .rtree3d import RTree3D

__all__ = ["RStarTree"]

_REINSERT_FRACTION = 0.3


class RStarTree(RTree3D):
    """A paged 3D R*-tree over trajectory segments."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._reinsert_armed: set[int] = set()  # levels already reinserted
        self._in_reinsert = False
        self.reinsertions = 0  # observability

    # ------------------------------------------------------------------
    # insertion overrides
    # ------------------------------------------------------------------
    def insert_entry(self, entry: LeafEntry) -> None:
        self._reinsert_armed.clear()
        self.num_entries += 1  # reinsertions must not double-count
        self._insert_at_level(entry, level=0)

    def _insert_at_level(self, entry, level: int) -> None:
        from .node import NO_PAGE

        if self.root_page == NO_PAGE:
            root = self.new_node(level=0)
            self.root_page = root.page_id
            root.entries.append(entry)
            self.touch(root)
            return
        box = entry.mbr
        path = self._choose_path_to_level(box, level)
        node = self.read_node(path[-1])
        node.entries.append(entry)
        self.touch(node)
        self._overflow_treatment(path, box)

    def _choose_path_to_level(self, box: MBR3D, level: int) -> list[int]:
        """Descend to a node at ``level`` (0 = leaf); at the level just
        above the target, minimise overlap enlargement (R* CS2)."""
        path = [self.root_page]
        node = self.read_node(self.root_page)
        while node.level > level:
            if node.level == level + 1:
                best = self._least_overlap_child(node, box)
            else:
                best = min(
                    node.entries,
                    key=lambda e: (
                        e.mbr.enlargement(box),
                        e.mbr.volume(),
                        e.mbr.margin(),
                    ),
                )
            path.append(best.child_page)
            node = self.read_node(best.child_page)
        return path

    def _least_overlap_child(self, node: Node, box: MBR3D):
        def overlap_with_siblings(candidate_mbr: MBR3D, skip) -> float:
            total = 0.0
            for other in node.entries:
                if other is skip:
                    continue
                total += _overlap_volume(candidate_mbr, other.mbr)
            return total

        best = None
        best_key = None
        for e in node.entries:
            grown = e.mbr.union(box)
            key = (
                overlap_with_siblings(grown, e) - overlap_with_siblings(e.mbr, e),
                e.mbr.enlargement(box),
                e.mbr.volume(),
            )
            if best_key is None or key < best_key:
                best_key = key
                best = e
        assert best is not None
        return best

    def _overflow_treatment(self, path: list[int], new_box: MBR3D) -> None:
        """R* overflow: the first overflow per level per insert
        triggers forced reinsertion (which restarts insertion from the
        top, so this walk stops there); repeats and the root split."""
        depth = len(path) - 1
        while depth >= 0:
            node = self.read_node(path[depth])
            if len(node.entries) > self.capacity:
                is_root = depth == 0
                if (
                    not is_root
                    and not self._in_reinsert
                    and node.level not in self._reinsert_armed
                ):
                    self._reinsert_armed.add(node.level)
                    self._forced_reinsert(node, path[: depth + 1])
                    return  # reinsertion fixed every ancestor box
                self._split_rstar(node, path, depth)
            elif depth > 0:
                parent = self.read_node(path[depth - 1])
                self._union_child_entry(parent, node.page_id, new_box)
                self.touch(parent)
            depth -= 1

    def _forced_reinsert(self, node: Node, path: list[int]) -> None:
        """Evict the entries farthest from the node centre and insert
        them again from the top."""
        centre = node.mbr()
        cx = (centre.xmin + centre.xmax) / 2.0
        cy = (centre.ymin + centre.ymax) / 2.0
        ct = (centre.tmin + centre.tmax) / 2.0

        def dist(e) -> float:
            m = e.mbr
            return math.hypot(
                (m.xmin + m.xmax) / 2.0 - cx,
                (m.ymin + m.ymax) / 2.0 - cy,
                (m.tmin + m.tmax) / 2.0 - ct,
            )

        node.entries.sort(key=dist)
        count = max(1, int(len(node.entries) * _REINSERT_FRACTION))
        evicted = node.entries[-count:]
        node.entries = node.entries[: len(node.entries) - count]
        self.touch(node)
        # tighten ancestors exactly before re-inserting
        self._tighten_path(path)
        self.reinsertions += len(evicted)
        self._in_reinsert = True
        try:
            for e in evicted:
                # close reinsert (far-first would be list order reversed;
                # close-first empirically packs better here)
                self._insert_at_level(e, node.level)
        finally:
            self._in_reinsert = False

    def _tighten_path(self, path: list[int]) -> None:
        for depth in range(len(path) - 1, 0, -1):
            child = self.read_node(path[depth])
            parent = self.read_node(path[depth - 1])
            self._replace_child_entry(parent, child)
            self.touch(parent)

    # ------------------------------------------------------------------
    # R* split
    # ------------------------------------------------------------------
    def _split_rstar(self, node: Node, path: list[int], depth: int) -> None:
        group_a, group_b = _rstar_split(node.entries, self.min_fill)
        node.entries = group_a
        self.touch(node)
        sibling = self.new_node(node.level)
        sibling.entries = group_b
        self.touch(sibling)
        from .entry import InternalEntry

        if depth == 0:
            new_root = self.new_node(node.level + 1)
            new_root.entries = [
                InternalEntry(node.page_id, node.mbr()),
                InternalEntry(sibling.page_id, sibling.mbr()),
            ]
            self.touch(new_root)
            self.root_page = new_root.page_id
            self._after_split(node, sibling, new_root.page_id)
            return
        parent = self.read_node(path[depth - 1])
        self._replace_child_entry(parent, node)
        parent.entries.append(InternalEntry(sibling.page_id, sibling.mbr()))
        self.touch(parent)
        self._after_split(node, sibling, parent.page_id)


# ----------------------------------------------------------------------
def _overlap_volume(a: MBR3D, b: MBR3D) -> float:
    dx = min(a.xmax, b.xmax) - max(a.xmin, b.xmin)
    dy = min(a.ymax, b.ymax) - max(a.ymin, b.ymin)
    dt = min(a.tmax, b.tmax) - max(a.tmin, b.tmin)
    if dx <= 0.0 or dy <= 0.0 or dt <= 0.0:
        return 0.0
    return dx * dy * dt


def _rstar_split(entries: list, min_fill: int) -> tuple[list, list]:
    """R* topological split: choose the axis with the least margin sum,
    then the distribution with the least overlap (ties: volume)."""
    n = len(entries)
    min_fill = max(min_fill, 1)
    best_axis = None
    best_margin = math.inf
    # axis 0..5: sort keys (xmin, ymin, tmin, xmax, ymax, tmax)
    for axis in range(6):
        order = sorted(entries, key=lambda e: e.mbr.as_tuple()[axis])
        margin = 0.0
        for k in range(min_fill, n - min_fill + 1):
            margin += _group_mbr(order[:k]).margin()
            margin += _group_mbr(order[k:]).margin()
        if margin < best_margin:
            best_margin = margin
            best_axis = axis
    order = sorted(entries, key=lambda e: e.mbr.as_tuple()[best_axis])
    best_split = None
    best_key = None
    for k in range(min_fill, n - min_fill + 1):
        mbr_a = _group_mbr(order[:k])
        mbr_b = _group_mbr(order[k:])
        key = (_overlap_volume(mbr_a, mbr_b), mbr_a.volume() + mbr_b.volume())
        if best_key is None or key < best_key:
            best_key = key
            best_split = k
    assert best_split is not None
    return list(order[:best_split]), list(order[best_split:])


def _group_mbr(group: list) -> MBR3D:
    out = group[0].mbr
    for e in group[1:]:
        out = out.union(e.mbr)
    return out
