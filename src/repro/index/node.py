"""Index nodes and their page serialisation.

A node is one page worth of entries.  Leaf nodes (level 0) hold
:class:`~repro.index.entry.LeafEntry` segments, internal nodes hold
:class:`~repro.index.entry.InternalEntry` child pointers.  The TB-tree
additionally stamps each leaf with the single trajectory it bundles and
doubly links the leaves of one trajectory (``prev_leaf``/``next_leaf``).

Serialisation sits on the self-verifying v2 page format
(:mod:`repro.storage.format`): :meth:`Node.to_bytes` frames the node
payload behind a checksummed 16-byte page header, and
:meth:`Node.from_bytes` verifies the frame before parsing — corruption
surfaces as a :class:`~repro.exceptions.ChecksumError` at read time,
never as a garbage MBR.  The payload layout (little-endian) is a
32-byte node header ``kind(u8) level(u8) count(u16) pad(u32) owner(i64)
prev(i64) next(i64)`` followed by ``count`` fixed 56-byte entries.
With 4 KB pages this still yields a fanout of 72.
"""

from __future__ import annotations

import struct

from ..exceptions import IndexError_, PageOverflowError
from ..geometry import MBR3D
from ..storage.format import KIND_NODE, PAGE_HEADER_BYTES, frame_page, unframe_page
from .entry import ENTRY_BYTES, InternalEntry, LeafEntry

__all__ = [
    "Node",
    "node_capacity",
    "tb_leaf_payload_size",
    "NO_PAGE",
    "HEADER_BYTES",
    "NODE_OVERHEAD_BYTES",
]

_HEADER_FMT = struct.Struct("<BBHIqqq")
HEADER_BYTES = 32
assert _HEADER_FMT.size == HEADER_BYTES

_KIND_LEAF = 1
_KIND_INTERNAL = 2
_KIND_TB_LEAF = 3  # chained single-trajectory leaf (TB-tree)

_CHAIN_LEN_FMT = struct.Struct("<H")
_POINT_FMT = struct.Struct("<3d")

NO_PAGE = -1

#: Fixed per-page overhead: the checksummed page frame plus the node
#: header.  Everything after it is entry payload.
NODE_OVERHEAD_BYTES = PAGE_HEADER_BYTES + HEADER_BYTES


def node_capacity(page_size: int) -> int:
    """Maximum entries per node for the given page size."""
    cap = (page_size - NODE_OVERHEAD_BYTES) // ENTRY_BYTES
    if cap < 2:
        raise IndexError_(
            f"page size {page_size} too small for a node (capacity {cap})"
        )
    return cap


def tb_leaf_payload_size(entries: list) -> int:
    """Serialized byte size of a TB-tree chained leaf's entries.

    A TB leaf bundles segments of *one* trajectory in temporal order,
    so consecutive segments normally share an endpoint; each maximal
    contiguous run is stored as a point chain (``n`` segments cost
    ``n + 1`` points instead of ``2n``) — this sharing is why the
    paper's TB-tree indexes come out roughly half the 3D R-tree's
    size (Table 2).
    """
    size = 0
    prev_end = None
    for e in entries:
        s = e.segment
        if prev_end is not None and s.start == prev_end:
            size += _POINT_FMT.size  # extend the current chain
        else:
            size += _CHAIN_LEN_FMT.size + 2 * _POINT_FMT.size  # new chain
        prev_end = s.end
    return size


class Node:
    """One index node, always resident behind the buffer manager."""

    __slots__ = (
        "page_id",
        "level",
        "entries",
        "owner_id",
        "prev_leaf",
        "next_leaf",
        "chained",
    )

    def __init__(
        self,
        page_id: int,
        level: int,
        entries: list | None = None,
        owner_id: int = NO_PAGE,
        prev_leaf: int = NO_PAGE,
        next_leaf: int = NO_PAGE,
        chained: bool = False,
    ) -> None:
        self.page_id = page_id
        self.level = level
        self.entries: list = entries if entries is not None else []
        # TB-tree leaf metadata; unused (-1) for plain R-tree nodes.
        self.owner_id = owner_id
        self.prev_leaf = prev_leaf
        self.next_leaf = next_leaf
        # Chained leaves (TB-tree) use the shared-endpoint layout.
        self.chained = chained

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"internal(level={self.level})"
        return f"Node(page={self.page_id}, {kind}, entries={len(self.entries)})"

    def mbr(self) -> MBR3D:
        """Bounding box of all entries; raises on an empty node."""
        if not self.entries:
            raise IndexError_(f"node {self.page_id} is empty, no MBR")
        out = self.entries[0].mbr
        for e in self.entries[1:]:
            out = out.union(e.mbr)
        return out

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_bytes(self, page_size: int) -> bytes:
        """Serialise to a framed (checksummed) page image; the page
        file zero-pads it to ``page_size`` on write."""
        return frame_page(self.to_payload(page_size), KIND_NODE)

    def to_payload(self, page_size: int) -> bytes:
        """The raw node payload (header + entries), unframed."""
        if self.chained and self.is_leaf:
            return self._chained_payload(page_size)
        cap = node_capacity(page_size)
        if len(self.entries) > cap:
            raise PageOverflowError(
                f"node {self.page_id} holds {len(self.entries)} entries, "
                f"page capacity is {cap}"
            )
        kind = _KIND_LEAF if self.is_leaf else _KIND_INTERNAL
        header = _HEADER_FMT.pack(
            kind,
            self.level,
            len(self.entries),
            0,
            self.owner_id,
            self.prev_leaf,
            self.next_leaf,
        )
        parts = [header, b"\x00" * (HEADER_BYTES - len(header))]
        for e in self.entries:
            parts.append(e.to_bytes())
        return b"".join(parts)

    def _chained_payload(self, page_size: int) -> bytes:
        payload = tb_leaf_payload_size(self.entries)
        if NODE_OVERHEAD_BYTES + payload > page_size:
            raise PageOverflowError(
                f"chained leaf {self.page_id} payload of {payload} bytes "
                f"exceeds page size {page_size}"
            )
        header = _HEADER_FMT.pack(
            _KIND_TB_LEAF,
            self.level,
            len(self.entries),
            0,
            self.owner_id,
            self.prev_leaf,
            self.next_leaf,
        )
        parts = [header, b"\x00" * (HEADER_BYTES - len(header))]
        # Group maximal runs of endpoint-sharing segments into chains.
        chains: list[list] = []
        prev_end = None
        for e in self.entries:
            s = e.segment
            if prev_end is not None and s.start == prev_end:
                chains[-1].append(s.end)
            else:
                chains.append([s.start, s.end])
            prev_end = s.end
        for chain in chains:
            parts.append(_CHAIN_LEN_FMT.pack(len(chain) - 1))
            for p in chain:
                parts.append(_POINT_FMT.pack(p.x, p.y, p.t))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, page_id: int, data) -> "Node":
        """Parse a framed page image (``bytes`` or ``memoryview``); the
        frame is verified before any node field is trusted."""
        _kind, payload = unframe_page(data, page_id)
        return cls.from_payload(page_id, payload)

    @classmethod
    def from_payload(cls, page_id: int, data) -> "Node":
        """Parse a raw (unframed) node payload.

        This is the pre-v2 on-page layout; it stays public so the v1
        migration path (``migrate_index_v1``) can read legacy files.
        """
        if len(data) < HEADER_BYTES:
            raise IndexError_(f"page {page_id}: truncated node header")
        kind, level, count, _pad, owner, prev_leaf, next_leaf = _HEADER_FMT.unpack(
            data[: _HEADER_FMT.size]
        )
        if kind not in (_KIND_LEAF, _KIND_INTERNAL, _KIND_TB_LEAF):
            raise IndexError_(f"page {page_id}: corrupt node kind {kind}")
        if kind in (_KIND_LEAF, _KIND_TB_LEAF) and level != 0:
            raise IndexError_(f"page {page_id}: leaf with level {level}")
        if kind == _KIND_INTERNAL and level == 0:
            raise IndexError_(f"page {page_id}: internal node with level 0")
        if kind == _KIND_TB_LEAF:
            return cls._chained_from_bytes(
                page_id, data, count, owner, prev_leaf, next_leaf
            )
        need = HEADER_BYTES + count * ENTRY_BYTES
        if len(data) < need:
            raise IndexError_(
                f"page {page_id}: {count} entries do not fit the page data"
            )
        entry_cls = LeafEntry if kind == _KIND_LEAF else InternalEntry
        entries = []
        offset = HEADER_BYTES
        for _ in range(count):
            entries.append(entry_cls.from_bytes(data[offset : offset + ENTRY_BYTES]))
            offset += ENTRY_BYTES
        return cls(page_id, level, entries, owner, prev_leaf, next_leaf)

    @classmethod
    def _chained_from_bytes(
        cls, page_id, data, count, owner, prev_leaf, next_leaf
    ) -> "Node":
        from ..geometry import STPoint, STSegment

        entries: list[LeafEntry] = []
        offset = HEADER_BYTES
        while len(entries) < count:
            if offset + _CHAIN_LEN_FMT.size > len(data):
                raise IndexError_(f"page {page_id}: truncated chain header")
            (segs,) = _CHAIN_LEN_FMT.unpack_from(data, offset)
            offset += _CHAIN_LEN_FMT.size
            need = (segs + 1) * _POINT_FMT.size
            if segs == 0 or offset + need > len(data):
                raise IndexError_(f"page {page_id}: corrupt chain of {segs}")
            points = [
                STPoint(*_POINT_FMT.unpack_from(data, offset + i * _POINT_FMT.size))
                for i in range(segs + 1)
            ]
            offset += need
            for a, b in zip(points, points[1:]):
                entries.append(LeafEntry(owner, STSegment(a, b)))
        if len(entries) != count:
            raise IndexError_(
                f"page {page_id}: chained leaf decoded {len(entries)} of "
                f"{count} entries"
            )
        return cls(
            page_id, 0, entries, owner, prev_leaf, next_leaf, chained=True
        )
