"""Offline integrity checking (``repro fsck``).

Walks a persisted index — a single page file + sidecar, or a whole
shard directory — and verifies everything that can be verified without
deserialising a node: sidecar presence and version, page-count and
digest agreement, and the v2 frame (magic, version, kind, CRC,
padding) of **every page**.  All-zero pages are reported as ``free``
(a released slot that was never rewritten), not as corruption.

The result is a plain report object with per-page verdicts, so the CLI
can print it and tests can assert on it; nothing here raises on
corruption — a broken index yields a report with ``ok == False``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import StorageError
from ..storage import file_sha256, verify_page
from .persistence import _FORMAT_VERSION, _KINDS, _meta_path

__all__ = ["PageVerdict", "FsckReport", "fsck_index", "fsck_sharded", "fsck"]


@dataclass
class PageVerdict:
    """The verdict for one page: ``ok``, ``free``, or ``bad``."""

    page_id: int
    status: str
    detail: str | None = None


@dataclass
class FsckReport:
    """Everything fsck found about one page file (or, aggregated, one
    shard directory)."""

    path: str
    errors: list[str] = field(default_factory=list)
    pages: list[PageVerdict] = field(default_factory=list)
    shards: list["FsckReport"] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.errors
            and all(p.status != "bad" for p in self.pages)
            and all(s.ok for s in self.shards)
        )

    @property
    def bad_pages(self) -> list[PageVerdict]:
        return [p for p in self.pages if p.status == "bad"]

    def summary(self) -> str:
        """One line per problem (plus one for a clean bill of health)."""
        lines = []
        counts = {"ok": 0, "free": 0, "bad": 0}
        for p in self.pages:
            counts[p.status] = counts.get(p.status, 0) + 1
        if self.pages or not self.shards:
            state = "OK" if self.ok else "CORRUPT"
            lines.append(
                f"{self.path}: {state} — {counts['ok']} ok, "
                f"{counts['free']} free, {counts['bad']} bad pages"
            )
        for err in self.errors:
            lines.append(f"{self.path}: ERROR: {err}")
        for p in self.bad_pages:
            # verify_page details already name the page.
            lines.append(f"{self.path}: {p.detail}")
        for s in self.shards:
            lines.append(s.summary())
        return "\n".join(lines)


def fsck_index(path: str | Path) -> FsckReport:
    """Check one saved index (page file + ``.meta.json`` sidecar)."""
    path = Path(path)
    report = FsckReport(path=str(path))
    meta_file = _meta_path(path)

    meta: dict | None = None
    if not meta_file.exists():
        report.errors.append(f"missing metadata sidecar {meta_file.name}")
    else:
        try:
            meta = json.loads(meta_file.read_text())
        except json.JSONDecodeError as exc:
            report.errors.append(f"corrupt metadata sidecar: {exc}")
        else:
            version = meta.get("version")
            if version != _FORMAT_VERSION:
                report.errors.append(
                    f"format version {version!r} (this build reads "
                    f"version {_FORMAT_VERSION})"
                )
                meta = None
            elif meta.get("kind") not in _KINDS:
                report.errors.append(f"unknown index kind {meta.get('kind')!r}")

    if not path.exists():
        report.errors.append("missing page file")
        return report

    page_size = (meta or {}).get("page_size", 4096)
    size = path.stat().st_size
    if size % page_size != 0:
        report.errors.append(
            f"file size {size} is not a multiple of the page size "
            f"{page_size} (truncated?)"
        )
    num_pages = size // page_size
    if meta is not None:
        want = meta.get("num_pages")
        if want is not None and want != num_pages:
            report.errors.append(
                f"metadata records {want} pages, file holds {num_pages}"
            )
        digest = meta.get("pages_sha256")
        if digest is not None and file_sha256(path) != digest:
            report.errors.append("SHA-256 digest mismatch against sidecar")

    with open(path, "rb") as fh:
        for pid in range(num_pages):
            data = fh.read(page_size)
            if len(data) != page_size:
                report.pages.append(
                    PageVerdict(
                        pid, "bad", f"page {pid}: short read ({len(data)} bytes)"
                    )
                )
                break
            if not data.strip(b"\x00"):
                report.pages.append(PageVerdict(pid, "free"))
                continue
            problem = verify_page(data, pid)
            if problem is None:
                report.pages.append(PageVerdict(pid, "ok"))
            else:
                report.pages.append(PageVerdict(pid, "bad", problem))

    _fsck_signatures(path, meta, report)
    return report


def _fsck_signatures(path: Path, meta: dict | None, report: FsckReport) -> None:
    """Verify the optional signature sidecar.  Absence is fine (the
    index serves unfiltered); a sidecar that fails its CRC or binds to
    a different index is an error, because ``load_index`` would refuse
    to open the pair."""
    from ..filter import load_signatures, signature_sidecar_path

    sig_path = signature_sidecar_path(path)
    if not sig_path.exists():
        return
    binding = None
    if meta is not None:
        try:
            binding = (
                int(meta["num_nodes"]),
                int(meta["num_entries"]),
                int(meta["root_page"]),
            )
        except (KeyError, TypeError, ValueError):
            binding = None
    try:
        sigs = load_signatures(sig_path, expected_binding=binding)
    except StorageError as exc:
        report.errors.append(f"signature sidecar: {exc}")
        return
    sigs.close()


def fsck_sharded(directory: str | Path) -> FsckReport:
    """Check a shard directory: the manifest, then every shard file."""
    from ..sharding.persistence import read_manifest

    directory = Path(directory)
    report = FsckReport(path=str(directory))
    try:
        manifest = read_manifest(directory)
    except StorageError as exc:
        report.errors.append(str(exc))
        return report

    for record in manifest["shards"]:
        shard_path = directory / record["file"]
        if not shard_path.exists():
            report.errors.append(f"missing shard file {record['file']}")
            continue
        shard_report = fsck_index(shard_path)
        digest = record.get("pages_sha256")
        if digest is not None and shard_path.exists():
            if file_sha256(shard_path) != digest:
                shard_report.errors.append(
                    "SHA-256 digest mismatch against manifest"
                )
        report.shards.append(shard_report)
    return report


def fsck(path: str | Path) -> FsckReport:
    """Dispatch: a directory is checked as a shard directory, anything
    else as a single index file."""
    path = Path(path)
    if path.is_dir():
        return fsck_sharded(path)
    return fsck_index(path)
