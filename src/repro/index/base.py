"""Common machinery of the trajectory indexes.

Both the 3D R-tree and the TB-tree are R-tree-like structures over
trajectory line segments, stored node-per-page behind the LRU buffer
manager.  This module hosts the shared plumbing: node allocation and
buffered access (with access counting for the pruning-power metric),
the quadratic split of Guttman, trajectory-level insertion, range
search, and structural introspection used by the invariant tests.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..exceptions import IndexError_, TrajectoryError
from ..geometry import MBR3D
from ..storage import InMemoryPageFile, LRUBufferManager, PageFile
from ..trajectory import Trajectory, TrajectoryDataset
from .entry import InternalEntry, LeafEntry
from .node import NO_PAGE, Node, node_capacity

__all__ = ["TrajectoryIndex", "quadratic_split"]

# Generous build-time buffer: mutation through stale evicted copies is a
# correctness hazard, so building keeps the working set resident and
# finalize() shrinks the buffer to the paper's query-time policy.
_BUILD_BUFFER_PAGES = 1_000_000

MIN_FILL_FRACTION = 0.4


class TrajectoryIndex:
    """Base class of the paged trajectory indexes."""

    #: Optional :class:`repro.filter.TrajectorySignatures` sidecar —
    #: attached by :func:`repro.index.persistence.load_index` when a
    #: valid ``.sig`` file sits next to the page file.  ``None`` keeps
    #: every search running unfiltered.
    signatures = None

    def __init__(
        self,
        pagefile: PageFile | None = None,
        page_size: int = 4096,
        buffer_capacity: int = _BUILD_BUFFER_PAGES,
    ) -> None:
        self.pagefile = pagefile if pagefile is not None else InMemoryPageFile(page_size)
        self.page_size = self.pagefile.page_size
        self.capacity = node_capacity(self.page_size)
        self.min_fill = max(1, int(self.capacity * MIN_FILL_FRACTION))
        self.buffer = LRUBufferManager(self.pagefile, buffer_capacity)
        self.root_page: int = NO_PAGE
        self.num_nodes = 0
        self.num_entries = 0
        self.trajectory_ids: set[int] = set()
        self.max_speed = 0.0  # fastest indexed segment (the dataset half of V_max)
        self.node_accesses = 0  # cumulative read_node calls
        self._serializer: Callable[[Node], bytes] = lambda node: node.to_bytes(
            self.page_size
        )
        self._free_pages: list[int] = []  # recycled by deletions
        self._finalized = False

    # ------------------------------------------------------------------
    # node plumbing
    # ------------------------------------------------------------------
    def new_node(self, level: int, owner_id: int = NO_PAGE) -> Node:
        """Allocate (or recycle) a page and return its fresh (dirty,
        resident) node."""
        if self._free_pages:
            page_id = self._free_pages.pop()
        else:
            page_id = self.pagefile.allocate()
        node = Node(page_id, level, owner_id=owner_id)
        self.buffer.put(page_id, node, self._serializer)
        self.num_nodes += 1
        return node

    def release_node(self, node: Node) -> None:
        """Deallocate a node: its page goes to the free list for reuse
        by future allocations (deletions condense the tree)."""
        self.buffer.discard(node.page_id)
        self._free_pages.append(node.page_id)
        self.num_nodes -= 1
        self._on_release(node.page_id)

    def _on_release(self, page_id: int) -> None:
        """Hook for subclasses holding per-page metadata (parent maps,
        active-leaf anchors) that must not survive page recycling."""

    def delete_trajectory(self, trajectory_id: int) -> int:
        """Remove every segment of one object; returns how many were
        removed.  Concrete trees implement their own condensation."""
        raise NotImplementedError

    def _check_deletable(self, trajectory_id: int) -> None:
        if self._finalized:
            raise IndexError_("index is finalized (read-only); cannot delete")
        if trajectory_id not in self.trajectory_ids:
            raise TrajectoryError(
                f"trajectory {trajectory_id} is not indexed"
            )

    def read_node(self, page_id: int) -> Node:
        """Fetch a node through the buffer (counted as a node access)."""
        self.node_accesses += 1
        return self.buffer.get(
            page_id,
            lambda data: Node.from_bytes(page_id, data),
            self._serializer,
        )

    def touch(self, node: Node) -> None:
        """Mark a resident node as modified (write back on eviction)."""
        self.buffer.mark_dirty(node.page_id)

    @property
    def height(self) -> int:
        """Number of levels (0 when empty)."""
        if self.root_page == NO_PAGE:
            return 0
        return self.read_node(self.root_page).level + 1

    # ------------------------------------------------------------------
    # build interface
    # ------------------------------------------------------------------
    def insert_entry(self, entry: LeafEntry) -> None:
        raise NotImplementedError

    def insert(self, trajectory: Trajectory) -> None:
        """Index every line segment of ``trajectory``.

        Object ids must be integers (they are serialised as int64 in
        the leaf entries); each object may be inserted once.
        """
        if self._finalized:
            raise IndexError_("index already finalized; create a new one to insert")
        oid = trajectory.object_id
        if not isinstance(oid, int):
            raise TrajectoryError(
                f"index requires integer object ids, got {oid!r}"
            )
        if oid in self.trajectory_ids:
            raise TrajectoryError(f"trajectory {oid} already indexed")
        self.trajectory_ids.add(oid)
        for seg in trajectory.segments():
            if seg.speed > self.max_speed:
                self.max_speed = seg.speed
            self.insert_entry(LeafEntry(oid, seg))

    def bulk_insert(self, dataset: TrajectoryDataset) -> None:
        """Index a whole dataset (insertion order = dataset order)."""
        for tr in dataset:
            self.insert(tr)

    def finalize(
        self, buffer_fraction: float = 0.10, buffer_max_pages: int = 1000
    ) -> None:
        """Flush all dirty nodes and shrink the buffer to the paper's
        query-time policy (10 % of the index, at most 1000 pages).
        Further insertions are rejected."""
        self.buffer.flush(self._serializer)
        self.buffer.resize_to_fraction(buffer_fraction, buffer_max_pages)
        self._finalized = True

    def size_mb(self) -> float:
        """Index size in binary megabytes (Table 2's column)."""
        return self.pagefile.size_mb()

    # ------------------------------------------------------------------
    # queries shared by both trees
    # ------------------------------------------------------------------
    def range_search(self, box: MBR3D) -> list[LeafEntry]:
        """All leaf entries whose segment MBB intersects ``box`` — the
        classical spatiotemporal range query the same index serves."""
        out: list[LeafEntry] = []
        if self.root_page == NO_PAGE:
            return out
        stack = [self.root_page]
        while stack:
            node = self.read_node(stack.pop())
            if node.is_leaf:
                out.extend(e for e in node.entries if e.mbr.intersects(box))
            else:
                stack.extend(
                    e.child_page for e in node.entries if e.mbr.intersects(box)
                )
        return out

    # ------------------------------------------------------------------
    # introspection (tests, invariants, stats)
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[Node]:
        """Depth-first iteration over every node (root first)."""
        if self.root_page == NO_PAGE:
            return
        stack = [self.root_page]
        while stack:
            node = self.read_node(stack.pop())
            yield node
            if not node.is_leaf:
                stack.extend(e.child_page for e in node.entries)

    def leaf_entries(self) -> Iterator[LeafEntry]:
        """Every indexed segment."""
        for node in self.nodes():
            if node.is_leaf:
                yield from node.entries

    def count_nodes(self) -> int:
        """Number of nodes by traversal (must equal ``num_nodes``)."""
        return sum(1 for _ in self.nodes())

    def mbr(self) -> MBR3D:
        if self.root_page == NO_PAGE:
            raise IndexError_("empty index has no MBR")
        return self.read_node(self.root_page).mbr()

    # ------------------------------------------------------------------
    # parent-entry maintenance shared by the concrete trees
    # ------------------------------------------------------------------
    @staticmethod
    def _replace_child_entry(parent: Node, child: Node) -> None:
        """Refresh the parent's entry for ``child`` with its exact MBB."""
        for i, e in enumerate(parent.entries):
            if e.child_page == child.page_id:
                parent.entries[i] = InternalEntry(child.page_id, child.mbr())
                return
        raise IndexError_(
            f"node {parent.page_id} has no entry for child {child.page_id}"
        )

    @staticmethod
    def _union_child_entry(parent: Node, child_page: int, box: MBR3D) -> None:
        """Grow the parent's entry for ``child_page`` to cover ``box``
        (exact on insertion — subtree coverage only grows)."""
        for i, e in enumerate(parent.entries):
            if e.child_page == child_page:
                if not e.mbr.contains(box):
                    parent.entries[i] = InternalEntry(child_page, e.mbr.union(box))
                return
        raise IndexError_(
            f"node {parent.page_id} has no entry for child {child_page}"
        )


def quadratic_split(
    entries: list, capacity: int, min_fill: int
) -> tuple[list, list]:
    """Guttman's quadratic split over entries exposing ``.mbr``.

    Returns two groups, each with at least ``min_fill`` entries.
    Degenerate (zero-volume) boxes are common for trajectory segments,
    so volume comparisons fall back to margins when everything is flat.
    """
    if len(entries) < 2:
        raise IndexError_("cannot split fewer than two entries")

    # Work on raw coordinate tuples: the O(n^2) seed/next scans below
    # sit on the split hot path and must not allocate box objects.
    boxes = [e.mbr.as_tuple() for e in entries]

    def measure(xmin, ymin, tmin, xmax, ymax, tmax) -> float:
        vol = (xmax - xmin) * (ymax - ymin) * (tmax - tmin)
        if vol > 0.0:
            return vol
        return ((xmax - xmin) + (ymax - ymin) + (tmax - tmin)) * 1e-12

    def union_measure(a, b) -> float:
        return measure(
            a[0] if a[0] < b[0] else b[0],
            a[1] if a[1] < b[1] else b[1],
            a[2] if a[2] < b[2] else b[2],
            a[3] if a[3] > b[3] else b[3],
            a[4] if a[4] > b[4] else b[4],
            a[5] if a[5] > b[5] else b[5],
        )

    def union(a, b):
        return (
            a[0] if a[0] < b[0] else b[0],
            a[1] if a[1] < b[1] else b[1],
            a[2] if a[2] < b[2] else b[2],
            a[3] if a[3] > b[3] else b[3],
            a[4] if a[4] > b[4] else b[4],
            a[5] if a[5] > b[5] else b[5],
        )

    sizes = [measure(*b) for b in boxes]

    # PickSeeds: the pair wasting the most space when grouped.
    n = len(boxes)
    best_pair = (0, 1)
    best_waste = -float("inf")
    for i in range(n):
        bi = boxes[i]
        si = sizes[i]
        for j in range(i + 1, n):
            waste = union_measure(bi, boxes[j]) - si - sizes[j]
            if waste > best_waste:
                best_waste = waste
                best_pair = (i, j)
    i, j = best_pair
    group_a = [entries[i]]
    group_b = [entries[j]]
    box_a = boxes[i]
    box_b = boxes[j]
    rest = [(entries[k], boxes[k]) for k in range(n) if k not in (i, j)]

    while rest:
        # Force-assign when a group must take everything left to reach
        # the minimum fill.
        if len(group_a) + len(rest) <= min_fill:
            group_a.extend(e for e, _b in rest)
            break
        if len(group_b) + len(rest) <= min_fill:
            group_b.extend(e for e, _b in rest)
            break
        # PickNext: the entry with the strongest preference.
        meas_a = measure(*box_a)
        meas_b = measure(*box_b)
        best_idx = 0
        best_diff = -1.0
        best_da = best_db = 0.0
        for k, (_e, b) in enumerate(rest):
            da = union_measure(box_a, b) - meas_a
            db = union_measure(box_b, b) - meas_b
            diff = da - db
            if diff < 0.0:
                diff = -diff
            if diff > best_diff:
                best_diff = diff
                best_idx = k
                best_da = da
                best_db = db
        e, b = rest.pop(best_idx)
        if best_da < best_db or (best_da == best_db and len(group_a) <= len(group_b)):
            group_a.append(e)
            box_a = union(box_a, b)
        else:
            group_b.append(e)
            box_b = union(box_b, b)
    return group_a, group_b
