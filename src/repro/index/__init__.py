"""R-tree-family trajectory indexes over the paged storage layer."""

from .base import TrajectoryIndex, quadratic_split
from .entry import ENTRY_BYTES, InternalEntry, LeafEntry
from .fsck import FsckReport, PageVerdict, fsck, fsck_index, fsck_sharded
from .mindist import make_mindist_batch, mindist, mindist_batch, mindist_batch_python
from .node import NO_PAGE, NODE_OVERHEAD_BYTES, Node, node_capacity
from .persistence import load_index, migrate_index_v1, save_index
from .rstar import RStarTree
from .rtree3d import RTree3D
from .strtree import STRTree
from .tbtree import TBTree
from .traversal import best_first_nodes

__all__ = [
    "TrajectoryIndex",
    "quadratic_split",
    "LeafEntry",
    "InternalEntry",
    "ENTRY_BYTES",
    "Node",
    "NO_PAGE",
    "node_capacity",
    "NODE_OVERHEAD_BYTES",
    "RTree3D",
    "RStarTree",
    "STRTree",
    "TBTree",
    "mindist",
    "mindist_batch",
    "mindist_batch_python",
    "make_mindist_batch",
    "best_first_nodes",
    "save_index",
    "load_index",
    "migrate_index_v1",
    "fsck",
    "fsck_index",
    "fsck_sharded",
    "FsckReport",
    "PageVerdict",
]
