"""R-tree-family trajectory indexes over the paged storage layer."""

from .base import TrajectoryIndex, quadratic_split
from .entry import ENTRY_BYTES, InternalEntry, LeafEntry
from .mindist import mindist
from .node import NO_PAGE, Node, node_capacity
from .persistence import load_index, save_index
from .rstar import RStarTree
from .rtree3d import RTree3D
from .strtree import STRTree
from .tbtree import TBTree
from .traversal import best_first_nodes

__all__ = [
    "TrajectoryIndex",
    "quadratic_split",
    "LeafEntry",
    "InternalEntry",
    "ENTRY_BYTES",
    "Node",
    "NO_PAGE",
    "node_capacity",
    "RTree3D",
    "RStarTree",
    "STRTree",
    "TBTree",
    "mindist",
    "best_first_nodes",
    "save_index",
    "load_index",
]
