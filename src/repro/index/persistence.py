"""Saving and loading indexes — crash-safe, self-verifying (v2).

An index on disk is a page file (every page framed and checksummed by
:mod:`repro.storage.format`) plus a JSON metadata sidecar
(``<path>.meta.json``) carrying the tree kind, root page, counters,
``max_speed`` for V_max, the page count and a SHA-256 digest of the
page file.

Persistence is *atomic*: both files are written to temporaries in the
destination directory, fsynced, and published with ``os.replace``; the
metadata sidecar is committed last, so it acts as the commit point — a
crash mid-save leaves either the complete old state or the complete
new state, never a torn index.  ``load_index`` reopens the pair behind
a chosen backend (``"disk"`` or the read-only zero-copy ``"mmap"``)
and returns a *finalized* (query-only) index.

v1 files (unframed pages, ``"version": 1`` sidecars) are rejected with
an error naming the mismatch; :func:`migrate_index_v1` rewrites them
in place-adjacent fashion into the v2 format.

The TB-tree's per-trajectory leaf-chain anchors are persisted too, so
``trajectory_segments`` keeps working on a loaded tree.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..exceptions import IndexError_, StorageError
from ..storage import (
    DiskPageFile,
    atomic_write_bytes,
    file_sha256,
    open_pagefile,
)
from .base import TrajectoryIndex
from .node import Node
from .rstar import RStarTree
from .rtree3d import RTree3D
from .strtree import STRTree
from .tbtree import TBTree

__all__ = ["save_index", "load_index", "migrate_index_v1"]

_FORMAT_VERSION = 2

_KINDS = {
    "rtree": RTree3D,
    "rstar": RStarTree,
    "tbtree": TBTree,
    "strtree": STRTree,
}

#: Backends ``load_index`` accepts (building in memory and then loading
#: from it makes no sense; ``"memory"`` is deliberately absent).
_LOAD_BACKENDS = ("disk", "mmap")


def _kind_of(index: TrajectoryIndex) -> str:
    # Subclass order matters: STRTree and RStarTree are RTree3Ds.
    if isinstance(index, STRTree):
        return "strtree"
    if isinstance(index, RStarTree):
        return "rstar"
    if isinstance(index, TBTree):
        return "tbtree"
    if isinstance(index, RTree3D):
        return "rtree"
    raise IndexError_(f"cannot persist index of type {type(index).__name__}")


def _meta_path(path: Path) -> Path:
    return path.with_name(path.name + ".meta.json")


def _build_meta(index: TrajectoryIndex, num_pages: int, digest: str) -> dict:
    meta = {
        "version": _FORMAT_VERSION,
        "kind": _kind_of(index),
        "page_size": index.page_size,
        "num_pages": num_pages,
        "pages_sha256": digest,
        "root_page": index.root_page,
        "num_nodes": index.num_nodes,
        "num_entries": index.num_entries,
        "max_speed": index.max_speed,
        "trajectory_ids": sorted(index.trajectory_ids),
    }
    if isinstance(index, TBTree):
        meta["active_leaf"] = {
            str(tid): page for tid, page in index._active_leaf.items()
        }
    return meta


def save_index(
    index: TrajectoryIndex, path: str | Path, *, signatures: bool = False
) -> dict:
    """Atomically write the index's pages and metadata next to each
    other; returns the metadata dict (the sharding layer embeds it in
    its manifest).

    The pages land in a temporary file first, reach stable storage via
    fsync, and are published with an atomic rename; the metadata
    sidecar — the commit point — goes last, the same way.  The index is
    flushed first and stays usable afterwards.

    With ``signatures=True`` a trajectory-signature sidecar
    (``<path>.sig``, see :mod:`repro.filter`) is built and committed
    after the metadata: the sidecar is an accelerator, never part of
    the commit point, so a crash between the two leaves a valid index
    that simply serves unfiltered.  Empty indexes get no sidecar.
    """
    path = Path(path)
    if path.exists():
        raise StorageError(f"{path} already exists; refusing to overwrite")
    index.buffer.flush(index._serializer)
    tmp = path.with_name(path.name + ".tmp")
    try:
        # DiskPageFile.close() is durable (flush + fsync) and the
        # rename in commit_file publishes the complete file only.
        from ..storage import commit_file

        with DiskPageFile(tmp, page_size=index.page_size) as dst:
            for pid in range(index.pagefile.num_pages):
                dst.allocate()
                dst.write(pid, index.pagefile.read(pid))
            num_pages = dst.num_pages
        commit_file(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    meta = _build_meta(index, num_pages, file_sha256(path))
    atomic_write_bytes(_meta_path(path), json.dumps(meta).encode("ascii"))
    if signatures and index.num_entries > 0:
        from ..filter import build_signatures, signature_sidecar_path
        from ..filter import write_signatures as _write_sigs

        meta["signatures"] = _write_sigs(
            build_signatures(index), signature_sidecar_path(path)
        )
    return meta


def _read_meta(meta_file: Path) -> dict:
    if not meta_file.exists():
        raise StorageError(f"missing metadata sidecar {meta_file}")
    try:
        meta = json.loads(meta_file.read_text())
    except json.JSONDecodeError as exc:
        raise StorageError(f"{meta_file}: corrupt metadata: {exc}") from exc
    version = meta.get("version")
    if version == 1:
        raise StorageError(
            f"{meta_file}: this is a v1 index file; this build reads "
            f"format version {_FORMAT_VERSION}.  Migrate it with "
            f"repro.index.migrate_index_v1 (or rebuild from the source "
            f"dataset) — see docs/STORAGE.md"
        )
    if version != _FORMAT_VERSION:
        raise StorageError(
            f"{meta_file}: unsupported format version {version!r} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    kind = meta.get("kind")
    if kind not in _KINDS:
        raise StorageError(f"{meta_file}: unknown index kind {kind!r}")
    return meta


def load_index(
    path: str | Path,
    buffer_fraction: float = 0.10,
    buffer_max_pages: int = 1000,
    *,
    backend: str = "disk",
    verify: bool = False,
) -> TrajectoryIndex:
    """Reopen a saved index for querying (read-only).

    ``backend`` selects the page store: ``"disk"`` (buffered file I/O)
    or ``"mmap"`` (zero-copy read-only serving).  With ``verify=True``
    the page file's SHA-256 is checked against the metadata digest
    before the index is opened — full-file verification, as opposed to
    the per-page checksums that always guard individual reads.
    """
    if backend not in _LOAD_BACKENDS:
        raise StorageError(
            f"unknown load backend {backend!r}; expected one of "
            f"{list(_LOAD_BACKENDS)}"
        )
    path = Path(path)
    meta = _read_meta(_meta_path(path))
    if not path.exists():
        raise StorageError(f"missing page file {path}")

    size = path.stat().st_size
    page_size = meta["page_size"]
    if size % page_size != 0:
        raise StorageError(
            f"{path}: size {size} is not a multiple of the page size "
            f"{page_size} — the file is truncated or corrupt"
        )
    num_pages = meta.get("num_pages")
    if num_pages is not None and size != num_pages * page_size:
        raise StorageError(
            f"{path}: {size // page_size} pages on disk, metadata "
            f"records {num_pages} — the file is truncated or corrupt"
        )
    if verify:
        digest = meta.get("pages_sha256")
        if digest is not None and file_sha256(path) != digest:
            raise StorageError(
                f"{path}: SHA-256 digest does not match the metadata "
                f"sidecar — the page file was modified after save"
            )

    pagefile = open_pagefile(backend, path, page_size=page_size)
    index = _KINDS[meta["kind"]](pagefile=pagefile)
    index.root_page = meta["root_page"]
    index.num_nodes = meta["num_nodes"]
    index.num_entries = meta["num_entries"]
    index.max_speed = meta["max_speed"]
    index.trajectory_ids = set(meta["trajectory_ids"])
    if meta["kind"] == "tbtree" and "active_leaf" in meta:
        index._active_leaf = {
            int(tid): page for tid, page in meta["active_leaf"].items()
        }
    index.buffer.resize_to_fraction(buffer_fraction, buffer_max_pages)
    index._finalized = True

    from ..filter import load_signatures, signature_sidecar_path

    sig_path = signature_sidecar_path(path)
    if sig_path.exists():
        # A corrupt or mismatched sidecar is a storage fault, not a
        # soft miss: serving unfiltered would silently change the
        # performance contract, so the load fails loudly (delete the
        # sidecar to serve unfiltered).
        index.signatures = load_signatures(
            sig_path,
            expected_binding=(
                index.num_nodes,
                index.num_entries,
                index.root_page,
            ),
        )
    return index


def migrate_index_v1(src: str | Path, dst: str | Path) -> dict:
    """Rewrite a v1 index (raw unframed pages) into the v2 format.

    Reads the v1 pages with the legacy parser
    (:meth:`~repro.index.node.Node.from_payload`), re-serialises every
    node behind the checksummed v2 frame, and writes ``dst`` (pages +
    sidecar) with the same atomic protocol as :func:`save_index`.
    All-zero pages (freed, never-rewritten slots) are carried over
    verbatim.  Returns the new metadata dict.
    """
    src, dst = Path(src), Path(dst)
    meta_file = _meta_path(src)
    if not meta_file.exists():
        raise StorageError(f"missing metadata sidecar {meta_file}")
    try:
        meta = json.loads(meta_file.read_text())
    except json.JSONDecodeError as exc:
        raise StorageError(f"{meta_file}: corrupt metadata: {exc}") from exc
    if meta.get("version") != 1:
        raise StorageError(
            f"{meta_file}: migration expects a v1 index, found version "
            f"{meta.get('version')!r}"
        )
    if meta.get("kind") not in _KINDS:
        raise StorageError(f"{meta_file}: unknown index kind {meta.get('kind')!r}")
    if not src.exists():
        raise StorageError(f"missing page file {src}")
    if dst.exists():
        raise StorageError(f"{dst} already exists; refusing to overwrite")

    from ..exceptions import PageOverflowError
    from ..storage import commit_file

    page_size = meta["page_size"]
    tmp = dst.with_name(dst.name + ".tmp")
    try:
        with DiskPageFile(src, page_size=page_size) as old, DiskPageFile(
            tmp, page_size=page_size
        ) as new:
            for pid in range(old.num_pages):
                raw = old.read(pid)
                new.allocate()
                if bytes(raw).strip(b"\x00"):
                    node = Node.from_payload(pid, raw)
                    try:
                        new.write(pid, node.to_bytes(page_size))
                    except PageOverflowError as exc:
                        # A v1 page could pack 16 more payload bytes
                        # than the framed format leaves room for.
                        raise StorageError(
                            f"{src}: page {pid} is packed too tightly "
                            f"to fit behind the v2 page frame ({exc}); "
                            f"rebuild this index from the source "
                            f"dataset instead of migrating"
                        ) from exc
            num_pages = new.num_pages
        commit_file(tmp, dst)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    new_meta = dict(meta)
    new_meta["version"] = _FORMAT_VERSION
    new_meta["num_pages"] = num_pages
    new_meta["pages_sha256"] = file_sha256(dst)
    atomic_write_bytes(_meta_path(dst), json.dumps(new_meta).encode("ascii"))
    return new_meta
