"""Saving and loading indexes.

An index is a page file plus a handful of metadata (tree kind, root
page, counters, ``max_speed`` for V_max).  ``save_index`` copies the
pages into a :class:`~repro.storage.DiskPageFile` and writes the
metadata as a JSON sidecar (``<path>.meta.json``); ``load_index``
reopens both and returns a *finalized* (query-only) index — further
insertions are rejected, exactly like after
:meth:`~repro.index.base.TrajectoryIndex.finalize`.

The TB-tree's per-trajectory leaf-chain anchors are persisted too, so
``trajectory_segments`` keeps working on a loaded tree.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..exceptions import IndexError_, StorageError
from ..storage import DiskPageFile
from .base import TrajectoryIndex
from .rstar import RStarTree
from .rtree3d import RTree3D
from .strtree import STRTree
from .tbtree import TBTree

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 1

_KINDS = {
    "rtree": RTree3D,
    "rstar": RStarTree,
    "tbtree": TBTree,
    "strtree": STRTree,
}


def _kind_of(index: TrajectoryIndex) -> str:
    # Subclass order matters: STRTree and RStarTree are RTree3Ds.
    if isinstance(index, STRTree):
        return "strtree"
    if isinstance(index, RStarTree):
        return "rstar"
    if isinstance(index, TBTree):
        return "tbtree"
    if isinstance(index, RTree3D):
        return "rtree"
    raise IndexError_(f"cannot persist index of type {type(index).__name__}")


def _meta_path(path: Path) -> Path:
    return path.with_name(path.name + ".meta.json")


def save_index(index: TrajectoryIndex, path: str | Path) -> None:
    """Write the index's pages and metadata next to each other.

    The index is flushed first; it stays usable afterwards.
    """
    path = Path(path)
    if path.exists():
        raise StorageError(f"{path} already exists; refusing to overwrite")
    index.buffer.flush(index._serializer)
    with DiskPageFile(path, page_size=index.page_size) as dst:
        for pid in range(index.pagefile.num_pages):
            dst.allocate()
            dst.write(pid, index.pagefile.read(pid))
    meta = {
        "version": _FORMAT_VERSION,
        "kind": _kind_of(index),
        "page_size": index.page_size,
        "root_page": index.root_page,
        "num_nodes": index.num_nodes,
        "num_entries": index.num_entries,
        "max_speed": index.max_speed,
        "trajectory_ids": sorted(index.trajectory_ids),
    }
    if isinstance(index, TBTree):
        meta["active_leaf"] = {
            str(tid): page for tid, page in index._active_leaf.items()
        }
    _meta_path(path).write_text(json.dumps(meta))


def load_index(
    path: str | Path,
    buffer_fraction: float = 0.10,
    buffer_max_pages: int = 1000,
) -> TrajectoryIndex:
    """Reopen a saved index for querying (read-only)."""
    path = Path(path)
    meta_file = _meta_path(path)
    if not meta_file.exists():
        raise StorageError(f"missing metadata sidecar {meta_file}")
    try:
        meta = json.loads(meta_file.read_text())
    except json.JSONDecodeError as exc:
        raise StorageError(f"{meta_file}: corrupt metadata: {exc}") from exc
    if meta.get("version") != _FORMAT_VERSION:
        raise StorageError(
            f"{meta_file}: unsupported format version {meta.get('version')}"
        )
    kind = meta.get("kind")
    if kind not in _KINDS:
        raise StorageError(f"{meta_file}: unknown index kind {kind!r}")

    pagefile = DiskPageFile(path, page_size=meta["page_size"])
    index = _KINDS[kind](pagefile=pagefile)
    index.root_page = meta["root_page"]
    index.num_nodes = meta["num_nodes"]
    index.num_entries = meta["num_entries"]
    index.max_speed = meta["max_speed"]
    index.trajectory_ids = set(meta["trajectory_ids"])
    if kind == "tbtree" and "active_leaf" in meta:
        index._active_leaf = {
            int(tid): page for tid, page in meta["active_leaf"].items()
        }
    index.buffer.resize_to_fraction(buffer_fraction, buffer_max_pages)
    index._finalized = True
    return index
