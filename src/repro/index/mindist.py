"""MINDIST between a query trajectory and an index node (from [6]).

``MINDIST(Q, N)`` is the minimum, over the time interval where the
query period, the query trajectory and the node's temporal extent all
overlap, of the spatial distance between the (interpolated) query
position and the node's spatial bounding rectangle.  It lower-bounds
the distance between the query and *any* segment stored under the node
during that interval, which is what Definitions 5-6 rely on.

Computed exactly: each query segment contributes the minimum of a
piecewise-quadratic (see
:func:`repro.geometry.segment.min_moving_point_rect_distance`).
"""

from __future__ import annotations

import math

from ..geometry import MBR3D, min_moving_point_rect_distance
from ..obs import state as _obs
from ..trajectory import Trajectory

__all__ = ["mindist"]


def mindist(
    query: Trajectory,
    box: MBR3D,
    t_start: float,
    t_end: float,
) -> float | None:
    """MINDIST(Q, N) over the query period ``[t_start, t_end]``.

    Returns ``None`` when the node's temporal extent does not intersect
    the (query-period-clipped) query lifetime — such nodes hold no
    segment relevant to the query and are skipped by the search
    (Figure 7, line 33).
    """
    if _obs.ACTIVE is not None:
        _obs.ACTIVE.registry.inc("index.mindist_evaluations")
    lo = max(box.tmin, t_start, query.t_start)
    hi = min(box.tmax, t_end, query.t_end)
    if lo > hi:
        return None
    rect = box.spatial
    if lo == hi:
        return rect.mindist_to_point(query.position_at(lo))
    best = math.inf
    for seg in query.segments_overlapping(lo, hi):
        d = min_moving_point_rect_distance(seg, rect, lo, hi)
        if d < best:
            best = d
            if best == 0.0:
                break
    return best
