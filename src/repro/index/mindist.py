"""MINDIST between a query trajectory and an index node (from [6]).

``MINDIST(Q, N)`` is the minimum, over the time interval where the
query period, the query trajectory and the node's temporal extent all
overlap, of the spatial distance between the (interpolated) query
position and the node's spatial bounding rectangle.  It lower-bounds
the distance between the query and *any* segment stored under the node
during that interval, which is what Definitions 5-6 rely on.

Computed exactly: each query segment contributes the minimum of a
piecewise-quadratic (see
:func:`repro.geometry.segment.min_moving_point_rect_distance`).
"""

from __future__ import annotations

import math
from typing import Sequence

from ..distance import kernels as _kernels
from ..geometry import MBR3D, min_moving_point_rect_distance
from ..obs import state as _obs
from ..trajectory import Trajectory

__all__ = [
    "mindist",
    "mindist_batch",
    "mindist_batch_python",
    "make_mindist_batch",
]


def mindist(
    query: Trajectory,
    box: MBR3D,
    t_start: float,
    t_end: float,
) -> float | None:
    """MINDIST(Q, N) over the query period ``[t_start, t_end]``.

    Returns ``None`` when the node's temporal extent does not intersect
    the (query-period-clipped) query lifetime — such nodes hold no
    segment relevant to the query and are skipped by the search
    (Figure 7, line 33).
    """
    if _obs.ACTIVE is not None:
        _obs.ACTIVE.registry.inc("index.mindist_evaluations")
    lo = max(box.tmin, t_start, query.t_start)
    hi = min(box.tmax, t_end, query.t_end)
    if lo > hi:
        return None
    rect = box.spatial
    if lo == hi:
        return rect.mindist_to_point(query.position_at(lo))
    best = math.inf
    for seg in query.segments_overlapping(lo, hi):
        d = min_moving_point_rect_distance(seg, rect, lo, hi)
        if d < best:
            best = d
            if best == 0.0:
                break
    return best


def mindist_batch_python(
    query: Trajectory,
    boxes: Sequence[MBR3D],
    t_start: float,
    t_end: float,
) -> list[float | None]:
    """Loop-based reference batch: one scalar :func:`mindist` per box."""
    return [mindist(query, box, t_start, t_end) for box in boxes]


def mindist_batch(
    query: Trajectory,
    boxes: Sequence[MBR3D],
    t_start: float,
    t_end: float,
) -> list[float | None]:
    """MINDIST of the query against many node-entry MBBs at once.

    Vectorised equivalent of calling :func:`mindist` per box — this is
    what node expansion does: one batch per dequeued internal node.
    All overlapping (query segment, box) pairs are evaluated in a
    handful of numpy passes; per pair the piecewise-quadratic minimum
    uses the same fixed candidate set as
    :func:`~repro.geometry.segment.min_moving_point_rect_distance`
    (breakpoints padded to six slots, vertex of each adjacent piece),
    so the values match the scalar path bit for bit.
    """
    np = _kernels._numpy()
    reg = _obs.ACTIVE.registry if _obs.ACTIVE is not None else None
    if reg is not None:
        reg.inc("index.mindist_batched")
        reg.inc("index.mindist_evaluations", len(boxes))

    cols = query.columns()
    qt_buf = cols.t
    n = len(qt_buf)
    q_lo = qt_buf[0]
    q_hi = qt_buf[-1]

    results: list[float | None] = [None] * len(boxes)
    if not len(boxes):
        return results
    boxes = list(boxes)
    qt = cols.t_view()
    qx = cols.x_view()
    qy = cols.y_view()

    # Vectorised overlap filter: boxes whose temporal extent misses the
    # (query-period-clipped) query lifetime stay None, like the scalar
    # path's early return.
    tmin = np.array([b.tmin for b in boxes])
    tmax = np.array([b.tmax for b in boxes])
    lo = np.maximum(tmin, max(t_start, q_lo))
    hi = np.minimum(tmax, min(t_end, q_hi))
    order = np.nonzero(lo <= hi)[0]
    if not order.size:
        return results
    ord_list = order.tolist()
    lo = lo[order]
    hi = hi[order]
    sel = [boxes[j] for j in ord_list]

    # Exactly the segments Trajectory.segments_overlapping yields
    # (every k in the range has ts <= hi and te >= lo), plus the
    # covering segment(s) when the window is a single instant;
    # searchsorted == bisect on the same buffer.
    k0a = np.maximum(np.searchsorted(qt, lo, side="left") - 1, 0)
    k1a = np.minimum(np.searchsorted(qt, hi, side="right") - 1, n - 2)

    # Expand per-box rows to per-(segment, box) pairs without a Python
    # inner loop: box attributes repeat by their segment count, and the
    # pair's segment index is its offset inside the box's group.
    counts = k1a - k0a + 1
    starts = np.concatenate(([0], np.cumsum(counts[:-1])))
    total = int(starts[-1] + counts[-1])
    k = k0a.repeat(counts) + (np.arange(total) - starts.repeat(counts))

    sts = qt[k]
    ste = qt[k + 1]
    sx0 = qx[k]
    sxe = qx[k + 1]
    sy0 = qy[k]
    sye = qy[k + 1]
    p_lo = lo.repeat(counts)
    p_hi = hi.repeat(counts)
    xmin = np.array([b.xmin for b in sel]).repeat(counts)
    ymin = np.array([b.ymin for b in sel]).repeat(counts)
    xmax = np.array([b.xmax for b in sel]).repeat(counts)
    ymax = np.array([b.ymax for b in sel]).repeat(counts)
    # Pathological segments (subnormal durations) overflow the velocity
    # to inf and turn positions into nan, exactly like the scalar code
    # — which warns for neither, so neither do we.  The scalar
    # comparison-based clearance treats a nan position as "inside the
    # rectangle" (both sides compare False -> clearance 0); np.fmax
    # reproduces that, where np.maximum would propagate the nan.
    err = np.errstate(divide="ignore", over="ignore", invalid="ignore")
    with err:
        wlo = np.maximum(sts, p_lo)
        whi = np.minimum(ste, p_hi)
        dur = ste - sts
        vx = (sxe - sx0) / dur
        vy = (sye - sy0) / dur
        span = whi - wlo
        instant = span == 0.0
        has_instant = bool(instant.any())

        # Moving pairs: breakpoints where a coordinate crosses a
        # rectangle side, padded with 0.0 to a fixed six-slot row (the
        # padding sorts into a zero prefix; duplicate taus yield
        # zero-length pieces whose vertex test below cannot fire, so
        # the candidate set is unchanged).  The four side crossings are
        # one stacked elementwise pass.
        x0 = sx0 + vx * (wlo - sts)
        y0 = sy0 + vy * (wlo - sts)
        taus = np.zeros((len(k), 6))
        taus[:, 1] = span
        coord0s = np.stack((x0, x0, y0, y0))
        side_vs = np.stack((vx, vx, vy, vy))
        sides = np.stack((xmin, xmax, ymin, ymax))
        tau = (sides - coord0s) / side_vs
        ok = (side_vs != 0.0) & (tau > 0.0) & (tau < span)
        taus[:, 2:] = np.where(ok, tau, 0.0).T
        taus.sort(axis=1)

        def dist_sq(tau):
            posx = x0[:, None] + vx[:, None] * tau
            posy = y0[:, None] + vy[:, None] * tau
            dxv = np.fmax(np.fmax(xmin[:, None] - posx, 0.0), posx - xmax[:, None])
            dyv = np.fmax(np.fmax(ymin[:, None] - posy, 0.0), posy - ymax[:, None])
            return dxv * dxv + dyv * dyv

        # Vertex of the quadratic on each (non-empty) piece, located
        # from the clearance value/slope at the midpoint.  Invalid
        # vertices fall back to tau = 0.0, which the breakpoint rows
        # already cover, so one dist_sq pass scores breakpoints and
        # vertices together without changing the candidate set.
        ta = taus[:, :-1]
        tb = taus[:, 1:]
        mid = (ta + tb) / 2.0
        posx = x0[:, None] + vx[:, None] * mid
        posy = y0[:, None] + vy[:, None] * mid
        below_x = posx < xmin[:, None]
        above_x = posx > xmax[:, None]
        below_y = posy < ymin[:, None]
        above_y = posy > ymax[:, None]
        dxv = np.where(below_x, xmin[:, None] - posx, np.where(above_x, posx - xmax[:, None], 0.0))
        dxs = np.where(below_x, -vx[:, None], np.where(above_x, vx[:, None], 0.0))
        dyv = np.where(below_y, ymin[:, None] - posy, np.where(above_y, posy - ymax[:, None], 0.0))
        dys = np.where(below_y, -vy[:, None], np.where(above_y, vy[:, None], 0.0))
        a2 = dxs * dxs + dys * dys
        vertex = mid - (dxv * dxs + dyv * dys) / a2
        valid = (a2 > 0.0) & (ta < vertex) & (vertex < tb)
        cand = np.concatenate((taus, np.where(valid, vertex, 0.0)), axis=1)
        best_sq = dist_sq(cand).min(axis=1)

        pair_dist = np.sqrt(best_sq)
        if has_instant:
            # Boundary-touching pairs collapse to a single instant:
            # plain point-to-rect distance at the (exact-endpoint)
            # position.
            frac = (wlo - sts) / dur
            px = np.where(wlo == sts, sx0, np.where(wlo == ste, sxe, sx0 + frac * (sxe - sx0)))
            py = np.where(wlo == sts, sy0, np.where(wlo == ste, sye, sy0 + frac * (sye - sy0)))
            pdx = np.maximum(np.maximum(xmin - px, 0.0), px - xmax)
            pdy = np.maximum(np.maximum(ymin - py, 0.0), py - ymax)
            pair_dist = np.where(instant, np.hypot(pdx, pdy), pair_dist)
        box_best = np.minimum.reduceat(pair_dist, starts)
    for j, d in zip(ord_list, box_best.tolist()):
        results[j] = d
    return results


def make_mindist_batch(mode: str = "auto"):
    """The batched MINDIST implementation for ``mode``
    (``"auto" | "numpy" | "python"``)."""
    if _kernels.resolve_kernels(mode) == "numpy":
        return mindist_batch
    return mindist_batch_python
