"""The 3D R-tree over trajectory segments (Theodoridis et al. [19]).

Time is the third axis: every line segment is inserted with its (x, y, t)
bounding box using Guttman insertion (least volume enlargement
choose-subtree, quadratic split).  An STR bulk-loading path is provided
as an extension for building large indexes quickly.
"""

from __future__ import annotations

import math

from ..exceptions import IndexError_
from ..geometry import MBR3D
from .base import TrajectoryIndex, quadratic_split
from .entry import InternalEntry, LeafEntry
from .node import NO_PAGE, Node

__all__ = ["RTree3D"]


class RTree3D(TrajectoryIndex):
    """A paged 3D R-tree with quadratic-split insertion."""

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert_entry(self, entry: LeafEntry) -> None:
        if self.root_page == NO_PAGE:
            root = self.new_node(level=0)
            self.root_page = root.page_id
            root.entries.append(entry)
            self.touch(root)
            self.num_entries += 1
            return
        path = self._choose_path(entry.mbr)
        leaf = self.read_node(path[-1])
        leaf.entries.append(entry)
        self.touch(leaf)
        self.num_entries += 1
        self._propagate(path, entry.mbr)

    def _choose_path(self, box: MBR3D) -> list[int]:
        """Page ids from the root down to the chosen leaf, picking the
        child needing the least volume enlargement (ties: smaller
        volume, then smaller margin)."""
        path = [self.root_page]
        node = self.read_node(self.root_page)
        while not node.is_leaf:
            best = None
            best_key = None
            for e in node.entries:
                key = (
                    e.mbr.enlargement(box),
                    e.mbr.volume(),
                    e.mbr.margin(),
                )
                if best_key is None or key < best_key:
                    best_key = key
                    best = e
            assert best is not None
            path.append(best.child_page)
            node = self.read_node(best.child_page)
        return path

    def _propagate(self, path: list[int], new_box: MBR3D) -> None:
        """Walk the insertion path bottom-up, splitting overflowing
        nodes and growing parent entries.

        For non-split levels the parent entry is *unioned* with the
        inserted box rather than recomputed from the child's entries —
        exact on insertion (coverage only grows) and O(1) instead of
        O(fanout), the classic AdjustTree shortcut.
        """
        for depth in range(len(path) - 1, -1, -1):
            node = self.read_node(path[depth])
            if len(node.entries) > self.capacity:
                self._split(node, path, depth)
            elif depth > 0:
                parent = self.read_node(path[depth - 1])
                self._union_child_entry(parent, node.page_id, new_box)
                self.touch(parent)

    def _split(self, node: Node, path: list[int], depth: int) -> None:
        group_a, group_b = quadratic_split(
            node.entries, self.capacity, self.min_fill
        )
        node.entries = group_a
        self.touch(node)
        sibling = self.new_node(node.level)
        sibling.entries = group_b
        self.touch(sibling)
        if depth == 0:
            # Root split: grow the tree by one level.
            new_root = self.new_node(node.level + 1)
            new_root.entries = [
                InternalEntry(node.page_id, node.mbr()),
                InternalEntry(sibling.page_id, sibling.mbr()),
            ]
            self.touch(new_root)
            self.root_page = new_root.page_id
            self._after_split(node, sibling, new_root.page_id)
            return
        parent = self.read_node(path[depth - 1])
        self._replace_child_entry(parent, node)
        parent.entries.append(InternalEntry(sibling.page_id, sibling.mbr()))
        self.touch(parent)
        self._after_split(node, sibling, parent.page_id)

    def _after_split(self, node: Node, sibling: Node, parent_page: int) -> None:
        """Hook for subclasses that keep extra per-node metadata (the
        STR-tree's parent map and trajectory-preservation state)."""

    # ------------------------------------------------------------------
    # deletion (Guttman condense-tree, trajectory-at-a-time)
    # ------------------------------------------------------------------
    def delete_trajectory(self, trajectory_id: int) -> int:
        """Remove every segment of ``trajectory_id``.

        Underfull nodes are dissolved and their surviving leaf entries
        re-inserted (the classic condense-tree); freed pages go to the
        free list for reuse.  Only allowed before :meth:`finalize`.
        """
        self._check_deletable(trajectory_id)
        orphans: list[LeafEntry] = []
        deleted = 0
        if self.root_page != NO_PAGE:
            deleted, keep = self._delete_rec(
                self.root_page, trajectory_id, orphans, is_root=True
            )
            if keep:
                self._shrink_root()
            else:
                self.root_page = NO_PAGE
        self.num_entries -= deleted + len(orphans)
        self.trajectory_ids.discard(trajectory_id)
        for entry in orphans:
            self.insert_entry(entry)  # re-increments num_entries
        return deleted

    def _delete_rec(
        self, page: int, tid: int, orphans: list, is_root: bool = False
    ) -> tuple[int, bool]:
        """Returns ``(entries deleted below, keep this node?)``."""
        node = self.read_node(page)
        if node.is_leaf:
            before = len(node.entries)
            node.entries = [e for e in node.entries if e.trajectory_id != tid]
            deleted = before - len(node.entries)
            if deleted:
                self.touch(node)
            if not is_root and (deleted and len(node.entries) < self.min_fill):
                orphans.extend(node.entries)
                self.release_node(node)
                return (deleted, False)
            if is_root and not node.entries:
                self.release_node(node)
                return (deleted, False)
            return (deleted, True)

        deleted = 0
        changed = False
        survivors = []
        for e in node.entries:
            child_deleted, keep = self._delete_rec(e.child_page, tid, orphans)
            deleted += child_deleted
            if not keep:
                changed = True
                continue
            if child_deleted:
                child = self.read_node(e.child_page)
                survivors.append(InternalEntry(e.child_page, child.mbr()))
                changed = True
            else:
                survivors.append(e)
        node.entries = survivors
        if changed:
            self.touch(node)
        underfull = len(node.entries) < self.min_fill
        if not is_root and changed and underfull:
            for e in node.entries:
                self._dissolve_subtree(e.child_page, orphans)
            self.release_node(node)
            return (deleted, False)
        if is_root and not node.entries:
            self.release_node(node)
            return (deleted, False)
        return (deleted, True)

    def _dissolve_subtree(self, page: int, orphans: list) -> None:
        """Release a whole subtree, collecting its leaf entries."""
        node = self.read_node(page)
        if node.is_leaf:
            orphans.extend(node.entries)
        else:
            for e in node.entries:
                self._dissolve_subtree(e.child_page, orphans)
        self.release_node(node)

    def _shrink_root(self) -> None:
        """Collapse single-child internal roots left by condensation."""
        root = self.read_node(self.root_page)
        while not root.is_leaf and len(root.entries) == 1:
            child_page = root.entries[0].child_page
            self.release_node(root)
            self.root_page = child_page
            root = self.read_node(child_page)

    # ------------------------------------------------------------------
    # STR bulk loading (extension)
    # ------------------------------------------------------------------
    def bulk_load(self, entries: list[LeafEntry]) -> None:
        """Build the tree bottom-up with Sort-Tile-Recursive packing on
        the (x, y, t) box centres.  The tree must be empty."""
        if self.root_page != NO_PAGE:
            raise IndexError_("bulk_load requires an empty index")
        if not entries:
            return
        self.trajectory_ids.update(e.trajectory_id for e in entries)
        self.max_speed = max(
            self.max_speed, max(e.segment.speed for e in entries)
        )
        self.num_entries = len(entries)
        level_nodes = self._pack_leaves(entries)
        level = 1
        while len(level_nodes) > 1:
            parents = self._pack_internal(level_nodes, level)
            level_nodes = parents
            level += 1
        self.root_page = level_nodes[0].page_id

    def _pack_leaves(self, entries: list[LeafEntry]) -> list[Node]:
        groups = _str_tiles(
            entries,
            lambda e: _center(e.mbr),
            self.capacity,
        )
        nodes = []
        for group in groups:
            node = self.new_node(level=0)
            node.entries = list(group)
            self.touch(node)
            nodes.append(node)
        return nodes

    def _pack_internal(self, children: list[Node], level: int) -> list[Node]:
        child_entries = [InternalEntry(c.page_id, c.mbr()) for c in children]
        groups = _str_tiles(
            child_entries,
            lambda e: _center(e.mbr),
            self.capacity,
        )
        nodes = []
        for group in groups:
            node = self.new_node(level=level)
            node.entries = list(group)
            self.touch(node)
            nodes.append(node)
        return nodes


def _center(box: MBR3D) -> tuple[float, float, float]:
    return (
        (box.xmin + box.xmax) / 2.0,
        (box.ymin + box.ymax) / 2.0,
        (box.tmin + box.tmax) / 2.0,
    )


def _str_tiles(items: list, center_of, capacity: int) -> list[list]:
    """Sort-Tile-Recursive grouping of ``items`` into runs of at most
    ``capacity``: slab by x-centre, slice by y-centre, pack by t-centre."""
    n = len(items)
    pages = math.ceil(n / capacity)
    slabs_x = max(1, round(pages ** (1.0 / 3.0)))
    per_slab = math.ceil(n / slabs_x)
    by_x = sorted(items, key=lambda it: center_of(it)[0])
    groups: list[list] = []
    for sx in range(0, n, per_slab):
        slab = by_x[sx : sx + per_slab]
        slab_pages = math.ceil(len(slab) / capacity)
        slices_y = max(1, round(math.sqrt(slab_pages)))
        per_slice = math.ceil(len(slab) / slices_y)
        by_y = sorted(slab, key=lambda it: center_of(it)[1])
        for sy in range(0, len(slab), per_slice):
            chunk = sorted(
                by_y[sy : sy + per_slice], key=lambda it: center_of(it)[2]
            )
            for st in range(0, len(chunk), capacity):
                groups.append(chunk[st : st + capacity])
    return groups
