"""The STR-tree (Spatio-Temporal R-tree, Pfoser, Jensen,
Theodoridis [13]).

The middle point of the design space the paper's substrate section
draws: a 3D R-tree whose insertion *prefers trajectory preservation* —
a new segment first tries to join the leaf that holds its
predecessor (if that leaf has room beyond ``reserve`` slots kept for
spatial inserts), and only falls back to the ordinary
least-enlargement descent otherwise.  Queries are identical to the
plain 3D R-tree's; only the clustering differs.

The BFMST algorithm runs on it unchanged — it is an "R-tree-like
structure" in the paper's sense, and the test suite checks the same
correctness contract for all three trees.
"""

from __future__ import annotations

from ..exceptions import IndexError_
from .entry import LeafEntry
from .node import NO_PAGE, Node
from .rtree3d import RTree3D

__all__ = ["STRTree"]


class STRTree(RTree3D):
    """A 3D R-tree with partial trajectory preservation on insert.

    ``reserve`` is the preservation parameter *p* of Pfoser et al.:
    how many slots per leaf stay reserved for ordinary spatial inserts
    so that preservation cannot starve them.
    """

    def __init__(self, *args, reserve: int | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if reserve is None:
            reserve = min(8, self.capacity // 3)  # scale with the fanout
        if not (0 <= reserve < self.capacity):
            raise IndexError_(
                f"reserve must be in [0, {self.capacity}), got {reserve}"
            )
        self.reserve = reserve
        self._active_leaf: dict[int, int] = {}  # trajectory id -> leaf page
        self._parent_of: dict[int, int] = {}  # page -> parent page
        self.preserved_inserts = 0  # observability: how often it helped

    # ------------------------------------------------------------------
    def insert_entry(self, entry: LeafEntry) -> None:
        tid = entry.trajectory_id
        page = self._active_leaf.get(tid)
        if page is not None and self._try_preserve(page, entry):
            self.preserved_inserts += 1
            return
        self._insert_spatially(entry)

    def _try_preserve(self, page: int, entry: LeafEntry) -> bool:
        """Append to the predecessor's leaf when room remains beyond
        the reserved slots."""
        leaf = self.read_node(page)
        if not leaf.is_leaf:  # stale map after an unusual reshuffle
            return False
        if len(leaf.entries) >= self.capacity - self.reserve:
            return False
        leaf.entries.append(entry)
        self.touch(leaf)
        self.num_entries += 1
        self._adjust_upwards(page, entry.mbr)
        return True

    def _insert_spatially(self, entry: LeafEntry) -> None:
        """Ordinary R-tree insertion, additionally maintaining the
        parent map and the trajectory's active leaf."""
        if self.root_page == NO_PAGE:
            super().insert_entry(entry)
            self._active_leaf[entry.trajectory_id] = self.root_page
            return
        path = self._choose_path(entry.mbr)
        for parent, child in zip(path, path[1:]):
            self._parent_of[child] = parent
        leaf_page = path[-1]
        leaf = self.read_node(leaf_page)
        leaf.entries.append(entry)
        self.touch(leaf)
        self.num_entries += 1
        self._active_leaf[entry.trajectory_id] = leaf_page
        self._propagate(path, entry.mbr)

    # ------------------------------------------------------------------
    def _adjust_upwards(self, page_id: int, box) -> None:
        while True:
            parent_page = self._parent_of.get(page_id)
            if parent_page is None:
                return
            parent = self.read_node(parent_page)
            self._union_child_entry(parent, page_id, box)
            self.touch(parent)
            page_id = parent_page

    def _after_split(self, node: Node, sibling: Node, parent_page: int) -> None:
        """Keep the parent map exact and drop stale preservation state:
        after a leaf split we no longer know which half holds a
        trajectory's latest segment, so those objects fall back to
        spatial insertion once (safe, merely less clustered)."""
        self._parent_of[node.page_id] = parent_page
        self._parent_of[sibling.page_id] = parent_page
        if not node.is_leaf:
            for e in sibling.entries:
                self._parent_of[e.child_page] = sibling.page_id
        else:
            stale = {
                tid
                for tid, page in self._active_leaf.items()
                if page == node.page_id
            }
            for tid in stale:
                del self._active_leaf[tid]

    def _on_release(self, page_id: int) -> None:
        """Recycled pages must not linger in the preservation maps —
        neither as children (keys) nor as parents (values: a released
        parent means the child was re-parented, e.g. by a root
        shrink, or released itself)."""
        self._parent_of.pop(page_id, None)
        orphaned = [
            child for child, parent in self._parent_of.items()
            if parent == page_id
        ]
        for child in orphaned:
            del self._parent_of[child]
        stale = [
            tid for tid, page in self._active_leaf.items() if page == page_id
        ]
        for tid in stale:
            del self._active_leaf[tid]

    def bulk_load(self, entries: list[LeafEntry]) -> None:
        """STR packing (inherited), then rebuild the parent map so
        incremental inserts keep working afterwards."""
        super().bulk_load(entries)
        for node in self.nodes():
            if not node.is_leaf:
                for e in node.entries:
                    self._parent_of[e.child_page] = node.page_id

    def preservation_ratio(self) -> float:
        """Fraction of inserts served by trajectory preservation."""
        if self.num_entries == 0:
            return 0.0
        return self.preserved_inserts / self.num_entries
