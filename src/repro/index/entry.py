"""Index entries.

Leaf entries hold one trajectory *line segment* (the unit of insertion
for trajectory R-trees, cf. Pfoser et al. [13]): the owning object id
plus the segment's two spatiotemporal endpoints, from which the 3D MBB
is derived.  Internal entries hold a child page id and the child's MBB.

Both serialise to a fixed 56-byte layout so a 4 KB page holds 72 of
them — the index fanout is *derived from the byte layout*, not chosen.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..geometry import MBR3D, STPoint, STSegment

__all__ = ["LeafEntry", "InternalEntry", "ENTRY_BYTES"]

_LEAF_FMT = struct.Struct("<q6d")  # id, x1, y1, t1, x2, y2, t2
_INTERNAL_FMT = struct.Struct("<q6d")  # child, xmin, ymin, tmin, xmax, ymax, tmax
ENTRY_BYTES = _LEAF_FMT.size
assert _INTERNAL_FMT.size == ENTRY_BYTES


class LeafEntry:
    """One trajectory line segment owned by ``trajectory_id``.

    The segment's 3D box is precomputed: ``mbr`` sits on every index
    hot path (choose-subtree, splits, MINDIST) and must not be rebuilt
    per access.
    """

    __slots__ = ("trajectory_id", "segment", "mbr")

    def __init__(self, trajectory_id: int, segment: STSegment) -> None:
        self.trajectory_id = trajectory_id
        self.segment = segment
        self.mbr: MBR3D = segment.mbr()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LeafEntry):
            return NotImplemented
        return (
            self.trajectory_id == other.trajectory_id
            and self.segment == other.segment
        )

    def __hash__(self) -> int:
        return hash((self.trajectory_id, self.segment))

    def __repr__(self) -> str:
        return f"LeafEntry(id={self.trajectory_id}, segment={self.segment!r})"

    @property
    def t_start(self) -> float:
        return self.segment.ts

    @property
    def t_end(self) -> float:
        return self.segment.te

    def to_bytes(self) -> bytes:
        s = self.segment
        return _LEAF_FMT.pack(
            self.trajectory_id,
            s.start.x,
            s.start.y,
            s.start.t,
            s.end.x,
            s.end.y,
            s.end.t,
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "LeafEntry":
        tid, x1, y1, t1, x2, y2, t2 = _LEAF_FMT.unpack(data)
        return cls(tid, STSegment(STPoint(x1, y1, t1), STPoint(x2, y2, t2)))


@dataclass(frozen=True, slots=True)
class InternalEntry:
    """A child pointer with the child subtree's 3D bounding box."""

    child_page: int
    mbr: MBR3D

    def to_bytes(self) -> bytes:
        m = self.mbr
        return _INTERNAL_FMT.pack(
            self.child_page, m.xmin, m.ymin, m.tmin, m.xmax, m.ymax, m.tmax
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "InternalEntry":
        child, xmin, ymin, tmin, xmax, ymax, tmax = _INTERNAL_FMT.unpack(data)
        return cls(child, MBR3D(xmin, ymin, tmin, xmax, ymax, tmax))
