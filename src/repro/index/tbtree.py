"""The TB-tree (Trajectory-Bundle tree, Pfoser, Jensen, Theodoridis [13]).

The defining property: each leaf bundles segments of *one* trajectory,
kept in temporal order, and the leaves of a trajectory are doubly
linked — so trajectory-oriented queries (and the BFMST plane sweep,
which wants temporally sorted leaf entries) get them for free.

Insertion: a segment is appended to its trajectory's active (last)
leaf; when that leaf is full a fresh leaf is chained to it and inserted
into the upper R-tree levels by least-volume-enlargement descent (our
choose-subtree stands in for the original's rightmost-path heuristic;
the bundling/chaining property, which is what the paper's experiments
exercise, is identical).  Internal-node overflows use the quadratic
split; a parent map is maintained in memory so MBR adjustments and
splits can walk upwards from any leaf.
"""

from __future__ import annotations

from ..exceptions import IndexError_
from .base import TrajectoryIndex, quadratic_split
from .entry import InternalEntry, LeafEntry
from .node import NODE_OVERHEAD_BYTES, NO_PAGE, Node, tb_leaf_payload_size

__all__ = ["TBTree"]


class TBTree(TrajectoryIndex):
    """A paged TB-tree.

    Leaves use the *chained* page layout: the bundled segments of one
    trajectory are serialised as point chains with shared endpoints
    (~24 bytes per segment instead of 56), which is what makes the
    TB-tree index roughly half the 3D R-tree's size in Table 2.  A
    leaf is full when its *serialised payload* would overflow the
    page, not at a fixed entry count.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._active_leaf: dict[int, int] = {}  # trajectory id -> leaf page
        self._parent_of: dict[int, int] = {}  # page -> parent page

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def _leaf_fits(self, leaf: Node, entry: LeafEntry) -> bool:
        payload = tb_leaf_payload_size(leaf.entries + [entry])
        return NODE_OVERHEAD_BYTES + payload <= self.page_size

    def insert_entry(self, entry: LeafEntry) -> None:
        tid = entry.trajectory_id
        leaf_page = self._active_leaf.get(tid)
        if leaf_page is not None:
            leaf = self.read_node(leaf_page)
            if leaf.entries and entry.segment.ts < leaf.entries[-1].segment.te:
                raise IndexError_(
                    f"TB-tree requires temporally ordered insertion per "
                    f"trajectory (object {tid})"
                )
            if self._leaf_fits(leaf, entry):
                leaf.entries.append(entry)
                self.touch(leaf)
                self.num_entries += 1
                self._adjust_upwards(leaf.page_id, entry.mbr)
                return
        self._start_new_leaf(tid, entry, leaf_page)
        self.num_entries += 1

    def _start_new_leaf(
        self, tid: int, entry: LeafEntry, prev_leaf_page: int | None
    ) -> None:
        leaf = self.new_node(level=0, owner_id=tid)
        leaf.chained = True
        leaf.entries.append(entry)
        if prev_leaf_page is not None:
            leaf.prev_leaf = prev_leaf_page
            prev = self.read_node(prev_leaf_page)
            prev.next_leaf = leaf.page_id
            self.touch(prev)
        self.touch(leaf)
        self._active_leaf[tid] = leaf.page_id
        self._attach_leaf(leaf)

    def _attach_leaf(self, leaf: Node) -> None:
        """Hang a fresh leaf off the upper levels of the tree."""
        if self.root_page == NO_PAGE:
            self.root_page = leaf.page_id
            return
        root = self.read_node(self.root_page)
        if root.is_leaf:
            # Two leaves now: grow the first internal level.
            new_root = self.new_node(level=1)
            new_root.entries = [
                InternalEntry(root.page_id, root.mbr()),
                InternalEntry(leaf.page_id, leaf.mbr()),
            ]
            self.touch(new_root)
            self._parent_of[root.page_id] = new_root.page_id
            self._parent_of[leaf.page_id] = new_root.page_id
            self.root_page = new_root.page_id
            return
        # Descend to the level-1 node with least volume enlargement.
        leaf_box = leaf.mbr()
        target = root
        while target.level > 1:
            best = min(
                target.entries,
                key=lambda e: (
                    e.mbr.enlargement(leaf_box),
                    e.mbr.volume(),
                    e.mbr.margin(),
                ),
            )
            target = self.read_node(best.child_page)
        target.entries.append(InternalEntry(leaf.page_id, leaf_box))
        self.touch(target)
        self._parent_of[leaf.page_id] = target.page_id
        self._split_or_adjust(target, leaf_box)

    # ------------------------------------------------------------------
    # upward maintenance via the parent map
    # ------------------------------------------------------------------
    def _adjust_upwards(self, page_id: int, box) -> None:
        """Grow ancestor entries to also cover ``box`` (exact on
        insertion: subtree coverage only ever grows, so a union beats
        an O(fanout) recompute)."""
        while True:
            parent_page = self._parent_of.get(page_id)
            if parent_page is None:
                return
            parent = self.read_node(parent_page)
            self._union_child_entry(parent, page_id, box)
            self.touch(parent)
            page_id = parent_page

    def _split_or_adjust(self, node: Node, box) -> None:
        """Handle a possible overflow of an internal node, walking up;
        ``box`` is the newly inserted coverage to fold into ancestors."""
        while True:
            if len(node.entries) > self.capacity:
                parent = self._split_internal(node)
                if parent is None:
                    return
                node = parent
            else:
                self._adjust_upwards(node.page_id, box)
                return

    def _split_internal(self, node: Node) -> Node | None:
        """Split an overflowing internal node; returns the parent to
        continue on, or ``None`` when a new root was installed."""
        group_a, group_b = quadratic_split(
            node.entries, self.capacity, self.min_fill
        )
        node.entries = group_a
        self.touch(node)
        sibling = self.new_node(node.level)
        sibling.entries = group_b
        self.touch(sibling)
        for e in group_b:
            self._parent_of[e.child_page] = sibling.page_id
        parent_page = self._parent_of.get(node.page_id)
        if parent_page is None:
            new_root = self.new_node(node.level + 1)
            new_root.entries = [
                InternalEntry(node.page_id, node.mbr()),
                InternalEntry(sibling.page_id, sibling.mbr()),
            ]
            self.touch(new_root)
            self._parent_of[node.page_id] = new_root.page_id
            self._parent_of[sibling.page_id] = new_root.page_id
            self.root_page = new_root.page_id
            return None
        parent = self.read_node(parent_page)
        self._replace_child_entry(parent, node)
        parent.entries.append(InternalEntry(sibling.page_id, sibling.mbr()))
        self.touch(parent)
        self._parent_of[sibling.page_id] = parent_page
        return parent

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def delete_trajectory(self, trajectory_id: int) -> int:
        """Remove a trajectory's whole leaf chain.

        Detaches every chain leaf from the upper levels, then condenses
        underfull internal nodes by re-attaching their surviving leaves
        (leaf *nodes* are moved as units, so the single-trajectory and
        chain properties of every other object are untouched).
        """
        self._check_deletable(trajectory_id)
        chain = self.leaf_chain(trajectory_id)
        deleted = sum(len(leaf.entries) for leaf in chain)
        for leaf in chain:
            self._detach_leaf(leaf)
        self._active_leaf.pop(trajectory_id, None)
        self.trajectory_ids.discard(trajectory_id)
        self.num_entries -= deleted
        return deleted

    def _detach_leaf(self, leaf: Node) -> None:
        parent_page = self._parent_of.pop(leaf.page_id, None)
        if parent_page is None:
            # the leaf is the root
            if self.root_page == leaf.page_id:
                self.root_page = NO_PAGE
            self.release_node(leaf)
            return
        parent = self.read_node(parent_page)
        parent.entries = [
            e for e in parent.entries if e.child_page != leaf.page_id
        ]
        self.touch(parent)
        self.release_node(leaf)
        self._condense(parent)

    def _condense(self, node: Node) -> None:
        """Dissolve underfull internal nodes bottom-up, re-attaching
        their surviving leaves."""
        while True:
            parent_page = self._parent_of.get(node.page_id)
            if parent_page is None:
                # node is the root
                if not node.entries:
                    self.release_node(node)
                    self.root_page = NO_PAGE
                elif not node.is_leaf and len(node.entries) == 1:
                    child_page = node.entries[0].child_page
                    self._parent_of.pop(child_page, None)
                    self.release_node(node)
                    self.root_page = child_page
                else:
                    self._refresh_exact(node)
                return
            if len(node.entries) >= self.min_fill:
                self._refresh_exact(node)
                parent = self.read_node(parent_page)
                self._replace_child_entry(parent, node)
                self.touch(parent)
                node = parent
                continue
            # dissolve: collect surviving leaves, remove from parent
            leaves: list[int] = []
            for e in node.entries:
                self._collect_leaf_pages(e.child_page, leaves)
            parent = self.read_node(parent_page)
            parent.entries = [
                e for e in parent.entries if e.child_page != node.page_id
            ]
            self.touch(parent)
            self._parent_of.pop(node.page_id, None)
            self.release_node(node)
            for page in leaves:
                self._attach_leaf(self.read_node(page))
            node = self.read_node(parent_page)

    def _collect_leaf_pages(self, page: int, out: list[int]) -> None:
        node = self.read_node(page)
        self._parent_of.pop(page, None)
        if node.is_leaf:
            out.append(page)
            return
        for e in node.entries:
            self._collect_leaf_pages(e.child_page, out)
        self.release_node(node)

    def _refresh_exact(self, node: Node) -> None:
        """Propagate an exact (possibly shrunken) MBR up the tree."""
        child = node
        while True:
            parent_page = self._parent_of.get(child.page_id)
            if parent_page is None:
                return
            parent = self.read_node(parent_page)
            self._replace_child_entry(parent, child)
            self.touch(parent)
            child = parent

    def _on_release(self, page_id: int) -> None:
        self._parent_of.pop(page_id, None)
        orphaned = [
            child for child, parent in self._parent_of.items()
            if parent == page_id
        ]
        for child in orphaned:
            del self._parent_of[child]
        stale = [
            tid for tid, page in self._active_leaf.items() if page == page_id
        ]
        for tid in stale:
            del self._active_leaf[tid]

    # ------------------------------------------------------------------
    # TB-specific accessors
    # ------------------------------------------------------------------
    def leaf_chain(self, trajectory_id: int) -> list[Node]:
        """The linked leaves of a trajectory, first to last."""
        page = self._first_leaf_of(trajectory_id)
        out = []
        while page != NO_PAGE:
            node = self.read_node(page)
            out.append(node)
            page = node.next_leaf
        return out

    def _first_leaf_of(self, trajectory_id: int) -> int:
        page = self._active_leaf.get(trajectory_id, NO_PAGE)
        if page == NO_PAGE:
            return NO_PAGE
        node = self.read_node(page)
        while node.prev_leaf != NO_PAGE:
            node = self.read_node(node.prev_leaf)
        return node.page_id

    def trajectory_segments(self, trajectory_id: int) -> list[LeafEntry]:
        """All indexed segments of one trajectory, in temporal order —
        the access path the leaf chain exists for."""
        out: list[LeafEntry] = []
        for leaf in self.leaf_chain(trajectory_id):
            out.extend(leaf.entries)
        return out
