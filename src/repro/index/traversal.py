"""Best-first index traversal (Hjaltason & Samet [8]).

Yields index nodes in non-decreasing order of their MINDIST from the
query trajectory, expanding internal nodes as they are dequeued — the
traversal order Definitions 5-6 and Heuristic 2 are built on.  Nodes
whose temporal extent misses the query period are never enqueued.

When a :func:`~repro.obs.query_trace` is active the traversal feeds
the trace: nodes dequeued/enqueued, MINDIST evaluations per child
level, and the priority queue's high-water mark (recorded even when
the consumer abandons the generator early, e.g. on Heuristic 2
termination).
"""

from __future__ import annotations

import heapq
from typing import Iterator

from ..obs import state as _obs
from ..trajectory import Trajectory
from .base import TrajectoryIndex
from .mindist import mindist
from .node import NO_PAGE, Node

__all__ = ["best_first_nodes"]


def best_first_nodes(
    index: TrajectoryIndex,
    query: Trajectory,
    t_start: float,
    t_end: float,
    *,
    mindist_fn=None,
    mindist_batch_fn=None,
    heap: list | None = None,
    leaf_admit=None,
) -> Iterator[tuple[float, Node]]:
    """Yield ``(mindist, node)`` pairs in increasing MINDIST order.

    The root is enqueued with distance 0; each dequeued internal node
    enqueues its temporally overlapping children keyed by MINDIST of
    their *entry* MBB (the child page itself is only read when
    dequeued, so node accesses reflect true I/O).

    ``mindist_fn`` substitutes the MINDIST evaluation (same signature
    and semantics as :func:`repro.index.mindist.mindist`); the query
    engine passes a per-query memoising wrapper here.
    ``mindist_batch_fn`` (signature of
    :func:`repro.index.mindist.mindist_batch`) evaluates all entries of
    a dequeued node in one call instead — when given it takes
    precedence over ``mindist_fn``.  ``heap`` lets a caller donate a
    reusable list as the priority-queue scratch buffer (it is cleared
    first); pass ``None`` for a private one.

    ``leaf_admit`` — when given — is consulted as ``leaf_admit(dist,
    page_id)`` for every dequeued page *known* to be a leaf (its parent
    was a level-1 node; the root is always read) before the page is
    read.  Returning ``False`` skips the page entirely: no I/O, no
    yield.  The signature filter uses this to avoid reading leaves all
    of whose trajectories are already settled; the consumer's H2 check
    — a function of the dequeue distance and its candidate state only —
    is unaffected, because skipping changes neither.
    """
    if index.root_page == NO_PAGE:
        return
    if mindist_fn is None:
        mindist_fn = mindist
    trace = _obs.ACTIVE
    reg = trace.registry if trace is not None else None
    high_water = 1
    counter = 0  # heap tie-breaker: FIFO among equal distances
    if heap is None:
        heap = []
    else:
        heap.clear()
    heap.append((0.0, counter, index.root_page, False))
    try:
        while heap:
            dist, _tie, page_id, known_leaf = heapq.heappop(heap)
            if (
                known_leaf
                and leaf_admit is not None
                and not leaf_admit(dist, page_id)
            ):
                if reg is not None:
                    reg.inc("index.leaves_skipped")
                continue
            node = index.read_node(page_id)
            if reg is not None:
                reg.inc("index.nodes_dequeued")
                reg.inc(
                    "index.leaves_dequeued"
                    if node.is_leaf
                    else "index.internals_dequeued"
                )
            yield (dist, node)
            if node.is_leaf:
                continue
            child_level = node.level - 1
            if mindist_batch_fn is not None:
                dists = mindist_batch_fn(
                    query, [e.mbr for e in node.entries], t_start, t_end
                )
            else:
                dists = None
            for i, e in enumerate(node.entries):
                if dists is not None:
                    d = dists[i]
                else:
                    d = mindist_fn(query, e.mbr, t_start, t_end)
                if reg is not None:
                    reg.inc(f"index.mindist_evaluations.level_{child_level}")
                if d is None:
                    continue
                counter += 1
                heapq.heappush(
                    heap, (d, counter, e.child_page, child_level == 0)
                )
                if reg is not None:
                    reg.inc("index.nodes_enqueued")
            if reg is not None and len(heap) > high_water:
                high_water = len(heap)
    finally:
        # Runs on exhaustion *and* on early abandonment (GeneratorExit
        # from a consumer break), so the high-water mark is never lost.
        if reg is not None:
            reg.record_max("index.heap_high_water", high_water)
