"""Linearly Depended Dissimilarity (Definition 2).

``LDD(D, V, dt)`` is the time-integral of the distance between two
objects that start ``D`` apart and move collinearly with relative speed
``V`` for a duration ``dt`` — the area under a straight distance line,
clamped at zero when the objects would meet:

* if the line stays non-negative (``D + V*dt >= 0``): the trapezoid
  ``dt * (D + V*dt/2)``;
* otherwise the triangle until contact: ``D^2 / (2|V|)``.

Negative ``V`` means approaching, positive means diverging (the paper's
sign convention).
"""

from __future__ import annotations

__all__ = ["ldd"]


def ldd(distance: float, relative_speed: float, duration: float) -> float:
    """Evaluate LDD(D, V, dt).  ``distance`` and ``duration`` must be
    non-negative."""
    if distance < 0.0:
        raise ValueError(f"negative distance {distance}")
    if duration < 0.0:
        raise ValueError(f"negative duration {duration}")
    if duration == 0.0:
        return 0.0
    end_distance = distance + relative_speed * duration
    if end_distance >= 0.0:
        return duration * (distance + relative_speed * duration / 2.0)
    # The objects meet at time D/|V| < dt and the distance stays at
    # (at best) zero afterwards: only the initial triangle contributes.
    return distance * distance / (2.0 * abs(relative_speed))
