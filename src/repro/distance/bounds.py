"""Pruning bounds on the dissimilarity of partially retrieved
trajectories (Sections 3.1-3.2 of the paper).

During a best-first index traversal the search has only seen *some* of
each candidate's line segments.  :class:`PartialDissim` is the
bookkeeping record for one candidate: which sub-intervals of the query
period have been retrieved (with their dissimilarity contribution and
endpoint distances) and which are still gaps.  From it we compute:

* ``OPTDISSIM`` (Definition 3, Lemma 2) — a lower bound assuming the
  object raced towards the query at the maximum possible relative speed
  ``V_max`` inside every gap,
* ``PESDISSIM`` (Definition 4, Lemma 3) — an upper bound assuming it
  fled at ``V_max``,
* ``OPTDISSIMINC`` (Definition 5) — a speed-independent lower bound
  valid when index nodes are visited in increasing MINDIST order: no
  unseen segment can be closer than the current node's MINDIST,
* ``MINDISSIMINC`` (Definition 6, Lemma 4) — the node-level lower bound
  that powers Heuristic 2 / early termination.

Sign note: the paper's printed formula for the V-shape meeting time
``t_k^o`` has the distance difference reversed; we use the derived form
``mid + (D(t_k) - D(t_{k+1})) / (2 V_max)`` (see DESIGN.md).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass

from ..exceptions import QueryError
from .ldd import ldd
from .trinomial import IntegralResult

__all__ = ["CoveredInterval", "PartialDissim", "mindissim_inc"]

# Two interval endpoints closer than this (relative to the query period)
# are considered identical when checking completeness.
_REL_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class CoveredInterval:
    """One retrieved stretch ``[t_lo, t_hi]`` of a candidate trajectory:
    its dissimilarity contribution and the inter-object distances at the
    two endpoints."""

    t_lo: float
    t_hi: float
    integral: IntegralResult
    d_lo: float
    d_hi: float


class PartialDissim:
    """Dissimilarity knowledge about one partially retrieved candidate.

    Intervals are added as their segments are fetched from the index
    (in any order); they must be non-overlapping (each line segment is
    stored once).  Adjacent intervals are coalesced so gap enumeration
    stays linear.
    """

    __slots__ = ("t_start", "t_end", "_intervals", "_eps")

    def __init__(self, t_start: float, t_end: float) -> None:
        if t_start >= t_end:
            raise QueryError(f"empty query period [{t_start}, {t_end}]")
        self.t_start = t_start
        self.t_end = t_end
        self._intervals: list[CoveredInterval] = []  # sorted by t_lo
        self._eps = (t_end - t_start) * _REL_EPS

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_interval(
        self,
        t_lo: float,
        t_hi: float,
        integral: IntegralResult,
        d_lo: float,
        d_hi: float,
    ) -> bool:
        """Record a retrieved stretch; raises on overlap with existing
        coverage beyond floating-point slack.  Returns ``True`` when the
        interval was actually added, ``False`` when it was a duplicate
        or a sub-resolution sliver absorbed by earlier coalescing (so
        callers tracking the retrieved windows never double-count)."""
        if not (self.t_start - self._eps <= t_lo < t_hi <= self.t_end + self._eps):
            raise QueryError(
                f"interval [{t_lo}, {t_hi}] outside query period "
                f"[{self.t_start}, {self.t_end}]"
            )
        item = CoveredInterval(t_lo, t_hi, integral, d_lo, d_hi)
        idx = bisect_right([iv.t_lo for iv in self._intervals], t_lo)
        if idx > 0:
            prev = self._intervals[idx - 1]
            if t_hi <= prev.t_hi + self._eps:
                # A sub-resolution sliver already swallowed by earlier
                # coalescing (timestamps one ulp apart): absorb it.
                return False
            if prev.t_hi > t_lo + self._eps:
                raise QueryError(
                    f"interval [{t_lo}, {t_hi}] overlaps already retrieved "
                    f"[{prev.t_lo}, {prev.t_hi}]"
                )
        if idx < len(self._intervals):
            nxt = self._intervals[idx]
            if nxt.t_lo < t_hi - self._eps:
                if t_lo >= nxt.t_lo - self._eps and t_hi <= nxt.t_hi + self._eps:
                    return False  # duplicate of an existing interval
                raise QueryError(
                    f"interval [{t_lo}, {t_hi}] overlaps already retrieved "
                    f"[{nxt.t_lo}, {nxt.t_hi}]"
                )
        self._intervals.insert(idx, item)
        self._coalesce(max(idx - 1, 0))
        return True

    def _coalesce(self, start: int) -> None:
        """Merge runs of touching intervals beginning at ``start``."""
        ivs = self._intervals
        i = start
        while i + 1 < len(ivs):
            cur, nxt = ivs[i], ivs[i + 1]
            if nxt.t_lo - cur.t_hi <= self._eps:
                ivs[i] = CoveredInterval(
                    cur.t_lo,
                    nxt.t_hi,
                    cur.integral + nxt.integral,
                    cur.d_lo,
                    nxt.d_hi,
                )
                del ivs[i + 1]
            elif nxt.t_lo > cur.t_hi:
                i += 1
            else:
                i += 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def intervals(self) -> list[CoveredInterval]:
        return list(self._intervals)

    def covered_duration(self) -> float:
        return sum(iv.t_hi - iv.t_lo for iv in self._intervals)

    def is_complete(self) -> bool:
        """True when the coverage spans the whole query period."""
        if len(self._intervals) != 1:
            return False
        iv = self._intervals[0]
        return (
            iv.t_lo <= self.t_start + self._eps
            and iv.t_hi >= self.t_end - self._eps
        )

    def retrieved_integral(self) -> IntegralResult:
        """Sum of the retrieved contributions (the fixed part of every
        bound)."""
        total = IntegralResult(0.0, 0.0)
        for iv in self._intervals:
            total = total + iv.integral
        return total

    def gaps(self) -> list[tuple[float, float, float | None, float | None]]:
        """The uncovered stretches as ``(lo, hi, d_at_lo, d_at_hi)``;
        a distance is ``None`` at the query-period boundary where no
        sample has been seen (the one-sided gap cases of Definition 3).
        """
        out: list[tuple[float, float, float | None, float | None]] = []
        cursor = self.t_start
        prev_d: float | None = None
        for iv in self._intervals:
            if iv.t_lo - cursor > self._eps:
                out.append((cursor, iv.t_lo, prev_d, iv.d_lo))
            cursor = iv.t_hi
            prev_d = iv.d_hi
        if self.t_end - cursor > self._eps:
            out.append((cursor, self.t_end, prev_d, None))
        return out

    # ------------------------------------------------------------------
    # speed-dependent bounds
    # ------------------------------------------------------------------
    def optdissim(self, vmax: float) -> float:
        """Lower bound on DISSIM (Definition 3 / Lemma 2).

        Uses the *certified lower* end of each retrieved trapezoid
        integral so the bound survives the approximation error."""
        if vmax < 0.0:
            raise QueryError(f"negative vmax {vmax}")
        total = self.retrieved_integral().lower
        for lo, hi, d1, d2 in self.gaps():
            total += _optimistic_gap(lo, hi, d1, d2, vmax)
        return max(total, 0.0)

    def pesdissim(self, vmax: float) -> float:
        """Upper bound on DISSIM (Definition 4 / Lemma 3), using the
        certified upper end of each retrieved integral."""
        if vmax < 0.0:
            raise QueryError(f"negative vmax {vmax}")
        total = self.retrieved_integral().upper
        for lo, hi, d1, d2 in self.gaps():
            total += _pessimistic_gap(lo, hi, d1, d2, vmax)
        return total

    # ------------------------------------------------------------------
    # speed-independent bounds
    # ------------------------------------------------------------------
    def optdissim_inc(self, mindist: float) -> float:
        """Lower bound on DISSIM given that every unseen segment is at
        least ``mindist`` away (Definition 5): retrieved parts count
        with their certified lower value, every gap as
        ``mindist * gap_length``."""
        if mindist < 0.0:
            raise QueryError(f"negative mindist {mindist}")
        total = self.retrieved_integral().lower
        for lo, hi, _d1, _d2 in self.gaps():
            total += mindist * (hi - lo)
        return max(total, 0.0)


def mindissim_inc(
    mindist: float,
    t_start: float,
    t_end: float,
    partials: list[PartialDissim] | None = None,
) -> float:
    """MINDISSIMINC of an index node (Definition 6).

    ``mindist`` is MINDIST(Q, N) of the node being processed; nodes are
    assumed to be visited in increasing MINDIST order.  ``partials`` is
    the set ``S_C`` of not-yet-completed candidates (their
    OPTDISSIMINC's participate in the minimum).
    """
    best = mindist * (t_end - t_start)
    if partials:
        best = min(
            best, min(p.optdissim_inc(mindist) for p in partials)
        )
    return best


# ----------------------------------------------------------------------
# gap evaluation helpers
# ----------------------------------------------------------------------
def _meeting_time(
    lo: float, hi: float, d1: float, d2: float, vmax: float
) -> float:
    """Time at which two ``V_max``-sloped legs anchored at ``(lo, d1)``
    and ``(hi, d2)`` meet: ``mid + (d1 - d2) / (2 vmax)``, clamped into
    the gap (the clamp only matters for user-supplied speeds smaller
    than the true maximum)."""
    mid = (lo + hi) / 2.0
    if vmax <= 0.0:
        return mid
    return min(max(mid + (d1 - d2) / (2.0 * vmax), lo), hi)


def _optimistic_gap(
    lo: float, hi: float, d1: float | None, d2: float | None, vmax: float
) -> float:
    """Smallest possible distance-integral over a gap ``[lo, hi]`` whose
    boundary distances are ``d1`` (at ``lo``, None if unknown) and
    ``d2`` (at ``hi``, None if unknown)."""
    span = hi - lo
    if d1 is None and d2 is None:
        # Nothing retrieved at all: the object may sit on the query.
        return 0.0
    if d1 is None:
        # Leading gap: approach read backwards from the known end.
        return ldd(d2, -vmax, span)
    if d2 is None:
        # Trailing gap: approach forwards from the known start.
        return ldd(d1, -vmax, span)
    t_meet = _meeting_time(lo, hi, d1, d2, vmax)
    return ldd(d1, -vmax, t_meet - lo) + ldd(d2, -vmax, hi - t_meet)


def _pessimistic_gap(
    lo: float, hi: float, d1: float | None, d2: float | None, vmax: float
) -> float:
    """Largest possible distance-integral over a gap (diverging at
    ``V_max``).  With no boundary distance known at all, nothing
    constrains where the object is, so the bound is infinite (the
    search only evaluates PESDISSIM for candidates it has seen at
    least one segment of)."""
    span = hi - lo
    if d1 is None and d2 is None:
        return math.inf
    if d1 is None:
        return ldd(d2, vmax, span)
    if d2 is None:
        return ldd(d1, vmax, span)
    mid = (lo + hi) / 2.0
    if vmax <= 0.0:
        t_peak = mid
    else:
        t_peak = min(max(mid + (d2 - d1) / (2.0 * vmax), lo), hi)
    return ldd(d1, vmax, t_peak - lo) + ldd(d2, vmax, hi - t_peak)
