"""Exact inter-object distance profiles.

``DistanceProfile`` is the full piecewise description of
``D_{Q,T}(t)`` over a period — the curve all of Figures 2-6 of the
paper are drawn on.  Each piece is one distance trinomial; the profile
supports exact evaluation, global minimum/maximum (with the witnessing
time), and the integral (which by construction equals DISSIM).

Useful for analysis ("when exactly were the bus and the metro
closest?") and for testing — the profile's integral cross-checks
``dissim_exact`` by an independent code path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..trajectory import Trajectory
from .dissim import CoveragePolicy, merged_timestamps, resolve_period
from .trinomial import DistanceTrinomial

__all__ = ["ProfilePiece", "DistanceProfile", "distance_profile"]


@dataclass(frozen=True, slots=True)
class ProfilePiece:
    """One elementary interval with its trinomial (local time from
    ``t_lo``)."""

    t_lo: float
    t_hi: float
    trinomial: DistanceTrinomial

    def value_at(self, t: float) -> float:
        return self.trinomial.value_at(t - self.t_lo)

    def minimum(self) -> tuple[float, float]:
        """``(distance, time)`` of this piece's minimum."""
        span = self.t_hi - self.t_lo
        candidates = [0.0, span]
        flex = self.trinomial.flex
        if flex is not None and 0.0 < flex < span:
            candidates.append(flex)
        tau = min(candidates, key=self.trinomial.value_at)
        return (self.trinomial.value_at(tau), self.t_lo + tau)

    def maximum(self) -> tuple[float, float]:
        """``(distance, time)`` of this piece's maximum — at an
        endpoint, by convexity."""
        span = self.t_hi - self.t_lo
        tau = max((0.0, span), key=self.trinomial.value_at)
        return (self.trinomial.value_at(tau), self.t_lo + tau)

    def integral(self) -> float:
        return self.trinomial.exact_integral(0.0, self.t_hi - self.t_lo)


class DistanceProfile:
    """The piecewise-exact distance curve between two trajectories."""

    def __init__(self, pieces: list[ProfilePiece]) -> None:
        if not pieces:
            raise ValueError("a profile needs at least one piece")
        self.pieces = pieces

    @property
    def t_start(self) -> float:
        return self.pieces[0].t_lo

    @property
    def t_end(self) -> float:
        return self.pieces[-1].t_hi

    def value_at(self, t: float) -> float:
        """Exact distance at ``t`` (must lie inside the profile)."""
        if not (self.t_start <= t <= self.t_end):
            raise ValueError(
                f"time {t} outside profile [{self.t_start}, {self.t_end}]"
            )
        for piece in self.pieces:
            if t <= piece.t_hi:
                return piece.value_at(t)
        return self.pieces[-1].value_at(t)

    def minimum(self) -> tuple[float, float]:
        """Global ``(distance, time)`` minimum — 'when were they
        closest?'."""
        return min(
            (p.minimum() for p in self.pieces), key=lambda pair: pair[0]
        )

    def maximum(self) -> tuple[float, float]:
        """Global ``(distance, time)`` maximum."""
        return max(
            (p.maximum() for p in self.pieces), key=lambda pair: pair[0]
        )

    def integral(self) -> float:
        """Exactly DISSIM over the profile's period."""
        return math.fsum(p.integral() for p in self.pieces)

    def mean_distance(self) -> float:
        """DISSIM normalised by the period length — comparable across
        different-length windows."""
        return self.integral() / (self.t_end - self.t_start)

    def sample(self, n: int = 100) -> list[tuple[float, float]]:
        """``n+1`` evenly spaced ``(t, distance)`` points (plotting)."""
        if n < 1:
            raise ValueError("n must be >= 1")
        out = []
        for i in range(n + 1):
            t = self.t_start + (self.t_end - self.t_start) * i / n
            t = min(t, self.t_end)
            out.append((t, self.value_at(t)))
        return out


def distance_profile(
    q: Trajectory,
    t: Trajectory,
    period: tuple[float, float] | None = None,
    coverage: CoveragePolicy = "full",
) -> DistanceProfile:
    """Build the exact piecewise profile of ``D_{Q,T}`` (same period
    semantics as :func:`repro.distance.dissim`)."""
    from ..geometry import distance_trinomial_coefficients

    t_lo, t_hi, _scale = resolve_period(q, t, period, coverage)
    stamps = merged_timestamps(q, t, t_lo, t_hi)
    pieces: list[ProfilePiece] = []
    for lo, hi in zip(stamps, stamps[1:]):
        mid = (lo + hi) / 2.0
        if not (lo < mid < hi):
            continue  # sub-ulp sliver
        qs = q.segment_covering(mid).clipped(lo, hi)
        ts = t.segment_covering(mid).clipped(lo, hi)
        a, b, c, _t0, _t1 = distance_trinomial_coefficients(qs, ts)
        pieces.append(ProfilePiece(lo, hi, DistanceTrinomial(a, b, c)))
    return DistanceProfile(pieces)
