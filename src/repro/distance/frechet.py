"""Discrete Fréchet distance (Eiter & Mannila 1994).

The classic "dog-leash" distance on the sampled points: the smallest
leash length that lets two walkers traverse their polylines in order.
A purely spatial measure — included so the library covers the standard
trajectory-similarity toolbox; contrast it with DISSIM, which is
spatio*temporal*.
"""

from __future__ import annotations

import math

from ..trajectory import Trajectory

__all__ = ["discrete_frechet_distance"]


def discrete_frechet_distance(q: Trajectory, t: Trajectory) -> float:
    """Discrete Fréchet distance between the two sample sequences
    (dynamic program, O(n*m) time, O(m) memory)."""
    a = list(q.samples)
    b = list(t.samples)
    m = len(b)

    def d(i: int, j: int) -> float:
        return math.hypot(a[i].x - b[j].x, a[i].y - b[j].y)

    prev = [0.0] * m
    prev[0] = d(0, 0)
    for j in range(1, m):
        prev[j] = max(prev[j - 1], d(0, j))
    for i in range(1, len(a)):
        cur = [0.0] * m
        cur[0] = max(prev[0], d(i, 0))
        for j in range(1, m):
            cur[j] = max(min(prev[j], prev[j - 1], cur[j - 1]), d(i, j))
        prev = cur
    return prev[m - 1]
