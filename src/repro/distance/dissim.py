"""The DISSIM spatiotemporal dissimilarity metric (Definition 1).

``DISSIM(Q, T)`` over a period ``[t1, tn]`` is the definite integral of
the Euclidean distance between the two moving objects over that period.
With piecewise-linear trajectories the integrand is a square root of a
quadratic on every interval between consecutive *shared* timestamps
(the union of both trajectories' sampling instants), so the integral
splits into closed-form pieces — evaluated either exactly (arcsinh
formula) or by the paper's trapezoid approximation with the Lemma 1
error bound.

Different sampling rates are handled exactly as the paper prescribes:
the position of one object at the other's sampling instants is obtained
by linear interpolation, which is what splitting at the merged
timestamps achieves implicitly.
"""

from __future__ import annotations

import math
from typing import Literal

from ..exceptions import QueryError, TemporalCoverageError
from ..geometry import STSegment, distance_trinomial_coefficients
from ..obs import state as _obs
from ..trajectory import Trajectory
from .trinomial import DistanceTrinomial, IntegralResult

__all__ = [
    "dissim",
    "dissim_exact",
    "distance_at",
    "merged_timestamps",
    "resolve_period",
    "segment_dissim",
]

CoveragePolicy = Literal["full", "clip"]


def resolve_period(
    q: Trajectory,
    t: Trajectory,
    period: tuple[float, float] | None,
    coverage: CoveragePolicy = "full",
) -> tuple[float, float, float]:
    """Resolve the integration window and the normalisation factor.

    Returns ``(t_lo, t_hi, scale)`` where the dissimilarity computed on
    ``[t_lo, t_hi]`` should be multiplied by ``scale``:

    * ``coverage='full'`` (the paper's Definition 1): both trajectories
      must cover the requested period (default: the intersection of
      their lifetimes must equal... simply the period must be inside
      both lifetimes); ``scale`` is 1.
    * ``coverage='clip'`` (documented extension for ragged data): the
      window is intersected with both lifetimes and the result is
      scaled by ``period_length / overlap_length`` so values stay
      comparable across candidates.
    """
    if period is None:
        lo = max(q.t_start, t.t_start)
        hi = min(q.t_end, t.t_end)
        if lo >= hi:
            raise TemporalCoverageError(
                f"trajectories {q.object_id!r} and {t.object_id!r} do not "
                f"overlap in time"
            )
        return (lo, hi, 1.0)
    t_lo, t_hi = period
    if t_lo >= t_hi:
        raise QueryError(f"empty or inverted period [{t_lo}, {t_hi}]")
    if coverage == "full":
        for tr in (q, t):
            if not tr.covers(t_lo, t_hi):
                raise TemporalCoverageError(
                    f"trajectory {tr.object_id!r} "
                    f"[{tr.t_start}, {tr.t_end}] does not cover the "
                    f"period [{t_lo}, {t_hi}]"
                )
        return (t_lo, t_hi, 1.0)
    if coverage == "clip":
        lo = max(t_lo, q.t_start, t.t_start)
        hi = min(t_hi, q.t_end, t.t_end)
        if lo >= hi:
            raise TemporalCoverageError(
                f"trajectories {q.object_id!r} and {t.object_id!r} do not "
                f"overlap the period [{t_lo}, {t_hi}]"
            )
        return (lo, hi, (t_hi - t_lo) / (hi - lo))
    raise QueryError(f"unknown coverage policy {coverage!r}")


def merged_timestamps(
    q: Trajectory, t: Trajectory, t_lo: float, t_hi: float
) -> list[float]:
    """Sorted union of both trajectories' sampling timestamps inside
    ``[t_lo, t_hi]``, with the window endpoints prepended/appended."""
    stamps = {t_lo, t_hi}
    stamps.update(q.sampling_timestamps_in(t_lo, t_hi))
    stamps.update(t.sampling_timestamps_in(t_lo, t_hi))
    return sorted(stamps)


def distance_at(q: Trajectory, t: Trajectory, time: float) -> float:
    """Euclidean distance between the two (interpolated) positions at
    ``time``."""
    return q.position_at(time).distance_to(t.position_at(time))


def _interval_trinomial(
    q: Trajectory, t: Trajectory, lo: float, hi: float
) -> tuple[DistanceTrinomial, float]:
    """Trinomial of the inter-object distance on ``[lo, hi]``, an
    interval with no interior sampling instants of either trajectory.
    Returns ``(trinomial, local_span)`` with local time 0 at ``lo``."""
    qs = q.segment_covering((lo + hi) / 2.0).clipped(lo, hi)
    ts = t.segment_covering((lo + hi) / 2.0).clipped(lo, hi)
    a, b, c, t0, t1 = distance_trinomial_coefficients(qs, ts)
    return (DistanceTrinomial(a, b, c), t1 - t0)


def _degenerate(lo: float, hi: float) -> bool:
    """True for float-resolution intervals whose midpoint rounds onto
    an endpoint — they carry no measurable contribution and would make
    segment clipping blow up."""
    mid = (lo + hi) / 2.0
    return not (lo < mid < hi)


def dissim_exact(
    q: Trajectory,
    t: Trajectory,
    period: tuple[float, float] | None = None,
    coverage: CoveragePolicy = "full",
) -> float:
    """The exact DISSIM value (closed-form arcsinh integration)."""
    if _obs.ACTIVE is not None:
        _obs.ACTIVE.registry.inc("distance.dissim_exact_calls")
    t_lo, t_hi, scale = resolve_period(q, t, period, coverage)
    stamps = merged_timestamps(q, t, t_lo, t_hi)
    total = 0.0
    for lo, hi in zip(stamps, stamps[1:]):
        if _degenerate(lo, hi):
            continue
        tri, span = _interval_trinomial(q, t, lo, hi)
        total += tri.exact_integral(0.0, span)
    return total * scale


def dissim(
    q: Trajectory,
    t: Trajectory,
    period: tuple[float, float] | None = None,
    coverage: CoveragePolicy = "full",
) -> IntegralResult:
    """The trapezoid-approximated DISSIM with its Lemma 1 error bound.

    The exact metric satisfies ``result.lower <= exact <= result.upper``.
    This is the evaluation the paper's search algorithm performs.
    """
    if _obs.ACTIVE is not None:
        _obs.ACTIVE.registry.inc("distance.dissim_calls")
    t_lo, t_hi, scale = resolve_period(q, t, period, coverage)
    stamps = merged_timestamps(q, t, t_lo, t_hi)
    total = IntegralResult(0.0, 0.0)
    for lo, hi in zip(stamps, stamps[1:]):
        if _degenerate(lo, hi):
            continue
        tri, span = _interval_trinomial(q, t, lo, hi)
        total = total + tri.trapezoid_integral(0.0, span)
    if scale != 1.0:
        total = IntegralResult(total.approx * scale, total.error_bound * scale)
    return total


def segment_dissim(
    q: Trajectory, seg: STSegment, t_lo: float, t_hi: float, exact: bool = False
) -> tuple[IntegralResult, float, float]:
    """Dissimilarity contribution of one data segment against the query.

    Integrates the distance between the query trajectory and the moving
    point of ``seg`` over ``[t_lo, t_hi]`` (which must lie inside both
    the segment span and the query lifetime), splitting at the query's
    own sampling instants.  Returns ``(integral, d_start, d_end)`` where
    the two distances are the inter-object distances at the window
    endpoints — the ingredients the OPTDISSIM / PESDISSIM bookkeeping
    needs.  With ``exact=True`` the integral is closed-form and the
    error bound zero.

    This is the per-leaf-entry computation of the BFMST algorithm
    (Figure 7, line 18).
    """
    if _obs.ACTIVE is not None:
        _obs.ACTIVE.registry.inc(
            "distance.segment_windows_exact" if exact
            else "distance.segment_windows"
        )
    if not (seg.ts <= t_lo < t_hi <= seg.te):
        raise QueryError(
            f"window [{t_lo}, {t_hi}] outside segment span "
            f"[{seg.ts}, {seg.te}]"
        )
    if not q.covers(t_lo, t_hi):
        raise TemporalCoverageError(
            f"query {q.object_id!r} does not cover [{t_lo}, {t_hi}]"
        )
    stamps = [t_lo] + q.sampling_timestamps_in(t_lo, t_hi) + [t_hi]
    stamps = sorted(set(stamps))
    total = IntegralResult(0.0, 0.0)
    d_start = math.nan
    d_end = math.nan
    for lo, hi in zip(stamps, stamps[1:]):
        if _degenerate(lo, hi):
            continue
        qs = q.segment_covering((lo + hi) / 2.0).clipped(lo, hi)
        ts = seg.clipped(lo, hi)
        a, b, c, t0, t1 = distance_trinomial_coefficients(qs, ts)
        tri = DistanceTrinomial(a, b, c)
        span = t1 - t0
        if math.isnan(d_start):
            d_start = tri.value_at(0.0)
        d_end = tri.value_at(span)
        if exact:
            total = total + IntegralResult(tri.exact_integral(0.0, span), 0.0)
        else:
            total = total + tri.trapezoid_integral(0.0, span)
    if math.isnan(d_start):
        # Every sub-interval was at float resolution (a 1-ulp window):
        # fall back to direct endpoint distances.
        d_start = q.position_at(t_lo).distance_to(seg.position_at(t_lo))
        d_end = q.position_at(t_hi).distance_to(seg.position_at(t_hi))
    return (total, d_start, d_end)
