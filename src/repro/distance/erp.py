"""Edit distance with Real Penalty (Chen & Ng, VLDB 2004).

ERP is the metric cousin of EDR/DTW: gaps are penalised by the
distance to a constant reference point ``g`` instead of a unit cost,
which restores the triangle inequality (useful for metric-space
pruning).  Included as an extension — the paper's study stops at LCSS
and EDR, but downstream users of a trajectory-similarity library
expect the full family.
"""

from __future__ import annotations

import math

from ..geometry import Point
from ..trajectory import Trajectory

__all__ = ["erp_distance"]


def erp_distance(
    q: Trajectory, t: Trajectory, gap: Point | None = None
) -> float:
    """ERP with reference point ``gap`` (default: the origin).

    Dynamic program, O(n*m) time, O(m) memory.
    """
    g = gap if gap is not None else Point(0.0, 0.0)
    a = list(q.samples)
    b = list(t.samples)
    m = len(b)

    def d(p1, p2) -> float:
        return math.hypot(p1.x - p2.x, p1.y - p2.y)

    gap_b = [d(pb, g) for pb in b]
    # first row: delete all of b against the gap point
    prev = [0.0] * (m + 1)
    for j in range(1, m + 1):
        prev[j] = prev[j - 1] + gap_b[j - 1]
    for pa in a:
        cur = [prev[0] + d(pa, g)] + [0.0] * m
        for j in range(1, m + 1):
            pb = b[j - 1]
            cur[j] = min(
                prev[j - 1] + d(pa, pb),  # match
                prev[j] + d(pa, g),  # gap in b
                cur[j - 1] + gap_b[j - 1],  # gap in a
            )
        prev = cur
    return prev[m]
