"""Longest Common SubSequence similarity for trajectories
(Vlachos, Kollios, Gunopulos [21]) and its interpolation-improved
variant LCSS-I used in the paper's quality study.

Two samples match when both coordinate differences are within ``eps``
(and, optionally, their indices within ``delta`` — the time-stretching
window of [21]).  Similarity is ``LCSS / min(n, m)`` in ``[0, 1]``;
``lcss_distance`` is one minus that, so that *smaller is more similar*
as for every other measure in this package.
"""

from __future__ import annotations

from ..trajectory import Trajectory

__all__ = ["lcss_length", "lcss_similarity", "lcss_distance", "lcss_i_distance"]


def _matches(a, b, eps: float) -> bool:
    return abs(a.x - b.x) <= eps and abs(a.y - b.y) <= eps


def lcss_length(
    q: Trajectory, t: Trajectory, eps: float, delta: int | None = None
) -> int:
    """Length of the longest common subsequence under the
    ``eps``/``delta`` matching rule (dynamic program, O(n*m), memory
    O(min(n, m)))."""
    if eps < 0.0:
        raise ValueError(f"negative eps {eps}")
    a = list(q.samples)
    b = list(t.samples)
    if len(b) > len(a):
        a, b = b, a  # keep the DP row short
    m = len(b)
    prev = [0] * (m + 1)
    for i, pa in enumerate(a, start=1):
        cur = [0] * (m + 1)
        for j, pb in enumerate(b, start=1):
            if delta is not None and abs(i - j) > delta:
                cur[j] = max(prev[j], cur[j - 1])
                continue
            if _matches(pa, pb, eps):
                cur[j] = prev[j - 1] + 1
            else:
                cur[j] = max(prev[j], cur[j - 1])
        prev = cur
    return prev[m]


def lcss_similarity(
    q: Trajectory, t: Trajectory, eps: float, delta: int | None = None
) -> float:
    """``LCSS / min(n, m)`` in ``[0, 1]`` (1 = identical up to eps)."""
    denom = min(len(q), len(t))
    return lcss_length(q, t, eps, delta) / denom


def lcss_distance(
    q: Trajectory, t: Trajectory, eps: float, delta: int | None = None
) -> float:
    """``1 - similarity``: 0 for eps-identical sequences."""
    return 1.0 - lcss_similarity(q, t, eps, delta)


def lcss_i_distance(
    q: Trajectory, t: Trajectory, eps: float, delta: int | None = None
) -> float:
    """LCSS-I: the paper's "obvious improvement" — before matching,
    the (under-sampled) query is linearly interpolated at the data
    trajectory's sampling timestamps that fall inside the query's
    lifetime, so both sequences sample comparable instants."""
    stamps = sorted(
        set(p.t for p in q.samples)
        | set(ts for ts in (p.t for p in t.samples) if q.t_start <= ts <= q.t_end)
    )
    enriched = q.resampled(stamps) if len(stamps) >= 2 else q
    return lcss_distance(enriched, t, eps, delta)
