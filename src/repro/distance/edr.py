"""Edit Distance on Real sequence (Chen, Özsu, Oria [5]) and its
interpolation-improved variant EDR-I.

EDR counts the insert/delete/replace operations needed to turn one
sequence into the other, where two samples "match" (replace cost 0)
when both coordinate differences are within ``eps``.  Following [5],
trajectories should be z-normalised before comparison
(:meth:`repro.trajectory.TrajectoryDataset.normalised`) and ``eps`` set
to a quarter of the maximum coordinate standard deviation.
"""

from __future__ import annotations

from ..trajectory import Trajectory

__all__ = ["edr_distance", "edr_i_distance", "edr_normalised_distance"]


def _matches(a, b, eps: float) -> bool:
    return abs(a.x - b.x) <= eps and abs(a.y - b.y) <= eps


def edr_distance(q: Trajectory, t: Trajectory, eps: float) -> int:
    """Raw EDR edit count (dynamic program, O(n*m), memory O(m))."""
    if eps < 0.0:
        raise ValueError(f"negative eps {eps}")
    a = list(q.samples)
    b = list(t.samples)
    m = len(b)
    prev = list(range(m + 1))
    for i, pa in enumerate(a, start=1):
        cur = [i] + [0] * m
        for j, pb in enumerate(b, start=1):
            subcost = 0 if _matches(pa, pb, eps) else 1
            cur[j] = min(
                prev[j - 1] + subcost,  # match / replace
                prev[j] + 1,  # delete from a
                cur[j - 1] + 1,  # insert into a
            )
        prev = cur
    return prev[m]


def edr_normalised_distance(q: Trajectory, t: Trajectory, eps: float) -> float:
    """EDR divided by ``max(n, m)`` — a [0, 1] variant convenient for
    cross-length comparisons (not used by the paper's experiment, which
    ranks by the raw count; provided for downstream users)."""
    return edr_distance(q, t, eps) / max(len(q), len(t))


def edr_i_distance(q: Trajectory, t: Trajectory, eps: float) -> int:
    """EDR-I: interpolate the query at the data trajectory's sampling
    timestamps inside the query lifetime before computing EDR (the
    paper's improved variant)."""
    stamps = sorted(
        set(p.t for p in q.samples)
        | set(ts for ts in (p.t for p in t.samples) if q.t_start <= ts <= q.t_end)
    )
    enriched = q.resampled(stamps) if len(stamps) >= 2 else q
    return edr_distance(enriched, t, eps)
