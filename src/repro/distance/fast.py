"""Vectorised LCSS / EDR / DTW (numpy row-sweep dynamic programs).

The pure-Python implementations in :mod:`repro.distance.lcss` /
:mod:`.edr` / :mod:`.dtw` are the readable reference; these produce the
same values orders of magnitude faster, which the Figure 9 quality
bench needs (hundreds of full DP matrices per data point).

numpy is an *optional* extra, so the import is deferred to first use:
this module always imports, :func:`have_numpy` probes availability
without raising, and callers that need the speed get an actionable
:class:`ImportError` (the quality experiment falls back to the
reference metrics instead).

The sequential in-row dependency of the edit DPs is eliminated with the
classic running-extremum trick: for EDR,
``cur[j] = min(cand[j], cur[j-1] + 1)`` equals
``min over j' <= j of cand[j'] + (j - j')``, i.e.
``accumulate-min(cand - j) + j``; LCSS's ``max(cand[j], cur[j-1])`` is
a plain accumulated maximum.
"""

from __future__ import annotations

from ..trajectory import Trajectory

__all__ = [
    "have_numpy",
    "coords",
    "lcss_distance_fast",
    "edr_distance_fast",
    "dtw_distance_fast",
]

_np = None


def _numpy():
    """Import numpy on first use, memoised; raises an actionable
    :class:`ImportError` when it is not installed."""
    global _np
    if _np is None:
        try:
            import numpy
        except ImportError as exc:
            raise ImportError(
                "repro.distance.fast needs numpy, which is an optional "
                "extra: install it with `pip install numpy` (or the "
                "project's `[test]` extra), or use the pure-Python "
                "reference metrics in repro.distance.lcss / .edr / .dtw "
                "— repro.experiments.quality falls back to them "
                "automatically."
            ) from exc
        _np = numpy
    return _np


def have_numpy() -> bool:
    """``True`` when the vectorised DPs can run (numpy importable)."""
    try:
        _numpy()
    except ImportError:
        return False
    return True


def coords(traj: Trajectory):
    """``(n, 2)`` float array of the trajectory's spatial samples."""
    np = _numpy()
    return np.array([(p.x, p.y) for p in traj.samples], dtype=float)


def _match_matrix(a, b, eps: float):
    """Boolean ``(n, m)``: per-axis differences both within eps."""
    np = _numpy()
    dx = np.abs(a[:, None, 0] - b[None, :, 0]) <= eps
    dy = np.abs(a[:, None, 1] - b[None, :, 1]) <= eps
    return dx & dy


def lcss_distance_fast(a, b, eps: float) -> float:
    """``1 - LCSS/min(n, m)``, equal to
    :func:`repro.distance.lcss.lcss_distance` with ``delta=None``."""
    np = _numpy()
    n, m = len(a), len(b)
    match = _match_matrix(a, b, eps)
    prev = np.zeros(m + 1, dtype=np.int64)
    cur = np.zeros(m + 1, dtype=np.int64)
    for i in range(n):
        cand = np.maximum(prev[1:], prev[:-1] + match[i])
        np.maximum.accumulate(cand, out=cand)
        cur[1:] = cand
        prev, cur = cur, prev
    return 1.0 - prev[m] / min(n, m)


def edr_distance_fast(a, b, eps: float) -> int:
    """Raw EDR count, equal to :func:`repro.distance.edr.edr_distance`."""
    np = _numpy()
    n, m = len(a), len(b)
    match = _match_matrix(a, b, eps)
    idx = np.arange(1, m + 1, dtype=np.int64)
    prev = np.arange(m + 1, dtype=np.int64)
    cur = np.empty(m + 1, dtype=np.int64)
    for i in range(1, n + 1):
        cand = np.minimum(prev[:-1] + (1 - match[i - 1]), prev[1:] + 1)
        # Fold in the left-to-right insert chain seeded by cur[0] = i:
        # cur[j] - j is the running minimum of cand[j'] - j' with the
        # seed value i (= cur[0] - 0) merged into the first slot.
        shifted = cand - idx
        if shifted[0] > i:
            shifted[0] = i
        np.minimum.accumulate(shifted, out=shifted)
        cur[0] = i
        cur[1:] = shifted + idx
        prev, cur = cur, prev
    return int(prev[m])


def dtw_distance_fast(a, b) -> float:
    """Unconstrained DTW, equal to
    :func:`repro.distance.dtw.dtw_distance` with ``band=None``.

    The in-row dependency of DTW cannot be removed exactly, so this is
    a per-row loop with a vectorised cost matrix — still ~20x the pure
    Python version.
    """
    np = _numpy()
    n, m = len(a), len(b)
    cost = np.hypot(
        a[:, None, 0] - b[None, :, 0], a[:, None, 1] - b[None, :, 1]
    )
    prev = np.full(m + 1, np.inf)
    prev[0] = 0.0
    cur = np.empty(m + 1)
    for i in range(n):
        cur[0] = np.inf
        row = cost[i]
        diag_or_up = np.minimum(prev[:-1], prev[1:])
        for j in range(1, m + 1):
            cur[j] = row[j - 1] + min(diag_or_up[j - 1], cur[j - 1])
        prev, cur = cur, prev
    return float(prev[m])
