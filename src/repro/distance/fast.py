"""Vectorised LCSS / EDR / DTW (numpy row-sweep dynamic programs).

The pure-Python implementations in :mod:`repro.distance.lcss` /
:mod:`.edr` / :mod:`.dtw` are the readable reference; these produce the
same values orders of magnitude faster, which the Figure 9 quality
bench needs (hundreds of full DP matrices per data point).

numpy is an *optional* extra, so the import is deferred to first use:
this module always imports, :func:`have_numpy` probes availability
without raising, and callers that need the speed get an actionable
:class:`ImportError` (the quality experiment falls back to the
reference metrics instead).

The sequential in-row dependency of the edit DPs is eliminated with the
classic running-extremum trick: for EDR,
``cur[j] = min(cand[j], cur[j-1] + 1)`` equals
``min over j' <= j of cand[j'] + (j - j')``, i.e.
``accumulate-min(cand - j) + j``; LCSS's ``max(cand[j], cur[j-1])`` is
a plain accumulated maximum.
"""

from __future__ import annotations

from ..trajectory import Trajectory

__all__ = [
    "have_numpy",
    "coords",
    "lcss_distance_fast",
    "edr_distance_fast",
    "dtw_distance_fast",
]

_np = None


def _numpy():
    """Import numpy on first use, memoised; raises an actionable
    :class:`ImportError` when it is not installed."""
    global _np
    if _np is None:
        try:
            import numpy

            # Probe an attribute before memoising: a concurrent failed
            # import can yield a half-initialized module object, which
            # must not be cached as "numpy is available".
            numpy.ndarray
        except (ImportError, AttributeError) as exc:
            raise ImportError(
                "repro.distance.fast needs numpy, which is an optional "
                "extra: install it with `pip install numpy` (or the "
                "project's `[test]` extra), or use the pure-Python "
                "reference metrics in repro.distance.lcss / .edr / .dtw "
                "— repro.experiments.quality falls back to them "
                "automatically."
            ) from exc
        _np = numpy
    return _np


def have_numpy() -> bool:
    """``True`` when the vectorised DPs can run (numpy importable)."""
    try:
        _numpy()
    except ImportError:
        return False
    return True


def coords(traj: Trajectory):
    """``(n, 2)`` float array of the trajectory's spatial samples.

    Served from the trajectory's memoised columnar view
    (:meth:`~repro.trajectory.Trajectory.columns`), so repeat calls for
    the same trajectory — every metric x eps combination of the Figure
    9 bench — cost a lookup, not a rebuild.  The array is shared and
    read-only; callers needing a private mutable copy must ``.copy()``.
    """
    _numpy()
    return traj.columns().xy()


def _match_matrix(a, b, eps: float):
    """Boolean ``(n, m)``: per-axis differences both within eps."""
    np = _numpy()
    dx = np.abs(a[:, None, 0] - b[None, :, 0]) <= eps
    dy = np.abs(a[:, None, 1] - b[None, :, 1]) <= eps
    return dx & dy


def lcss_distance_fast(a, b, eps: float) -> float:
    """``1 - LCSS/min(n, m)``, equal to
    :func:`repro.distance.lcss.lcss_distance` with ``delta=None``."""
    np = _numpy()
    n, m = len(a), len(b)
    match = _match_matrix(a, b, eps)
    prev = np.zeros(m + 1, dtype=np.int64)
    cur = np.zeros(m + 1, dtype=np.int64)
    for i in range(n):
        cand = np.maximum(prev[1:], prev[:-1] + match[i])
        np.maximum.accumulate(cand, out=cand)
        cur[1:] = cand
        prev, cur = cur, prev
    return 1.0 - prev[m] / min(n, m)


def edr_distance_fast(a, b, eps: float) -> int:
    """Raw EDR count, equal to :func:`repro.distance.edr.edr_distance`."""
    np = _numpy()
    n, m = len(a), len(b)
    match = _match_matrix(a, b, eps)
    idx = np.arange(1, m + 1, dtype=np.int64)
    prev = np.arange(m + 1, dtype=np.int64)
    cur = np.empty(m + 1, dtype=np.int64)
    for i in range(1, n + 1):
        cand = np.minimum(prev[:-1] + (1 - match[i - 1]), prev[1:] + 1)
        # Fold in the left-to-right insert chain seeded by cur[0] = i:
        # cur[j] - j is the running minimum of cand[j'] - j' with the
        # seed value i (= cur[0] - 0) merged into the first slot.
        shifted = cand - idx
        if shifted[0] > i:
            shifted[0] = i
        np.minimum.accumulate(shifted, out=shifted)
        cur[0] = i
        cur[1:] = shifted + idx
        prev, cur = cur, prev
    return int(prev[m])


#: Block width of the DTW in-row min-plus scan.  Within one block the
#: left-to-right chain ``cur[j-1] + row[j]`` is rewritten over prefix
#: sums (``cumsum`` + ``minimum.accumulate``), which reassociates the
#: additions — a small block keeps the float drift well under the 1e-9
#: the equality tests allow while still amortising the Python loop.
_DTW_BLOCK = 64


def dtw_distance_fast(a, b) -> float:
    """Unconstrained DTW, equal to
    :func:`repro.distance.dtw.dtw_distance` with ``band=None``.

    The in-row dependency ``cur[j] = row[j-1] + min(d[j-1], cur[j-1])``
    is a min-plus prefix scan: unrolled, ``cur[j]`` is the cheapest way
    of entering the row at some ``j0 <= j`` and paying the row costs
    from there on.  Over a block with ``T = cumsum(row)`` that is
    ``T + min(accumulate-min(d - shift(T)), cur[block_start])`` — three
    vector ops per block instead of a Python iteration per cell.
    """
    np = _numpy()
    n, m = len(a), len(b)
    cost = np.hypot(
        a[:, None, 0] - b[None, :, 0], a[:, None, 1] - b[None, :, 1]
    )
    prev = np.full(m + 1, np.inf)
    prev[0] = 0.0
    cur = np.empty(m + 1)
    for i in range(n):
        cur[0] = np.inf
        row = cost[i]
        diag_or_up = np.minimum(prev[:-1], prev[1:])
        for js in range(0, m, _DTW_BLOCK):
            je = min(js + _DTW_BLOCK, m)
            T = np.cumsum(row[js:je])
            w = diag_or_up[js:je].copy()
            w[1:] -= T[:-1]
            np.minimum.accumulate(w, out=w)
            cur[js + 1 : je + 1] = T + np.minimum(w, cur[js])
        prev, cur = cur, prev
    return float(prev[m])
