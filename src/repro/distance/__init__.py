"""Dissimilarity metrics and pruning bounds.

The paper's contribution (DISSIM + bounds) lives here next to the
competitor measures it is evaluated against (LCSS, EDR, DTW, lock-step
Euclidean).
"""

from .bounds import CoveredInterval, PartialDissim, mindissim_inc
from .dissim import (
    dissim,
    dissim_exact,
    distance_at,
    merged_timestamps,
    resolve_period,
    segment_dissim,
)
from .dtw import dtw_distance
from .edr import edr_distance, edr_i_distance, edr_normalised_distance
from .erp import erp_distance
from .euclidean import euclidean_distance, mean_euclidean_distance
from .frechet import discrete_frechet_distance
from .kernels import (
    KERNEL_MODES,
    make_segment_dissim_batch,
    resolve_kernels,
    segment_dissim_batch,
    segment_dissim_batch_python,
)
from .lcss import lcss_distance, lcss_i_distance, lcss_length, lcss_similarity
from .ldd import ldd
from .profile import DistanceProfile, ProfilePiece, distance_profile
from .trinomial import DistanceTrinomial, IntegralResult

__all__ = [
    "DistanceTrinomial",
    "IntegralResult",
    "dissim",
    "dissim_exact",
    "distance_at",
    "merged_timestamps",
    "resolve_period",
    "segment_dissim",
    "KERNEL_MODES",
    "resolve_kernels",
    "segment_dissim_batch",
    "segment_dissim_batch_python",
    "make_segment_dissim_batch",
    "ldd",
    "DistanceProfile",
    "ProfilePiece",
    "distance_profile",
    "CoveredInterval",
    "PartialDissim",
    "mindissim_inc",
    "lcss_length",
    "lcss_similarity",
    "lcss_distance",
    "lcss_i_distance",
    "edr_distance",
    "edr_i_distance",
    "edr_normalised_distance",
    "dtw_distance",
    "erp_distance",
    "discrete_frechet_distance",
    "euclidean_distance",
    "mean_euclidean_distance",
]
