"""Lock-step Euclidean distance between equally long trajectories.

The time-series classic ([1], [22]): the sum (or mean) of the pairwise
sample distances.  Only defined when both trajectories carry the same
number of samples — exactly the limitation the paper's DISSIM metric is
designed to remove.
"""

from __future__ import annotations

import math

from ..exceptions import QueryError
from ..trajectory import Trajectory

__all__ = ["euclidean_distance", "mean_euclidean_distance"]


def euclidean_distance(q: Trajectory, t: Trajectory) -> float:
    """Sum of pairwise sample distances; raises unless lengths match."""
    if len(q) != len(t):
        raise QueryError(
            f"lock-step Euclidean needs equal lengths "
            f"({len(q)} vs {len(t)}); resample first or use DISSIM"
        )
    return sum(
        math.hypot(a.x - b.x, a.y - b.y) for a, b in zip(q.samples, t.samples)
    )


def mean_euclidean_distance(q: Trajectory, t: Trajectory) -> float:
    """The per-sample average of :func:`euclidean_distance`."""
    return euclidean_distance(q, t) / len(q)
