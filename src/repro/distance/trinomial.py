"""The distance trinomial ``D(tau) = sqrt(a tau^2 + b tau + c)``.

Between two consecutive shared timestamps, both trajectories move
linearly, so their Euclidean distance is the square root of a quadratic
in time (Frentzos et al., Section 3, following [6]).  This module
implements everything the paper does with that function:

* point evaluation and the closed-form definite integral (the arcsinh
  formula of Meratnia & By used in Definition 1),
* the trapezoid-rule approximation of Lemma 1, and
* the one-sided error bound of Lemma 1 — ``D`` is convex
  (``D'' = (4ac - b^2) / (4 f^{3/2}) >= 0``), so the trapezoid rule
  *over*-estimates and the true integral lies in
  ``[approx - bound, approx]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..obs import state as _obs

__all__ = ["DistanceTrinomial", "IntegralResult"]

# Below this, the quadratic coefficient is treated as zero (pure
# floating-point noise from the velocity subtraction).
_A_EPS = 1e-30


@dataclass(frozen=True, slots=True)
class IntegralResult:
    """A trapezoid-approximated integral with its Lemma 1 error bound.

    The exact value is guaranteed to lie in
    ``[approx - error_bound, approx]`` (one-sided, by convexity).
    """

    approx: float
    error_bound: float

    @property
    def lower(self) -> float:
        """Certified lower bound on the exact integral."""
        return self.approx - self.error_bound

    @property
    def upper(self) -> float:
        """Certified upper bound on the exact integral (the trapezoid
        value itself)."""
        return self.approx

    def __add__(self, other: "IntegralResult") -> "IntegralResult":
        return IntegralResult(
            self.approx + other.approx, self.error_bound + other.error_bound
        )


_ZERO_RESULT = IntegralResult(0.0, 0.0)


@dataclass(frozen=True, slots=True)
class DistanceTrinomial:
    """``D(tau) = sqrt(a tau^2 + b tau + c)`` on local time ``tau``.

    ``a >= 0`` always; ``c >= 0`` because it is a squared distance.  The
    discriminant ``b^2 - 4ac`` is ``<= 0`` mathematically but may peek
    above zero by rounding; all formulas clamp accordingly.
    """

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if self.a < 0.0 or self.c < -1e-9:
            raise ValueError(f"invalid trinomial coefficients: {self}")

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def squared_value_at(self, tau: float) -> float:
        """``f(tau) = a tau^2 + b tau + c`` clamped at zero."""
        return max((self.a * tau + self.b) * tau + self.c, 0.0)

    def value_at(self, tau: float) -> float:
        """The distance ``D(tau)``."""
        return math.sqrt(self.squared_value_at(tau))

    @property
    def flex(self) -> float | None:
        """``tau* = -b / 2a``, the minimiser of the distance (and the
        maximiser of ``D''``); ``None`` when ``a == 0``."""
        if self.a <= _A_EPS:
            return None
        return -self.b / (2.0 * self.a)

    def second_derivative_at(self, tau: float) -> float:
        """``D''(tau) = (4ac - b^2) / (4 f(tau)^{3/2})``; ``inf`` where
        the two objects coincide (``f = 0``) while not moving in
        lock-step."""
        disc = max(4.0 * self.a * self.c - self.b * self.b, 0.0)
        if disc == 0.0:
            return 0.0
        f = self.squared_value_at(tau)
        # f^{3/2} as f * sqrt(f): correctly-rounded primitives, so the
        # vectorised kernel reproduces it bit for bit (libm pow does
        # not match numpy's); underflows to 0 for subnormal distances.
        f15 = f * math.sqrt(f)
        if f15 == 0.0:
            return math.inf
        return disc / (4.0 * f15)

    # ------------------------------------------------------------------
    # exact integral
    # ------------------------------------------------------------------
    def exact_integral(self, tau0: float, tau1: float) -> float:
        """The definite integral of ``D`` over ``[tau0, tau1]``.

        For ``a > 0`` uses the substitution ``u = tau + b/2a`` and
        ``k^2 = (4ac - b^2) / 4a^2`` so that the integrand becomes
        ``sqrt(a) * sqrt(u^2 + k^2)`` with antiderivative
        ``sqrt(a) * (u/2 sqrt(u^2 + k^2) + k^2/2 asinh(u/k))`` — the
        paper's arcsinh formula in a numerically stable form.  The
        degenerate perfect-square case ``k = 0`` integrates
        ``sqrt(a) |u|``.
        """
        if tau1 < tau0:
            raise ValueError(f"inverted interval [{tau0}, {tau1}]")
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.registry.inc("distance.exact_integrals")
        if tau1 == tau0:
            return 0.0
        scale = max(abs(tau0), abs(tau1))
        if (
            self.a <= _A_EPS
            or self.a * scale * scale <= 1e-16 * self.c
        ):
            # a == 0 implies b == 0 (else f would go negative); and
            # when a*tau^2 is < 1e-16 of c the quadratic terms are
            # below double precision at this scale (b^2 <= 4ac keeps b
            # negligible too) while the closed form would suffer
            # catastrophic cancellation — integrate the constant.
            return math.sqrt(max(self.c, 0.0)) * (tau1 - tau0)
        sqrt_a = math.sqrt(self.a)
        shift = self.b / (2.0 * self.a)
        k_sq = max(4.0 * self.a * self.c - self.b * self.b, 0.0) / (
            4.0 * self.a * self.a
        )
        u0 = tau0 + shift
        u1 = tau1 + shift
        if k_sq == 0.0:
            # D(tau) = sqrt(a) |u|; antiderivative sqrt(a) * u|u|/2.
            return sqrt_a * (u1 * abs(u1) - u0 * abs(u0)) / 2.0
        k = math.sqrt(k_sq)

        def anti(u: float) -> float:
            return 0.5 * (u * math.sqrt(u * u + k_sq) + k_sq * math.asinh(u / k))

        return sqrt_a * (anti(u1) - anti(u0))

    # ------------------------------------------------------------------
    # trapezoid approximation (Lemma 1)
    # ------------------------------------------------------------------
    def trapezoid_integral(self, tau0: float, tau1: float) -> IntegralResult:
        """One-panel trapezoid approximation over ``[tau0, tau1]`` with
        the Lemma 1 error bound.

        The bound is ``(dt^3 / 12) * max D''`` where the maximum of the
        (non-negative, unimodal-peaked) second derivative over the
        interval sits at the flex ``-b/2a`` when it falls inside, else
        at the endpoint nearer to it — the three cases of Lemma 1.
        When the objects actually meet inside the interval (``D = 0``
        with distinct velocities) the curvature bound is infinite and
        the bound falls back to the trivial but finite
        ``approx - chord_lower_bound`` (see below).
        """
        if tau1 < tau0:
            raise ValueError(f"inverted interval [{tau0}, {tau1}]")
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.registry.inc("distance.trapezoid_integrals")
        dt = tau1 - tau0
        if dt == 0.0:
            return _ZERO_RESULT
        d0 = self.value_at(tau0)
        d1 = self.value_at(tau1)
        approx = 0.5 * (d0 + d1) * dt
        flex = self.flex
        if flex is None:
            return IntegralResult(approx, 0.0)
        if tau0 <= flex <= tau1:
            disc = 4.0 * self.a * self.c - self.b * self.b
            if disc <= 0.0 and tau0 < flex < tau1:
                # Perfect square: D(tau) = sqrt(a)|tau - flex| has a
                # kink at the flex, Lemma 1's curvature bound does not
                # apply — but the integral is closed-form cheap here,
                # so certify with the true error.
                exact = self.exact_integral(tau0, tau1)
                return IntegralResult(approx, max(approx - exact, 0.0))
            curvature = self.second_derivative_at(flex)
        elif flex < tau0:
            curvature = self.second_derivative_at(tau0)
        else:
            curvature = self.second_derivative_at(tau1)
        bound = dt * dt * dt / 12.0 * curvature
        if not math.isfinite(bound):
            # Objects collide inside the panel: curvature blows up, but
            # the trapezoid value itself (exact >= 0 and trapezoid >=
            # exact by convexity) is always a valid width.
            bound = approx
        return IntegralResult(approx, min(bound, approx))

    def subdivided_integral(self, tau0: float, tau1: float, panels: int) -> IntegralResult:
        """Composite trapezoid rule with ``panels`` equal panels; the
        error bound shrinks as ``1/panels^2``.  Used by the approximation
        ablation bench; the paper's algorithm uses one panel per shared
        sampling interval."""
        if panels < 1:
            raise ValueError("panels must be >= 1")
        step = (tau1 - tau0) / panels
        total = _ZERO_RESULT
        for i in range(panels):
            lo = tau0 + i * step
            hi = tau1 if i == panels - 1 else lo + step
            total = total + self.trapezoid_integral(lo, hi)
        return total
