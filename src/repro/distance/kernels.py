"""Vectorised hot-path kernels for the BFMST search.

The scalar DISSIM machinery (:mod:`repro.distance.dissim`,
:mod:`repro.distance.trinomial`) evaluates one merged-timestamp piece
at a time in pure Python; during a search that cost dominates — every
qualifying leaf entry triggers a :func:`segment_dissim` and every node
expansion a string of MINDIST evaluations.  This module batches the
former (the latter lives in :mod:`repro.index.mindist`): the trinomial
coefficients, the trapezoid integral and its Lemma 1 error bound for
*all* pieces of *many* leaf windows are computed in a handful of numpy
passes over the query's columnar view (:meth:`Trajectory.columns`).

The vectorised path replays the scalar arithmetic operation for
operation (same clipping special cases, same accumulation order), so
the numbers agree to the last bit on the regular path; the one
exception is the rare perfect-square piece with an interior flex,
which is delegated to the scalar code.

numpy stays an *optional* extra — the same deferral idiom as
:mod:`repro.distance.fast`.  ``kernels="python"`` (and ``"auto"``
without numpy) selects loop-based batch functions built on the scalar
reference implementations, so the batched call plumbing is exercised,
and trivially answer-identical, on interpreters without numpy.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Sequence

from ..exceptions import QueryError, TemporalCoverageError
from ..geometry import STSegment
from ..obs import state as _obs
from ..trajectory import Trajectory
from .dissim import segment_dissim
from .trinomial import _A_EPS, DistanceTrinomial, IntegralResult

__all__ = [
    "KERNEL_MODES",
    "have_numpy",
    "resolve_kernels",
    "segment_dissim_batch",
    "segment_dissim_batch_python",
    "make_segment_dissim_batch",
]

KERNEL_MODES = ("auto", "numpy", "python")

_np = None


def _numpy():
    """Import numpy on first use, memoised; raises an actionable
    :class:`ImportError` when it is not installed."""
    global _np
    if _np is None:
        try:
            import numpy

            # A concurrent *failed* import can hand this thread the
            # half-initialized module object (CPython returns the
            # sys.modules entry it read before waiting on the import
            # lock); probing an attribute rejects it instead of
            # memoising a broken module for the rest of the process.
            numpy.ndarray
        except (ImportError, AttributeError) as exc:
            raise ImportError(
                "kernels='numpy' needs numpy, which is an optional extra: "
                "install it with `pip install numpy` (or the project's "
                "`[test]` extra), or select kernels='python' (or 'auto') "
                "to use the pure-Python reference path."
            ) from exc
        _np = numpy
    return _np


def have_numpy() -> bool:
    """``True`` when the vectorised kernels can run (numpy importable)."""
    try:
        _numpy()
    except ImportError:
        return False
    return True


def resolve_kernels(mode: str) -> str:
    """Resolve a ``kernels=`` choice to a concrete implementation.

    ``"auto"`` picks ``"numpy"`` when numpy is importable and
    ``"python"`` otherwise; ``"numpy"`` raises the actionable
    :class:`ImportError` when numpy is missing rather than silently
    degrading.
    """
    if mode == "auto":
        return "numpy" if have_numpy() else "python"
    if mode == "python":
        return "python"
    if mode == "numpy":
        _numpy()
        return "numpy"
    raise ValueError(
        f"unknown kernels mode {mode!r}; expected one of {KERNEL_MODES}"
    )


# ----------------------------------------------------------------------
# batched segment DISSIM
# ----------------------------------------------------------------------

def segment_dissim_batch_python(
    q: Trajectory, items: Sequence[tuple[STSegment, float, float]]
) -> list[tuple[IntegralResult, float, float]]:
    """Loop-based reference batch: one scalar :func:`segment_dissim`
    per ``(segment, t_lo, t_hi)`` item."""
    return [segment_dissim(q, seg, lo, hi) for seg, lo, hi in items]


def segment_dissim_batch(
    q: Trajectory, items: Sequence[tuple[STSegment, float, float]]
) -> list[tuple[IntegralResult, float, float]]:
    """Vectorised batch of :func:`repro.distance.dissim.segment_dissim`.

    Computes the dissimilarity contribution of many ``(segment, t_lo,
    t_hi)`` windows against the query in one numpy pass over all their
    merged-timestamp pieces.  Returns one ``(integral, d_start, d_end)``
    triple per item, matching the scalar function's values (bit-equal
    on the regular path; the perfect-square interior-flex piece is
    delegated to the scalar code, so it is bit-equal too).
    """
    np = _numpy()
    reg = _obs.ACTIVE.registry if _obs.ACTIVE is not None else None
    if reg is not None:
        reg.inc("distance.kernel_batches")
        reg.inc("distance.kernel_segments", len(items))
        reg.inc("distance.segment_windows", len(items))

    cols = q.columns()
    qt_buf = cols.t

    # Enumerate the non-degenerate pieces of every window, exactly as
    # the scalar loop does: split at the query's interior sampling
    # instants, drop float-resolution slivers.
    piece_lo: list[float] = []
    piece_hi: list[float] = []
    counts: list[int] = []
    s_ts: list[float] = []
    s_te: list[float] = []
    s_x0: list[float] = []
    s_y0: list[float] = []
    s_xe: list[float] = []
    s_ye: list[float] = []
    for seg, t_lo, t_hi in items:
        if not (seg.ts <= t_lo < t_hi <= seg.te):
            raise QueryError(
                f"window [{t_lo}, {t_hi}] outside segment span "
                f"[{seg.ts}, {seg.te}]"
            )
        if not q.covers(t_lo, t_hi):
            raise TemporalCoverageError(
                f"query {q.object_id!r} does not cover [{t_lo}, {t_hi}]"
            )
        n_before = len(piece_lo)
        prev = t_lo
        i0 = bisect_right(qt_buf, t_lo)
        i1 = bisect_left(qt_buf, t_hi)
        for t in qt_buf[i0:i1]:
            mid = (prev + t) / 2.0
            if prev < mid < t:
                piece_lo.append(prev)
                piece_hi.append(t)
            prev = t
        mid = (prev + t_hi) / 2.0
        if prev < mid < t_hi:
            piece_lo.append(prev)
            piece_hi.append(t_hi)
        n = len(piece_lo) - n_before
        counts.append(n)
        if n:
            s_ts.extend([seg.ts] * n)
            s_te.extend([seg.te] * n)
            s_x0.extend([seg.start.x] * n)
            s_y0.extend([seg.start.y] * n)
            s_xe.extend([seg.end.x] * n)
            s_ye.extend([seg.end.y] * n)

    n_pieces = len(piece_lo)
    if n_pieces == 0:
        # Every window collapsed to float-resolution slivers; the
        # scalar fallback distances are cheap, reuse them directly.
        return [_degenerate_window(q, seg, lo, hi) for seg, lo, hi in items]

    lo_a = np.asarray(piece_lo)
    hi_a = np.asarray(piece_hi)
    span = hi_a - lo_a
    mid = (lo_a + hi_a) / 2.0

    # Query segment covering each piece (bisect_right semantics, like
    # Trajectory.segment_covering; no clamp needed — the midpoint is
    # strictly inside the query lifetime).
    qt = cols.t_view()
    qx = cols.x_view()
    qy = cols.y_view()
    k = np.searchsorted(qt, mid, side="right") - 1
    np.minimum(k, len(qt) - 2, out=k)
    qts = qt[k]
    qte = qt[k + 1]
    qx0 = qx[k]
    qxe = qx[k + 1]
    qy0 = qy[k]
    qye = qy[k + 1]
    qdur = qte - qts

    # Interpolated endpoints with STSegment.position_at's exact
    # endpoint special cases (t == ts / t == te return the samples).
    frac_lo = (lo_a - qts) / qdur
    frac_hi = (hi_a - qts) / qdur
    qx_lo = np.where(lo_a == qts, qx0, qx0 + frac_lo * (qxe - qx0))
    qy_lo = np.where(lo_a == qts, qy0, qy0 + frac_lo * (qye - qy0))
    qx_hi = np.where(hi_a == qte, qxe, qx0 + frac_hi * (qxe - qx0))
    qy_hi = np.where(hi_a == qte, qye, qy0 + frac_hi * (qye - qy0))

    sts = np.asarray(s_ts)
    ste = np.asarray(s_te)
    sx0 = np.asarray(s_x0)
    sy0 = np.asarray(s_y0)
    sxe = np.asarray(s_xe)
    sye = np.asarray(s_ye)
    sdur = ste - sts
    sfrac_lo = (lo_a - sts) / sdur
    sfrac_hi = (hi_a - sts) / sdur
    sx_lo = np.where(lo_a == sts, sx0, sx0 + sfrac_lo * (sxe - sx0))
    sy_lo = np.where(lo_a == sts, sy0, sy0 + sfrac_lo * (sye - sy0))
    sx_hi = np.where(hi_a == ste, sxe, sx0 + sfrac_hi * (sxe - sx0))
    sy_hi = np.where(hi_a == ste, sye, sy0 + sfrac_hi * (sye - sy0))

    # Trinomial coefficients of the clipped pair (velocities measured
    # over the clipped span, as STSegment.clipped + velocity do).
    dx0 = qx_lo - sx_lo
    dy0 = qy_lo - sy_lo
    dvx = (qx_hi - qx_lo) / span - (sx_hi - sx_lo) / span
    dvy = (qy_hi - qy_lo) / span - (sy_hi - sy_lo) / span
    a = dvx * dvx + dvy * dvy
    b = 2.0 * (dx0 * dvx + dy0 * dvy)
    c = dx0 * dx0 + dy0 * dy0

    # One-panel trapezoid with the Lemma 1 bound, vectorised.
    d0 = np.sqrt(c)  # f(0) = c exactly, and c >= 0 (sum of squares)
    d1 = np.sqrt(np.maximum((a * span + b) * span + c, 0.0))
    approx = 0.5 * (d0 + d1) * span

    has_flex = a > _A_EPS
    with np.errstate(divide="ignore", invalid="ignore"):
        flex = np.where(has_flex, -b / (2.0 * a), 0.0)
    disc = 4.0 * a * c - b * b
    tau_eval = np.clip(flex, 0.0, span)
    disc2 = np.maximum(disc, 0.0)
    f = np.maximum((a * tau_eval + b) * tau_eval + c, 0.0)
    f15 = f * np.sqrt(f)
    with np.errstate(divide="ignore", invalid="ignore"):
        curvature = np.where(
            disc2 == 0.0, 0.0, np.where(f15 == 0.0, np.inf, disc2 / (4.0 * f15))
        )
    bound = span * span * span / 12.0 * curvature
    bound = np.where(np.isfinite(bound), bound, approx)
    bound = np.minimum(bound, approx)
    bound = np.where(has_flex, bound, 0.0)

    # Perfect square with an interior flex: D has a kink there, the
    # curvature bound does not apply — the scalar code certifies those
    # pieces against the (cheap) closed-form integral.
    ps = has_flex & (disc <= 0.0) & (0.0 < flex) & (flex < span)
    ps_idx = np.flatnonzero(ps)
    if reg is not None:
        reg.inc("distance.trapezoid_integrals", n_pieces - len(ps_idx))
    for i in ps_idx:
        tri = DistanceTrinomial(float(a[i]), float(b[i]), float(c[i]))
        res = tri.trapezoid_integral(0.0, float(span[i]))
        approx[i] = res.approx
        bound[i] = res.error_bound

    approx_l = approx.tolist()
    bound_l = bound.tolist()
    d0_l = d0.tolist()
    d1_l = d1.tolist()
    out: list[tuple[IntegralResult, float, float]] = []
    pos = 0
    for (seg, t_lo, t_hi), n in zip(items, counts):
        if n == 0:
            out.append(_degenerate_window(q, seg, t_lo, t_hi))
            continue
        total_a = 0.0
        total_e = 0.0
        for j in range(pos, pos + n):
            total_a += approx_l[j]
            total_e += bound_l[j]
        out.append((IntegralResult(total_a, total_e), d0_l[pos], d1_l[pos + n - 1]))
        pos += n
    return out


def _degenerate_window(
    q: Trajectory, seg: STSegment, t_lo: float, t_hi: float
) -> tuple[IntegralResult, float, float]:
    """The scalar fallback for a window where every sub-interval sits
    at float resolution: zero integral, direct endpoint distances."""
    d_start = q.position_at(t_lo).distance_to(seg.position_at(t_lo))
    d_end = q.position_at(t_hi).distance_to(seg.position_at(t_hi))
    return (IntegralResult(0.0, 0.0), d_start, d_end)


def make_segment_dissim_batch(mode: str = "auto"):
    """The batched segment-DISSIM implementation for ``mode``
    (``"auto" | "numpy" | "python"``)."""
    if resolve_kernels(mode) == "numpy":
        return segment_dissim_batch
    return segment_dissim_batch_python
