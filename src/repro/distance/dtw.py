"""Dynamic Time Warping distance (Berndt & Clifford [2]).

The paper excludes DTW from its quality study because LCSS and EDR were
already shown to dominate it; we implement it anyway so the extended
quality bench can verify that claim on our data.  Point cost is the
spatial Euclidean distance; an optional Sakoe-Chiba ``band`` constrains
the warping path.
"""

from __future__ import annotations

import math

from ..trajectory import Trajectory

__all__ = ["dtw_distance"]


def dtw_distance(q: Trajectory, t: Trajectory, band: int | None = None) -> float:
    """Classic DTW with sum-of-Euclidean-costs objective (O(n*m) time,
    O(m) memory; ``band`` limits ``|i - j|`` when given)."""
    a = list(q.samples)
    b = list(t.samples)
    n, m = len(a), len(b)
    if band is not None and band < abs(n - m):
        raise ValueError(
            f"band {band} too narrow for lengths {n} and {m}"
        )
    inf = math.inf
    prev = [inf] * (m + 1)
    prev[0] = 0.0
    for i, pa in enumerate(a, start=1):
        cur = [inf] * (m + 1)
        j_lo = 1 if band is None else max(1, i - band)
        j_hi = m if band is None else min(m, i + band)
        for j in range(j_lo, j_hi + 1):
            pb = b[j - 1]
            cost = math.hypot(pa.x - pb.x, pa.y - pb.y)
            cur[j] = cost + min(prev[j], cur[j - 1], prev[j - 1])
        prev = cur
    return prev[m]
