"""Crash-safe file commitment: write-temp, fsync, atomic rename.

The persistence layers (``repro.index.persistence`` and
``repro.sharding.persistence``) never write a final file in place.
They produce the content under a temporary name in the *same
directory*, force it to stable storage, and :func:`os.replace` it over
the final name — so a crash at any instant leaves either the complete
old state or the complete new state, never a half-written file that
later loads as garbage.  Directory entries are fsynced too (on POSIX)
so the rename itself survives power loss.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

__all__ = ["atomic_write_bytes", "commit_file", "fsync_directory", "file_sha256"]


def fsync_directory(directory: Path) -> None:
    """Force a directory entry update (a rename/create) to disk.
    Silently skipped where directories cannot be opened (Windows)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def commit_file(tmp_path: Path, final_path: Path) -> None:
    """Atomically rename ``tmp_path`` over ``final_path`` and fsync the
    containing directory.  ``tmp_path`` must already be fsynced."""
    os.replace(tmp_path, final_path)
    fsync_directory(final_path.parent)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via tmp + fsync + atomic rename."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    commit_file(tmp, path)


def file_sha256(path: str | Path, chunk_size: int = 1 << 20) -> str:
    """Hex SHA-256 of a file's contents (the per-file content digest
    recorded in index metadata and shard manifests)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()
