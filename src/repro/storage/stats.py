"""I/O accounting for the paged-storage layer.

The paper's performance claims are about node accesses and pruned
space; these counters make both observable.  A single
:class:`IOStats` instance is shared by a page file and its buffer
manager so a search can snapshot/diff it.

Beyond the seed's six page-traffic counters, the durable storage
engine adds three: ``fsyncs`` (explicit durability barriers issued by
:meth:`~repro.storage.pagefile.DiskPageFile.flush`), ``mmap_reads``
(zero-copy page serves from a
:class:`~repro.storage.pagefile.MmapPageFile`), and
``checksum_failures`` (framed pages rejected by read-time
verification — see ``repro.storage.format``).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["IOStats"]


@dataclass
class IOStats:
    """Mutable counter block for physical and logical page traffic."""

    physical_reads: int = 0
    physical_writes: int = 0
    logical_reads: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    evictions: int = 0
    fsyncs: int = 0
    mmap_reads: int = 0
    checksum_failures: int = 0

    def snapshot(self) -> "IOStats":
        """An independent copy of the current counters."""
        return IOStats(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    def diff(self, earlier: "IOStats") -> "IOStats":
        """Counter deltas since the ``earlier`` snapshot."""
        return IOStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    @property
    def hit_ratio(self) -> float:
        """Buffer hit ratio in [0, 1]; 0 when nothing was requested."""
        total = self.buffer_hits + self.buffer_misses
        return self.buffer_hits / total if total else 0.0
