"""I/O accounting for the paged-storage layer.

The paper's performance claims are about node accesses and pruned
space; these counters make both observable.  A single
:class:`IOStats` instance is shared by a page file and its buffer
manager so a search can snapshot/diff it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IOStats"]


@dataclass
class IOStats:
    """Mutable counter block for physical and logical page traffic."""

    physical_reads: int = 0
    physical_writes: int = 0
    logical_reads: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    evictions: int = 0

    def snapshot(self) -> "IOStats":
        """An independent copy of the current counters."""
        return IOStats(
            self.physical_reads,
            self.physical_writes,
            self.logical_reads,
            self.buffer_hits,
            self.buffer_misses,
            self.evictions,
        )

    def diff(self, earlier: "IOStats") -> "IOStats":
        """Counter deltas since the ``earlier`` snapshot."""
        return IOStats(
            self.physical_reads - earlier.physical_reads,
            self.physical_writes - earlier.physical_writes,
            self.logical_reads - earlier.logical_reads,
            self.buffer_hits - earlier.buffer_hits,
            self.buffer_misses - earlier.buffer_misses,
            self.evictions - earlier.evictions,
        )

    def reset(self) -> None:
        self.physical_reads = 0
        self.physical_writes = 0
        self.logical_reads = 0
        self.buffer_hits = 0
        self.buffer_misses = 0
        self.evictions = 0

    @property
    def hit_ratio(self) -> float:
        """Buffer hit ratio in [0, 1]; 0 when nothing was requested."""
        total = self.buffer_hits + self.buffer_misses
        return self.buffer_hits / total if total else 0.0
