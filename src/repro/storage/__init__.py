"""Paged storage substrate: self-verifying page format, pluggable page
file backends (memory/disk/mmap), LRU buffer manager, crash-safe file
commitment, I/O stats."""

from .atomic import atomic_write_bytes, commit_file, file_sha256, fsync_directory
from .buffer import LRUBufferManager
from .format import (
    FORMAT_VERSION,
    KIND_NODE,
    KIND_WAL,
    PAGE_HEADER_BYTES,
    RECORD_HEADER_BYTES,
    frame_page,
    frame_record,
    page_payload_capacity,
    parse_record,
    unframe_page,
    verify_page,
)
from .pagefile import (
    BACKENDS,
    PAGE_SIZE_DEFAULT,
    DiskPageFile,
    InMemoryPageFile,
    MmapPageFile,
    PageFile,
    open_pagefile,
)
from .stats import IOStats

__all__ = [
    "PAGE_SIZE_DEFAULT",
    "PageFile",
    "InMemoryPageFile",
    "DiskPageFile",
    "MmapPageFile",
    "BACKENDS",
    "open_pagefile",
    "LRUBufferManager",
    "IOStats",
    "FORMAT_VERSION",
    "PAGE_HEADER_BYTES",
    "KIND_NODE",
    "KIND_WAL",
    "RECORD_HEADER_BYTES",
    "frame_page",
    "unframe_page",
    "verify_page",
    "frame_record",
    "parse_record",
    "page_payload_capacity",
    "atomic_write_bytes",
    "commit_file",
    "file_sha256",
    "fsync_directory",
]
