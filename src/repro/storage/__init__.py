"""Paged storage substrate: page files, LRU buffer manager, I/O stats."""

from .buffer import LRUBufferManager
from .pagefile import PAGE_SIZE_DEFAULT, DiskPageFile, InMemoryPageFile, PageFile
from .stats import IOStats

__all__ = [
    "PAGE_SIZE_DEFAULT",
    "PageFile",
    "InMemoryPageFile",
    "DiskPageFile",
    "LRUBufferManager",
    "IOStats",
]
