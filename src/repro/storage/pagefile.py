"""Fixed-size page files.

The disk substrate under the indexes: a flat array of fixed-size pages
(4 KB by default, matching the paper's setup) addressed by integer page
ids.  Two backends share one interface:

* :class:`InMemoryPageFile` — a list of byte blocks; fast, used by the
  tests and benches,
* :class:`DiskPageFile` — a real file with one 4 KB slot per page, for
  users who want the index to persist.

Both enforce the page-size invariant and count physical I/O.
"""

from __future__ import annotations

import os
from pathlib import Path

from ..exceptions import PageOverflowError, StorageError
from ..obs import state as _obs
from .stats import IOStats

__all__ = ["PAGE_SIZE_DEFAULT", "PageFile", "InMemoryPageFile", "DiskPageFile"]

PAGE_SIZE_DEFAULT = 4096


class PageFile:
    """Abstract fixed-size page store."""

    def __init__(self, page_size: int = PAGE_SIZE_DEFAULT, stats: IOStats | None = None):
        if page_size < 64:
            raise StorageError(f"page size {page_size} unreasonably small")
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()

    # -- interface ------------------------------------------------------
    def allocate(self) -> int:
        """Reserve a fresh page and return its id."""
        raise NotImplementedError

    def read(self, page_id: int) -> bytes:
        """Fetch the raw bytes of a page (exactly ``page_size`` long)."""
        raise NotImplementedError

    def write(self, page_id: int, data: bytes) -> None:
        """Store ``data`` into a page; shorter payloads are zero-padded,
        longer ones raise :class:`PageOverflowError`."""
        raise NotImplementedError

    @property
    def num_pages(self) -> int:
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------
    def _pad(self, data: bytes) -> bytes:
        if len(data) > self.page_size:
            raise PageOverflowError(
                f"payload of {len(data)} bytes exceeds page size {self.page_size}"
            )
        return data.ljust(self.page_size, b"\x00")

    def size_bytes(self) -> int:
        """Total file size in bytes."""
        return self.num_pages * self.page_size

    def size_mb(self) -> float:
        """Total file size in binary megabytes (what Table 2 reports)."""
        return self.size_bytes() / (1024.0 * 1024.0)


class InMemoryPageFile(PageFile):
    """Page store backed by a Python list (the default backend)."""

    def __init__(self, page_size: int = PAGE_SIZE_DEFAULT, stats: IOStats | None = None):
        super().__init__(page_size, stats)
        self._pages: list[bytes] = []

    def allocate(self) -> int:
        self._pages.append(b"\x00" * self.page_size)
        return len(self._pages) - 1

    def read(self, page_id: int) -> bytes:
        self._check(page_id)
        self.stats.physical_reads += 1
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.registry.inc("storage.physical_reads")
        return self._pages[page_id]

    def write(self, page_id: int, data: bytes) -> None:
        self._check(page_id)
        self.stats.physical_writes += 1
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.registry.inc("storage.physical_writes")
        self._pages[page_id] = self._pad(data)

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def _check(self, page_id: int) -> None:
        if not (0 <= page_id < len(self._pages)):
            raise StorageError(
                f"page id {page_id} out of range [0, {len(self._pages)})"
            )


class DiskPageFile(PageFile):
    """Page store backed by a real file of fixed-size slots."""

    def __init__(
        self,
        path: str | Path,
        page_size: int = PAGE_SIZE_DEFAULT,
        stats: IOStats | None = None,
    ):
        super().__init__(page_size, stats)
        self._path = Path(path)
        # "r+b" keeps existing content; create the file when absent.
        mode = "r+b" if self._path.exists() else "w+b"
        self._fh = open(self._path, mode)
        self._fh.seek(0, os.SEEK_END)
        size = self._fh.tell()
        if size % page_size != 0:
            raise StorageError(
                f"{self._path}: size {size} is not a multiple of the "
                f"page size {page_size}"
            )
        self._num_pages = size // page_size

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "DiskPageFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def allocate(self) -> int:
        page_id = self._num_pages
        self._fh.seek(page_id * self.page_size)
        self._fh.write(b"\x00" * self.page_size)
        self._num_pages += 1
        return page_id

    def read(self, page_id: int) -> bytes:
        self._check(page_id)
        self.stats.physical_reads += 1
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.registry.inc("storage.physical_reads")
        self._fh.seek(page_id * self.page_size)
        data = self._fh.read(self.page_size)
        if len(data) != self.page_size:
            raise StorageError(f"{self._path}: short read on page {page_id}")
        return data

    def write(self, page_id: int, data: bytes) -> None:
        self._check(page_id)
        self.stats.physical_writes += 1
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.registry.inc("storage.physical_writes")
        self._fh.seek(page_id * self.page_size)
        self._fh.write(self._pad(data))

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def _check(self, page_id: int) -> None:
        if not (0 <= page_id < self._num_pages):
            raise StorageError(
                f"page id {page_id} out of range [0, {self._num_pages})"
            )
