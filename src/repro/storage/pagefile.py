"""Fixed-size page files — the pluggable storage backends.

The disk substrate under the indexes: a flat array of fixed-size pages
(4 KB by default, matching the paper's setup) addressed by integer page
ids.  Three backends share one interface, selectable by name through
:data:`BACKENDS` / :func:`open_pagefile`:

* ``"memory"`` — :class:`InMemoryPageFile`, a list of byte blocks;
  fast, used while building and by the tests and benches,
* ``"disk"`` — :class:`DiskPageFile`, a real file with one slot per
  page.  Durable: ``flush(fsync=True)`` issues a real fsync barrier and
  ``close()`` flushes + fsyncs before releasing the handle, so a
  cleanly closed file never loses acknowledged writes,
* ``"mmap"`` — :class:`MmapPageFile`, a **read-only** memory-mapped
  view that serves pages as zero-copy ``memoryview`` slices; the
  cold-start-fast serving backend (open cost is one ``mmap`` call, the
  OS pages data in on demand and shares it across processes).

All backends enforce the page-size invariant and count physical I/O;
the read-only one advertises ``writable = False`` so the buffer
manager can skip dirty tracking entirely.
"""

from __future__ import annotations

import mmap
import os
from pathlib import Path

from ..exceptions import PageOverflowError, StorageError
from ..obs import state as _obs
from .stats import IOStats

__all__ = [
    "PAGE_SIZE_DEFAULT",
    "PageFile",
    "InMemoryPageFile",
    "DiskPageFile",
    "MmapPageFile",
    "BACKENDS",
    "open_pagefile",
]

PAGE_SIZE_DEFAULT = 4096


class PageFile:
    """Abstract fixed-size page store."""

    #: Whether the backend accepts ``allocate``/``write``.  Read-only
    #: backends (mmap) advertise ``False`` and the buffer manager then
    #: skips all dirty tracking.
    writable = True

    def __init__(self, page_size: int = PAGE_SIZE_DEFAULT, stats: IOStats | None = None):
        if page_size < 64:
            raise StorageError(f"page size {page_size} unreasonably small")
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()

    # -- interface ------------------------------------------------------
    def allocate(self) -> int:
        """Reserve a fresh page and return its id."""
        raise NotImplementedError

    def read(self, page_id: int) -> bytes:
        """Fetch the raw bytes of a page (exactly ``page_size`` long;
        may be a ``memoryview`` on zero-copy backends)."""
        raise NotImplementedError

    def write(self, page_id: int, data: bytes) -> None:
        """Store ``data`` into a page; shorter payloads are zero-padded,
        longer ones raise :class:`PageOverflowError`."""
        raise NotImplementedError

    def flush(self, fsync: bool = False) -> None:
        """Push buffered writes down; with ``fsync=True`` force them to
        stable storage.  No-op on backends with nothing to sync."""

    def close(self) -> None:
        """Release backend resources (durably, for disk files)."""

    @property
    def num_pages(self) -> int:
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------
    def _pad(self, data: bytes) -> bytes:
        if len(data) > self.page_size:
            raise PageOverflowError(
                f"payload of {len(data)} bytes exceeds page size {self.page_size}"
            )
        return data.ljust(self.page_size, b"\x00")

    def size_bytes(self) -> int:
        """Total file size in bytes."""
        return self.num_pages * self.page_size

    def size_mb(self) -> float:
        """Total file size in binary megabytes (what Table 2 reports)."""
        return self.size_bytes() / (1024.0 * 1024.0)

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InMemoryPageFile(PageFile):
    """Page store backed by a Python list (the default backend)."""

    def __init__(self, page_size: int = PAGE_SIZE_DEFAULT, stats: IOStats | None = None):
        super().__init__(page_size, stats)
        self._pages: list[bytes] = []

    def allocate(self) -> int:
        self._pages.append(b"\x00" * self.page_size)
        return len(self._pages) - 1

    def read(self, page_id: int) -> bytes:
        self._check(page_id)
        self.stats.physical_reads += 1
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.registry.inc("storage.physical_reads")
        return self._pages[page_id]

    def write(self, page_id: int, data: bytes) -> None:
        self._check(page_id)
        self.stats.physical_writes += 1
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.registry.inc("storage.physical_writes")
        self._pages[page_id] = self._pad(data)

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def _check(self, page_id: int) -> None:
        if not (0 <= page_id < len(self._pages)):
            raise StorageError(
                f"page id {page_id} out of range [0, {len(self._pages)})"
            )


class DiskPageFile(PageFile):
    """Page store backed by a real file of fixed-size slots."""

    def __init__(
        self,
        path: str | Path,
        page_size: int = PAGE_SIZE_DEFAULT,
        stats: IOStats | None = None,
    ):
        super().__init__(page_size, stats)
        self._path = Path(path)
        # "r+b" keeps existing content; create the file when absent.
        mode = "r+b" if self._path.exists() else "w+b"
        self._fh = open(self._path, mode)
        self._fh.seek(0, os.SEEK_END)
        size = self._fh.tell()
        if size % page_size != 0:
            raise StorageError(
                f"{self._path}: size {size} is not a multiple of the "
                f"page size {page_size}"
            )
        self._num_pages = size // page_size

    def flush(self, fsync: bool = False) -> None:
        """Drain Python's write buffer; with ``fsync=True`` also force
        the kernel's to stable storage (a durability barrier)."""
        self._fh.flush()
        if fsync:
            os.fsync(self._fh.fileno())
            self.stats.fsyncs += 1
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.registry.inc("storage.fsync")

    def close(self) -> None:
        """Durable close: every buffered write reaches stable storage
        before the handle is released."""
        if not self._fh.closed:
            self.flush(fsync=True)
            self._fh.close()

    def allocate(self) -> int:
        page_id = self._num_pages
        self._fh.seek(page_id * self.page_size)
        self._fh.write(b"\x00" * self.page_size)
        # The zero-fill is a real page-sized write; count it so IOStats
        # physical_writes matches what the kernel saw.
        self.stats.physical_writes += 1
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.registry.inc("storage.physical_writes")
        self._num_pages += 1
        return page_id

    def read(self, page_id: int) -> bytes:
        self._check(page_id)
        self.stats.physical_reads += 1
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.registry.inc("storage.physical_reads")
        self._fh.seek(page_id * self.page_size)
        data = self._fh.read(self.page_size)
        if len(data) != self.page_size:
            raise StorageError(f"{self._path}: short read on page {page_id}")
        return data

    def write(self, page_id: int, data: bytes) -> None:
        self._check(page_id)
        self.stats.physical_writes += 1
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.registry.inc("storage.physical_writes")
        self._fh.seek(page_id * self.page_size)
        self._fh.write(self._pad(data))

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def _check(self, page_id: int) -> None:
        if not (0 <= page_id < self._num_pages):
            raise StorageError(
                f"page id {page_id} out of range [0, {self._num_pages})"
            )


class MmapPageFile(PageFile):
    """Read-only page store serving zero-copy ``memoryview`` slices of
    a memory-mapped file.

    The serving backend: opening costs one ``mmap`` call regardless of
    file size, the OS pages data in lazily (so cold starts touch only
    what queries actually read) and the page cache is shared across
    every process mapping the same index.  All mutation entry points
    raise :class:`StorageError`.
    """

    writable = False

    def __init__(
        self,
        path: str | Path,
        page_size: int = PAGE_SIZE_DEFAULT,
        stats: IOStats | None = None,
    ):
        super().__init__(page_size, stats)
        self._path = Path(path)
        if not self._path.exists():
            raise StorageError(f"{self._path}: no such page file to mmap")
        self._fh = open(self._path, "rb")
        size = os.fstat(self._fh.fileno()).st_size
        if size % page_size != 0:
            raise StorageError(
                f"{self._path}: size {size} is not a multiple of the "
                f"page size {page_size}"
            )
        self._num_pages = size // page_size
        self._mm = (
            mmap.mmap(self._fh.fileno(), 0, access=mmap.ACCESS_READ)
            if size
            else None
        )
        self._view = memoryview(self._mm) if self._mm is not None else None

    def allocate(self) -> int:
        raise StorageError(f"{self._path}: mmap backend is read-only")

    def write(self, page_id: int, data: bytes) -> None:
        raise StorageError(f"{self._path}: mmap backend is read-only")

    def read(self, page_id: int):
        self._check(page_id)
        self.stats.mmap_reads += 1
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.registry.inc("storage.mmap_reads")
        start = page_id * self.page_size
        return self._view[start : start + self.page_size]

    def close(self) -> None:
        if self._view is not None:
            self._view.release()
            self._view = None
        if self._mm is not None:
            try:
                self._mm.close()
            except BufferError:
                # Zero-copy slices handed out by read() are still
                # alive; dropping our reference lets the map unmap
                # when the last slice is garbage-collected.  Safe for
                # a read-only mapping.
                pass
            self._mm = None
        if not self._fh.closed:
            self._fh.close()

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def _check(self, page_id: int) -> None:
        if not (0 <= page_id < self._num_pages):
            raise StorageError(
                f"page id {page_id} out of range [0, {self._num_pages})"
            )


#: Backend registry: the names the persistence layer, the engines and
#: the CLI accept (``backend="mmap"`` etc.).
BACKENDS: dict[str, type[PageFile]] = {
    "memory": InMemoryPageFile,
    "disk": DiskPageFile,
    "mmap": MmapPageFile,
}


def open_pagefile(
    backend: str,
    path: str | Path | None = None,
    page_size: int = PAGE_SIZE_DEFAULT,
    stats: IOStats | None = None,
) -> PageFile:
    """Instantiate a backend by registry name.

    ``path`` is required for the file-backed backends and rejected for
    ``"memory"`` (mismatches are configuration bugs worth failing on).
    """
    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise StorageError(
            f"unknown storage backend {backend!r}; expected one of "
            f"{sorted(BACKENDS)}"
        ) from None
    if backend == "memory":
        if path is not None:
            raise StorageError("the memory backend takes no path")
        return cls(page_size=page_size, stats=stats)
    if path is None:
        raise StorageError(f"the {backend} backend needs a path")
    return cls(path, page_size=page_size, stats=stats)
