"""LRU buffer manager.

The paper's experimental setup uses "a (variable size) buffer fitting
10 % of the index size, with a maximum capacity of 1000 pages"; this
module provides exactly that policy
(:meth:`LRUBufferManager.resize_to_fraction`) over any
:class:`~repro.storage.pagefile.PageFile`.

The buffer caches *deserialised objects* (index nodes) keyed by page
id: a hit returns the cached object without touching the page file, a
miss reads the raw page and runs the caller-supplied loader.  Dirty
objects are serialised and written back on eviction or flush.

Pages can be *pinned* (:meth:`LRUBufferManager.pin`): pinned pages are
never chosen as eviction victims, which is how the query engine keeps
the hot upper index levels resident across a whole batch.  Pinning is
advisory — if every resident page is pinned the cache is allowed to
overflow its capacity rather than fail.

Over a read-only backend (``pagefile.writable`` is ``False``, e.g. the
mmap serving backend) the buffer runs in **read-only mode**: dirty
tracking is skipped entirely — evictions never serialise, ``flush`` is
an inert no-op, and attempts to dirty a page are rejected loudly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import nullcontext
from typing import Callable

from ..exceptions import ChecksumError, StorageError
from ..obs import state as _obs
from .pagefile import PageFile

__all__ = ["LRUBufferManager"]


class LRUBufferManager:
    """A write-back LRU cache of deserialised pages."""

    def __init__(self, pagefile: PageFile, capacity: int = 1000):
        if capacity < 1:
            raise StorageError(f"buffer capacity must be >= 1, got {capacity}")
        self.pagefile = pagefile
        self.capacity = capacity
        self.stats = pagefile.stats
        self.read_only = not getattr(pagefile, "writable", True)
        self._cache: OrderedDict[int, object] = OrderedDict()
        self._dirty: set[int] = set()
        self._pinned: set[int] = set()
        # Null context by default; enable_thread_safety() swaps in a
        # real lock (the engine's threaded executor needs it, nothing
        # else pays for it).
        self._lock = nullcontext()

    # ------------------------------------------------------------------
    # concurrency & pinning
    # ------------------------------------------------------------------
    def enable_thread_safety(self) -> None:
        """Guard every cache operation with an RLock so concurrent
        readers (the engine's threaded executor) cannot race the LRU
        bookkeeping.  Irreversible for the buffer's lifetime."""
        if isinstance(self._lock, nullcontext):
            self._lock = threading.RLock()

    def pin(self, page_id: int) -> None:
        """Exempt a page from eviction (it need not be resident yet)."""
        self._pinned.add(page_id)

    def unpin(self, page_id: int) -> None:
        self._pinned.discard(page_id)

    def unpin_all(self) -> None:
        self._pinned.clear()

    @property
    def pinned_pages(self) -> frozenset[int]:
        return frozenset(self._pinned)

    # ------------------------------------------------------------------
    # paper's sizing policy
    # ------------------------------------------------------------------
    def resize_to_fraction(
        self, fraction: float = 0.10, max_pages: int = 1000, min_pages: int = 8
    ) -> int:
        """Resize to ``fraction`` of the current page-file size, clamped
        to ``[min_pages, max_pages]`` (the paper's 10 % / 1000-page
        policy).  Returns the new capacity."""
        with self._lock:
            want = int(self.pagefile.num_pages * fraction)
            self.capacity = max(min_pages, min(max_pages, want))
            self._evict_overflow(getattr(self, "_serializer", None))
            return self.capacity

    # ------------------------------------------------------------------
    # cache interface
    # ------------------------------------------------------------------
    def get(
        self,
        page_id: int,
        loader: Callable[[bytes], object],
        serializer: Callable[[object], bytes] | None = None,
    ) -> object:
        """Fetch the object cached for ``page_id``; on a miss, read the
        page and deserialise it with ``loader``.

        ``serializer`` is remembered per call only for the eviction that
        this access may trigger; pin a single serialiser per buffer in
        practice (the index layer does).
        """
        with self._lock:
            self.stats.logical_reads += 1
            trace = _obs.ACTIVE
            if page_id in self._cache:
                self.stats.buffer_hits += 1
                if trace is not None:
                    reg = trace.registry
                    reg.inc("storage.logical_reads")
                    reg.inc("storage.buffer_hits")
                self._cache.move_to_end(page_id)
                return self._cache[page_id]
            self.stats.buffer_misses += 1
            if trace is not None:
                reg = trace.registry
                reg.inc("storage.logical_reads")
                reg.inc("storage.buffer_misses")
            try:
                obj = loader(self.pagefile.read(page_id))
            except ChecksumError:
                self.stats.checksum_failures += 1
                raise
            self._cache[page_id] = obj
            self._serializer = serializer or getattr(self, "_serializer", None)
            self._evict_overflow(self._serializer)
            return obj

    def put(
        self,
        page_id: int,
        obj: object,
        serializer: Callable[[object], bytes],
        dirty: bool = True,
    ) -> None:
        """Install (or replace) the object for ``page_id``; marks it
        dirty so it is written back on eviction/flush."""
        with self._lock:
            if dirty and self.read_only:
                raise StorageError(
                    f"page {page_id}: buffer is read-only "
                    f"({type(self.pagefile).__name__} backend), cannot "
                    f"install dirty pages"
                )
            self._cache[page_id] = obj
            self._cache.move_to_end(page_id)
            if dirty:
                self._dirty.add(page_id)
            self._serializer = serializer
            self._evict_overflow(serializer)

    def mark_dirty(self, page_id: int) -> None:
        """Flag an already-cached object as modified."""
        with self._lock:
            if self.read_only:
                raise StorageError(
                    f"page {page_id}: buffer is read-only "
                    f"({type(self.pagefile).__name__} backend), cannot "
                    f"dirty pages"
                )
            if page_id not in self._cache:
                raise StorageError(f"page {page_id} not resident, cannot dirty it")
            self._dirty.add(page_id)

    def flush(self, serializer: Callable[[object], bytes] | None = None) -> int:
        """Write back every dirty object; returns how many were written.
        A no-op (0) in read-only mode — there is never anything dirty."""
        if self.read_only:
            return 0
        with self._lock:
            ser = serializer or getattr(self, "_serializer", None)
            written = 0
            for page_id in sorted(self._dirty):
                if page_id in self._cache:
                    if ser is None:
                        raise StorageError("no serializer available for flush")
                    self.pagefile.write(page_id, ser(self._cache[page_id]))
                    written += 1
            self._dirty.clear()
            return written

    def drop(self) -> None:
        """Empty the cache *without* writing anything back (used by
        benches to measure cold-cache behaviour; flush first if you
        care about the data)."""
        with self._lock:
            self._cache.clear()
            self._dirty.clear()

    def discard(self, page_id: int) -> None:
        """Drop one page from the cache without writing it back (used
        when the page's node is deallocated)."""
        with self._lock:
            self._cache.pop(page_id, None)
            self._dirty.discard(page_id)
            self._pinned.discard(page_id)

    def resident(self, page_id: int) -> bool:
        return page_id in self._cache

    def __len__(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------
    def _evict_overflow(self, serializer) -> None:
        while len(self._cache) > self.capacity:
            victim_id = None
            if self._pinned:
                # LRU-first among the unpinned residents.
                for pid in self._cache:
                    if pid not in self._pinned:
                        victim_id = pid
                        break
                if victim_id is None:
                    return  # everything resident is pinned: allow overflow
                victim = self._cache.pop(victim_id)
            else:
                victim_id, victim = self._cache.popitem(last=False)
            self.stats.evictions += 1
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.registry.inc("storage.evictions")
            if self.read_only:
                continue  # dirty tracking is off: nothing to write back
            if victim_id in self._dirty:
                if serializer is None:
                    raise StorageError(
                        f"evicting dirty page {victim_id} without a serializer"
                    )
                self.pagefile.write(victim_id, serializer(victim))
                self._dirty.discard(victim_id)
