"""The self-verifying on-disk page format (v2).

Every persisted page is *framed*: a 16-byte header in front of the
payload lets the reader prove, before deserialising anything, that the
bytes it got back are the bytes that were written.

Layout (little-endian)::

    offset  size  field
    0       2     magic        0x5250 ("PR")
    2       1     format version (2)
    3       1     page kind    (1 = index node)
    4       4     payload length (bytes)
    8       4     CRC-32 over header[0:8] + payload
    12      4     reserved (must be zero)
    16      ...   payload, zero-padded to the page size

The CRC covers the magic/version/kind/length prefix *and* the payload;
the reserved word and the trailing padding are verified to be zero.
Together that makes the kill-a-byte property hold: flipping any single
byte of a framed page — header, payload, or padding — is detected at
read time as a :class:`~repro.exceptions.ChecksumError` (or a version/
framing :class:`~repro.exceptions.StorageError`) instead of surfacing
as a garbage MBR three layers up.

The checksum is ``zlib.crc32`` (the IEEE CRC-32 polynomial): it runs at
C speed from the standard library, which is what keeps verification
affordable on the hot read path — ``bench_storage_backends`` gates the
overhead at < 10 %.  Hardware CRC32C would need a third-party wheel.

v1 pages (the pre-frame format, raw node bytes at offset 0) fail the
magic check with an error naming the version mismatch; see
``docs/STORAGE.md`` for the migration path.
"""

from __future__ import annotations

import struct
import zlib

from ..exceptions import ChecksumError, StorageError
from ..obs import state as _obs

__all__ = [
    "FORMAT_VERSION",
    "PAGE_HEADER_BYTES",
    "PAGE_MAGIC",
    "KIND_NODE",
    "KIND_WAL",
    "RECORD_HEADER_BYTES",
    "page_payload_capacity",
    "frame_page",
    "unframe_page",
    "verify_page",
    "frame_record",
    "parse_record",
]

FORMAT_VERSION = 2
PAGE_MAGIC = 0x5250  # "PR" little-endian

_PREFIX_FMT = struct.Struct("<HBBI")  # magic, version, kind, payload_len
_TRAILER_FMT = struct.Struct("<II")  # crc, reserved
PAGE_HEADER_BYTES = _PREFIX_FMT.size + _TRAILER_FMT.size
assert PAGE_HEADER_BYTES == 16

#: Page kinds.  Only index nodes exist today; the byte is in the frame
#: (and covered by the CRC) so future page kinds can share one file.
KIND_NODE = 1

#: Record kinds (the same frame layout carried in append-only logs —
#: tightly packed, no padding).  Pages and records share the kind
#: namespace so a misdirected read fails the kind check immediately.
KIND_WAL = 2

_KNOWN_KINDS = frozenset({KIND_NODE})
_KNOWN_RECORD_KINDS = frozenset({KIND_WAL})

#: Records reuse the 16-byte page frame header verbatim.
RECORD_HEADER_BYTES = PAGE_HEADER_BYTES


def page_payload_capacity(page_size: int) -> int:
    """Bytes available for payload in one framed page."""
    cap = page_size - PAGE_HEADER_BYTES
    if cap < 1:
        raise StorageError(
            f"page size {page_size} leaves no room for a framed payload"
        )
    return cap


def frame_page(payload: bytes, kind: int = KIND_NODE) -> bytes:
    """Wrap ``payload`` in a v2 frame (header + payload, unpadded —
    the page file zero-pads to the page size on write)."""
    prefix = _PREFIX_FMT.pack(PAGE_MAGIC, FORMAT_VERSION, kind, len(payload))
    crc = zlib.crc32(payload, zlib.crc32(prefix))
    return b"".join((prefix, _TRAILER_FMT.pack(crc, 0), payload))


def _fail(message: str, *, checksum: bool = False):
    if _obs.ACTIVE is not None:
        _obs.ACTIVE.registry.inc("storage.checksum_failures")
    cls = ChecksumError if checksum else StorageError
    raise cls(message)


def unframe_page(data, page_id: int | None = None):
    """Verify one full (padded) page and return ``(kind, payload)``.

    ``data`` may be ``bytes`` or a ``memoryview`` (the mmap backend);
    the returned payload is a zero-copy slice of it.  Raises
    :class:`~repro.exceptions.ChecksumError` on CRC mismatch and
    :class:`~repro.exceptions.StorageError` for framing/version
    violations, both naming the page.
    """
    where = f"page {page_id}" if page_id is not None else "page"
    if len(data) < PAGE_HEADER_BYTES:
        _fail(f"{where}: {len(data)} bytes is too short for a page frame")
    magic, version, kind, payload_len = _PREFIX_FMT.unpack_from(data, 0)
    if magic != PAGE_MAGIC:
        _fail(
            f"{where}: bad magic 0x{magic:04x} (expected 0x{PAGE_MAGIC:04x}); "
            f"not a v{FORMAT_VERSION} framed page — v1 index files must be "
            f"migrated or rebuilt (see docs/STORAGE.md)"
        )
    if version != FORMAT_VERSION:
        _fail(
            f"{where}: page format version {version}, this build reads "
            f"version {FORMAT_VERSION}"
        )
    if kind not in _KNOWN_KINDS:
        _fail(f"{where}: unknown page kind {kind}")
    if payload_len > len(data) - PAGE_HEADER_BYTES:
        _fail(
            f"{where}: payload length {payload_len} exceeds the "
            f"{len(data) - PAGE_HEADER_BYTES} bytes after the header"
        )
    crc, reserved = _TRAILER_FMT.unpack_from(data, _PREFIX_FMT.size)
    if reserved != 0:
        _fail(f"{where}: reserved header word is 0x{reserved:08x}, not zero")
    payload = data[PAGE_HEADER_BYTES : PAGE_HEADER_BYTES + payload_len]
    want = zlib.crc32(payload, zlib.crc32(data[: _PREFIX_FMT.size]))
    if crc != want:
        _fail(
            f"{where}: checksum mismatch (stored 0x{crc:08x}, computed "
            f"0x{want:08x}) — the page is corrupt",
            checksum=True,
        )
    tail = bytes(data[PAGE_HEADER_BYTES + payload_len :])
    if tail.strip(b"\x00"):
        _fail(
            f"{where}: non-zero bytes in the padding after the "
            f"{payload_len}-byte payload",
            checksum=True,
        )
    return kind, payload


def frame_record(payload: bytes, kind: int = KIND_WAL) -> bytes:
    """Wrap ``payload`` in a v2 frame for an append-only log.

    Identical layout to :func:`frame_page`, but records are packed
    back-to-back with no padding: the ``payload_len`` field is what
    delimits one record from the next.
    """
    prefix = _PREFIX_FMT.pack(PAGE_MAGIC, FORMAT_VERSION, kind, len(payload))
    crc = zlib.crc32(payload, zlib.crc32(prefix))
    return b"".join((prefix, _TRAILER_FMT.pack(crc, 0), payload))


def parse_record(data, offset: int = 0, *, where: str = "record"):
    """Verify one framed record at ``offset`` inside ``data``.

    Returns ``(kind, payload, next_offset)``.  Raises
    :class:`~repro.exceptions.ChecksumError` on CRC mismatch and
    :class:`~repro.exceptions.StorageError` for truncation/framing/
    version violations — a torn tail (fewer bytes than the header
    announces) is a :class:`StorageError`, so log recovery can treat
    *any* of these as "the clean prefix ends here".
    """
    if len(data) - offset < RECORD_HEADER_BYTES:
        _fail(
            f"{where}: {len(data) - offset} bytes is too short for a "
            f"record frame"
        )
    magic, version, kind, payload_len = _PREFIX_FMT.unpack_from(data, offset)
    if magic != PAGE_MAGIC:
        _fail(f"{where}: bad magic 0x{magic:04x} (expected 0x{PAGE_MAGIC:04x})")
    if version != FORMAT_VERSION:
        _fail(
            f"{where}: record format version {version}, this build reads "
            f"version {FORMAT_VERSION}"
        )
    if kind not in _KNOWN_RECORD_KINDS:
        _fail(f"{where}: unknown record kind {kind}")
    end = offset + RECORD_HEADER_BYTES + payload_len
    if end > len(data):
        _fail(
            f"{where}: payload length {payload_len} overruns the "
            f"{len(data) - offset - RECORD_HEADER_BYTES} bytes left in "
            f"the log — torn tail"
        )
    crc, reserved = _TRAILER_FMT.unpack_from(data, offset + _PREFIX_FMT.size)
    if reserved != 0:
        _fail(f"{where}: reserved header word is 0x{reserved:08x}, not zero")
    payload = bytes(data[offset + RECORD_HEADER_BYTES : end])
    want = zlib.crc32(payload, zlib.crc32(data[offset : offset + _PREFIX_FMT.size]))
    if crc != want:
        _fail(
            f"{where}: checksum mismatch (stored 0x{crc:08x}, computed "
            f"0x{want:08x}) — the record is corrupt",
            checksum=True,
        )
    return kind, payload, end


def verify_page(data, page_id: int | None = None) -> str | None:
    """Non-raising verification for ``fsck``: the error message for a
    bad page, ``None`` for a good one."""
    try:
        unframe_page(data, page_id)
    except StorageError as exc:
        return str(exc)
    return None
