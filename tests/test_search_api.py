"""The unified search API: single-form dispatch, removed-legacy-form
errors, SearchResult envelopes and cross-algorithm stats parity."""

from __future__ import annotations

import warnings

import pytest

from repro.datagen import generate_gstd, make_workload
from repro.exceptions import QueryError
from repro.geometry import MBR2D, Point
from repro.index import RTree3D
from repro.search import (
    QuerySpec,
    SearchResult,
    SearchStats,
    bfmst_search,
    continuous_nearest_neighbour,
    execute_spec,
    linear_scan_kmst,
    nearest_neighbours,
    range_query,
    time_relaxed_kmst,
)
from repro.search.bfmst import bfmst_search as raw_bfmst
from repro.search.continuous_nn import (
    continuous_nearest_neighbour as raw_cnn,
)
from repro.search.linear_scan import linear_scan_kmst as raw_scan
from repro.search.nn import nearest_neighbours as raw_nn
from repro.search.range_query import range_query as raw_range
from repro.search.time_relaxed import time_relaxed_kmst as raw_trx


@pytest.fixture(scope="module")
def dataset():
    return generate_gstd(30, samples_per_object=50, seed=23)


@pytest.fixture(scope="module")
def index(dataset):
    idx = RTree3D(page_size=512)
    idx.bulk_insert(dataset)
    idx.finalize()
    return idx


@pytest.fixture(scope="module")
def qp(dataset):
    (q, p), = make_workload(dataset, 1, query_length=0.2, seed=4)
    return q, p


def _new(call):
    """Run a unified-form call asserting it does NOT warn."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        return call()


class TestUnifiedFormMatchesRaw:
    """The unified dispatchers return exactly what the raw algorithm
    implementations compute."""

    def test_bfmst(self, index, qp):
        q, p = qp
        raw_matches, raw_stats = raw_bfmst(index, q, p, 3)
        result = _new(lambda: bfmst_search(index, None, q, period=p, k=3))
        assert isinstance(result, SearchResult)
        assert result.algorithm == "bfmst"
        assert result.matches == raw_matches
        assert result.stats.node_accesses == raw_stats.node_accesses

    def test_linear_scan(self, dataset, qp):
        q, p = qp
        raw = raw_scan(dataset, q, p, 3, True)
        result = _new(
            lambda: linear_scan_kmst(
                None, dataset, q, period=p, k=3, exact=True
            )
        )
        assert result.algorithm == "linear_scan"
        assert result.matches == raw

    def test_dataset_accepted_in_context_slot(self, dataset, qp):
        q, p = qp
        result = _new(lambda: linear_scan_kmst(dataset, None, q, period=p, k=2))
        assert result.algorithm == "linear_scan" and len(result) == 2

    def test_nn(self, index, qp):
        _q, (lo, hi) = qp
        point = Point(0.5, 0.5)
        raw = raw_nn(index, point, lo, hi, 2)
        result = _new(
            lambda: nearest_neighbours(
                index, None, point, period=(lo, hi), k=2
            )
        )
        assert result.algorithm == "nn"
        assert [(m.trajectory_id, m.dissim) for m in result.matches] == raw

    def test_range(self, index, qp):
        _q, (lo, hi) = qp
        window = MBR2D(0.25, 0.25, 0.75, 0.75)
        raw = raw_range(index, window, lo, hi)
        result = _new(
            lambda: range_query(index, None, window, period=(lo, hi))
        )
        assert result.algorithm == "range"
        assert set(result.ids) == raw
        assert result.extras["hit_ids"] == sorted(raw)

    def test_continuous_nn(self, index, dataset, qp):
        q, (lo, hi) = qp
        raw = raw_cnn(dataset, q, lo, hi)
        result = _new(
            lambda: continuous_nearest_neighbour(
                index, dataset, q, period=(lo, hi)
            )
        )
        assert result.algorithm == "continuous_nn"
        # the index prunes candidates but must not change the partition
        assert result.intervals == raw
        assert result.ids  # winners listed

    def test_time_relaxed(self, dataset, qp):
        q, (lo, hi) = qp
        short = q.sliced(lo, lo + (hi - lo) * 0.5)
        raw = raw_trx(dataset, short, 2)
        result = _new(lambda: time_relaxed_kmst(None, dataset, short, k=2))
        assert result.algorithm == "time_relaxed"
        assert result.ids == [m.trajectory_id for m, _s in raw]
        assert result.extras["shifts"] == {
            m.trajectory_id: s for m, s in raw
        }

    def test_new_form_requires_query(self, index):
        with pytest.raises(TypeError, match="query"):
            bfmst_search(index, None)

    def test_new_form_requires_period_where_mandatory(self, index):
        with pytest.raises(QueryError, match="period"):
            nearest_neighbours(index, None, Point(0, 0), k=1)
        with pytest.raises(QueryError, match="period"):
            range_query(index, None, MBR2D(0, 0, 1, 1))

    def test_index_required_for_index_algorithms(self, qp):
        q, p = qp
        with pytest.raises(QueryError, match="index"):
            bfmst_search(None, None, q, period=p)


class TestStatsParity:
    """Every algorithm reports the same SearchStats field set."""

    def test_all_algorithms_share_stats_fields(self, index, dataset, qp):
        q, p = qp
        want = set(SearchStats().as_dict())
        results = [
            _new(lambda: bfmst_search(index, None, q, period=p, k=2)),
            _new(lambda: linear_scan_kmst(None, dataset, q, period=p, k=2)),
            _new(lambda: nearest_neighbours(
                index, None, Point(0.5, 0.5), period=p, k=2)),
            _new(lambda: range_query(
                index, None, MBR2D(0.2, 0.2, 0.8, 0.8), period=p)),
            _new(lambda: continuous_nearest_neighbour(
                index, dataset, q, period=p)),
            _new(lambda: time_relaxed_kmst(
                None, dataset, q.sliced(p[0], (p[0] + p[1]) / 2), k=1)),
        ]
        for result in results:
            assert set(result.stats.as_dict()) == want, result.algorithm

    def test_scan_stats_are_populated(self, dataset, qp):
        q, p = qp
        result = _new(
            lambda: linear_scan_kmst(None, dataset, q, period=p, k=3)
        )
        s = result.stats
        assert s.candidates_created == s.candidates_completed > 0
        assert s.dissim_evaluations == s.candidates_created
        assert s.entries_processed > 0
        assert "skipped_coverage" in s.extra

    def test_nn_and_range_count_node_accesses(self, index, qp):
        _q, p = qp
        nn_result = _new(lambda: nearest_neighbours(
            index, None, Point(0.5, 0.5), period=p, k=2))
        assert nn_result.stats.node_accesses > 0
        assert nn_result.stats.total_nodes == index.num_nodes
        range_result = _new(lambda: range_query(
            index, None, MBR2D(0.1, 0.1, 0.9, 0.9), period=p))
        assert range_result.stats.node_accesses > 0

    def test_result_serialises_to_json(self, index, qp):
        import json

        q, p = qp
        result = _new(lambda: bfmst_search(index, None, q, period=p, k=2))
        doc = json.loads(result.to_json())
        assert doc["algorithm"] == "bfmst"
        assert len(doc["matches"]) == 2
        assert "pruning_power" in doc["stats"]


class TestTraceParameter:
    def test_trace_kwarg_collects_counters(self, index, qp):
        from repro.obs import QueryTrace

        q, p = qp
        trace = QueryTrace(name="api-test", io=index)
        result = _new(
            lambda: bfmst_search(index, None, q, period=p, k=2, trace=trace)
        )
        assert result.stats.node_accesses > 0
        assert trace.counters.get("index.nodes_dequeued", 0) > 0
        assert trace.wall_time_s > 0
        # the global slot is restored afterwards
        from repro.obs.state import get_active

        assert get_active() is None


class TestInternalCodeIsWarningClean:
    """repro's own layers must never call the deprecated shims."""

    def test_mod_paths_are_clean(self, dataset, qp):
        from repro.mod import MovingObjectDatabase

        q, p = qp
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            mod = MovingObjectDatabase()
            for tr in dataset:
                mod.add(tr)
            mod.freeze()
            mod.most_similar(q, k=2, period=p)
            mod.most_similar(q, k=2, period=p, use_index=False)
            mod.range(MBR2D(0.2, 0.2, 0.8, 0.8), p[0], p[1])
            mod.nearest(Point(0.5, 0.5), p[0], p[1], k=2)

    def test_engine_paths_are_clean(self, index, dataset, qp):
        from repro.engine import QueryEngine, QueryRequest

        q, p = qp
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with QueryEngine(index, dataset) as engine:
                engine.run_batch([
                    QueryRequest("mst", q, p, k=2),
                    QueryRequest("linear_scan", q, p, k=2),
                    QueryRequest("nn", Point(0.5, 0.5), p, k=1),
                    QueryRequest("range", MBR2D(0.2, 0.2, 0.8, 0.8), p),
                ])

    def test_experiment_workload_runner_is_clean(self, dataset):
        from repro.experiments.performance import build_index, run_workload

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            index = build_index(dataset, "rtree", page_size=512)
            workload = list(make_workload(dataset, 2, 0.1, seed=1))
            run_workload(
                index, dataset, workload,
                k=2, variable="k", value=2, verify=True,
            )


class TestLegacyFormsRemoved:
    """The pre-unification positional forms raise a clear TypeError
    pointing at the unified replacement (they went through a full
    DeprecationWarning cycle first)."""

    def test_every_legacy_form_raises(self, index, dataset, qp):
        q, p = qp
        lo, hi = p
        calls = [
            lambda: bfmst_search(index, q, p, k=2),
            lambda: linear_scan_kmst(dataset, q, p, 2),
            lambda: nearest_neighbours(index, Point(0.5, 0.5), lo, hi, 2),
            lambda: range_query(index, MBR2D(0.2, 0.2, 0.8, 0.8), lo, hi),
            lambda: continuous_nearest_neighbour(dataset, q, lo, hi),
            lambda: time_relaxed_kmst(dataset, q.sliced(lo, (lo + hi) / 2), 1),
        ]
        for call in calls:
            with pytest.raises(TypeError, match="was removed"):
                call()

    def test_error_carries_migration_hint(self, index, qp):
        q, p = qp
        with pytest.raises(TypeError) as err:
            bfmst_search(index, q, p, k=2)
        message = str(err.value)
        assert "bfmst_search(index, None, query, k=...)" in message
        assert "migration table" in message

    def test_raw_implementations_stay_importable(self, index, qp):
        q, p = qp
        matches, stats = raw_bfmst(index, q, p, 2)
        assert isinstance(stats, SearchStats)
        assert matches


class TestSpecAttachment:
    """Every unified call stamps its QuerySpec on the result, and
    re-executing that spec reproduces the answer."""

    def test_all_entry_points_attach_a_spec(self, index, dataset, qp):
        q, p = qp
        results = [
            bfmst_search(index, None, q, period=p, k=2),
            linear_scan_kmst(None, dataset, q, period=p, k=2, exact=True),
            nearest_neighbours(index, None, Point(0.5, 0.5), period=p, k=2),
            range_query(index, None, MBR2D(0.2, 0.2, 0.8, 0.8), period=p),
            continuous_nearest_neighbour(index, dataset, q, period=p),
            time_relaxed_kmst(
                None, dataset, q.sliced(p[0], (p[0] + p[1]) / 2), k=1
            ),
        ]
        for result in results:
            assert isinstance(result.spec, QuerySpec), result.algorithm
            wire = result.spec.to_json()
            again = execute_spec(
                index, dataset, QuerySpec.from_json(wire)
            )
            assert again.answer_json() == result.answer_json(), result.algorithm

    def test_spec_options_survive_the_wire(self, index, qp):
        q, p = qp
        result = bfmst_search(
            index, None, q, period=p, k=3, exclude_ids={q.object_id},
        )
        spec = QuerySpec.from_json(result.spec.to_json())
        assert spec.options["exclude_ids"] == frozenset({q.object_id})
        again = execute_spec(index, None, spec)
        assert again.answer_json() == result.answer_json()
