"""Fault-injection suite for the live ingestion path.

Extends the kill-a-byte style of ``test_failure_injection.py`` to the
write path: the WAL is truncated and bit-flipped at every record
boundary and at mid-record offsets, and compaction is killed at every
internal step.  The invariant under test is the crash contract of
``docs/INGEST.md``: recovery either replays a clean prefix of what was
acknowledged or raises :class:`~repro.exceptions.StorageError` — it
never serves wrong answers.
"""

from __future__ import annotations

import random
import shutil

import pytest

from repro import IngestStore, StorageError
from repro.datagen import generate_gstd, make_query
from repro.ingest import WAL_RECORD_BYTES
from repro.search.api import bfmst_search
from repro.trajectory import Trajectory, TrajectoryDataset

K = 4


class SimulatedCrash(RuntimeError):
    """Raised by the fault hook to model dying at a compaction step."""


# ----------------------------------------------------------------------
# scenario: a store with one published generation plus a live WAL tail
# ----------------------------------------------------------------------
def _dataset():
    return generate_gstd(10, samples_per_object=16, seed=97)


def _events(dataset):
    return sorted(
        ((tr.object_id, p.x, p.y, p.t) for tr in dataset for p in tr),
        key=lambda e: (e[3], e[0]),
    )


def _oracle(history, query, period, k):
    """Ground truth for a point-history dict: from-scratch TB-tree."""
    from repro.index import TBTree

    index = TBTree(page_size=4096)
    for oid in sorted(history):
        pts = history[oid]
        if len(pts) >= 2:
            index.insert(Trajectory(oid, pts))
    index.finalize()
    if index.num_entries == 0:
        return []
    result = bfmst_search(index, None, query, period=period, k=k)
    return [(m.trajectory_id, m.dissim) for m in result.matches]


def _answers(store, query, period, k):
    matches, _ = store.kmst(query, period, k)
    return [(m.trajectory_id, m.dissim) for m in matches]


@pytest.fixture(scope="module")
def scenario(tmp_path_factory):
    """A closed store directory: generation 0 + a WAL of known records.

    Returns ``(root, base_history, wal_events, query, period)`` where
    ``base_history`` is the point history at the time of compaction and
    ``wal_events`` the ``(oid, x, y, t)`` records the WAL holds, in
    order.  Tests copy ``root`` before damaging it.
    """
    dataset = _dataset()
    events = _events(dataset)
    half = len(events) // 2
    root = tmp_path_factory.mktemp("crash") / "store"

    with IngestStore.create(root, sync_every=1) as store:
        for oid, x, y, t in events[:half]:
            store.append(oid, x, y, t)
        store.compact()
        base_history = {
            oid: [(p.x, p.y, p.t) for p in store.trajectory(oid)]
            for oid in store.ids()
        }
        wal_events = events[half : half + 24]
        for oid, x, y, t in wal_events:
            store.append(oid, x, y, t)

    rng = random.Random(5)
    query, period = make_query(dataset, 0.4, rng)
    return root, base_history, wal_events, query, period


def _state_after(base_history, wal_events, n):
    """The logical point history once ``n`` WAL records survive."""
    history = {oid: list(pts) for oid, pts in base_history.items()}
    for oid, x, y, t in wal_events[:n]:
        history.setdefault(oid, []).append((x, y, t))
    return history


def _copy(scenario_root, tmp_path, name):
    target = tmp_path / name
    shutil.copytree(scenario_root, target)
    return target


def _wal_path(root):
    wals = sorted(root.glob("wal-*.log"))
    assert len(wals) == 1
    return wals[0]


# ----------------------------------------------------------------------
# torn writes: truncation at every record boundary and mid-record
# ----------------------------------------------------------------------
class TestWalTruncation:
    def test_every_record_boundary(self, scenario, tmp_path):
        root, base, wal_events, query, period = scenario
        for n in range(len(wal_events) + 1):
            target = _copy(root, tmp_path, f"boundary-{n}")
            wal = _wal_path(target)
            blob = wal.read_bytes()
            assert len(blob) == len(wal_events) * WAL_RECORD_BYTES
            wal.write_bytes(blob[: n * WAL_RECORD_BYTES])

            with IngestStore.open(target) as store:
                assert store.metrics.value("ingest.wal_replayed_records") == n
                want = _oracle(_state_after(base, wal_events, n), query, period, K)
                assert _answers(store, query, period, K) == want

    def test_every_mid_record_offset_of_one_record(self, scenario, tmp_path):
        """A torn write anywhere inside a record loses exactly that
        record and everything after it."""
        root, base, wal_events, query, period = scenario
        cut_record = len(wal_events) // 2
        want = _oracle(
            _state_after(base, wal_events, cut_record), query, period, K
        )
        for extra in range(1, WAL_RECORD_BYTES):
            target = _copy(root, tmp_path, f"torn-{extra}")
            wal = _wal_path(target)
            blob = wal.read_bytes()
            wal.write_bytes(blob[: cut_record * WAL_RECORD_BYTES + extra])

            with IngestStore.open(target) as store:
                assert (
                    store.metrics.value("ingest.wal_replayed_records")
                    == cut_record
                )
                assert store.metrics.value("ingest.wal_truncations") == 1
                assert _answers(store, query, period, K) == want

    def test_recovery_truncates_the_file_itself(self, scenario, tmp_path):
        root, base, wal_events, query, period = scenario
        target = _copy(root, tmp_path, "truncated-file")
        wal = _wal_path(target)
        blob = wal.read_bytes()
        wal.write_bytes(blob[: 3 * WAL_RECORD_BYTES + 7])
        with IngestStore.open(target):
            pass
        assert _wal_path(target).stat().st_size == 3 * WAL_RECORD_BYTES


# ----------------------------------------------------------------------
# bit-flips: every offset of one record, first byte of every record
# ----------------------------------------------------------------------
class TestWalBitFlips:
    def _check(self, target, base, wal_events, flip_record, query, period):
        """Recovery must fence off the flipped record: the surviving
        answers equal the clean prefix's, or opening raises
        StorageError.  Nothing else is acceptable."""
        try:
            store = IngestStore.open(target)
        except StorageError:
            return
        with store:
            survivors = store.metrics.value("ingest.wal_replayed_records")
            assert survivors == flip_record
            want = _oracle(
                _state_after(base, wal_events, survivors), query, period, K
            )
            assert _answers(store, query, period, K) == want

    def test_every_offset_of_one_record(self, scenario, tmp_path):
        root, base, wal_events, query, period = scenario
        flip_record = len(wal_events) // 3
        for offset in range(WAL_RECORD_BYTES):
            target = _copy(root, tmp_path, f"flip-{offset}")
            wal = _wal_path(target)
            blob = bytearray(wal.read_bytes())
            blob[flip_record * WAL_RECORD_BYTES + offset] ^= 0x10
            wal.write_bytes(bytes(blob))
            self._check(target, base, wal_events, flip_record, query, period)

    def test_first_byte_of_every_record(self, scenario, tmp_path):
        root, base, wal_events, query, period = scenario
        for n in range(len(wal_events)):
            target = _copy(root, tmp_path, f"flip-rec-{n}")
            wal = _wal_path(target)
            blob = bytearray(wal.read_bytes())
            blob[n * WAL_RECORD_BYTES] ^= 0x01
            wal.write_bytes(bytes(blob))
            self._check(target, base, wal_events, n, query, period)


# ----------------------------------------------------------------------
# killed compactions: every internal step
# ----------------------------------------------------------------------
FAULT_SITES = [
    "compact.begin",
    "compact.pages_committed",
    "compact.data_committed",
    "compact.wal_rotated",
    "compact.manifest_committed",
    "compact.done",
]


class TestCompactionCrash:
    @pytest.mark.parametrize("site", FAULT_SITES)
    def test_killed_at_every_site(self, scenario, tmp_path, site):
        """Dying at any compaction step loses nothing: the WAL was
        synced before the first step, so recovery always reconstructs
        the full acknowledged state (from the old generation + old WAL
        before the manifest commit, from the new generation after)."""
        root, base, wal_events, query, period = scenario
        target = _copy(root, tmp_path, f"kill-{site.replace('.', '-')}")
        full = _state_after(base, wal_events, len(wal_events))
        want = _oracle(full, query, period, K)

        store = IngestStore.open(target)
        assert _answers(store, query, period, K) == want

        def die(at):
            if at == site:
                raise SimulatedCrash(site)

        store._failpoints = die
        with pytest.raises(SimulatedCrash):
            store.compact()
        # the store poisons itself: on-disk state is consistent but the
        # in-process state may be half-applied, so everything now
        # demands a reopen ...
        with pytest.raises(StorageError):
            store.append(1, 0.0, 0.0, 1e12)
        with pytest.raises(StorageError):
            store.view()
        store._failpoints = None
        store.close()

        # ... and the reopen serves exactly the acknowledged state
        with IngestStore.open(target) as reopened:
            assert _answers(reopened, query, period, K) == want
            points = sum(len(pts) for pts in full.values())
            assert reopened.num_points == points
            # the recovered store is fully usable: compact + ingest on
            reopened.compact()
            assert _answers(reopened, query, period, K) == want
            reopened.append(424242, 0.0, 0.0, 1e12)
            reopened.append(424242, 1.0, 1.0, 1e12 + 1)
            assert reopened.num_points == points + 2

    def test_orphans_are_swept_on_reopen(self, scenario, tmp_path):
        """A crash between writing generation files and the manifest
        commit leaves orphans; reopening deletes them."""
        root, _base, _wal_events, _query, _period = scenario
        target = _copy(root, tmp_path, "orphans")

        store = IngestStore.open(target)
        store._failpoints = lambda at: (
            (_ for _ in ()).throw(SimulatedCrash(at))
            if at == "compact.wal_rotated"
            else None
        )
        with pytest.raises(SimulatedCrash):
            store.compact()
        store.close()

        # gen-1 pages/data and the rotated-to WAL exist but are
        # unreferenced (the scenario's own compaction used up wal-2)
        orphans = {p.name for p in target.glob("gen-000001*")}
        orphans |= {p.name for p in target.glob("wal-000003*")}
        assert orphans
        with IngestStore.open(target):
            pass
        for name in orphans:
            assert not (target / name).exists()


# ----------------------------------------------------------------------
# corrupt metadata refuses, never misleads
# ----------------------------------------------------------------------
class TestCorruptMetadata:
    def test_corrupt_manifest_raises(self, scenario, tmp_path):
        root, *_ = scenario
        target = _copy(root, tmp_path, "bad-manifest")
        (target / "MANIFEST.json").write_bytes(b"{not json")
        with pytest.raises(StorageError):
            IngestStore.open(target)

    def test_missing_generation_raises(self, scenario, tmp_path):
        root, *_ = scenario
        target = _copy(root, tmp_path, "no-gen")
        for p in target.glob("gen-*.pages"):
            p.unlink()
        with pytest.raises(StorageError):
            IngestStore.open(target)

    def test_corrupt_data_snapshot_raises(self, scenario, tmp_path):
        root, *_ = scenario
        target = _copy(root, tmp_path, "bad-data")
        for p in target.glob("gen-*.data.json"):
            p.write_bytes(b"\x00\x01\x02")
        with pytest.raises(StorageError):
            IngestStore.open(target)
