"""Tests for trajectory deletion (condense-tree) across all trees.

Contract: after deleting any subset of objects, the index must behave
exactly like one that never contained them — structural invariants
hold, searches match the linear scan over the surviving data, and
freed pages are recycled by later insertions.
"""

import random

import pytest

from repro import (
    RStarTree,
    RTree3D,
    STRTree,
    TBTree,
    generate_gstd,
)
from repro.search.bfmst import bfmst_search
from repro.search.linear_scan import linear_scan_kmst
from repro.datagen import make_query
from repro.exceptions import IndexError_, TrajectoryError
from repro.index import NO_PAGE
from repro.trajectory import TrajectoryDataset

from test_indexes import check_structure

TREES = [RTree3D, RStarTree, STRTree, TBTree]


def build(cls, dataset, page_size=512):
    index = cls(page_size=page_size)
    index.bulk_insert(dataset)
    return index


def surviving(dataset, removed_ids):
    return TrajectoryDataset(
        tr for tr in dataset if tr.object_id not in removed_ids
    )


@pytest.mark.parametrize("cls", TREES)
class TestDeleteBasics:
    def test_delete_removes_all_segments(self, tiny_dataset, cls):
        index = build(cls, tiny_dataset)
        victim = tiny_dataset.ids()[3]
        removed = index.delete_trajectory(victim)
        assert removed == tiny_dataset[victim].num_segments
        assert victim not in index.trajectory_ids
        assert all(
            e.trajectory_id != victim for e in index.leaf_entries()
        )
        assert index.num_entries == (
            tiny_dataset.total_segments() - removed
        )
        check_structure(index)

    def test_unknown_id_rejected(self, tiny_dataset, cls):
        index = build(cls, tiny_dataset)
        with pytest.raises(TrajectoryError):
            index.delete_trajectory(424242)

    def test_finalized_index_rejects_deletion(self, tiny_dataset, cls):
        index = build(cls, tiny_dataset)
        index.finalize()
        with pytest.raises(IndexError_):
            index.delete_trajectory(tiny_dataset.ids()[0])

    def test_delete_everything_empties_tree(self, cls):
        dataset = generate_gstd(6, samples_per_object=20, seed=3)
        index = build(cls, dataset)
        for oid in dataset.ids():
            index.delete_trajectory(oid)
        assert index.num_entries == 0
        assert index.root_page == NO_PAGE
        assert index.num_nodes == 0
        assert list(index.leaf_entries()) == []

    def test_pages_recycled_after_delete(self, cls):
        dataset = generate_gstd(8, samples_per_object=30, seed=5)
        index = build(cls, dataset)
        pages_before = index.pagefile.num_pages
        for oid in dataset.ids()[:4]:
            index.delete_trajectory(oid)
        assert index._free_pages  # something was condensed away
        # re-inserting reuses freed pages instead of growing the file
        fresh = generate_gstd(3, samples_per_object=30, seed=99)
        for i, tr in enumerate(fresh):
            index.insert(tr.with_id(1000 + i))
        assert index.pagefile.num_pages <= pages_before + 2
        check_structure(index)


@pytest.mark.parametrize("cls", TREES)
class TestSearchAfterDeletion:
    def test_search_matches_scan_over_survivors(self, cls):
        dataset = generate_gstd(20, samples_per_object=30, seed=9)
        index = build(cls, dataset)
        rng = random.Random(1)
        removed = set(rng.sample(dataset.ids(), 7))
        for oid in removed:
            index.delete_trajectory(oid)
        check_structure(index)
        index.finalize()
        rest = surviving(dataset, removed)
        for seed in range(4):
            query, period = make_query(rest, 0.25, random.Random(seed))
            got, _ = bfmst_search(index, query, period, k=3)
            want = linear_scan_kmst(rest, query, period, k=3, exact=True)
            assert [m.trajectory_id for m in got] == [
                m.trajectory_id for m in want
            ]

    def test_interleaved_delete_and_insert(self, cls):
        dataset = generate_gstd(12, samples_per_object=25, seed=4)
        extra = generate_gstd(4, samples_per_object=25, seed=44)
        index = build(cls, dataset)
        live = {tr.object_id: tr for tr in dataset}
        rng = random.Random(6)
        for i, tr in enumerate(extra):
            victim = rng.choice(sorted(live))
            index.delete_trajectory(victim)
            del live[victim]
            newcomer = tr.with_id(500 + i)
            index.insert(newcomer)
            live[newcomer.object_id] = newcomer
        check_structure(index)
        rest = TrajectoryDataset(live.values())
        assert index.num_entries == rest.total_segments()
        query, period = make_query(rest, 0.3, random.Random(2))
        got, _ = bfmst_search(index, query, period, k=2)
        want = linear_scan_kmst(rest, query, period, k=2, exact=True)
        assert [m.trajectory_id for m in got] == [
            m.trajectory_id for m in want
        ]


class TestTBTreeDeletionSpecifics:
    def test_other_chains_intact_after_delete(self):
        dataset = generate_gstd(10, samples_per_object=60, seed=8)
        index = TBTree(page_size=512)  # multi-leaf chains
        index.bulk_insert(dataset)
        index.delete_trajectory(dataset.ids()[0])
        index.delete_trajectory(dataset.ids()[5])
        for tr in dataset:
            if tr.object_id in (dataset.ids()[0], dataset.ids()[5]):
                assert index.trajectory_segments(tr.object_id) == []
                continue
            got = [e.segment for e in index.trajectory_segments(tr.object_id)]
            assert got == list(tr.segments())

    def test_leaf_purity_preserved(self):
        dataset = generate_gstd(10, samples_per_object=60, seed=8)
        index = TBTree(page_size=512)
        index.bulk_insert(dataset)
        for oid in dataset.ids()[:5]:
            index.delete_trajectory(oid)
        for node in index.nodes():
            if node.is_leaf:
                owners = {e.trajectory_id for e in node.entries}
                assert len(owners) == 1
