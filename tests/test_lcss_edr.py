"""Tests for the LCSS and EDR competitor measures (and their -I
variants), including the paper's Section 5.2 failure analysis of EDR
under compression."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Trajectory, edr_distance, edr_i_distance, lcss_distance, lcss_i_distance
from repro.compression import td_tr_fraction
from repro.distance import edr_normalised_distance, lcss_length, lcss_similarity

from conftest import trajectories


def tr(points, id_=0):
    return Trajectory(id_, points)


class TestLCSS:
    def test_identical_sequences(self):
        a = tr([(0, 0, 0), (1, 1, 1), (2, 2, 2)])
        assert lcss_length(a, a.with_id(1), eps=0.1) == 3
        assert lcss_distance(a, a.with_id(1), eps=0.1) == 0.0

    def test_no_matches(self):
        a = tr([(0, 0, 0), (1, 1, 1)])
        b = tr([(10, 10, 0), (20, 20, 1)], id_=1)
        assert lcss_length(a, b, eps=0.5) == 0
        assert lcss_distance(a, b, eps=0.5) == 1.0

    def test_partial_match_with_outlier(self):
        # LCSS's selling point: one outlier doesn't break the match.
        a = tr([(0, 0, 0), (1, 0, 1), (2, 0, 2), (3, 0, 3)])
        b = tr([(0, 0, 0), (99, 99, 1), (2, 0, 2), (3, 0, 3)], id_=1)
        assert lcss_length(a, b, eps=0.1) == 3

    def test_eps_negative_rejected(self):
        a = tr([(0, 0, 0), (1, 1, 1)])
        with pytest.raises(ValueError):
            lcss_length(a, a.with_id(1), eps=-1.0)

    def test_delta_window_restricts_matching(self):
        # The matching pair sits 3 indexes apart; delta=1 forbids it.
        a = tr([(0, 0, 0), (9, 9, 1), (9, 9, 2), (9, 9, 3), (5, 5, 4)])
        b = tr([(5, 5, 0), (7, 7, 1), (7, 7, 2), (7, 7, 3), (0, 0, 4)], id_=1)
        assert lcss_length(a, b, eps=0.1, delta=10) == 1
        assert lcss_length(a, b, eps=0.1, delta=1) == 0

    def test_similarity_normalisation(self):
        a = tr([(0, 0, 0), (1, 0, 1)])
        b = tr([(0, 0, 0), (1, 0, 1), (9, 9, 2), (9, 9, 3)], id_=1)
        assert lcss_similarity(a, b, eps=0.1) == 1.0  # min length = 2

    @given(trajectories(id_=0), trajectories(id_=1))
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, a, b):
        assert lcss_length(a, b, 0.5) == lcss_length(b, a, 0.5)

    @given(trajectories(id_=0), trajectories(id_=1))
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_min_length(self, a, b):
        assert 0 <= lcss_length(a, b, 0.5) <= min(len(a), len(b))

    @given(trajectories(id_=0))
    @settings(max_examples=40, deadline=None)
    def test_self_distance_zero(self, a):
        assert lcss_distance(a, a.with_id(1), eps=1e-9) == 0.0


class TestEDR:
    def test_identical_sequences(self):
        a = tr([(0, 0, 0), (1, 1, 1), (2, 2, 2)])
        assert edr_distance(a, a.with_id(1), eps=0.1) == 0

    def test_single_substitution(self):
        a = tr([(0, 0, 0), (1, 0, 1), (2, 0, 2)])
        b = tr([(0, 0, 0), (9, 9, 1), (2, 0, 2)], id_=1)
        assert edr_distance(a, b, eps=0.1) == 1

    def test_length_difference_costs_insertions(self):
        a = tr([(0, 0, 0), (1, 0, 1), (2, 0, 2), (3, 0, 3)])
        b = tr([(0, 0, 0), (3, 0, 3)], id_=1)
        assert edr_distance(a, b, eps=0.1) == 2

    def test_eps_negative_rejected(self):
        a = tr([(0, 0, 0), (1, 1, 1)])
        with pytest.raises(ValueError):
            edr_distance(a, a.with_id(1), eps=-0.1)

    def test_normalised_variant(self):
        a = tr([(0, 0, 0), (1, 0, 1), (2, 0, 2), (3, 0, 3)])
        b = tr([(0, 0, 0), (3, 0, 3)], id_=1)
        assert edr_normalised_distance(a, b, eps=0.1) == pytest.approx(0.5)

    @given(trajectories(id_=0), trajectories(id_=1))
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, a, b):
        assert edr_distance(a, b, 0.5) == edr_distance(b, a, 0.5)

    @given(trajectories(id_=0), trajectories(id_=1))
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, a, b):
        d = edr_distance(a, b, 0.5)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(trajectories(id_=0), trajectories(id_=1), trajectories(id_=2))
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        """EDR (with match/mismatch cost in {0,1}) satisfies the
        triangle inequality only approximately; the classic guarantee
        is EDR(a,c) <= EDR(a,b) + EDR(b,c) + min lengths slack.  We
        check the standard weak form used in pruning: the raw edit
        counts never violate it by more than the intermediate
        trajectory's length."""
        ab = edr_distance(a, b, 0.5)
        bc = edr_distance(b, c, 0.5)
        ac = edr_distance(a, c, 0.5)
        assert ac <= ab + bc + len(b)


class TestImprovedVariants:
    def test_interpolation_recovers_undersampled_match(self):
        """The paper's motivation for LCSS-I/EDR-I: an under-sampled
        copy of a trajectory (whose samples fall *between* the
        original's samples) matches poorly raw, much better after
        interpolation at the original's timestamps."""
        dense = tr([(float(i), 0.0, float(i)) for i in range(9)])
        sparse = tr(
            [(0.5, 0.0, 0.5), (4.5, 0.0, 4.5), (7.5, 0.0, 7.5)], id_=1
        )
        # Raw: no sparse sample is within eps of any dense sample.
        assert lcss_distance(sparse, dense, eps=0.01) == 1.0
        assert edr_distance(sparse, dense, eps=0.01) >= len(dense) - len(sparse)
        # Interpolated: the enriched query hits every dense timestamp
        # inside its lifetime exactly.
        assert lcss_i_distance(sparse, dense, eps=0.01) < 1.0
        assert edr_i_distance(sparse, dense, eps=0.01) < edr_distance(
            sparse, dense, eps=0.01
        )

    def test_edr_compression_failure_mode(self):
        """Section 5.2's analysis: EDR(A, A_compressed) >= n - m, so a
        short arbitrary trajectory can beat the true original."""
        dense = tr([(float(i), float((-1) ** i), float(i)) for i in range(24)])
        compressed = td_tr_fraction(dense, 0.10).with_id(1)
        n, m = len(dense), len(compressed)
        if m < n:
            assert edr_distance(dense, compressed, eps=0.25) >= n - m
