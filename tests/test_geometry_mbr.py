"""Unit + property tests for 2D/3D bounding boxes."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import MBR2D, MBR3D, Point, STPoint, point_rect_distance

from conftest import small_coord


@st.composite
def mbr2ds(draw):
    x1, x2 = sorted([draw(small_coord), draw(small_coord)])
    y1, y2 = sorted([draw(small_coord), draw(small_coord)])
    return MBR2D(x1, y1, x2, y2)


@st.composite
def mbr3ds(draw):
    x1, x2 = sorted([draw(small_coord), draw(small_coord)])
    y1, y2 = sorted([draw(small_coord), draw(small_coord)])
    t1, t2 = sorted([draw(small_coord), draw(small_coord)])
    return MBR3D(x1, y1, t1, x2, y2, t2)


class TestMBR2D:
    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            MBR2D(1.0, 0.0, 0.0, 1.0)

    def test_from_points(self):
        box = MBR2D.from_points([Point(0, 0), Point(2, 1), Point(-1, 3)])
        assert box == MBR2D(-1, 0, 2, 3)

    def test_from_points_empty_rejected(self):
        with pytest.raises(ValueError):
            MBR2D.from_points([])

    def test_area_and_margin(self):
        box = MBR2D(0, 0, 2, 3)
        assert box.area() == 6.0
        assert box.margin() == 5.0

    def test_contains_point_boundary(self):
        box = MBR2D(0, 0, 1, 1)
        assert box.contains_point(Point(0, 0))
        assert box.contains_point(Point(1, 1))
        assert not box.contains_point(Point(1.0001, 0.5))

    def test_intersection_area(self):
        a = MBR2D(0, 0, 2, 2)
        b = MBR2D(1, 1, 3, 3)
        assert a.intersection_area(b) == 1.0
        assert a.intersection_area(MBR2D(5, 5, 6, 6)) == 0.0

    def test_mindist_inside_is_zero(self):
        assert MBR2D(0, 0, 2, 2).mindist_to_point(Point(1, 1)) == 0.0

    def test_mindist_corner(self):
        assert MBR2D(0, 0, 1, 1).mindist_to_point(Point(4, 5)) == 5.0

    @given(mbr2ds(), mbr2ds())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains(a) and u.contains(b)

    @given(mbr2ds(), mbr2ds())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(mbr2ds(), small_coord, small_coord)
    def test_mindist_lower_bounds_contained_points(self, box, fx, fy):
        # Any point inside the box is at least mindist away from an
        # outside probe.
        probe = Point(fx * 3, fy * 3)
        inside = Point(
            box.xmin + (box.xmax - box.xmin) * (abs(fx) % 1.0),
            box.ymin + (box.ymax - box.ymin) * (abs(fy) % 1.0),
        )
        assert box.mindist_to_point(probe) <= probe.distance_to(inside) + 1e-9


class TestMBR3D:
    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            MBR3D(0, 0, 1, 1, 1, 0)

    def test_from_st_points(self):
        box = MBR3D.from_st_points([STPoint(0, 1, 2), STPoint(3, -1, 5)])
        assert box == MBR3D(0, -1, 2, 3, 1, 5)

    def test_spatial_projection(self):
        box = MBR3D(0, 1, 2, 3, 4, 5)
        assert box.spatial == MBR2D(0, 1, 3, 4)
        assert box.duration == 3.0

    def test_volume(self):
        assert MBR3D(0, 0, 0, 2, 3, 4).volume() == 24.0

    def test_overlaps_period(self):
        box = MBR3D(0, 0, 10, 1, 1, 20)
        assert box.overlaps_period(15, 25)
        assert box.overlaps_period(20, 30)  # touching counts
        assert not box.overlaps_period(20.001, 30)

    @given(mbr3ds(), mbr3ds())
    def test_union_commutes(self, a, b):
        assert a.union(b) == b.union(a)

    @given(mbr3ds(), mbr3ds())
    def test_enlargement_matches_union_volume(self, a, b):
        expected = a.union(b).volume() - a.volume()
        assert math.isclose(a.enlargement(b), expected, rel_tol=1e-12, abs_tol=1e-9)

    @given(mbr3ds(), mbr3ds())
    def test_enlargement_nonnegative(self, a, b):
        assert a.enlargement(b) >= -1e-9

    @given(mbr3ds(), mbr3ds())
    def test_contains_implies_intersects(self, a, b):
        if a.contains(b):
            assert a.intersects(b)


def test_point_rect_distance_free_function():
    assert point_rect_distance(5.0, 0.5, 0, 0, 1, 1) == 4.0
    assert point_rect_distance(0.5, 0.5, 0, 0, 1, 1) == 0.0
