"""Tests for the spatiotemporal histogram selectivity estimator."""

import random

import pytest

from repro import (
    SpatioTemporalHistogram,
    Trajectory,
    TrajectoryDataset,
    generate_gstd,
)
from repro.exceptions import QueryError, TrajectoryError
from repro.geometry import MBR2D, MBR3D
from repro.search import range_query_brute_force


@pytest.fixture(scope="module")
def dataset():
    return generate_gstd(40, samples_per_object=60, seed=17, heading="random")


@pytest.fixture(scope="module")
def histogram(dataset):
    return SpatioTemporalHistogram(dataset, nx=12, ny=12, nt=12)


class TestConstruction:
    def test_empty_dataset_rejected(self):
        with pytest.raises(TrajectoryError):
            SpatioTemporalHistogram(TrajectoryDataset())

    def test_bad_resolution_rejected(self, dataset):
        with pytest.raises(QueryError):
            SpatioTemporalHistogram(dataset, nx=0)

    def test_total_mass_equals_segment_count(self, histogram, dataset):
        assert sum(histogram._cells) == pytest.approx(
            dataset.total_segments(), rel=1e-9
        )

    def test_single_trajectory_dataset(self):
        ds = TrajectoryDataset([Trajectory(1, [(0, 0, 0), (1, 1, 1)])])
        h = SpatioTemporalHistogram(ds, nx=4, ny=4, nt=4)
        assert sum(h._cells) == pytest.approx(1.0)


class TestBoxEstimates:
    def test_full_domain_counts_everything(self, histogram, dataset):
        est = histogram.estimate_box_count(dataset.mbr())
        assert est == pytest.approx(dataset.total_segments(), rel=1e-6)

    def test_disjoint_box_counts_nothing(self, histogram, dataset):
        b = dataset.mbr()
        far = MBR3D(
            b.xmax + 10, b.ymax + 10, b.tmax + 10,
            b.xmax + 11, b.ymax + 11, b.tmax + 11,
        )
        # estimator clamps to the nearest cells but coverage is zero
        assert histogram.estimate_box_count(far) == pytest.approx(0.0, abs=1e-9)

    def test_monotone_in_box_growth(self, histogram, dataset):
        b = dataset.mbr()
        cx, cy = (b.xmin + b.xmax) / 2, (b.ymin + b.ymax) / 2
        ct = (b.tmin + b.tmax) / 2
        prev = 0.0
        for f in (0.1, 0.3, 0.6, 1.0):
            hw = f * (b.xmax - b.xmin) / 2
            hh = f * (b.ymax - b.ymin) / 2
            ht = f * (b.tmax - b.tmin) / 2
            box = MBR3D(cx - hw, cy - hh, ct - ht, cx + hw, cy + hh, ct + ht)
            est = histogram.estimate_box_count(box)
            assert est >= prev - 1e-9
            prev = est


class TestRangeSelectivityCalibration:
    def test_tracks_true_selectivity(self, histogram, dataset):
        """Estimates must correlate with ground truth on benign data:
        within a factor-of-few absolute band, and ordered correctly
        between a small and a large window."""
        rng = random.Random(3)
        t0, t1 = dataset.time_span()
        errors = []
        for _ in range(10):
            cx, cy = rng.random(), rng.random()
            w = rng.uniform(0.1, 0.3)
            ta = rng.uniform(t0, t0 + (t1 - t0) * 0.5)
            tb = ta + rng.uniform(0.1, 0.4) * (t1 - t0)
            window = MBR2D(cx - w, cy - w, cx + w, cy + w)
            est = histogram.estimate_range_selectivity(window, ta, tb)
            truth_objects = range_query_brute_force(dataset, window, ta, tb)
            # convert to a segment-level truth: count segments whose
            # MBB intersects the query box
            box = MBR3D(window.xmin, window.ymin, ta, window.xmax, window.ymax, tb)
            truth = sum(
                1
                for tr in dataset
                for seg in tr.segments()
                if seg.mbr().intersects(box)
            ) / dataset.total_segments()
            errors.append(abs(est - truth))
            del truth_objects
        assert sum(errors) / len(errors) < 0.15

    def test_inverted_interval_rejected(self, histogram):
        with pytest.raises(QueryError):
            histogram.estimate_range_selectivity(MBR2D(0, 0, 1, 1), 5, 1)

    def test_selectivity_capped_at_one(self, histogram, dataset):
        b = dataset.mbr()
        sel = histogram.estimate_range_selectivity(
            MBR2D(b.xmin - 1, b.ymin - 1, b.xmax + 1, b.ymax + 1),
            b.tmin - 1,
            b.tmax + 1,
        )
        assert sel == pytest.approx(1.0, rel=1e-9)


class TestMSTCost:
    def test_cost_estimate_fields(self, histogram, dataset):
        tr = next(iter(dataset))
        t0 = tr.t_start + tr.duration * 0.2
        t1 = tr.t_start + tr.duration * 0.3
        est = histogram.estimate_mst_cost(tr, t0, t1)
        assert est.alive_segments > 0
        assert 0 <= est.corridor_segments <= est.alive_segments + 1e-9
        assert 0.0 <= est.corridor_fraction <= 1.0

    def test_longer_window_is_costlier(self, histogram, dataset):
        tr = next(iter(dataset))
        short = histogram.estimate_mst_cost(
            tr, tr.t_start, tr.t_start + tr.duration * 0.1
        )
        long = histogram.estimate_mst_cost(tr, tr.t_start, tr.t_end)
        assert long.alive_segments > short.alive_segments

    def test_corridor_fraction_predicts_prunability(self, histogram, dataset):
        """A short query window leaves most alive data outside the
        corridor — the situation where BFMST prunes well."""
        tr = next(iter(dataset))
        est = histogram.estimate_mst_cost(
            tr, tr.t_start, tr.t_start + tr.duration * 0.05
        )
        assert est.corridor_fraction < 0.9
