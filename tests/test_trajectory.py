"""Unit + property tests for the Trajectory data model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Trajectory
from repro.exceptions import TemporalCoverageError, TrajectoryError
from repro.geometry import Point, STPoint

from conftest import straight_line, trajectories


class TestConstruction:
    def test_from_tuples(self):
        tr = Trajectory("a", [(0, 0, 0), (1, 1, 1)])
        assert len(tr) == 2
        assert tr[0] == STPoint(0.0, 0.0, 0.0)

    def test_single_sample_rejected(self):
        with pytest.raises(TrajectoryError):
            Trajectory("a", [(0, 0, 0)])

    def test_empty_rejected(self):
        with pytest.raises(TrajectoryError):
            Trajectory("a", [])

    def test_duplicate_timestamps_rejected(self):
        with pytest.raises(TrajectoryError):
            Trajectory("a", [(0, 0, 0), (1, 1, 0)])

    def test_decreasing_timestamps_rejected(self):
        with pytest.raises(TrajectoryError):
            Trajectory("a", [(0, 0, 1), (1, 1, 0)])

    def test_nan_rejected(self):
        with pytest.raises(TrajectoryError):
            Trajectory("a", [(math.nan, 0, 0), (1, 1, 1)])

    def test_infinity_rejected(self):
        with pytest.raises(TrajectoryError):
            Trajectory("a", [(0, 0, 0), (math.inf, 1, 1)])


class TestAccessors:
    def test_span(self):
        tr = Trajectory(1, [(0, 0, 2), (1, 0, 5), (2, 0, 9)])
        assert tr.t_start == 2 and tr.t_end == 9 and tr.duration == 7

    def test_covers_and_overlaps(self):
        tr = Trajectory(1, [(0, 0, 2), (1, 0, 9)])
        assert tr.covers(3, 8)
        assert tr.covers(2, 9)
        assert not tr.covers(1, 8)
        assert tr.overlaps(8, 12)
        assert not tr.overlaps(9.01, 12)

    def test_segments_count_and_order(self):
        tr = Trajectory(1, [(0, 0, 0), (1, 0, 1), (2, 0, 2)])
        segs = list(tr.segments())
        assert len(segs) == tr.num_segments == 2
        assert segs[0].ts == 0 and segs[1].te == 2

    def test_position_at_interpolates(self):
        tr = straight_line(1, 0.0, 0.0, 2.0, 0.0, [0, 1, 2, 3])
        assert tr.position_at(1.5) == Point(3.0, 0.0)

    def test_position_at_sample_exact(self):
        tr = Trajectory(1, [(0, 0, 0), (5, 7, 2)])
        assert tr.position_at(2) == Point(5.0, 7.0)

    def test_position_outside_lifetime_rejected(self):
        tr = Trajectory(1, [(0, 0, 0), (1, 1, 1)])
        with pytest.raises(TemporalCoverageError):
            tr.position_at(1.5)

    def test_length_and_speeds(self):
        tr = Trajectory(1, [(0, 0, 0), (3, 4, 1), (3, 4, 2)])
        assert tr.length() == pytest.approx(5.0)
        assert tr.max_speed() == pytest.approx(5.0)
        assert tr.mean_speed() == pytest.approx(2.5)

    def test_mbr(self):
        tr = Trajectory(1, [(0, 5, 0), (-2, 1, 3)])
        box = tr.mbr()
        assert box.as_tuple() == (-2, 1, 0, 0, 5, 3)


class TestSlicing:
    def test_sliced_interpolates_endpoints(self):
        tr = straight_line(1, 0.0, 0.0, 1.0, 1.0, [0, 10])
        sl = tr.sliced(2.0, 6.0)
        assert sl.t_start == 2.0 and sl.t_end == 6.0
        assert sl[0] == STPoint(2.0, 2.0, 2.0)
        assert sl[-1] == STPoint(6.0, 6.0, 6.0)

    def test_sliced_keeps_interior_samples(self):
        tr = Trajectory(1, [(0, 0, 0), (1, 0, 1), (2, 0, 2), (3, 0, 3)])
        sl = tr.sliced(0.5, 2.5)
        assert [p.t for p in sl] == [0.5, 1.0, 2.0, 2.5]

    def test_sliced_outside_lifetime_rejected(self):
        tr = Trajectory(1, [(0, 0, 0), (1, 1, 1)])
        with pytest.raises(TemporalCoverageError):
            tr.sliced(0.5, 2.0)

    def test_sliced_empty_window_rejected(self):
        tr = Trajectory(1, [(0, 0, 0), (1, 1, 1)])
        with pytest.raises(TrajectoryError):
            tr.sliced(0.5, 0.5)

    @given(trajectories(min_samples=3, max_samples=10))
    @settings(max_examples=100)
    def test_sliced_positions_match_original(self, tr):
        lo = tr.t_start + tr.duration * 0.25
        hi = tr.t_start + tr.duration * 0.75
        if lo >= hi:
            return
        sl = tr.sliced(lo, hi)
        for frac in (0.0, 0.3, 0.7, 1.0):
            t = lo + (hi - lo) * frac
            assert sl.position_at(t).distance_to(tr.position_at(t)) < 1e-7


class TestDerivation:
    def test_time_shifted(self):
        tr = Trajectory(1, [(0, 0, 0), (1, 1, 1)]).time_shifted(5.0)
        assert tr.t_start == 5.0 and tr.t_end == 6.0

    def test_translated(self):
        tr = Trajectory(1, [(0, 0, 0), (1, 1, 1)]).translated(2.0, -1.0)
        assert tr[0] == STPoint(2.0, -1.0, 0.0)

    def test_with_id(self):
        tr = Trajectory(1, [(0, 0, 0), (1, 1, 1)]).with_id("q")
        assert tr.object_id == "q"

    def test_uniform_resample_counts(self):
        tr = straight_line(1, 0.0, 0.0, 1.0, 0.0, [0, 1, 2, 3, 4])
        rs = tr.uniformly_resampled(9)
        assert len(rs) == 9
        assert rs.t_start == tr.t_start and rs.t_end == tr.t_end

    def test_uniform_resample_too_few_rejected(self):
        tr = Trajectory(1, [(0, 0, 0), (1, 1, 1)])
        with pytest.raises(TrajectoryError):
            tr.uniformly_resampled(1)

    @given(trajectories(min_samples=2, max_samples=8))
    def test_resampled_positions_lie_on_original(self, tr):
        rs = tr.uniformly_resampled(7)
        for p in rs:
            q = tr.position_at(p.t)
            assert math.hypot(p.x - q.x, p.y - q.y) < 1e-7

    def test_segments_overlapping(self):
        tr = Trajectory(1, [(0, 0, 0), (1, 0, 1), (2, 0, 2), (3, 0, 3)])
        spans = [(s.ts, s.te) for s in tr.segments_overlapping(0.5, 1.5)]
        assert spans == [(0, 1), (1, 2)]
        assert [
            (s.ts, s.te) for s in tr.segments_overlapping(1.0, 1.0)
        ] == [(0, 1), (1, 2)]

    def test_sampling_timestamps_in(self):
        tr = Trajectory(1, [(0, 0, 0), (1, 0, 1), (2, 0, 2)])
        assert tr.sampling_timestamps_in(0.5, 2.0) == [1.0, 2.0]


class TestNormalisation:
    def test_normalised_moments(self):
        tr = Trajectory(1, [(0, 0, 0), (2, 4, 1)])
        norm = tr.normalised(1.0, 2.0, 1.0, 2.0)
        assert norm[0] == STPoint(-1.0, -1.0, 0.0)
        assert norm[1] == STPoint(1.0, 1.0, 1.0)

    def test_zero_std_treated_as_one(self):
        tr = Trajectory(1, [(1, 1, 0), (1, 1, 1)])
        norm = tr.normalised(1.0, 1.0, 0.0, 0.0)
        assert norm[0] == STPoint(0.0, 0.0, 0.0)

    def test_spatial_std(self):
        tr = Trajectory(1, [(0, 0, 0), (2, 0, 1)])
        sx, sy = tr.spatial_std()
        assert sx == pytest.approx(1.0)
        assert sy == 0.0
