"""Tests for the result/statistics value types."""

import pytest

from repro import MSTMatch, SearchStats


class TestMSTMatch:
    def test_certified_interval(self):
        m = MSTMatch(7, 10.0, 0.5)
        assert m.lower == 9.5
        assert m.upper == 10.0
        assert m.exact

    def test_upper_bound_result(self):
        m = MSTMatch(7, 10.0, 0.0, exact=False)
        assert not m.exact
        assert m.lower == m.upper == 10.0

    def test_immutability(self):
        m = MSTMatch(7, 10.0)
        with pytest.raises(AttributeError):
            m.dissim = 5.0


class TestSearchStats:
    def test_pruning_power_zero_for_empty_index(self):
        assert SearchStats(total_nodes=0).pruning_power == 0.0

    def test_pruning_power_basic(self):
        stats = SearchStats(node_accesses=10, total_nodes=100)
        assert stats.pruning_power == pytest.approx(0.9)

    def test_pruning_power_clamped(self):
        # re-reads can push accesses past the node count; pruning power
        # must not go negative
        stats = SearchStats(node_accesses=150, total_nodes=100)
        assert stats.pruning_power == 0.0

    def test_defaults(self):
        stats = SearchStats()
        assert stats.candidates_created == 0
        assert not stats.terminated_early
        assert stats.extra == {}
