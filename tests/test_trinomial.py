"""Tests for the distance trinomial: exact integral vs numeric
quadrature, and the Lemma 1 trapezoid bound (the load-bearing math)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

quad = pytest.importorskip(
    "scipy.integrate", reason="quadrature oracle needs scipy"
).quad

from repro.distance import DistanceTrinomial, IntegralResult


@st.composite
def trinomials(draw):
    """Random valid trinomials built from relative motion so the
    discriminant constraint (b^2 <= 4ac) holds by construction."""
    dvx = draw(st.floats(min_value=-5, max_value=5))
    dvy = draw(st.floats(min_value=-5, max_value=5))
    dx = draw(st.floats(min_value=-10, max_value=10))
    dy = draw(st.floats(min_value=-10, max_value=10))
    a = dvx * dvx + dvy * dvy
    b = 2.0 * (dx * dvx + dy * dvy)
    c = dx * dx + dy * dy
    return DistanceTrinomial(a, b, c)


@st.composite
def raw_trinomials(draw):
    """Random valid trinomials from *direct* coefficient draws: a and c
    non-negative over several orders of magnitude, b a signed fraction
    of the discriminant limit 2*sqrt(ac).  Covers corners the
    relative-motion construction reaches only by shrinking (a = 0
    exactly, |b| = 2*sqrt(ac) exactly, wildly unbalanced a vs c)."""
    magnitude = st.one_of(
        st.just(0.0),
        st.floats(min_value=1e-8, max_value=1e4),
    )
    a = draw(magnitude)
    c = draw(magnitude)
    frac = draw(st.floats(min_value=-1.0, max_value=1.0))
    b = frac * 2.0 * math.sqrt(a * c)
    return DistanceTrinomial(a, b, c)


intervals = st.tuples(
    st.floats(min_value=-5.0, max_value=5.0),
    st.floats(min_value=0.01, max_value=10.0),
).map(lambda p: (p[0], p[0] + p[1]))


class TestConstruction:
    def test_negative_a_rejected(self):
        with pytest.raises(ValueError):
            DistanceTrinomial(-1.0, 0.0, 1.0)

    def test_negative_c_rejected(self):
        with pytest.raises(ValueError):
            DistanceTrinomial(1.0, 0.0, -1.0)

    def test_value_at_clamps_rounding_noise(self):
        # b^2 == 4ac exactly: the minimum is 0, rounding may dip below.
        tri = DistanceTrinomial(1.0, -2.0, 1.0)
        assert tri.value_at(1.0) == 0.0

    def test_flex_location(self):
        assert DistanceTrinomial(2.0, -4.0, 3.0).flex == 1.0
        assert DistanceTrinomial(0.0, 0.0, 3.0).flex is None


class TestExactIntegral:
    def test_constant_distance(self):
        tri = DistanceTrinomial(0.0, 0.0, 9.0)
        assert tri.exact_integral(0.0, 4.0) == pytest.approx(12.0)

    def test_linear_motion_through_origin(self):
        # D(tau) = |tau - 1|: objects meet at tau = 1.
        tri = DistanceTrinomial(1.0, -2.0, 1.0)
        # integral of |tau - 1| over [0, 2] = 1.
        assert tri.exact_integral(0.0, 2.0) == pytest.approx(1.0)

    def test_inverted_interval_rejected(self):
        with pytest.raises(ValueError):
            DistanceTrinomial(1.0, 0.0, 1.0).exact_integral(1.0, 0.0)

    def test_empty_interval_is_zero(self):
        assert DistanceTrinomial(1.0, 0.0, 1.0).exact_integral(2.0, 2.0) == 0.0

    @given(trinomials(), intervals)
    @settings(max_examples=200, deadline=None)
    def test_matches_numeric_quadrature(self, tri, interval):
        lo, hi = interval
        expected, est_err = quad(tri.value_at, lo, hi, limit=200)
        got = tri.exact_integral(lo, hi)
        assert got == pytest.approx(expected, rel=1e-6, abs=max(1e-7, 10 * est_err))

    @given(trinomials(), intervals)
    @settings(max_examples=100)
    def test_additive_over_subintervals(self, tri, interval):
        lo, hi = interval
        mid = (lo + hi) / 2.0
        whole = tri.exact_integral(lo, hi)
        parts = tri.exact_integral(lo, mid) + tri.exact_integral(mid, hi)
        assert whole == pytest.approx(parts, rel=1e-9, abs=1e-9)


class TestTrapezoidLemma1:
    @given(trinomials(), intervals)
    @settings(max_examples=300)
    def test_one_sided_error_bound(self, tri, interval):
        """Lemma 1 + convexity: exact in [approx - bound, approx]."""
        lo, hi = interval
        exact = tri.exact_integral(lo, hi)
        result = tri.trapezoid_integral(lo, hi)
        assert result.error_bound >= 0.0
        # 1e-7 relative: near-degenerate quadratics (a ~ 1e-16 * c)
        # cap the achievable precision of the closed form itself.
        slack = 1e-7 * max(1.0, abs(result.approx))
        assert exact <= result.approx + slack
        assert exact >= result.approx - result.error_bound - slack

    def test_exact_for_constant_distance(self):
        tri = DistanceTrinomial(0.0, 0.0, 4.0)
        r = tri.trapezoid_integral(0.0, 3.0)
        assert r.approx == pytest.approx(6.0)
        assert r.error_bound == 0.0

    def test_flex_inside_interval_uses_flex_curvature(self):
        # Symmetric V with smooth bottom: flex at 0 inside [-1, 1].
        tri = DistanceTrinomial(1.0, 0.0, 1.0)
        r = tri.trapezoid_integral(-1.0, 1.0)
        expected_bound = (2.0**3 / 12.0) * tri.second_derivative_at(0.0)
        assert r.error_bound == pytest.approx(expected_bound)

    def test_collision_inside_interval_bound_stays_finite(self):
        tri = DistanceTrinomial(1.0, -2.0, 1.0)  # zero at tau = 1
        r = tri.trapezoid_integral(0.0, 2.0)
        assert math.isfinite(r.error_bound)
        exact = tri.exact_integral(0.0, 2.0)
        assert r.approx - r.error_bound <= exact <= r.approx

    @given(trinomials(), intervals, st.integers(min_value=1, max_value=16))
    @settings(max_examples=100)
    def test_subdivision_tightens_the_bound(self, tri, interval, panels):
        lo, hi = interval
        one = tri.trapezoid_integral(lo, hi)
        many = tri.subdivided_integral(lo, hi, panels)
        exact = tri.exact_integral(lo, hi)
        # The closed-form arcsinh evaluation cancels catastrophically
        # when the quadratic term is ~1e-15 (a near-linear trinomial
        # over a short far-from-origin interval), so the fp slack must
        # absorb ~1e-6 relative noise from the *exact* side.
        slack = 1e-6 * max(1.0, abs(many.approx))
        assert exact <= many.approx + slack
        assert exact >= many.approx - many.error_bound - slack
        # More panels never give a wider certified interval (up to fp).
        assert many.error_bound <= one.error_bound + slack

    def test_subdivided_rejects_bad_panel_count(self):
        with pytest.raises(ValueError):
            DistanceTrinomial(1, 0, 1).subdivided_integral(0, 1, 0)


class TestLemma1RawCoefficients:
    """Lemma 1 one-sidedness over direct coefficient draws (not the
    relative-motion construction): D(tau) = sqrt(a tau^2 + b tau + c)
    is convex, so the one-panel trapezoid never under-estimates and
    over-estimates by at most the certified bound."""

    @given(raw_trinomials(), intervals)
    @settings(max_examples=300, deadline=None)
    def test_trapezoid_never_underestimates(self, tri, interval):
        lo, hi = interval
        exact = tri.exact_integral(lo, hi)
        result = tri.trapezoid_integral(lo, hi)
        assert result.error_bound >= 0.0
        slack = 1e-7 * max(1.0, abs(result.approx))
        assert exact <= result.approx + slack
        assert exact >= result.approx - result.error_bound - slack

    @given(raw_trinomials())
    @settings(max_examples=100, deadline=None)
    def test_discriminant_extremes_are_valid(self, tri):
        # by construction b^2 <= 4ac, including the |b| = 2*sqrt(ac)
        # boundary where D touches (but never crosses) zero.
        assert tri.b * tri.b <= 4.0 * tri.a * tri.c * (1.0 + 1e-12) + 1e-300
        r = tri.trapezoid_integral(0.0, 1.0)
        assert math.isfinite(r.approx) and math.isfinite(r.error_bound)


class TestIntegralResult:
    def test_addition_accumulates_both_fields(self):
        total = IntegralResult(1.0, 0.1) + IntegralResult(2.0, 0.2)
        assert total.approx == pytest.approx(3.0)
        assert total.error_bound == pytest.approx(0.3)

    def test_lower_upper(self):
        r = IntegralResult(5.0, 1.0)
        assert r.lower == 4.0 and r.upper == 5.0
