"""Tests for the historical continuous nearest-neighbour query.

The headline property: at any sampled instant, the interval winner
reported by the envelope computation is (within float slop) as close
to the query as the true nearest object.
"""

import random

import pytest

from repro import (
    RTree3D,
    Trajectory,
    TrajectoryDataset,
    distance_at,
    generate_gstd,
)
from repro.search.continuous_nn import continuous_nearest_neighbour
from repro.exceptions import QueryError, TemporalCoverageError

from conftest import straight_line


def winners_at(intervals, t):
    for iv in intervals:
        if iv.t_lo <= t <= iv.t_hi:
            return iv.object_id
    raise AssertionError(f"no interval covers {t}")


class TestHandBuiltScenarios:
    def test_single_candidate(self):
        q = straight_line(0, 0.0, 0.0, 1.0, 0.0, [0.0, 10.0])
        ds = TrajectoryDataset([straight_line(1, 0.0, 1.0, 1.0, 0.0, [0.0, 10.0])])
        out = continuous_nearest_neighbour(ds, q, 0.0, 10.0)
        assert out == [type(out[0])(0.0, 10.0, 1)]

    def test_handover_at_crossing(self):
        """Candidate 1 starts nearer, candidate 2 overtakes midway:
        exactly one handover, at the analytic crossing time."""
        q = straight_line(0, 0.0, 0.0, 0.0, 0.0, [0.0, 10.0])  # parked at origin
        # 1: constant distance 2.  2: approaches from 12 to 0 at speed 1.2...
        one = straight_line(1, 2.0, 0.0, 0.0, 0.0, [0.0, 10.0])
        two = straight_line(2, 12.0, 0.0, -1.0, 0.0, [0.0, 10.0])
        ds = TrajectoryDataset([one, two])
        out = continuous_nearest_neighbour(ds, q, 0.0, 10.0)
        # two's distance: 12 - t; equals 2 at t = 10 -> touches at the
        # very end; so one wins nearly everywhere.
        assert out[0].object_id == 1
        # start closer so the crossing lands at t = 5: |7 - t| < 2 on
        # (5, 9), so the winner is 1, then 2, then 1 again.
        two_fast = straight_line(2, 7.0, 0.0, -1.0, 0.0, [0.0, 10.0])
        ds2 = TrajectoryDataset([one, two_fast])
        out2 = continuous_nearest_neighbour(ds2, q, 0.0, 10.0)
        assert [iv.object_id for iv in out2] == [1, 2, 1]
        assert out2[0].t_hi == pytest.approx(5.0, abs=1e-6)
        assert out2[1].t_hi == pytest.approx(9.0, abs=1e-6)

    def test_win_lose_win(self):
        """A flyby: candidate 2 dips below candidate 1's constant
        distance and rises again -> three intervals."""
        q = straight_line(0, 0.0, 0.0, 0.0, 0.0, [0.0, 10.0])
        one = straight_line(1, 0.0, 2.0, 0.0, 0.0, [0.0, 10.0])  # distance 2
        # two passes through the origin at t = 5 along x
        two = straight_line(2, -5.0, 0.0, 1.0, 0.0, [0.0, 10.0])
        ds = TrajectoryDataset([one, two])
        out = continuous_nearest_neighbour(ds, q, 0.0, 10.0)
        assert [iv.object_id for iv in out] == [1, 2, 1]
        # |x(t)| = |t - 5| < 2 for t in (3, 7)
        assert out[0].t_hi == pytest.approx(3.0, abs=1e-6)
        assert out[1].t_hi == pytest.approx(7.0, abs=1e-6)

    def test_partition_is_gapless(self):
        q = straight_line(0, 0.0, 0.0, 0.1, 0.2, [0.0, 10.0])
        ds = TrajectoryDataset(
            [
                straight_line(1, 1.0, 0.0, -0.1, 0.1, [0.0, 10.0]),
                straight_line(2, 0.0, 1.5, 0.2, -0.1, [0.0, 10.0]),
                straight_line(3, -1.0, -1.0, 0.15, 0.25, [0.0, 10.0]),
            ]
        )
        out = continuous_nearest_neighbour(ds, q, 0.0, 10.0)
        assert out[0].t_lo == 0.0
        assert out[-1].t_hi == 10.0
        for a, b in zip(out, out[1:]):
            assert a.t_hi == pytest.approx(b.t_lo, abs=1e-9)
            assert a.object_id != b.object_id

    def test_excluded_and_noncovering_candidates_skipped(self):
        q = straight_line(0, 0.0, 0.0, 0.0, 0.0, [0.0, 10.0])
        near = straight_line(1, 0.5, 0.0, 0.0, 0.0, [0.0, 10.0])
        far = straight_line(2, 5.0, 0.0, 0.0, 0.0, [0.0, 10.0])
        short = straight_line(3, 0.1, 0.0, 0.0, 0.0, [2.0, 3.0])
        ds = TrajectoryDataset([near, far, short])
        out = continuous_nearest_neighbour(ds, q, 0.0, 10.0, exclude_ids={1})
        assert [iv.object_id for iv in out] == [2]

    def test_no_candidates(self):
        q = straight_line(0, 0.0, 0.0, 0.0, 0.0, [0.0, 10.0])
        ds = TrajectoryDataset([straight_line(1, 0, 0, 0, 0, [20.0, 30.0])])
        assert continuous_nearest_neighbour(ds, q, 0.0, 10.0) == []

    def test_validation(self):
        q = straight_line(0, 0.0, 0.0, 0.0, 0.0, [0.0, 10.0])
        ds = TrajectoryDataset([q.with_id(1)])
        with pytest.raises(QueryError):
            continuous_nearest_neighbour(ds, q, 5.0, 5.0)
        with pytest.raises(TemporalCoverageError):
            continuous_nearest_neighbour(ds, q, 0.0, 11.0)


class TestAgainstDenseSampling:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_interval_winner_is_pointwise_optimal(self, seed):
        ds = generate_gstd(10, samples_per_object=20, seed=seed)
        rng = random.Random(seed)
        ids = ds.ids()
        source = ds[ids[rng.randrange(len(ids))]]
        lo = source.t_start + source.duration * 0.3
        hi = source.t_start + source.duration * 0.6
        query = source.sliced(lo, hi).with_id(-1)
        out = continuous_nearest_neighbour(ds, query, lo, hi)
        assert out[0].t_lo == pytest.approx(lo)
        assert out[-1].t_hi == pytest.approx(hi)
        for i in range(101):
            t = min(lo + (hi - lo) * i / 100.0, hi)
            winner = winners_at(out, t)
            d_winner = distance_at(query, ds[winner], t)
            d_best = min(
                distance_at(query, tr, t) for tr in ds if tr.covers(lo, hi)
            )
            assert d_winner <= d_best + 1e-7

    def test_index_pruning_preserves_answer(self, small_dataset, small_rtree):
        rng = random.Random(9)
        ids = small_dataset.ids()
        source = small_dataset[ids[rng.randrange(len(ids))]]
        lo = source.t_start + source.duration * 0.2
        hi = source.t_start + source.duration * 0.4
        query = source.sliced(lo, hi).with_id(-1)
        plain = continuous_nearest_neighbour(small_dataset, query, lo, hi)
        pruned = continuous_nearest_neighbour(
            small_dataset, query, lo, hi, index=small_rtree
        )
        assert [(iv.object_id) for iv in plain] == [
            (iv.object_id) for iv in pruned
        ]
        for a, b in zip(plain, pruned):
            assert a.t_lo == pytest.approx(b.t_lo, abs=1e-9)
            assert a.t_hi == pytest.approx(b.t_hi, abs=1e-9)
