"""Tests for the paged-storage layer: page files (memory and disk),
the LRU buffer manager, and I/O accounting."""

import pytest

from repro.exceptions import PageOverflowError, StorageError
from repro.storage import (
    PAGE_SIZE_DEFAULT,
    DiskPageFile,
    InMemoryPageFile,
    IOStats,
    LRUBufferManager,
)


class TestIOStats:
    def test_snapshot_and_diff(self):
        s = IOStats()
        s.physical_reads = 5
        s.buffer_hits = 2
        snap = s.snapshot()
        s.physical_reads = 9
        s.buffer_hits = 3
        d = s.diff(snap)
        assert d.physical_reads == 4
        assert d.buffer_hits == 1

    def test_hit_ratio(self):
        s = IOStats(buffer_hits=3, buffer_misses=1)
        assert s.hit_ratio == 0.75
        assert IOStats().hit_ratio == 0.0

    def test_reset(self):
        s = IOStats(physical_reads=3)
        s.reset()
        assert s.physical_reads == 0


class TestInMemoryPageFile:
    def test_allocate_read_write(self):
        pf = InMemoryPageFile(page_size=256)
        pid = pf.allocate()
        pf.write(pid, b"hello")
        data = pf.read(pid)
        assert data.startswith(b"hello")
        assert len(data) == 256

    def test_out_of_range_rejected(self):
        pf = InMemoryPageFile(page_size=256)
        with pytest.raises(StorageError):
            pf.read(0)
        pf.allocate()
        with pytest.raises(StorageError):
            pf.write(5, b"x")

    def test_oversized_payload_rejected(self):
        pf = InMemoryPageFile(page_size=128)
        pid = pf.allocate()
        with pytest.raises(PageOverflowError):
            pf.write(pid, b"x" * 129)

    def test_stats_count_physical_io(self):
        pf = InMemoryPageFile(page_size=128)
        pid = pf.allocate()
        pf.write(pid, b"a")
        pf.read(pid)
        pf.read(pid)
        assert pf.stats.physical_writes == 1
        assert pf.stats.physical_reads == 2

    def test_size_accounting(self):
        pf = InMemoryPageFile(page_size=1024)
        for _ in range(1024):
            pf.allocate()
        assert pf.size_bytes() == 1024 * 1024
        assert pf.size_mb() == pytest.approx(1.0)

    def test_tiny_page_size_rejected(self):
        with pytest.raises(StorageError):
            InMemoryPageFile(page_size=16)

    def test_default_page_size_is_paper_setup(self):
        assert InMemoryPageFile().page_size == PAGE_SIZE_DEFAULT == 4096


class TestDiskPageFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "pages.bin"
        with DiskPageFile(path, page_size=256) as pf:
            pid = pf.allocate()
            pf.write(pid, b"persisted")
        with DiskPageFile(path, page_size=256) as pf:
            assert pf.num_pages == 1
            assert pf.read(0).startswith(b"persisted")

    def test_wrong_page_size_on_reopen_rejected(self, tmp_path):
        path = tmp_path / "pages.bin"
        with DiskPageFile(path, page_size=256) as pf:
            pf.allocate()
        with pytest.raises(StorageError):
            DiskPageFile(path, page_size=100)

    def test_out_of_range(self, tmp_path):
        with DiskPageFile(tmp_path / "p.bin", page_size=256) as pf:
            with pytest.raises(StorageError):
                pf.read(0)


class TestLRUBufferManager:
    @staticmethod
    def make(capacity=2, page_size=256):
        pf = InMemoryPageFile(page_size=page_size)
        return pf, LRUBufferManager(pf, capacity=capacity)

    def test_capacity_validation(self):
        pf = InMemoryPageFile(page_size=256)
        with pytest.raises(StorageError):
            LRUBufferManager(pf, capacity=0)

    def test_hit_and_miss_accounting(self):
        pf, buf = self.make()
        pid = pf.allocate()
        pf.write(pid, b"\x07" * 10)
        loader = lambda data: data[0]
        assert buf.get(pid, loader) == 7
        assert buf.get(pid, loader) == 7
        assert pf.stats.buffer_misses == 1
        assert pf.stats.buffer_hits == 1
        assert pf.stats.logical_reads == 2

    def test_lru_eviction_order(self):
        pf, buf = self.make(capacity=2)
        pids = [pf.allocate() for _ in range(3)]
        for pid in pids:
            pf.write(pid, bytes([pid + 1]))
        loader = lambda data: data[0]
        ser = lambda obj: bytes([obj])
        buf.get(pids[0], loader, ser)
        buf.get(pids[1], loader, ser)
        buf.get(pids[0], loader, ser)  # refresh 0
        buf.get(pids[2], loader, ser)  # evicts 1 (LRU)
        assert buf.resident(pids[0])
        assert not buf.resident(pids[1])
        assert buf.resident(pids[2])
        assert pf.stats.evictions == 1

    def test_dirty_writeback_on_eviction(self):
        pf, buf = self.make(capacity=1)
        a = pf.allocate()
        b = pf.allocate()
        ser = lambda obj: bytes(obj)
        buf.put(a, bytearray(b"\x01\x02"), ser, dirty=True)
        buf.put(b, bytearray(b"\x03"), ser, dirty=True)  # evicts a
        assert pf.read(a).startswith(b"\x01\x02")

    def test_flush_writes_dirty_pages(self):
        pf, buf = self.make(capacity=4)
        a = pf.allocate()
        ser = lambda obj: bytes(obj)
        buf.put(a, bytearray(b"\x09"), ser, dirty=True)
        written = buf.flush()
        assert written == 1
        assert pf.read(a)[0] == 9
        # second flush is a no-op
        assert buf.flush() == 0

    def test_mark_dirty_requires_residency(self):
        pf, buf = self.make()
        with pytest.raises(StorageError):
            buf.mark_dirty(0)

    def test_drop_clears_without_writeback(self):
        pf, buf = self.make(capacity=4)
        a = pf.allocate()
        ser = lambda obj: bytes(obj)
        buf.put(a, bytearray(b"\x09"), ser, dirty=True)
        buf.drop()
        assert len(buf) == 0
        assert pf.read(a)[0] == 0  # never written

    def test_resize_to_fraction_policy(self):
        pf, buf = self.make(capacity=5000)
        for _ in range(200):
            pf.allocate()
        cap = buf.resize_to_fraction(0.10, max_pages=1000)
        assert cap == 20
        # cap at 1000 pages for huge files
        for _ in range(20_000):
            pf.allocate()
        assert buf.resize_to_fraction(0.10, max_pages=1000) == 1000
        # floor for tiny files
        pf2 = InMemoryPageFile(page_size=256)
        buf2 = LRUBufferManager(pf2, capacity=10)
        pf2.allocate()
        assert buf2.resize_to_fraction(0.10, min_pages=8) == 8

    def test_eviction_without_serializer_for_dirty_page_fails(self):
        pf, buf = self.make(capacity=1)
        a = pf.allocate()
        b = pf.allocate()
        buf._cache[a] = object()
        buf._dirty.add(a)
        with pytest.raises(StorageError):
            buf.get(b, lambda data: data)
