"""Tests for the paged-storage layer: page files (memory, disk, mmap),
the checksummed page format, the LRU buffer manager (including its
read-only mode), and I/O accounting."""

import threading

import pytest

from repro.exceptions import ChecksumError, PageOverflowError, StorageError
from repro.storage import (
    PAGE_SIZE_DEFAULT,
    BACKENDS,
    DiskPageFile,
    InMemoryPageFile,
    IOStats,
    LRUBufferManager,
    MmapPageFile,
    frame_page,
    open_pagefile,
    page_payload_capacity,
    unframe_page,
    verify_page,
)


class TestIOStats:
    def test_snapshot_and_diff(self):
        s = IOStats()
        s.physical_reads = 5
        s.buffer_hits = 2
        snap = s.snapshot()
        s.physical_reads = 9
        s.buffer_hits = 3
        d = s.diff(snap)
        assert d.physical_reads == 4
        assert d.buffer_hits == 1

    def test_hit_ratio(self):
        s = IOStats(buffer_hits=3, buffer_misses=1)
        assert s.hit_ratio == 0.75
        assert IOStats().hit_ratio == 0.0

    def test_reset(self):
        s = IOStats(physical_reads=3)
        s.reset()
        assert s.physical_reads == 0


class TestInMemoryPageFile:
    def test_allocate_read_write(self):
        pf = InMemoryPageFile(page_size=256)
        pid = pf.allocate()
        pf.write(pid, b"hello")
        data = pf.read(pid)
        assert data.startswith(b"hello")
        assert len(data) == 256

    def test_out_of_range_rejected(self):
        pf = InMemoryPageFile(page_size=256)
        with pytest.raises(StorageError):
            pf.read(0)
        pf.allocate()
        with pytest.raises(StorageError):
            pf.write(5, b"x")

    def test_oversized_payload_rejected(self):
        pf = InMemoryPageFile(page_size=128)
        pid = pf.allocate()
        with pytest.raises(PageOverflowError):
            pf.write(pid, b"x" * 129)

    def test_stats_count_physical_io(self):
        pf = InMemoryPageFile(page_size=128)
        pid = pf.allocate()
        pf.write(pid, b"a")
        pf.read(pid)
        pf.read(pid)
        assert pf.stats.physical_writes == 1
        assert pf.stats.physical_reads == 2

    def test_size_accounting(self):
        pf = InMemoryPageFile(page_size=1024)
        for _ in range(1024):
            pf.allocate()
        assert pf.size_bytes() == 1024 * 1024
        assert pf.size_mb() == pytest.approx(1.0)

    def test_tiny_page_size_rejected(self):
        with pytest.raises(StorageError):
            InMemoryPageFile(page_size=16)

    def test_default_page_size_is_paper_setup(self):
        assert InMemoryPageFile().page_size == PAGE_SIZE_DEFAULT == 4096


class TestDiskPageFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "pages.bin"
        with DiskPageFile(path, page_size=256) as pf:
            pid = pf.allocate()
            pf.write(pid, b"persisted")
        with DiskPageFile(path, page_size=256) as pf:
            assert pf.num_pages == 1
            assert pf.read(0).startswith(b"persisted")

    def test_wrong_page_size_on_reopen_rejected(self, tmp_path):
        path = tmp_path / "pages.bin"
        with DiskPageFile(path, page_size=256) as pf:
            pf.allocate()
        with pytest.raises(StorageError):
            DiskPageFile(path, page_size=100)

    def test_out_of_range(self, tmp_path):
        with DiskPageFile(tmp_path / "p.bin", page_size=256) as pf:
            with pytest.raises(StorageError):
                pf.read(0)


class TestLRUBufferManager:
    @staticmethod
    def make(capacity=2, page_size=256):
        pf = InMemoryPageFile(page_size=page_size)
        return pf, LRUBufferManager(pf, capacity=capacity)

    def test_capacity_validation(self):
        pf = InMemoryPageFile(page_size=256)
        with pytest.raises(StorageError):
            LRUBufferManager(pf, capacity=0)

    def test_hit_and_miss_accounting(self):
        pf, buf = self.make()
        pid = pf.allocate()
        pf.write(pid, b"\x07" * 10)
        loader = lambda data: data[0]
        assert buf.get(pid, loader) == 7
        assert buf.get(pid, loader) == 7
        assert pf.stats.buffer_misses == 1
        assert pf.stats.buffer_hits == 1
        assert pf.stats.logical_reads == 2

    def test_lru_eviction_order(self):
        pf, buf = self.make(capacity=2)
        pids = [pf.allocate() for _ in range(3)]
        for pid in pids:
            pf.write(pid, bytes([pid + 1]))
        loader = lambda data: data[0]
        ser = lambda obj: bytes([obj])
        buf.get(pids[0], loader, ser)
        buf.get(pids[1], loader, ser)
        buf.get(pids[0], loader, ser)  # refresh 0
        buf.get(pids[2], loader, ser)  # evicts 1 (LRU)
        assert buf.resident(pids[0])
        assert not buf.resident(pids[1])
        assert buf.resident(pids[2])
        assert pf.stats.evictions == 1

    def test_dirty_writeback_on_eviction(self):
        pf, buf = self.make(capacity=1)
        a = pf.allocate()
        b = pf.allocate()
        ser = lambda obj: bytes(obj)
        buf.put(a, bytearray(b"\x01\x02"), ser, dirty=True)
        buf.put(b, bytearray(b"\x03"), ser, dirty=True)  # evicts a
        assert pf.read(a).startswith(b"\x01\x02")

    def test_flush_writes_dirty_pages(self):
        pf, buf = self.make(capacity=4)
        a = pf.allocate()
        ser = lambda obj: bytes(obj)
        buf.put(a, bytearray(b"\x09"), ser, dirty=True)
        written = buf.flush()
        assert written == 1
        assert pf.read(a)[0] == 9
        # second flush is a no-op
        assert buf.flush() == 0

    def test_mark_dirty_requires_residency(self):
        pf, buf = self.make()
        with pytest.raises(StorageError):
            buf.mark_dirty(0)

    def test_drop_clears_without_writeback(self):
        pf, buf = self.make(capacity=4)
        a = pf.allocate()
        ser = lambda obj: bytes(obj)
        buf.put(a, bytearray(b"\x09"), ser, dirty=True)
        buf.drop()
        assert len(buf) == 0
        assert pf.read(a)[0] == 0  # never written

    def test_resize_to_fraction_policy(self):
        pf, buf = self.make(capacity=5000)
        for _ in range(200):
            pf.allocate()
        cap = buf.resize_to_fraction(0.10, max_pages=1000)
        assert cap == 20
        # cap at 1000 pages for huge files
        for _ in range(20_000):
            pf.allocate()
        assert buf.resize_to_fraction(0.10, max_pages=1000) == 1000
        # floor for tiny files
        pf2 = InMemoryPageFile(page_size=256)
        buf2 = LRUBufferManager(pf2, capacity=10)
        pf2.allocate()
        assert buf2.resize_to_fraction(0.10, min_pages=8) == 8

    def test_eviction_without_serializer_for_dirty_page_fails(self):
        pf, buf = self.make(capacity=1)
        a = pf.allocate()
        b = pf.allocate()
        buf._cache[a] = object()
        buf._dirty.add(a)
        with pytest.raises(StorageError):
            buf.get(b, lambda data: data)

    def test_all_pinned_overflows_instead_of_failing(self):
        """Pinning is advisory: when every resident page is pinned the
        cache overflows its capacity rather than erroring or evicting
        a pinned page."""
        pf, buf = self.make(capacity=2)
        pids = [pf.allocate() for _ in range(4)]
        for pid in pids:
            pf.write(pid, bytes([pid + 1]))
        loader = lambda data: data[0]
        for pid in pids:
            buf.pin(pid)
            buf.get(pid, loader)
        assert len(buf) == 4  # over capacity, nothing evicted
        assert all(buf.resident(pid) for pid in pids)
        assert pf.stats.evictions == 0
        # unpinning lets the next miss shrink the cache again
        buf.unpin_all()
        extra = pf.allocate()
        pf.write(extra, b"\x09")
        buf.get(extra, loader)
        assert len(buf) <= 2

    def test_threaded_eviction_writes_back_in_order(self):
        """Concurrent updates through a tiny locked buffer: every
        page's final content must be the last value written, whether
        it reached the page file via eviction or the final flush."""
        pf = InMemoryPageFile(page_size=256)
        buf = LRUBufferManager(pf, capacity=2)
        buf.enable_thread_safety()
        ser = lambda obj: bytes(obj)
        loader = lambda data: bytearray(data[:2])
        num_pages = 8
        pids = [pf.allocate() for _ in range(num_pages)]
        rounds = 30

        def worker(offset):
            for r in range(rounds):
                pid = pids[(offset + r) % num_pages]
                buf.put(pid, bytearray([pid, r]), ser, dirty=True)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        buf.flush()
        assert pf.stats.evictions > 0  # capacity 2 << 8 pages: it churned
        for pid in pids:
            data = pf.read(pid)
            # First byte identifies the page: write-back never crossed
            # pages, and the page saw a real (not torn) update.
            assert data[0] == pid


class TestPageFormat:
    def test_round_trip(self):
        payload = b"some node payload"
        framed = frame_page(payload)
        kind, back = unframe_page(framed)
        assert kind == 1
        assert bytes(back) == payload

    def test_round_trip_with_padding(self):
        payload = b"x" * 100
        padded = frame_page(payload).ljust(4096, b"\x00")
        _kind, back = unframe_page(padded)
        assert bytes(back) == payload

    def test_payload_capacity(self):
        assert page_payload_capacity(4096) == 4080
        with pytest.raises(StorageError):
            page_payload_capacity(8)

    def test_kill_a_byte_exhaustive(self):
        """Flipping ANY single byte of a framed, padded page is
        detected — frame header, payload, and padding alike."""
        payload = bytes(range(64))
        page = frame_page(payload).ljust(128, b"\x00")
        for offset in range(len(page)):
            for flip in (0x01, 0xFF):
                bad = bytearray(page)
                bad[offset] ^= flip
                with pytest.raises(StorageError):
                    unframe_page(bytes(bad), page_id=7)
                assert verify_page(bytes(bad), page_id=7) is not None
        # the untampered page is fine
        assert verify_page(page) is None

    def test_checksum_error_is_storage_error(self):
        payload = b"abc"
        bad = bytearray(frame_page(payload))
        bad[-1] ^= 0xFF
        with pytest.raises(ChecksumError):
            unframe_page(bytes(bad))
        assert issubclass(ChecksumError, StorageError)

    def test_v1_style_page_gets_actionable_error(self):
        """Raw (unframed) node bytes — a v1 page — name the version
        mismatch and point at the migration docs."""
        raw = b"\x01\x00\x05\x00" + b"\x00" * 60
        with pytest.raises(StorageError, match="migrated|docs/STORAGE"):
            unframe_page(raw)

    def test_truncated_frame_rejected(self):
        with pytest.raises(StorageError):
            unframe_page(b"\x50\x52")

    def test_memoryview_is_zero_copy(self):
        payload = b"q" * 32
        padded = frame_page(payload).ljust(256, b"\x00")
        view = memoryview(padded)
        _kind, back = unframe_page(view)
        assert isinstance(back, memoryview)
        assert bytes(back) == payload


class TestDiskDurability:
    def test_allocate_counts_physical_write(self, tmp_path):
        with DiskPageFile(tmp_path / "p.bin", page_size=256) as pf:
            pf.allocate()
            pf.allocate()
            assert pf.stats.physical_writes == 2

    def test_flush_fsync_counted(self, tmp_path):
        with DiskPageFile(tmp_path / "p.bin", page_size=256) as pf:
            pid = pf.allocate()
            pf.write(pid, b"x")
            pf.flush()
            assert pf.stats.fsyncs == 0
            pf.flush(fsync=True)
            assert pf.stats.fsyncs == 1

    def test_close_flushes_unflushed_writes(self, tmp_path):
        """The close() durability regression: data written but never
        explicitly flushed must survive the close."""
        path = tmp_path / "p.bin"
        pf = DiskPageFile(path, page_size=256)
        pid = pf.allocate()
        pf.write(pid, b"must survive close")
        pf.close()  # no flush() call before this
        assert pf.stats.fsyncs >= 1
        with DiskPageFile(path, page_size=256) as back:
            assert back.read(pid).startswith(b"must survive close")

    def test_close_is_idempotent(self, tmp_path):
        pf = DiskPageFile(tmp_path / "p.bin", page_size=256)
        pf.close()
        pf.close()  # must not raise on the closed handle


class TestMmapPageFile:
    @staticmethod
    def make_file(tmp_path, pages=3, page_size=256):
        path = tmp_path / "pages.bin"
        with DiskPageFile(path, page_size=page_size) as pf:
            for i in range(pages):
                pf.allocate()
                pf.write(i, bytes([i + 1]) * 16)
        return path

    def test_reads_match_disk(self, tmp_path):
        path = self.make_file(tmp_path)
        with MmapPageFile(path, page_size=256) as mm:
            assert mm.num_pages == 3
            for i in range(3):
                assert bytes(mm.read(i)) == bytes([i + 1]) * 16 + b"\x00" * 240

    def test_read_returns_zero_copy_memoryview(self, tmp_path):
        path = self.make_file(tmp_path)
        with MmapPageFile(path, page_size=256) as mm:
            page = mm.read(0)
            assert isinstance(page, memoryview)
            assert len(page) == 256

    def test_counts_mmap_reads_not_physical(self, tmp_path):
        path = self.make_file(tmp_path)
        with MmapPageFile(path, page_size=256) as mm:
            mm.read(0)
            mm.read(1)
            assert mm.stats.mmap_reads == 2
            assert mm.stats.physical_reads == 0

    def test_writes_rejected(self, tmp_path):
        path = self.make_file(tmp_path)
        with MmapPageFile(path, page_size=256) as mm:
            assert mm.writable is False
            with pytest.raises(StorageError):
                mm.write(0, b"x")
            with pytest.raises(StorageError):
                mm.allocate()

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            MmapPageFile(tmp_path / "nope.bin", page_size=256)

    def test_size_mismatch_rejected(self, tmp_path):
        path = tmp_path / "odd.bin"
        path.write_bytes(b"\x00" * 300)  # not a multiple of 256
        with pytest.raises(StorageError):
            MmapPageFile(path, page_size=256)

    def test_empty_file_ok(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with MmapPageFile(path, page_size=256) as mm:
            assert mm.num_pages == 0
            with pytest.raises(StorageError):
                mm.read(0)

    def test_out_of_range(self, tmp_path):
        path = self.make_file(tmp_path)
        with MmapPageFile(path, page_size=256) as mm:
            with pytest.raises(StorageError):
                mm.read(3)


class TestBackendRegistry:
    def test_names(self):
        assert set(BACKENDS) == {"memory", "disk", "mmap"}

    def test_open_memory(self):
        pf = open_pagefile("memory", page_size=256)
        assert isinstance(pf, InMemoryPageFile)

    def test_open_disk_and_mmap(self, tmp_path):
        path = tmp_path / "p.bin"
        with open_pagefile("disk", path, page_size=256) as pf:
            assert isinstance(pf, DiskPageFile)
            pf.allocate()
        with open_pagefile("mmap", path, page_size=256) as pf:
            assert isinstance(pf, MmapPageFile)

    def test_unknown_backend_rejected(self):
        with pytest.raises(StorageError, match="unknown storage backend"):
            open_pagefile("floppy")

    def test_path_rules(self, tmp_path):
        with pytest.raises(StorageError):
            open_pagefile("memory", tmp_path / "p.bin")
        with pytest.raises(StorageError):
            open_pagefile("disk")


class TestBufferReadOnlyMode:
    @staticmethod
    def make(tmp_path, capacity=2):
        path = tmp_path / "pages.bin"
        with DiskPageFile(path, page_size=256) as pf:
            for i in range(4):
                pf.allocate()
                pf.write(i, bytes([i + 1]) * 4)
        mm = MmapPageFile(path, page_size=256)
        return mm, LRUBufferManager(mm, capacity=capacity)

    def test_read_only_flag_follows_backend(self, tmp_path):
        mm, buf = self.make(tmp_path)
        assert buf.read_only is True
        rw = LRUBufferManager(InMemoryPageFile(page_size=256), capacity=2)
        assert rw.read_only is False
        mm.close()

    def test_get_works_and_evicts_without_writeback(self, tmp_path):
        mm, buf = self.make(tmp_path, capacity=2)
        loader = lambda data: bytes(data[:4])
        for i in range(4):
            assert buf.get(i, loader) == bytes([i + 1]) * 4
        assert mm.stats.evictions == 2
        mm.close()

    def test_dirty_operations_rejected(self, tmp_path):
        mm, buf = self.make(tmp_path)
        loader = lambda data: bytes(data[:4])
        buf.get(0, loader)
        with pytest.raises(StorageError, match="read-only"):
            buf.mark_dirty(0)
        with pytest.raises(StorageError, match="read-only"):
            buf.put(1, b"obj", lambda o: o, dirty=True)
        # non-dirty install is fine (pin warm-up uses it)
        buf.put(1, b"obj", lambda o: o, dirty=False)
        mm.close()

    def test_flush_is_noop(self, tmp_path):
        mm, buf = self.make(tmp_path)
        buf.get(0, lambda data: bytes(data[:4]))
        assert buf.flush() == 0
        mm.close()

    def test_checksum_failure_counted(self, tmp_path):
        """A loader raising ChecksumError bumps the pagefile-local
        counter and propagates."""
        mm, buf = self.make(tmp_path)

        def bad_loader(data):
            raise ChecksumError("page 0: checksum mismatch")

        with pytest.raises(ChecksumError):
            buf.get(0, bad_loader)
        assert mm.stats.checksum_failures == 1
        mm.close()
