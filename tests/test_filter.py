"""Signature filter tier tests (:mod:`repro.filter`).

Covers the certified-radius construction, the provable-lower-bound
property of the probe/cell bounds (both kernels, bit-equal), the binary
sidecar round-trip and its corruption handling, byte-identity of
filtered vs unfiltered answers across trees, partitioners, executors
(including the process pool) and live ingestion, and the observability
counters the tier reports.
"""

import math
import random

import pytest

from repro import (
    RTree3D,
    TBTree,
    Trajectory,
    generate_gstd,
    load_index,
    save_index,
)
from repro.datagen import make_workload
from repro.distance.dissim import dissim_exact
from repro.exceptions import IndexError_, QueryError, StorageError
from repro.filter import (
    SignatureFilter,
    build_signatures,
    signature_sidecar_path,
    write_signatures,
)
from repro.filter.signature import segment_index
from repro.index import fsck_index
from repro.search.bfmst import (
    CandidateRecord,
    _assemble,
    bfmst_search,
    make_signature_filter,
)
from repro.search.results import SearchStats

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False

KERNELS = ["python"] + (["numpy"] if HAVE_NUMPY else [])

TREES = {"rtree": RTree3D, "tbtree": TBTree}


@pytest.fixture(scope="module")
def dataset():
    return generate_gstd(24, samples_per_object=50, seed=13)


@pytest.fixture(scope="module")
def rtree(dataset):
    index = RTree3D()
    index.bulk_insert(dataset)
    index.finalize()
    return index


@pytest.fixture(scope="module")
def sigs(rtree):
    return build_signatures(rtree)


@pytest.fixture(scope="module")
def served(dataset, tmp_path_factory):
    """One saved-with-signatures + reloaded index per tree kind."""
    out = {}
    for name, cls in TREES.items():
        index = cls()
        index.bulk_insert(dataset)
        index.finalize()
        path = tmp_path_factory.mktemp("filter") / f"{name}.pages"
        save_index(index, path, signatures=True)
        out[name] = load_index(path)
    yield out
    for index in out.values():
        if index.signatures is not None:
            index.signatures.close()
        index.pagefile.close()


def workload(dataset, n=4, length=0.2, seed=31):
    return list(make_workload(dataset, n, query_length=length, seed=seed))


def match_keys(matches):
    """The byte-identity projection: every answer field, compared with
    ``==`` (no tolerance)."""
    return [
        (m.trajectory_id, m.dissim, m.error_bound, m.exact) for m in matches
    ]


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
class TestSignatureBuild:
    def test_structure(self, dataset, sigs):
        assert len(sigs) == len(dataset)
        for tid in dataset.ids():
            kt, kx, ky, radii = sigs.knots(tid)
            assert len(kt) == len(kx) == len(ky) >= 2
            assert len(radii) == len(kt) - 1
            assert kt == sorted(kt)
            assert all(r >= 0.0 for r in radii)
            cells = sigs.cell_list(tid)
            assert cells and cells == sorted(cells)

    def test_radii_certify_sed(self, dataset, sigs):
        # Every original sample must lie within the containing
        # simplified segment's certified radius at its own timestamp —
        # the invariant the probe bound's soundness rests on.
        for tr in dataset:
            kt, kx, ky, radii = sigs.knots(tr.object_id)
            for p in tr:
                i = segment_index(kt, p.t)
                frac = (p.t - kt[i]) / (kt[i + 1] - kt[i])
                sx = kx[i] + frac * (kx[i + 1] - kx[i])
                sy = ky[i] + frac * (ky[i + 1] - ky[i])
                dist = math.hypot(p.x - sx, p.y - sy)
                assert dist <= radii[i] + 1e-9

    def test_leaf_pages_recorded(self, rtree, sigs):
        expected = {}
        for node in rtree.nodes():
            if node.is_leaf:
                expected[node.page_id] = {
                    e.trajectory_id for e in node.entries
                }
        assert expected
        for page, tids in expected.items():
            assert set(sigs.page_tids(page)) == tids
        assert sigs.page_tids(10**9) is None

    def test_empty_index_rejected(self):
        with pytest.raises(IndexError_):
            build_signatures(RTree3D())


# ----------------------------------------------------------------------
# the lower-bound property
# ----------------------------------------------------------------------
class TestLowerBound:
    @pytest.mark.parametrize("kernels", KERNELS)
    def test_bound_never_exceeds_exact_dissim(
        self, dataset, rtree, sigs, kernels
    ):
        for query, period in workload(dataset, n=6, length=0.25):
            vmax = rtree.max_speed + query.max_speed()
            filt = SignatureFilter(
                sigs, query, period[0], period[1], vmax, kernels=kernels
            )
            for tid in dataset.ids():
                lb = filt.bound(tid)
                exact = dissim_exact(query, dataset.get(tid), period)
                assert lb <= exact + 1e-9 * max(1.0, exact)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
    def test_kernels_bit_equal(self, dataset, rtree, sigs):
        for query, period in workload(dataset, n=4, length=0.3, seed=7):
            vmax = rtree.max_speed + query.max_speed()
            f_py = SignatureFilter(
                sigs, query, period[0], period[1], vmax, kernels="python"
            )
            f_np = SignatureFilter(
                sigs, query, period[0], period[1], vmax, kernels="numpy"
            )
            for tid in dataset.ids():
                assert f_py.bound(tid) == f_np.bound(tid)

    def test_unknown_trajectory_never_prunes(self, dataset, rtree, sigs):
        query, period = workload(dataset, n=1)[0]
        filt = SignatureFilter(
            sigs, query, period[0], period[1], 1.0, kernels="python"
        )
        assert filt.bound(987654) is None
        assert not filt.should_prune(987654, 0.0)

    def test_equality_never_prunes(self, dataset, rtree, sigs):
        # Strictness mirrors Heuristics 1/2: lb == threshold keeps the
        # candidate.
        query, period = workload(dataset, n=1)[0]
        vmax = rtree.max_speed + query.max_speed()
        filt = SignatureFilter(
            sigs, query, period[0], period[1], vmax, kernels="python"
        )
        tid = max(dataset.ids(), key=lambda t: filt.bound(t))
        lb = filt.bound(tid)
        assert lb > 0.0
        assert not filt.should_prune(tid, lb)
        assert filt.should_prune(tid, math.nextafter(lb, 0.0))


# ----------------------------------------------------------------------
# sidecar persistence
# ----------------------------------------------------------------------
class TestSidecar:
    def test_round_trip(self, rtree, sigs, tmp_path):
        path = tmp_path / "idx.pages"
        meta = save_index(rtree, path, signatures=True)
        assert meta["signatures"]["trajectories"] == len(sigs)
        assert signature_sidecar_path(path).exists()
        index = load_index(path)
        try:
            assert index.signatures is not None
            assert index.signatures.binding == sigs.binding
            for tid in sigs.tids:
                assert index.signatures.knots(tid) == sigs.knots(tid)
                assert index.signatures.cell_list(tid) == sigs.cell_list(tid)
        finally:
            index.signatures.close()
            index.pagefile.close()

    def test_save_without_signatures_is_default(self, rtree, tmp_path):
        path = tmp_path / "idx.pages"
        save_index(rtree, path)
        assert not signature_sidecar_path(path).exists()
        index = load_index(path)
        try:
            assert index.signatures is None
        finally:
            index.pagefile.close()

    def test_corrupt_sidecar_fails_loudly(self, rtree, tmp_path):
        path = tmp_path / "idx.pages"
        save_index(rtree, path, signatures=True)
        sig_path = signature_sidecar_path(path)
        blob = bytearray(sig_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        sig_path.write_bytes(bytes(blob))
        with pytest.raises(StorageError):
            load_index(path)
        report = fsck_index(path)
        assert not report.ok
        assert any("signature" in err for err in report.errors)
        # Deleting the sidecar restores unfiltered service.
        sig_path.unlink()
        index = load_index(path)
        try:
            assert index.signatures is None
        finally:
            index.pagefile.close()
        assert fsck_index(path).ok

    def test_truncated_sidecar_rejected(self, rtree, tmp_path):
        path = tmp_path / "idx.pages"
        save_index(rtree, path, signatures=True)
        sig_path = signature_sidecar_path(path)
        sig_path.write_bytes(sig_path.read_bytes()[:40])
        with pytest.raises(StorageError):
            load_index(path)
        assert not fsck_index(path).ok

    def test_binding_mismatch_rejected(self, rtree, dataset, tmp_path):
        other = TBTree()
        other.bulk_insert(dataset)
        other.finalize()
        other_sigs = build_signatures(other)
        assert other_sigs.binding != (
            rtree.num_nodes,
            rtree.num_entries,
            rtree.root_page,
        )
        path = tmp_path / "idx.pages"
        save_index(rtree, path)
        write_signatures(other_sigs, signature_sidecar_path(path))
        with pytest.raises(StorageError):
            load_index(path)


# ----------------------------------------------------------------------
# filter modes
# ----------------------------------------------------------------------
class TestFilterModes:
    def test_on_requires_sidecar(self, rtree, dataset):
        query, period = workload(dataset, n=1)[0]
        with pytest.raises(QueryError):
            bfmst_search(rtree, query, period, k=3, filter="on")

    def test_invalid_mode_rejected(self, rtree, dataset):
        query, period = workload(dataset, n=1)[0]
        with pytest.raises(QueryError):
            bfmst_search(rtree, query, period, k=3, filter="sometimes")

    def test_auto_without_sidecar_is_silent(self, rtree, dataset):
        query, period = workload(dataset, n=1)[0]
        matches, stats = bfmst_search(rtree, query, period, k=3)
        assert matches
        assert stats.signature_checks == 0

    def test_make_signature_filter_modes(self, served, dataset):
        index = served["rtree"]
        query, period = workload(dataset, n=1)[0]
        assert (
            make_signature_filter(
                index, query, period[0], period[1], 1.0, "off", None
            )
            is None
        )
        filt = make_signature_filter(
            index, query, period[0], period[1], 1.0, "on", "python"
        )
        assert isinstance(filt, SignatureFilter)


# ----------------------------------------------------------------------
# byte identity with the filter off
# ----------------------------------------------------------------------
class TestByteIdentity:
    @pytest.mark.parametrize("tree", sorted(TREES))
    @pytest.mark.parametrize("k", [1, 5, 10])
    def test_single_index(self, served, dataset, tree, k):
        index = served[tree]
        for query, period in workload(dataset, n=3, seed=100 + k):
            on, s_on = bfmst_search(index, query, period, k=k, filter="on")
            off, s_off = bfmst_search(index, query, period, k=k, filter="off")
            assert match_keys(on) == match_keys(off)
            assert s_on.signature_checks > 0
            assert s_off.signature_checks == 0
            assert s_off.signature_pruned == 0

    @pytest.mark.parametrize("kernels", KERNELS)
    def test_single_index_kernels(self, served, dataset, kernels):
        index = served["rtree"]
        for query, period in workload(dataset, n=2, seed=55):
            on, _ = bfmst_search(
                index, query, period, k=5, filter="on", kernels=kernels
            )
            off, _ = bfmst_search(
                index, query, period, k=5, filter="off", kernels=kernels
            )
            assert match_keys(on) == match_keys(off)

    @pytest.mark.parametrize(
        "partitioner", ["round_robin", "hash", "spatial", "temporal"]
    )
    def test_sharded(self, dataset, partitioner, tmp_path):
        from repro.sharding import (
            ShardedDataset,
            build_sharded_index,
            load_sharded_index,
            make_partitioner,
            save_sharded_index,
        )

        sharded_ds = ShardedDataset.partition(
            dataset, make_partitioner(partitioner, 3)
        )
        sharded = build_sharded_index(sharded_ds, RTree3D)
        directory = tmp_path / "shards"
        try:
            save_sharded_index(sharded, directory, signatures=True)
        finally:
            sharded.close()
        loaded = load_sharded_index(directory)
        try:
            for query, period in workload(dataset, n=2, seed=9):
                for k in (1, 5):
                    on, s_on = bfmst_search(
                        loaded, query, period, k=k, filter="on"
                    )
                    off, _ = bfmst_search(
                        loaded, query, period, k=k, filter="off"
                    )
                    assert match_keys(on) == match_keys(off)
                    assert s_on.signature_checks > 0
        finally:
            loaded.close()

    def test_process_executor(self, dataset, tmp_path):
        from repro.engine import EngineConfig, QueryRequest, ShardedQueryEngine
        from repro.sharding import (
            ShardedDataset,
            build_sharded_index,
            make_partitioner,
            save_sharded_index,
        )

        sharded = build_sharded_index(
            ShardedDataset.partition(dataset, make_partitioner("hash", 2)),
            RTree3D,
        )
        directory = tmp_path / "shards"
        try:
            save_sharded_index(sharded, directory, signatures=True)
        finally:
            sharded.close()
        query, period = workload(dataset, n=1, seed=77)[0]
        results = {}
        stats = {}
        for mode, executor in (("off", "serial"), ("on", "process")):
            engine = ShardedQueryEngine.open(
                directory,
                config=EngineConfig(executor=executor, filter=mode),
                backend="mmap",
            )
            try:
                result = engine.execute(
                    QueryRequest("mst", query, period, k=5)
                )
                results[mode] = match_keys(result.matches)
                stats[mode] = result.stats
            finally:
                engine.close()
                engine.index.close()
        assert results["on"] == results["off"]
        # Worker-side filter counters ride the ShardAnswer home.
        assert stats["on"].signature_checks > 0
        assert stats["off"].signature_checks == 0

    def test_live_ingest(self, tmp_path):
        from repro.ingest import IngestStore

        small = generate_gstd(10, samples_per_object=30, seed=3)
        events = sorted(
            (p.t, tr.object_id, p.x, p.y) for tr in small for p in tr
        )
        t_hi = events[-1][0]
        dirty = {small.ids()[0], small.ids()[1]}

        def held_back(t, oid):
            return oid in dirty and t > 0.6 * t_hi

        with IngestStore.create(tmp_path / "store", tree="tbtree") as store:
            for t, oid, x, y in events:
                if not held_back(t, oid):
                    store.append(oid, x, y, t)
            store.compact()
            # Leave two objects' tails in the memtable: the merged
            # search mixes a signature-carrying generation (serving the
            # clean objects, filtered) with the unfiltered memtable
            # part (serving the dirty ones).
            for t, oid, x, y in events:
                if held_back(t, oid):
                    store.append(oid, x, y, t)
            store.sync()
            self._check_store(store, small)
        # Survives a crash-free reopen (sidecar re-attached from disk).
        with IngestStore.open(tmp_path / "store") as store:
            self._check_store(store, small)

    @staticmethod
    def _check_store(store, small):
        rng = random.Random(41)
        source = store.current_dataset().get(rng.randrange(len(small)))
        window = source.duration * 0.3
        t_lo = source.t_start + rng.uniform(0.0, source.duration - window)
        query = source.sliced(t_lo, t_lo + window).with_id(-1)
        period = (query.t_start, query.t_end)
        on, s_on = store.kmst(query, period, k=5, filter="auto")
        off, s_off = store.kmst(query, period, k=5, filter="off")
        assert [
            (m.trajectory_id, m.dissim, m.error_bound, m.exact) for m in on
        ] == [
            (m.trajectory_id, m.dissim, m.error_bound, m.exact) for m in off
        ]
        assert s_on.signature_checks > 0
        assert s_off.signature_checks == 0


# ----------------------------------------------------------------------
# counters and stats plumbing
# ----------------------------------------------------------------------
class TestCounters:
    def test_stats_and_registry_agree(self, served, dataset):
        from repro.obs import query_trace

        index = served["rtree"]
        query, period = workload(dataset, n=1, seed=5)[0]
        with query_trace(index) as trace:
            matches, stats = bfmst_search(
                index, query, period, k=3, filter="on"
            )
        assert matches
        assert stats.signature_checks > 0
        reg = trace.registry
        assert reg.value("filter.signature_checks") == stats.signature_checks
        assert reg.value("filter.pruned") == stats.signature_pruned
        assert reg.value("filter.leaf_skips") == stats.leaf_skips
        assert (
            reg.value("filter.refinement_skipped") == stats.refinement_skipped
        )

    def test_stats_wire_round_trip(self, served, dataset):
        index = served["rtree"]
        query, period = workload(dataset, n=1, seed=6)[0]
        _, stats = bfmst_search(index, query, period, k=3, filter="on")
        doc = stats.as_dict()
        for field in (
            "signature_checks",
            "signature_pruned",
            "leaf_skips",
            "refinement_skipped",
        ):
            assert field in doc
        round_tripped = SearchStats.from_dict(doc)
        assert round_tripped.signature_checks == stats.signature_checks
        assert round_tripped.signature_pruned == stats.signature_pruned

    def test_refinement_skip_avoids_cache_lookup(self):
        # A candidate whose signature bound clears the k-th boundary
        # must be skipped *before* the refinement LRU is consulted, so
        # the cache hit-rate denominator only counts real refinements.
        class BombCache:
            def get(self, tid):
                raise AssertionError(
                    "refinement cache consulted for a pruned candidate"
                )

            def put(self, tid, value):
                raise AssertionError("pruned candidate refined")

        records = [
            CandidateRecord(1, 1.0, 0.0, True, ()),
            CandidateRecord(2, 1.5, 0.6, True, ()),
        ]
        stats = SearchStats()
        query = Trajectory(-1, [(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)])
        out = _assemble(
            records, query, 1, True, stats, BombCache(),
            sig_lookup={2: 1.2}.get,
        )
        assert [m.trajectory_id for m in out] == [1]
        assert stats.refinement_skipped == 1
        assert stats.refinement_candidates == 0


# ----------------------------------------------------------------------
# plan codec
# ----------------------------------------------------------------------
class TestShardPlanCodec:
    def _plan(self, dataset, **overrides):
        from repro.engine.planner import ShardPlan
        from repro.search.spec import QuerySpec

        query = dataset.get(dataset.ids()[0])
        spec = QuerySpec(
            "mst", query, period=(query.t_start, query.t_end), k=3
        )
        fields = dict(
            spec=spec,
            shard_id=0,
            shard_path="shard_0000.pages",
            signature=(3, 50, 1),
            vmax=2.5,
        )
        fields.update(overrides)
        return ShardPlan(**fields)

    def test_filter_round_trips(self, dataset):
        from repro.engine.planner import ShardPlan

        plan = self._plan(dataset, filter="on")
        doc = plan.as_dict()
        assert doc["filter"] == "on"
        assert ShardPlan.from_dict(doc).filter == "on"

    def test_missing_filter_defaults_to_auto(self, dataset):
        from repro.engine.planner import ShardPlan

        doc = self._plan(dataset).as_dict()
        del doc["filter"]  # an older writer's plan
        assert ShardPlan.from_dict(doc).filter == "auto"

    def test_invalid_filter_rejected(self, dataset):
        from repro.engine.planner import ShardPlan

        doc = self._plan(dataset).as_dict()
        doc["filter"] = "maybe"
        with pytest.raises(QueryError):
            ShardPlan.from_dict(doc)
