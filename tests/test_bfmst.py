"""Correctness tests for the BFMST search algorithm — the paper's core.

Headline property: **BFMST returns exactly the linear scan's answer**
for any dataset, tree type, k, and query window (the paper's algorithm
is exact, not approximate).  Also covered: heuristic ablations, error
handling, statistics, and the self-query sanity check (a slice of an
indexed trajectory finds its source with dissimilarity ~0).
"""

import random

import pytest

from repro import RStarTree, RTree3D, STRTree, TBTree, Trajectory, generate_gstd
from repro.search.bfmst import bfmst_search
from repro.search.linear_scan import linear_scan_kmst
from repro.datagen import make_query
from repro.exceptions import QueryError, TemporalCoverageError


def ids(matches):
    return [m.trajectory_id for m in matches]


_TREES = {
    "rtree": RTree3D,
    "rstar": RStarTree,
    "tbtree": TBTree,
    "strtree": STRTree,
}


@pytest.fixture(scope="module", params=["rtree", "rstar", "tbtree", "strtree"])
def tree_and_dataset(request, small_dataset):
    cls = _TREES[request.param]
    index = cls()
    index.bulk_insert(small_dataset)
    index.finalize()
    return index, small_dataset


class TestAgainstLinearScan:
    @pytest.mark.parametrize("k", [1, 3, 7])
    @pytest.mark.parametrize("length", [0.05, 0.25])
    def test_matches_ground_truth(self, tree_and_dataset, k, length):
        index, dataset = tree_and_dataset
        rng = random.Random(k * 100 + int(length * 100))
        for _ in range(5):
            query, period = make_query(dataset, length, rng)
            got, stats = bfmst_search(index, query, period, k=k)
            want = linear_scan_kmst(dataset, query, period, k=k, exact=True)
            assert ids(got) == ids(want)
            for g, w in zip(got, want):
                # the certified interval of the returned value must
                # contain the exact metric
                slack = 1e-7 * max(1.0, w.dissim)
                assert g.lower - slack <= w.dissim <= g.upper + slack

    def test_self_query_finds_source(self, tree_and_dataset):
        index, dataset = tree_and_dataset
        rng = random.Random(42)
        query, period = make_query(dataset, 0.1, rng)
        # make_query slices a real trajectory: its source must win with
        # dissimilarity ~0.
        got, _stats = bfmst_search(index, query, period, k=1)
        truth = linear_scan_kmst(dataset, query, period, k=1, exact=True)
        assert ids(got) == ids(truth)
        assert got[0].dissim == pytest.approx(0.0, abs=1e-9)

    def test_k_exceeding_dataset_returns_all(self, tree_and_dataset):
        index, dataset = tree_and_dataset
        rng = random.Random(1)
        query, period = make_query(dataset, 0.1, rng)
        got, _ = bfmst_search(index, query, period, k=len(dataset) + 10)
        assert len(got) == len(dataset)
        want = linear_scan_kmst(dataset, query, period, k=len(dataset), exact=True)
        assert ids(got) == ids(want)

    def test_results_sorted_ascending(self, tree_and_dataset):
        index, dataset = tree_and_dataset
        rng = random.Random(2)
        query, period = make_query(dataset, 0.15, rng)
        got, _ = bfmst_search(index, query, period, k=10)
        values = [m.dissim for m in got]
        assert values == sorted(values)

    def test_exclude_ids(self, tree_and_dataset):
        index, dataset = tree_and_dataset
        rng = random.Random(3)
        query, period = make_query(dataset, 0.1, rng)
        best, _ = bfmst_search(index, query, period, k=1)
        source = best[0].trajectory_id
        got, _ = bfmst_search(index, query, period, k=1, exclude_ids={source})
        assert got[0].trajectory_id != source
        want = linear_scan_kmst(dataset, query, period, k=1, exclude_ids={source}, exact=True)
        assert ids(got) == ids(want)


class TestHeuristicAblations:
    @pytest.mark.parametrize(
        "h1,h2",
        [(True, True), (True, False), (False, True), (False, False)],
    )
    def test_same_answers_with_any_heuristic_combination(
        self, tree_and_dataset, h1, h2
    ):
        index, dataset = tree_and_dataset
        rng = random.Random(17)
        query, period = make_query(dataset, 0.1, rng)
        got, _ = bfmst_search(
            index, query, period, k=3, use_heuristic1=h1, use_heuristic2=h2
        )
        want = linear_scan_kmst(dataset, query, period, k=3, exact=True)
        assert ids(got) == ids(want)

    def test_heuristic2_reduces_node_accesses(self, tree_and_dataset):
        index, dataset = tree_and_dataset
        rng = random.Random(23)
        query, period = make_query(dataset, 0.05, rng)
        _, with_h2 = bfmst_search(index, query, period, k=1, use_heuristic2=True)
        _, without = bfmst_search(index, query, period, k=1, use_heuristic2=False)
        assert with_h2.node_accesses <= without.node_accesses
        assert with_h2.terminated_early or (
            with_h2.node_accesses == without.node_accesses
        )

    def test_loose_vmax_still_correct(self, tree_and_dataset):
        """Over-estimating V_max must never change the answer (it only
        loosens OPTDISSIM/PESDISSIM)."""
        index, dataset = tree_and_dataset
        rng = random.Random(31)
        query, period = make_query(dataset, 0.1, rng)
        loose, _ = bfmst_search(index, query, period, k=3, vmax=1e6)
        want = linear_scan_kmst(dataset, query, period, k=3, exact=True)
        assert ids(loose) == ids(want)


class TestValidationAndStats:
    def test_bad_k_rejected(self, tree_and_dataset):
        index, dataset = tree_and_dataset
        rng = random.Random(4)
        query, period = make_query(dataset, 0.1, rng)
        with pytest.raises(QueryError):
            bfmst_search(index, query, period, k=0)

    def test_inverted_period_rejected(self, tree_and_dataset):
        index, dataset = tree_and_dataset
        rng = random.Random(5)
        query, period = make_query(dataset, 0.1, rng)
        with pytest.raises(QueryError):
            bfmst_search(index, query, (period[1], period[0]), k=1)

    def test_query_must_cover_period(self, tree_and_dataset):
        index, dataset = tree_and_dataset
        rng = random.Random(6)
        query, period = make_query(dataset, 0.1, rng)
        with pytest.raises(TemporalCoverageError):
            bfmst_search(index, query, (period[0] - 100.0, period[1]), k=1)

    def test_negative_vmax_rejected(self, tree_and_dataset):
        index, dataset = tree_and_dataset
        rng = random.Random(7)
        query, period = make_query(dataset, 0.1, rng)
        with pytest.raises(QueryError):
            bfmst_search(index, query, period, vmax=-1.0)

    def test_empty_index_returns_nothing(self):
        query = Trajectory(-1, [(0, 0, 0), (1, 1, 1)])
        matches, stats = bfmst_search(RTree3D(), query, (0.0, 1.0), k=3)
        assert matches == []
        assert stats.node_accesses == 0

    def test_stats_populated(self, tree_and_dataset):
        index, dataset = tree_and_dataset
        rng = random.Random(8)
        query, period = make_query(dataset, 0.05, rng)
        _, stats = bfmst_search(index, query, period, k=1)
        assert stats.total_nodes == index.num_nodes
        assert 0 < stats.node_accesses <= stats.total_nodes + 1
        assert stats.leaf_accesses > 0
        assert stats.entries_processed > 0
        assert stats.candidates_created > 0
        assert 0.0 <= stats.pruning_power < 1.0

    def test_pruning_power_high_on_short_queries(self, small_dataset):
        """The paper's Figure 10 claim at our scale: the 3D R-tree
        prunes the vast majority of nodes for 5% queries."""
        index = RTree3D()
        index.bulk_insert(small_dataset)
        index.finalize()
        rng = random.Random(9)
        total = 0.0
        n = 5
        for _ in range(n):
            query, period = make_query(small_dataset, 0.05, rng)
            _, stats = bfmst_search(index, query, period, k=1)
            total += stats.pruning_power
        assert total / n > 0.7

    def test_refine_off_still_returns_same_set(self, tree_and_dataset):
        index, dataset = tree_and_dataset
        rng = random.Random(10)
        query, period = make_query(dataset, 0.1, rng)
        refined, _ = bfmst_search(index, query, period, k=5, refine=True)
        raw, _ = bfmst_search(index, query, period, k=5, refine=False)
        assert set(ids(refined)) == set(ids(raw))

    def test_matches_marked_exact(self, tree_and_dataset):
        index, dataset = tree_and_dataset
        rng = random.Random(11)
        query, period = make_query(dataset, 0.1, rng)
        got, _ = bfmst_search(index, query, period, k=3)
        assert all(m.exact for m in got)
        for m in got:
            assert m.lower <= m.dissim == m.upper


class TestRandomisedEquivalence:
    """Many random small worlds — the strongest correctness evidence."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_worlds(self, seed):
        dataset = generate_gstd(
            12 + seed, samples_per_object=25, seed=seed, sampling_jitter=0.4
        )
        for cls in (RTree3D, TBTree, STRTree, RStarTree):
            index = cls(page_size=512)  # tiny pages -> deep trees
            index.bulk_insert(dataset)
            index.finalize()
            rng = random.Random(seed)
            for k in (1, 4):
                query, period = make_query(dataset, 0.2, rng)
                got, _ = bfmst_search(index, query, period, k=k)
                want = linear_scan_kmst(dataset, query, period, k=k, exact=True)
                assert ids(got) == ids(want), (
                    f"seed={seed} tree={cls.__name__} k={k}"
                )
