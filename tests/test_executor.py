"""Executor session semantics: one pool per instance, reused across
batches, shut down with close() — plus the engine-owned executor."""

import pytest

from repro import RTree3D, generate_gstd, make_workload
from repro.engine import (
    EngineConfig,
    QueryEngine,
    QueryRequest,
    SerialExecutor,
    ThreadedExecutor,
    make_executor,
)


def double(i, item):
    return (i, item * 2)


class TestThreadedExecutorPool:
    def test_pool_created_lazily_and_reused(self):
        ex = ThreadedExecutor(max_workers=2)
        assert ex._pool is None
        assert ex.map(double, [1, 2, 3]) == [(0, 2), (1, 4), (2, 6)]
        pool = ex._pool
        assert pool is not None
        ex.map(double, [4, 5])
        assert ex._pool is pool  # regression: no fresh pool per batch
        ex.close()

    def test_close_is_idempotent_and_reopens_on_use(self):
        ex = ThreadedExecutor(max_workers=2)
        ex.map(double, [1, 2])
        ex.close()
        assert ex._pool is None
        ex.close()  # second close is a no-op
        assert ex.map(double, [7, 8]) == [(0, 14), (1, 16)]
        assert ex._pool is not None
        ex.close()

    def test_small_batches_skip_the_pool(self):
        ex = ThreadedExecutor(max_workers=2)
        assert ex.map(double, [9]) == [(0, 18)]
        assert ex._pool is None  # one request never spins up threads
        ex.close()

    def test_context_manager_closes(self):
        with ThreadedExecutor(max_workers=2) as ex:
            ex.map(double, [1, 2])
        assert ex._pool is None

    def test_order_preserved(self):
        ex = ThreadedExecutor(max_workers=4)
        got = ex.map(lambda i, x: x, list(range(50)))
        assert got == list(range(50))
        ex.close()


class TestSerialExecutor:
    def test_map_and_close(self):
        with SerialExecutor() as ex:
            assert ex.map(double, [1, 2]) == [(0, 2), (1, 4)]

    def test_make_executor(self):
        assert make_executor("serial").kind == "serial"
        assert make_executor("thread", 3).kind == "thread"
        assert make_executor("process", 2).kind == "process"
        with pytest.raises(ValueError):
            make_executor("fork")


class TestEngineOwnedExecutor:
    @pytest.fixture(scope="class")
    def world(self):
        dataset = generate_gstd(12, samples_per_object=15, seed=3)
        index = RTree3D(page_size=1024)
        index.bulk_insert(dataset)
        index.finalize()
        workload = list(make_workload(dataset, 3, seed=8))
        return index, dataset, workload

    def test_threaded_engine_reuses_one_pool(self, world):
        index, dataset, workload = world
        config = EngineConfig(executor="thread", max_workers=2)
        with QueryEngine(index, dataset, config=config) as engine:
            requests = [QueryRequest("mst", q, p, k=2) for q, p in workload]
            engine.run_batch(requests)
            pool = engine.executor._pool
            engine.run_batch(requests)
            assert engine.executor._pool is pool
            # threaded batches must have locked the buffer manager
            assert index.buffer._lock is not None
        assert engine.executor._pool is None  # close() tears it down

    def test_string_override_is_ephemeral(self, world):
        index, dataset, workload = world
        with QueryEngine(index, dataset) as engine:
            requests = [QueryRequest("mst", q, p, k=2) for q, p in workload]
            batch = engine.run_batch(requests, executor="thread")
            assert batch.executor == "thread"
            # the session executor is untouched (and serial)
            assert engine.executor.kind == "serial"
