"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments import ascii_chart, ascii_multi_chart


class TestAsciiChart:
    def test_single_series_shape(self):
        text = ascii_chart([0, 1, 2, 3], [0.0, 1.0, 2.0, 3.0], height=4, width=12)
        lines = text.splitlines()
        assert len(lines) == 6  # 4 grid rows + axis + x labels
        assert "3.00" in lines[0]
        assert "0.00" in lines[3]
        assert lines[4].strip().startswith("+")
        # monotone series: markers descend left to right visually
        assert lines[0].rstrip().endswith("o")

    def test_constant_series_does_not_crash(self):
        text = ascii_chart([0, 1, 2], [5.0, 5.0, 5.0], height=3, width=10)
        assert "5.00" in text

    def test_multi_series_markers_and_legend(self):
        text = ascii_multi_chart(
            [0, 1, 2],
            {"rtree": [1.0, 2.0, 3.0], "tbtree": [3.0, 2.0, 1.0]},
            height=5,
            width=16,
        )
        assert "r = rtree" in text
        assert "t = tbtree" in text
        assert "r" in text and "t" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_multi_chart([0, 1], {"a": [1.0]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([], [])

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([0, 1], [0.0, 1.0], height=1, width=4)

    def test_x_labels_present(self):
        text = ascii_chart([100, 1000], [1.0, 2.0], height=3, width=20)
        assert "100" in text.splitlines()[-1]
        assert "1000" in text.splitlines()[-1]

    def test_deterministic(self):
        a = ascii_chart([0, 1, 2], [1.0, 4.0, 2.0])
        b = ascii_chart([0, 1, 2], [1.0, 4.0, 2.0])
        assert a == b
