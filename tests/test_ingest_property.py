"""Randomized-interleaving property test for the live ingestion path.

A seeded RNG drives arbitrary interleavings of *append batch / query /
compact / reopen* against one store (both tree kinds, both kernel
modes) and against a multi-store fleet split by every partitioner.
After every query op the live answer — generation + memtable merged
under one shared bound — must be **byte-identical** (same ids, same
float dissims) to a from-scratch rebuild of the store's current state.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro import IngestStore
from repro.datagen import generate_gstd, make_query
from repro.distance.kernels import have_numpy
from repro.engine import LiveQueryEngine, QueryRequest
from repro.search.api import bfmst_search
from repro.sharding import make_partitioner
from repro.trajectory import Trajectory, TrajectoryDataset

KERNEL_MODES = ["python"] + (["numpy"] if have_numpy() else [])
K_CHOICES = (1, 5, 10)


def _events(dataset):
    return sorted(
        ((tr.object_id, p.x, p.y, p.t) for tr in dataset for p in tr),
        key=lambda e: (e[3], e[0]),
    )


def _oracle(dataset, query, period, k, *, tree, kernels):
    from repro.index.persistence import _KINDS

    index = _KINDS[tree](page_size=4096)
    for tr in dataset:
        index.insert(tr)
    index.finalize()
    if index.num_entries == 0:
        return []
    result = bfmst_search(
        index, None, query, period=period, k=k, kernels=kernels
    )
    return [(m.trajectory_id, m.dissim) for m in result.matches]


# ----------------------------------------------------------------------
# single store
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernels", KERNEL_MODES)
@pytest.mark.parametrize("tree", ["tbtree", "rtree"])
def test_random_interleavings_single_store(tmp_path, tree, kernels):
    dataset = generate_gstd(10, samples_per_object=16, seed=29)
    events = _events(dataset)
    rng = random.Random(zlib.crc32(f"{tree}/{kernels}".encode()))
    queries = [make_query(dataset, 0.4, rng) for _ in range(4)]

    store = IngestStore.create(tmp_path / "s", tree=tree, sync_every=4)
    cursor = 0
    checked = 0
    try:
        for _step in range(60):
            op = rng.choice(("append", "append", "append", "query", "compact", "reopen"))
            if op == "append" and cursor < len(events):
                for oid, x, y, t in events[cursor : cursor + rng.randint(1, 12)]:
                    store.append(oid, x, y, t)
                    cursor += 1
            elif op == "query":
                query, period = rng.choice(queries)
                k = rng.choice(K_CHOICES)
                matches, _ = store.kmst(query, period, k, kernels=kernels)
                got = [(m.trajectory_id, m.dissim) for m in matches]
                want = _oracle(
                    store.current_dataset(), query, period, k,
                    tree=tree, kernels=kernels,
                )
                assert got == want, f"drift at step {_step} ({op})"
                checked += 1
            elif op == "compact":
                store.compact()
            elif op == "reopen":
                store.close()
                store = IngestStore.open(tmp_path / "s", sync_every=4)

        # drain the stream, then a final exhaustive check
        for oid, x, y, t in events[cursor:]:
            store.append(oid, x, y, t)
        for query, period in queries:
            for k in K_CHOICES:
                matches, _ = store.kmst(query, period, k, kernels=kernels)
                got = [(m.trajectory_id, m.dissim) for m in matches]
                assert got == _oracle(
                    store.current_dataset(), query, period, k,
                    tree=tree, kernels=kernels,
                )
                checked += 1
        assert checked >= len(queries) * len(K_CHOICES)
    finally:
        store.close()


# ----------------------------------------------------------------------
# multi-store fleet, one store per partition
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "partitioner", ["round_robin", "hash", "spatial", "temporal"]
)
def test_random_interleavings_partitioned_fleet(tmp_path, partitioner):
    dataset = generate_gstd(12, samples_per_object=14, seed=31)
    num_shards = 3
    part = make_partitioner(partitioner, num_shards)
    part.fit(dataset)
    shard_of = {tr.object_id: part.shard_of(tr) for tr in dataset}

    events = _events(dataset)
    rng = random.Random(zlib.crc32(partitioner.encode()))
    queries = [make_query(dataset, 0.4, rng) for _ in range(3)]

    stores = [
        IngestStore.create(tmp_path / f"shard-{i}", sync_every=4)
        for i in range(num_shards)
    ]
    try:
        cursor = 0
        for _step in range(40):
            op = rng.choice(("append", "append", "query", "compact", "reopen"))
            if op == "append" and cursor < len(events):
                for oid, x, y, t in events[cursor : cursor + rng.randint(1, 10)]:
                    stores[shard_of[oid]].append(oid, x, y, t)
                    cursor += 1
            elif op == "query":
                query, period = rng.choice(queries)
                k = rng.choice(K_CHOICES)
                with LiveQueryEngine(stores) as engine:
                    result = engine.execute(
                        QueryRequest("mst", query, period, k=k)
                    )
                got = [(m.trajectory_id, m.dissim) for m in result.matches]
                merged = TrajectoryDataset(
                    tr
                    for store in stores
                    for tr in store.current_dataset()
                )
                want = _oracle(
                    merged, query, period, k, tree="tbtree", kernels="auto"
                )
                assert got == want, f"drift at step {_step} ({partitioner})"
            elif op == "compact":
                rng.choice(stores).compact()
            elif op == "reopen":
                i = rng.randrange(num_shards)
                stores[i].close()
                stores[i] = IngestStore.open(
                    tmp_path / f"shard-{i}", sync_every=4
                )

        for oid, x, y, t in events[cursor:]:
            stores[shard_of[oid]].append(oid, x, y, t)
        merged = TrajectoryDataset(
            tr for store in stores for tr in store.current_dataset()
        )
        for query, period in queries:
            for k in K_CHOICES:
                with LiveQueryEngine(stores) as engine:
                    result = engine.execute(
                        QueryRequest("mst", query, period, k=k)
                    )
                got = [(m.trajectory_id, m.dissim) for m in result.matches]
                assert got == _oracle(
                    merged, query, period, k, tree="tbtree", kernels="auto"
                )
    finally:
        for store in stores:
            store.close()
