"""Sharding subsystem: partitioners, sharded dataset/index, cross-shard
BFMST identity vs the single tree, the planner, and the sharded engine.

The load-bearing property is *byte-identity*: a sharded k-MST must
return the same ids, in the same order, with bit-equal DISSIM values as
the one-tree search, for every partitioner and both index backends —
the shared cross-shard bound may only change *where* work happens, not
the answer.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    RTree3D,
    TBTree,
    Trajectory,
    TrajectoryDataset,
    generate_gstd,
    make_workload,
    query_trace,
)
from repro.engine import (
    EngineConfig,
    QueryEngine,
    QueryPlanner,
    QueryRequest,
    ShardedQueryEngine,
    budget_buffers,
)
from repro.exceptions import QueryError, TrajectoryError
from repro.geometry import MBR2D, Point
from repro.search import (
    bfmst_search,
    linear_scan_kmst,
    nearest_neighbours,
    range_query,
)
from repro.search.bfmst import bfmst_search_sharded
from repro.sharding import (
    PARTITIONER_KINDS,
    ShardedDataset,
    ShardedIndex,
    build_sharded_index,
    make_partitioner,
    partitioner_from_params,
)

ALL_KINDS = ("round_robin", "hash", "spatial", "temporal")


def match_tuples(result):
    """The full identity fingerprint of a result: ids, order and exact
    float values."""
    return [
        (m.trajectory_id, m.dissim, m.error_bound, m.exact)
        for m in result.matches
    ]


@pytest.fixture(scope="module")
def dataset():
    return generate_gstd(24, samples_per_object=20, seed=13)


@pytest.fixture(scope="module")
def workload(dataset):
    return list(make_workload(dataset, 4, 0.15, seed=5))


@pytest.fixture(scope="module", params=(RTree3D, TBTree), ids=lambda c: c.__name__)
def tree_cls(request):
    return request.param


@pytest.fixture(scope="module")
def single_index(tree_cls, dataset):
    index = tree_cls(page_size=1024)
    index.bulk_insert(dataset)
    index.finalize()
    return index


# ----------------------------------------------------------------------
# partitioners
# ----------------------------------------------------------------------
class TestPartitioners:
    def test_kind_registry(self):
        assert set(PARTITIONER_KINDS) == set(ALL_KINDS)

    def test_unknown_kind(self):
        with pytest.raises(QueryError):
            make_partitioner("modulo", 4)

    def test_num_shards_must_be_positive(self):
        for kind in ALL_KINDS:
            with pytest.raises(QueryError):
                make_partitioner(kind, 0)

    def test_round_robin_balances(self, dataset):
        sharded = ShardedDataset.partition(
            dataset, make_partitioner("round_robin", 5)
        )
        sizes = sharded.shard_sizes()
        assert sum(sizes) == len(dataset)
        assert max(sizes) - min(sizes) <= 1

    def test_hash_is_deterministic_and_memoryless(self, dataset):
        a = make_partitioner("hash", 4).fit(dataset)
        b = make_partitioner("hash", 4).fit(dataset)
        for tr in dataset:
            assert a.shard_of(tr) == b.shard_of(tr)

    def test_hash_rejects_non_int_ids(self):
        part = make_partitioner("hash", 2)
        with pytest.raises(TrajectoryError):
            part.shard_of(Trajectory("t7", [(0, 0, 0), (1, 1, 1)]))

    def test_range_partitioners_require_fit(self, dataset):
        for kind in ("spatial", "temporal"):
            part = make_partitioner(kind, 3)
            with pytest.raises(QueryError):
                part.shard_of(next(iter(dataset)))

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_params_round_trip(self, kind, dataset):
        part = make_partitioner(kind, 3).fit(dataset)
        clone = partitioner_from_params(part.params())
        for tr in dataset:
            assert clone.shard_of(tr) == part.shard_of(tr)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_every_trajectory_lands_in_range(self, kind, dataset):
        part = make_partitioner(kind, 3).fit(dataset)
        for tr in dataset:
            assert 0 <= part.shard_of(tr) < 3


class TestShardedDataset:
    def test_partition_is_exact_cover(self, dataset):
        sharded = ShardedDataset.partition(
            dataset, make_partitioner("hash", 4)
        )
        seen = [tr.object_id for shard in sharded.shards for tr in shard]
        assert sorted(seen) == sorted(dataset.ids())
        assert len(seen) == len(set(seen))

    def test_shard_of_matches_assignment(self, dataset):
        sharded = ShardedDataset.partition(
            dataset, make_partitioner("round_robin", 3)
        )
        for oid in dataset.ids():
            shard_id = sharded.shard_of(oid)
            assert any(
                tr.object_id == oid for tr in sharded.shards[shard_id]
            )


# ----------------------------------------------------------------------
# cross-shard BFMST identity — the acceptance property
# ----------------------------------------------------------------------
class TestCrossShardIdentity:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_sharded_kmst_identical_to_single(
        self, tree_cls, kind, dataset, workload, single_index
    ):
        sharded_ds = ShardedDataset.partition(
            dataset, make_partitioner(kind, 4)
        )
        sharded = build_sharded_index(sharded_ds, tree_cls, page_size=1024)
        try:
            for query, period in workload:
                for k in (1, 5, 10):
                    want = bfmst_search(
                        single_index, None, query, period=period, k=k
                    )
                    got = bfmst_search(
                        sharded, None, query, period=period, k=k
                    )
                    assert match_tuples(got) == match_tuples(want)
        finally:
            sharded.close()

    def test_aggregate_stats_are_consistent(
        self, tree_cls, dataset, workload, single_index
    ):
        sharded_ds = ShardedDataset.partition(
            dataset, make_partitioner("hash", 4)
        )
        sharded = build_sharded_index(sharded_ds, tree_cls, page_size=1024)
        try:
            query, period = workload[0]
            got = bfmst_search(sharded, None, query, period=period, k=5)
            stats = got.stats
            rows = stats.extra["per_shard"]
            assert len(rows) == 4
            searched = [r for r in rows if not r.get("pruned")]
            assert stats.extra["shards_searched"] == len(searched)
            assert stats.node_accesses == sum(
                r["node_accesses"] for r in searched
            )
            assert stats.total_nodes == sharded.num_nodes
        finally:
            sharded.close()

    def test_single_shard_degenerates_to_plain_search(
        self, tree_cls, dataset, workload, single_index
    ):
        sharded_ds = ShardedDataset.partition(
            dataset, make_partitioner("round_robin", 1)
        )
        sharded = build_sharded_index(sharded_ds, tree_cls, page_size=1024)
        try:
            query, period = workload[0]
            want = bfmst_search(single_index, None, query, period=period, k=5)
            got = bfmst_search(sharded, None, query, period=period, k=5)
            assert match_tuples(got) == match_tuples(want)
            assert got.stats.node_accesses == want.stats.node_accesses
        finally:
            sharded.close()


coord = st.floats(min_value=-40.0, max_value=40.0)


@st.composite
def sharded_worlds(draw):
    """A small co-temporal world plus a shard count and partitioner."""
    total = draw(st.floats(min_value=2.0, max_value=30.0))
    n_objects = draw(st.integers(min_value=3, max_value=7))
    dataset = TrajectoryDataset()
    for oid in range(n_objects):
        n = draw(st.integers(min_value=2, max_value=6))
        interior = sorted(
            draw(
                st.lists(
                    st.floats(min_value=0.05, max_value=0.95),
                    min_size=n - 2,
                    max_size=n - 2,
                    unique=True,
                )
            )
        )
        times = sorted({0.0, *[f * total for f in interior], total})
        dataset.add(
            Trajectory(oid, [(draw(coord), draw(coord), t) for t in times])
        )
    f_lo = draw(st.floats(min_value=0.0, max_value=0.5))
    f_len = draw(st.floats(min_value=0.2, max_value=0.45))
    period = (f_lo * total, (f_lo + f_len) * total)
    source = dataset[draw(st.integers(min_value=0, max_value=n_objects - 1))]
    query = source.sliced(*period).with_id(-1)
    k = draw(st.integers(min_value=1, max_value=n_objects))
    num_shards = draw(st.integers(min_value=1, max_value=4))
    kind = draw(st.sampled_from(ALL_KINDS))
    return dataset, query, period, k, num_shards, kind


@given(sharded_worlds())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_property_sharded_identity_on_arbitrary_worlds(world):
    dataset, query, period, k, num_shards, kind = world
    single = RTree3D(page_size=512)
    single.bulk_insert(dataset)
    single.finalize()
    sharded_ds = ShardedDataset.partition(
        dataset, make_partitioner(kind, num_shards)
    )
    sharded = build_sharded_index(sharded_ds, RTree3D, page_size=512)
    try:
        want = bfmst_search(single, None, query, period=period, k=k)
        got = bfmst_search(sharded, None, query, period=period, k=k)
        assert match_tuples(got) == match_tuples(want)
    finally:
        sharded.close()


# ----------------------------------------------------------------------
# the other unified entry points accept the sharded context
# ----------------------------------------------------------------------
class TestOtherEntryPoints:
    @pytest.fixture(scope="class")
    def sharded(self, dataset):
        sharded_ds = ShardedDataset.partition(
            dataset, make_partitioner("hash", 3)
        )
        index = build_sharded_index(sharded_ds, RTree3D, page_size=1024)
        yield sharded_ds, index
        index.close()

    @pytest.fixture(scope="class")
    def single(self, dataset):
        index = RTree3D(page_size=1024)
        index.bulk_insert(dataset)
        index.finalize()
        return index

    def test_nearest_neighbours(self, dataset, sharded, single):
        _, sidx = sharded
        p0 = next(iter(dataset)).samples[3]
        point = Point(p0.x + 0.5, p0.y - 0.5)
        want = nearest_neighbours(
            single, None, point, period=(p0.t - 10, p0.t + 10), k=3
        )
        got = nearest_neighbours(
            sidx, None, point, period=(p0.t - 10, p0.t + 10), k=3
        )
        assert match_tuples(got) == match_tuples(want)

    def test_range_query(self, dataset, sharded, single):
        _, sidx = sharded
        p0 = next(iter(dataset)).samples[0]
        window = MBR2D(p0.x - 30, p0.y - 30, p0.x + 30, p0.y + 30)
        want = range_query(single, None, window, period=(0.0, 2000.0))
        got = range_query(sidx, None, window, period=(0.0, 2000.0))
        assert got.ids == want.ids

    def test_linear_scan_over_sharded_dataset(self, dataset, sharded, workload):
        sharded_ds, _ = sharded
        query, period = workload[0]
        want = linear_scan_kmst(None, dataset, query, period=period, k=3)
        got = linear_scan_kmst(None, sharded_ds, query, period=period, k=3)
        assert match_tuples(got) == match_tuples(want)

    def test_query_trace_accepts_sharded_index(self, sharded, workload):
        _, sidx = sharded
        query, period = workload[0]
        with query_trace(sidx, name="sharded") as trace:
            result = bfmst_search(sidx, None, query, period=period, k=3)
        assert result.matches
        # pooled I/O accounting across every shard's page file
        assert trace.io is not None
        assert trace.io.logical_reads >= result.stats.node_accesses
        assert trace.counters["search.bfmst.sharded_queries"] == 1
        assert any(
            name.startswith("search.shard.") for name in trace.counters
        )


# ----------------------------------------------------------------------
# planner
# ----------------------------------------------------------------------
class TestPlanner:
    def _staggered(self):
        """Three temporally disjoint fleets: [0,10], [20,30], [40,50]."""
        dataset = TrajectoryDataset()
        for epoch in range(3):
            t0 = epoch * 20.0
            for j in range(4):
                oid = epoch * 10 + j
                dataset.add(
                    Trajectory(
                        oid,
                        [(j, epoch, t0), (j + 1.0, epoch + 1.0, t0 + 10.0)],
                    )
                )
        return dataset

    def test_temporal_pruning_preserves_answers(self):
        dataset = self._staggered()
        sharded_ds = ShardedDataset.partition(
            dataset, make_partitioner("temporal", 3)
        )
        sharded = build_sharded_index(sharded_ds, RTree3D, page_size=512)
        try:
            planner = QueryPlanner(sharded.extents())
            query = dataset[11].sliced(22.0, 28.0).with_id(-1)
            plan = planner.plan(query, (22.0, 28.0))
            assert len(plan.selected) == 1
            assert len(plan.pruned) == 2
            all_shards = bfmst_search(
                sharded, None, query, period=(22.0, 28.0), k=3
            )
            sel_matches, sel_stats = bfmst_search_sharded(
                sharded, query, (22.0, 28.0), 3, selected=plan.selected
            )
            assert [
                (m.trajectory_id, m.dissim, m.error_bound, m.exact)
                for m in sel_matches
            ] == match_tuples(all_shards)
            assert sel_stats.node_accesses <= all_shards.stats.node_accesses
            assert sel_stats.extra["shards_pruned"] == 2
        finally:
            sharded.close()

    def test_empty_extent_always_pruned(self):
        planner = QueryPlanner([None, None])
        plan = planner.plan(None, None)
        assert plan.selected == []
        assert plan.pruned == [0, 1]

    def test_spatial_filter_only_for_windows(self):
        extent = RTree3D(page_size=512)
        extent.insert(Trajectory(1, [(0, 0, 0), (1, 1, 10)]))
        extent.finalize()
        planner = QueryPlanner([extent.mbr()])
        far_query = Trajectory(-1, [(500, 500, 2), (501, 501, 8)])
        assert planner.plan(far_query, (2.0, 8.0)).selected == [0]
        far_window = MBR2D(500, 500, 600, 600)
        assert planner.plan(far_window, (2.0, 8.0)).selected == []

    def test_budget_buffers_respects_global_cap(self, dataset):
        sharded_ds = ShardedDataset.partition(
            dataset, make_partitioner("hash", 4)
        )
        sharded = build_sharded_index(sharded_ds, RTree3D, page_size=1024)
        try:
            caps = budget_buffers(
                sharded.shards, fraction=1.0, total_max_pages=40, min_pages=2
            )
            assert len(caps) == 4
            assert all(cap >= 2 for cap in caps)
            assert sum(caps) <= 40 + 2 * 4  # proportional shares + floors
            for shard, cap in zip(sharded.shards, caps):
                assert shard.buffer.capacity == cap
        finally:
            sharded.close()


# ----------------------------------------------------------------------
# sharded engine
# ----------------------------------------------------------------------
class TestShardedQueryEngine:
    def test_matches_plain_engine(self, dataset, workload, single_index, tree_cls):
        sharded_ds = ShardedDataset.partition(
            dataset, make_partitioner("hash", 3)
        )
        sharded = build_sharded_index(sharded_ds, tree_cls, page_size=1024)
        requests = [
            QueryRequest("mst", q, p, k=5) for q, p in workload
        ]
        with QueryEngine(single_index, dataset) as ref:
            want = ref.run_batch(requests)
        with ShardedQueryEngine(sharded, sharded_ds) as engine:
            got = engine.run_batch(requests)
            assert [match_tuples(r) for r in got.results] == [
                match_tuples(r) for r in want.results
            ]
            assert engine.metrics.value("engine.planner.plans") == len(requests)
            rows = engine.per_shard_summary()
            assert len(rows) == 3
            assert sum(r["queries"] + r["pruned"] for r in rows) >= len(requests)
        sharded.close()

    def test_threaded_path_locks_every_shard_buffer(self, dataset, workload):
        sharded_ds = ShardedDataset.partition(
            dataset, make_partitioner("round_robin", 3)
        )
        sharded = build_sharded_index(sharded_ds, RTree3D, page_size=1024)
        config = EngineConfig(executor="thread", max_workers=4)
        with ShardedQueryEngine(sharded, sharded_ds, config=config) as engine:
            # regression: every shard buffer must be locked up front,
            # not lazily on first touch
            assert all(
                shard.buffer._lock is not None for shard in sharded.shards
            )
            got = engine.run_batch(
                [QueryRequest("mst", q, p, k=5) for q, p in workload]
            )
            assert got.executor == "thread"
        sharded.close()

    def test_closed_engine_rejects_queries(self, dataset, workload):
        sharded_ds = ShardedDataset.partition(
            dataset, make_partitioner("hash", 2)
        )
        sharded = build_sharded_index(sharded_ds, RTree3D, page_size=1024)
        engine = ShardedQueryEngine(sharded, sharded_ds)
        engine.close()
        query, period = workload[0]
        with pytest.raises(QueryError):
            engine.execute(QueryRequest("mst", query, period, k=1))
        sharded.close()

    def test_dataset_required_for_scan_kinds(self, dataset, workload):
        sharded_ds = ShardedDataset.partition(
            dataset, make_partitioner("hash", 2)
        )
        sharded = build_sharded_index(sharded_ds, RTree3D, page_size=1024)
        with ShardedQueryEngine(sharded) as engine:
            query, period = workload[0]
            with pytest.raises(QueryError):
                engine.execute(QueryRequest("linear_scan", query, period, k=1))
        sharded.close()
