"""Tests for the ERP and discrete Fréchet extension measures."""

import math

import pytest
from hypothesis import given, settings

from repro import Trajectory, discrete_frechet_distance, erp_distance
from repro.geometry import Point

from conftest import trajectories


def tr(points, id_=0):
    return Trajectory(id_, points)


class TestERP:
    def test_identical_is_zero(self):
        a = tr([(0, 0, 0), (1, 1, 1), (2, 0, 2)])
        assert erp_distance(a, a.with_id(1)) == pytest.approx(0.0)

    def test_single_point_offset(self):
        a = tr([(0, 0, 0), (1, 0, 1)])
        b = tr([(0, 0, 0), (1, 3, 1)], id_=1)
        assert erp_distance(a, b) == pytest.approx(3.0)

    def test_gap_penalty_uses_reference_point(self):
        a = tr([(5, 0, 0), (5, 0, 1)])
        b = tr([(5, 0, 0), (5, 0, 1), (5, 0, 2)], id_=1)
        # one extra sample in b at distance 5 from the origin gap
        assert erp_distance(a, b) == pytest.approx(5.0)
        # a custom reference point right on the extra sample: free gap
        assert erp_distance(a, b, gap=Point(5, 0)) == pytest.approx(0.0)

    @given(trajectories(id_=0), trajectories(id_=1))
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, a, b):
        assert erp_distance(a, b) == pytest.approx(erp_distance(b, a))

    @given(trajectories(id_=0), trajectories(id_=1), trajectories(id_=2))
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        """ERP's selling point over DTW/EDR: it is a true metric."""
        ab = erp_distance(a, b)
        bc = erp_distance(b, c)
        ac = erp_distance(a, c)
        assert ac <= ab + bc + 1e-7

    @given(trajectories(id_=0))
    @settings(max_examples=40, deadline=None)
    def test_self_distance_zero(self, a):
        assert erp_distance(a, a.with_id(1)) == pytest.approx(0.0, abs=1e-9)


class TestDiscreteFrechet:
    def test_identical_is_zero(self):
        a = tr([(0, 0, 0), (1, 1, 1), (2, 0, 2)])
        assert discrete_frechet_distance(a, a.with_id(1)) == 0.0

    def test_parallel_lines(self):
        a = tr([(0, 0, 0), (1, 0, 1), (2, 0, 2)])
        b = tr([(0, 1, 0), (1, 1, 1), (2, 1, 2)], id_=1)
        assert discrete_frechet_distance(a, b) == pytest.approx(1.0)

    def test_leash_binds_at_worst_point(self):
        a = tr([(0, 0, 0), (1, 0, 1), (2, 0, 2)])
        b = tr([(0, 0, 0), (1, 5, 1), (2, 0, 2)], id_=1)
        # The walker on b must visit (1, 5); the best simultaneous
        # position on a is distance sqrt(1+25)... actually (1, 0): 5.
        assert discrete_frechet_distance(a, b) == pytest.approx(5.0)

    def test_time_is_ignored(self):
        a = tr([(0, 0, 0), (1, 0, 1)])
        b = tr([(0, 0, 100), (1, 0, 200)], id_=1)
        assert discrete_frechet_distance(a, b) == 0.0

    @given(trajectories(id_=0), trajectories(id_=1))
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, a, b):
        assert discrete_frechet_distance(a, b) == pytest.approx(
            discrete_frechet_distance(b, a)
        )

    @given(trajectories(id_=0), trajectories(id_=1))
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_max_pairwise_and_at_least_endpoints(self, a, b):
        f = discrete_frechet_distance(a, b)
        max_pair = max(
            math.hypot(pa.x - pb.x, pa.y - pb.y)
            for pa in a.samples
            for pb in b.samples
        )
        ends = max(
            math.hypot(a[0].x - b[0].x, a[0].y - b[0].y),
            math.hypot(a[-1].x - b[-1].x, a[-1].y - b[-1].y),
        )
        assert ends - 1e-9 <= f <= max_pair + 1e-9
