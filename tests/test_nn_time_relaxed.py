"""Tests for the point-NN query and the time-relaxed MST extension."""

import random

import pytest

from repro import (
    RTree3D,
    Trajectory,
    TrajectoryDataset,
    time_relaxed_dissim,
)
from repro.search.nn import nearest_neighbours
from repro.search.time_relaxed import time_relaxed_kmst
from repro.exceptions import QueryError
from repro.geometry import Point
from repro.search import nearest_neighbours_brute_force

from conftest import straight_line


class TestNearestNeighbours:
    def test_matches_brute_force(self, small_dataset, small_rtree):
        rng = random.Random(77)
        t0, t1 = small_dataset.time_span()
        for _ in range(8):
            p = Point(rng.random(), rng.random())
            ta = rng.uniform(t0, t1 - 10.0)
            tb = ta + rng.uniform(1.0, 50.0)
            for k in (1, 3):
                got = nearest_neighbours(small_rtree, p, ta, tb, k=k)
                want = nearest_neighbours_brute_force(
                    small_dataset, p, ta, tb, k=k
                )
                assert [g[0] for g in got] == [w[0] for w in want]
                for (gi, gd), (wi, wd) in zip(got, want):
                    assert gd == pytest.approx(wd, abs=1e-7)

    def test_distances_sorted(self, small_dataset, small_rtree):
        t0, t1 = small_dataset.time_span()
        got = nearest_neighbours(small_rtree, Point(0.5, 0.5), t0, t1, k=5)
        dists = [d for _i, d in got]
        assert dists == sorted(dists)
        assert len(got) == 5

    def test_object_on_point_wins(self):
        ds = TrajectoryDataset(
            [
                straight_line(1, 0.3, 0.3, 0.0, 0.0, [0, 10]),
                straight_line(2, 0.9, 0.9, 0.0, 0.0, [0, 10]),
            ]
        )
        index = RTree3D()
        index.bulk_insert(ds)
        index.finalize()
        got = nearest_neighbours(index, Point(0.3, 0.3), 0, 10, k=1)
        assert got[0][0] == 1
        assert got[0][1] == pytest.approx(0.0)

    def test_bad_k_rejected(self, small_rtree):
        with pytest.raises(QueryError):
            nearest_neighbours(small_rtree, Point(0, 0), 0, 1, k=0)

    def test_inverted_interval_rejected(self, small_rtree):
        with pytest.raises(QueryError):
            nearest_neighbours(small_rtree, Point(0, 0), 5, 1, k=1)

    def test_empty_index(self):
        assert nearest_neighbours(RTree3D(), Point(0, 0), 0, 1, k=1) == []


class TestTimeRelaxed:
    def test_recovers_shift_of_translated_copy(self):
        base = straight_line(0, 0.0, 0.0, 1.0, 0.2, [float(i) for i in range(21)])
        target = base.time_shifted(0.0).with_id(1)
        query = base.sliced(5.0, 10.0).time_shifted(-5.0).with_id(2)
        # query equals target's [5, 10] stretch moved to start at 0:
        # the best shift is +5 with dissimilarity ~0.
        value, shift = time_relaxed_dissim(query, target)
        assert value == pytest.approx(0.0, abs=1e-3)
        assert shift == pytest.approx(5.0, abs=0.05)

    def test_shorter_target_rejected(self):
        q = Trajectory(0, [(0, 0, 0), (1, 1, 10)])
        t = Trajectory(1, [(0, 0, 0), (1, 1, 5)])
        with pytest.raises(QueryError):
            time_relaxed_dissim(q, t)

    def test_equal_durations_single_shift(self):
        q = straight_line(0, 0.0, 0.0, 1.0, 0.0, [0.0, 5.0])
        # t is q delayed by 3 and offset by 1 in y (note straight_line
        # parameterises by absolute time, hence x0 = -3).
        t = straight_line(1, -3.0, 1.0, 1.0, 0.0, [3.0, 8.0])
        value, shift = time_relaxed_dissim(q, t)
        assert shift == pytest.approx(3.0)
        assert value == pytest.approx(5.0)  # constant distance 1 over 5

    def test_kmst_ranks_by_relaxed_value(self):
        base = straight_line(1, 0.0, 0.0, 1.0, 0.0, [float(i) for i in range(11)])
        near = base.translated(0.0, 0.1).with_id(2)
        far = base.translated(0.0, 5.0).with_id(3)
        short = Trajectory(4, [(0, 0, 0), (1, 1, 1)])  # too short: skipped
        ds = TrajectoryDataset([base, near, far, short])
        query = base.sliced(3.0, 7.0).with_id(0)
        results = time_relaxed_kmst(ds, query, k=3)
        ranked = [m.trajectory_id for m, _shift in results]
        assert ranked == [1, 2, 3]
        assert results[0][0].dissim == pytest.approx(0.0, abs=1e-6)

    def test_kmst_excludes_ids(self):
        base = straight_line(1, 0.0, 0.0, 1.0, 0.0, [float(i) for i in range(11)])
        other = base.translated(0.0, 1.0).with_id(2)
        ds = TrajectoryDataset([base, other])
        query = base.sliced(2.0, 6.0).with_id(0)
        results = time_relaxed_kmst(ds, query, k=1, exclude_ids={1})
        assert results[0][0].trajectory_id == 2

    def test_bad_k_rejected(self):
        ds = TrajectoryDataset([Trajectory(1, [(0, 0, 0), (1, 1, 1)])])
        q = Trajectory(0, [(0, 0, 0), (1, 1, 1)])
        with pytest.raises(QueryError):
            time_relaxed_kmst(ds, q, k=0)

    def test_relaxed_never_exceeds_aligned(self):
        """The relaxed minimum is at most the dissimilarity at any
        particular shift, in particular the natural alignment."""
        from repro import dissim_exact

        q = straight_line(0, 0.0, 0.0, 0.7, -0.1, [0.0, 2.0, 4.0, 6.0])
        t = straight_line(1, 0.5, 0.5, 0.6, 0.0, [0.0, 3.0, 6.0, 9.0])
        aligned = dissim_exact(q, t, (q.t_start, q.t_end))
        relaxed, _shift = time_relaxed_dissim(q, t)
        assert relaxed <= aligned + 1e-9
